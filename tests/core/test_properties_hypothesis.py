"""Property-based tests on DMG invariants (hypothesis).

The three algebraic properties of Sect. 2.2 must hold on *arbitrary*
strongly connected dual marked graphs under *arbitrary* interleavings:
token preservation per cycle, deadlock-freedom of live graphs, and
repetitive behaviour (equal firing counts restore the marking).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.analysis import cycle_token_sums
from repro.core.dmg import DualMarkedGraph


@st.composite
def ring_of_rings_dmg(draw):
    """A strongly connected DMG: a hub node with several marked rings.

    Every ring passes through the hub, so the graph is strongly
    connected; each ring carries at least one token, so it is live.
    """
    n_rings = draw(st.integers(min_value=1, max_value=3))
    g = DualMarkedGraph()
    for r in range(n_rings):
        length = draw(st.integers(min_value=1, max_value=4))
        token_at = draw(st.integers(min_value=0, max_value=length))
        prev = "hub"
        for i in range(length):
            node = f"r{r}n{i}"
            g.add_arc(prev, node, tokens=1 if token_at == i else 0)
            prev = node
        g.add_arc(prev, "hub", tokens=1 if token_at == length else 0)
    if draw(st.booleans()):
        g.mark_early("hub")
    return g


@given(ring_of_rings_dmg(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_token_preservation_under_random_firing(g, seed):
    cycles = g.simple_cycles()
    sums0 = [g.marking_of(g.initial_marking, c) for c in cycles]
    _, m = g.random_firing_sequence(60, rng=random.Random(seed))
    assert [g.marking_of(m, c) for c in cycles] == sums0


@given(ring_of_rings_dmg(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_live_dmg_never_deadlocks(g, seed):
    # random_firing_sequence raises RuntimeError on deadlock
    g.random_firing_sequence(80, rng=random.Random(seed))


@given(ring_of_rings_dmg(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_equal_firing_counts_restore_marking(g, seed):
    """Repetitive behaviour, regardless of P/N/E firing kinds."""
    from collections import Counter

    rng = random.Random(seed)
    m = g.initial_marking
    counts = Counter()
    nodes = set(g.nodes)
    for _ in range(120):
        events = g.enabled_events(m)
        assert events
        ev = rng.choice(events)
        m = g.apply_firing(ev.node, m)
        counts[ev.node] += 1
        if set(counts) == nodes and len(set(counts.values())) == 1:
            assert m == g.initial_marking


@given(ring_of_rings_dmg())
@settings(max_examples=40, deadline=None)
def test_cycle_sums_all_positive_for_live_graphs(g):
    assert all(v >= 1 for v in cycle_token_sums(g).values())


@given(
    st.lists(st.sampled_from(["n2", "n1", "n7", "n3", "n5"]), max_size=25),
)
@settings(max_examples=80, deadline=None)
def test_fig1_firing_rule_matches_equation_1(sequence):
    """apply_firing implements equation (1): +1 out, -1 in, net on loops."""
    from repro.core.dmg import fig1_dmg

    g = fig1_dmg()
    m = g.initial_marking
    for node in sequence:
        before = dict(m)
        m = g.apply_firing(node, m)
        pre, post = set(g.preset(node)), set(g.postset(node))
        for arc in g.arcs:
            delta = m[arc.name] - before[arc.name]
            if arc.name in pre and arc.name not in post:
                assert delta == -1
            elif arc.name in post and arc.name not in pre:
                assert delta == 1
            else:
                assert delta == 0
