"""Tests for the (D)MG analyses of Sect. 2.2."""

from fractions import Fraction

import pytest

from repro.core.analysis import (
    cycle_token_sums,
    firing_count_vector,
    is_live,
    max_throughput,
    reachable_markings,
    verify_repetitive_behavior,
    verify_token_preservation,
)
from repro.core.dmg import DualMarkedGraph, FiringEvent, Enabling, fig1_dmg
from repro.core.mg import MarkedGraph, linear_pipeline


class TestCycleSums:
    def test_fig1_every_cycle_holds_one_token(self):
        sums = cycle_token_sums(fig1_dmg())
        assert len(sums) == 3
        assert set(sums.values()) == {1}

    def test_sums_at_alternate_marking(self):
        g = fig1_dmg()
        m = g.fire("n2", g.initial_marking)
        assert set(cycle_token_sums(g, m).values()) == {1}


class TestTokenPreservation:
    def test_holds_along_random_walk(self):
        g = fig1_dmg()
        markings = [g.initial_marking]
        m = g.initial_marking
        import random

        rng = random.Random(3)
        for _ in range(100):
            ev = rng.choice(g.enabled_events(m))
            m = g.apply_firing(ev.node, m)
            markings.append(m)
        assert verify_token_preservation(g, markings)

    def test_detects_corrupted_marking(self):
        g = fig1_dmg()
        bad = g.initial_marking
        bad["n1->n2"] += 1
        with pytest.raises(AssertionError):
            verify_token_preservation(g, [bad])


class TestLiveness:
    def test_fig1_is_live(self):
        assert is_live(fig1_dmg())

    def test_empty_cycle_is_dead(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=0)
        g.add_arc("b", "a", tokens=0)
        assert not is_live(g)

    def test_requires_strong_connectivity(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1)
        with pytest.raises(ValueError):
            is_live(g)


class TestThroughputBound:
    def test_single_ring(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1)
        g.add_arc("b", "a", tokens=0)
        assert max_throughput(g) == Fraction(1, 2)

    def test_latencies_slow_the_bound(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1)
        g.add_arc("b", "a", tokens=0)
        assert max_throughput(g, latency={"b": 3}) == Fraction(1, 4)

    def test_min_over_cycles(self):
        g = fig1_dmg()
        assert max_throughput(g) == Fraction(1, 4)

    def test_pipeline_bound_is_capacity_limited(self):
        g = linear_pipeline(4, tokens_at=[0])
        # backward arcs carry the spare capacity; min ratio = 1/4
        assert max_throughput(g) == Fraction(1, 4)

    def test_acyclic_graph_raises(self):
        g = MarkedGraph()
        g.add_arc("a", "b")
        with pytest.raises(ValueError):
            max_throughput(g)


class TestReachability:
    def test_ring_reachable_markings(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1, name="ab")
        g.add_arc("b", "a", tokens=0, name="ba")
        markings = reachable_markings(g)
        assert len(markings) == 2

    def test_limit_enforced(self):
        g = fig1_dmg()  # DMG: infinite state space via N-firing pumps
        with pytest.raises(RuntimeError):
            reachable_markings(g, limit=50)

    def test_plain_mg_restriction_is_finite(self):
        g = fig1_dmg()
        mg = MarkedGraph()
        for arc in g.arcs:
            mg.add_arc(arc.src, arc.dst, tokens=g.initial_marking[arc.name], name=arc.name)
        markings = reachable_markings(mg, limit=10_000)
        assert 3 < len(markings) < 10_000


class TestRepetitiveBehavior:
    def test_fig1_repetitive(self):
        assert verify_repetitive_behavior(fig1_dmg(), steps=150, trials=10)

    def test_firing_count_vector(self):
        trace = [
            FiringEvent("a", Enabling.POSITIVE),
            FiringEvent("a", Enabling.NEGATIVE),
            FiringEvent("b", Enabling.EARLY),
        ]
        counts = firing_count_vector(trace)
        assert counts == {"a": 2, "b": 1}
