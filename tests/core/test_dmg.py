"""Unit tests for dual marked graphs (Sect. 2.1)."""

import random

import pytest

from repro.core.dmg import DualMarkedGraph, Enabling, FiringEvent, fig1_dmg


@pytest.fixture
def dmg():
    return fig1_dmg()


class TestEarlyDeclaration:
    def test_fig1_has_one_early_node(self, dmg):
        assert dmg.early_nodes == {"n1"}

    def test_mark_early_unknown_node_raises(self, dmg):
        with pytest.raises(KeyError):
            dmg.mark_early("nope")

    def test_is_early(self, dmg):
        assert dmg.is_early("n1")
        assert not dmg.is_early("n2")


class TestEnablingRules:
    def test_positive_enabling_matches_mg(self, dmg):
        m = dmg.initial_marking
        assert dmg.p_enabled("n2", m)
        assert not dmg.p_enabled("n1", m)

    def test_negative_enabling_requires_all_outputs_negative(self, dmg):
        m = dmg.initial_marking
        m["n7->n1"] = -1
        assert dmg.n_enabled("n7", m)

    def test_negative_enabling_false_on_partial(self, dmg):
        m = dmg.initial_marking
        m["n1->n2"] = -1  # n1 has two outputs, only one negative
        assert not dmg.n_enabled("n1", m)

    def test_node_without_outputs_never_n_enabled(self):
        g = DualMarkedGraph()
        g.add_arc("a", "b")
        assert not g.n_enabled("b", {"a->b": -1})

    def test_early_enabling_needs_positive_sum_and_a_zero(self, dmg):
        m = dmg.fire("n2", dmg.initial_marking)
        # preset(n1) = {n7->n1: 0, n8->n1: 1}: sum 1 > 0, some arc zero
        assert dmg.e_enabled("n1", m)

    def test_early_enabling_only_for_declared_nodes(self, dmg):
        m = dmg.fire("n2", dmg.initial_marking)
        assert not dmg.e_enabled("n7", m)

    def test_early_not_enabled_when_all_inputs_marked(self, dmg):
        m = dmg.initial_marking
        m["n7->n1"] = 1  # now both inputs of n1 are positive
        assert not dmg.e_enabled("n1", m)
        assert dmg.p_enabled("n1", m)

    def test_enabling_kinds(self, dmg):
        m = dmg.fire("n2", dmg.initial_marking)
        assert dmg.enabling_kinds("n1", m) == [Enabling.EARLY]


class TestFiring:
    def test_paper_trace_reaches_fig1b(self, dmg):
        """Fire n2 (P), n1 (E), n7 (N) as in the paper's example."""
        m = dmg.initial_marking
        m = dmg.fire_event(FiringEvent("n2", Enabling.POSITIVE), m)
        m = dmg.fire_event(FiringEvent("n1", Enabling.EARLY), m)
        assert m["n7->n1"] == -1  # anti-token left by the early firing
        m = dmg.fire_event(FiringEvent("n7", Enabling.NEGATIVE), m)
        # Anti-tokens propagated backwards to n7's input arcs.
        assert m["n4->n7"] == -1
        assert m["n5->n7"] == -1
        assert m["n7->n1"] == 0

    def test_cycle_sums_preserved_on_paper_trace(self, dmg):
        c1 = ["n1->n2", "n2->n4", "n4->n7", "n7->n1"]
        m = dmg.initial_marking
        total0 = sum(m[a] for a in c1)
        for node in ("n2", "n1", "n7"):
            m = dmg.fire_any(node, m)
        assert sum(m[a] for a in c1) == total0 == 1

    def test_fig1b_c1_has_two_tokens_one_antitoken(self, dmg):
        m = dmg.initial_marking
        for node in ("n2", "n1", "n7"):
            m = dmg.fire_any(node, m)
        c1 = {"n1->n2": m["n1->n2"], "n2->n4": m["n2->n4"],
              "n4->n7": m["n4->n7"], "n7->n1": m["n7->n1"]}
        assert sorted(c1.values()) == [-1, 0, 1, 1]

    def test_fire_event_checks_specific_rule(self, dmg):
        with pytest.raises(ValueError):
            dmg.fire_event(FiringEvent("n2", Enabling.NEGATIVE), dmg.initial_marking)

    def test_fire_any_disabled_raises(self, dmg):
        with pytest.raises(ValueError):
            dmg.fire_any("n4", dmg.initial_marking)

    def test_enabled_events_lists_pairs(self, dmg):
        events = dmg.enabled_events(dmg.initial_marking)
        assert FiringEvent("n2", Enabling.POSITIVE) in events


class TestRandomExploration:
    def test_random_sequences_never_deadlock(self, dmg):
        trace, m = dmg.random_firing_sequence(300, rng=random.Random(0))
        assert len(trace) == 300

    def test_random_sequences_preserve_cycle_sums(self, dmg):
        cycles = dmg.simple_cycles()
        sums0 = [dmg.marking_of(dmg.initial_marking, c) for c in cycles]
        for seed in range(5):
            _, m = dmg.random_firing_sequence(200, rng=random.Random(seed))
            assert [dmg.marking_of(m, c) for c in cycles] == sums0

    def test_firing_event_str(self):
        assert str(FiringEvent("n1", Enabling.EARLY)) == "n1(E)"
