"""Unit tests for marked graphs (Sect. 2 of the paper)."""

import pytest

from repro.core.mg import Arc, MarkedGraph, linear_pipeline


@pytest.fixture
def ring2():
    g = MarkedGraph()
    g.add_arc("a", "b", tokens=1, name="ab")
    g.add_arc("b", "a", tokens=0, name="ba")
    return g


class TestConstruction:
    def test_nodes_in_insertion_order(self, ring2):
        assert ring2.nodes == ("a", "b")

    def test_add_node_idempotent(self):
        g = MarkedGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.nodes == ("x",)

    def test_arc_endpoints_created(self):
        g = MarkedGraph()
        g.add_arc("p", "q")
        assert set(g.nodes) == {"p", "q"}

    def test_duplicate_arc_name_rejected(self):
        g = MarkedGraph()
        g.add_arc("a", "b", name="x")
        with pytest.raises(ValueError):
            g.add_arc("b", "a", name="x")

    def test_auto_names_unique_for_parallel_arcs(self):
        g = MarkedGraph()
        a1 = g.add_arc("a", "b")
        a2 = g.add_arc("a", "b")
        assert a1.name != a2.name

    def test_initial_marking_is_a_copy(self, ring2):
        m = ring2.initial_marking
        m["ab"] = 99
        assert ring2.initial_marking["ab"] == 1

    def test_arc_lookup(self, ring2):
        assert ring2.arc("ab") == Arc("ab", "a", "b")

    def test_preset_postset(self, ring2):
        assert ring2.preset("b") == ("ab",)
        assert ring2.postset("b") == ("ba",)

    def test_repr_mentions_counts(self, ring2):
        assert "nodes=2" in repr(ring2)


class TestEnablingAndFiring:
    def test_enabled_when_all_inputs_marked(self, ring2):
        assert ring2.enabled("b", ring2.initial_marking)
        assert not ring2.enabled("a", ring2.initial_marking)

    def test_fire_moves_token(self, ring2):
        m = ring2.fire("b", ring2.initial_marking)
        assert m == {"ab": 0, "ba": 1}

    def test_fire_disabled_raises(self, ring2):
        with pytest.raises(ValueError):
            ring2.fire("a", ring2.initial_marking)

    def test_fire_does_not_mutate_argument(self, ring2):
        m0 = ring2.initial_marking
        ring2.fire("b", m0)
        assert m0 == ring2.initial_marking

    def test_self_loop_keeps_token(self):
        g = MarkedGraph()
        g.add_arc("n", "n", tokens=1, name="loop")
        m = g.fire("n", g.initial_marking)
        assert m["loop"] == 1

    def test_fire_sequence(self, ring2):
        m = ring2.fire_sequence(["b", "a"])
        assert m == ring2.initial_marking

    def test_enabled_nodes(self, ring2):
        assert ring2.enabled_nodes(ring2.initial_marking) == ["b"]

    def test_marking_of_sums_subset(self, ring2):
        assert ring2.marking_of(ring2.initial_marking, ["ab", "ba"]) == 1


class TestStructure:
    def test_strongly_connected(self, ring2):
        assert ring2.is_strongly_connected()

    def test_not_strongly_connected(self):
        g = MarkedGraph()
        g.add_arc("a", "b")
        assert not g.is_strongly_connected()

    def test_simple_cycles_of_ring(self, ring2):
        cycles = ring2.simple_cycles()
        assert len(cycles) == 1
        assert sorted(cycles[0]) == ["ab", "ba"]

    def test_parallel_arcs_yield_multiple_cycles(self):
        g = MarkedGraph()
        g.add_arc("a", "b", name="x1")
        g.add_arc("a", "b", name="x2")
        g.add_arc("b", "a", name="back")
        cycles = g.simple_cycles()
        assert len(cycles) == 2

    def test_to_networkx_preserves_arcs(self, ring2):
        nxg = ring2.to_networkx()
        assert nxg.number_of_edges() == 2


class TestLinearPipeline:
    def test_structure(self):
        g = linear_pipeline(4)
        assert len(g.nodes) == 4
        assert len(g.arcs) == 8

    def test_default_single_token(self):
        g = linear_pipeline(3)
        fwd = sum(g.initial_marking[f"fwd{i}"] for i in range(3))
        assert fwd == 1

    def test_capacity_two_invariant(self):
        g = linear_pipeline(3, tokens_at=[0, 2])
        for i in range(3):
            assert g.initial_marking[f"fwd{i}"] + g.initial_marking[f"bwd{i}"] == 2

    def test_zero_stages_rejected(self):
        with pytest.raises(ValueError):
            linear_pipeline(0)

    def test_pipeline_is_live_ring(self):
        g = linear_pipeline(5, tokens_at=[0, 2, 4])
        m = g.initial_marking
        # every node can eventually fire: run a long greedy schedule
        for _ in range(100):
            enabled = g.enabled_nodes(m)
            assert enabled, "pipeline deadlocked"
            m = g.fire(enabled[0], m)
