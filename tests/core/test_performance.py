"""Tests for the timed DMG simulator (performance analysis layer)."""

import random

import pytest

from repro.core.dmg import DualMarkedGraph
from repro.core.performance import (
    TimedDMGSimulator,
    distribution_latency,
    fixed_latency,
    select_guard,
)


def two_branch_mux_dmg():
    """A fork/mux diamond: src -> (a | b) -> mux -> back to src.

    The mux is early-enabling: each firing requires only the selected
    branch.
    """
    g = DualMarkedGraph()
    g.add_arc("src", "a", name="sa")
    g.add_arc("src", "b", name="sb")
    g.add_arc("a", "mux", name="am")
    g.add_arc("b", "mux", name="bm")
    g.add_arc("mux", "src", tokens=2, name="ms")
    g.mark_early("mux")
    return g


class TestSamplers:
    def test_fixed_latency(self):
        assert fixed_latency(3)(random.Random(0)) == 3

    def test_fixed_latency_rejects_zero(self):
        with pytest.raises(ValueError):
            fixed_latency(0)

    def test_distribution_latency_support(self):
        sampler = distribution_latency({2: 0.8, 10: 0.2})
        rng = random.Random(0)
        values = {sampler(rng) for _ in range(200)}
        assert values == {2, 10}

    def test_distribution_latency_mean(self):
        sampler = distribution_latency({2: 0.8, 10: 0.2})
        rng = random.Random(1)
        mean = sum(sampler(rng) for _ in range(5000)) / 5000
        assert 3.2 < mean < 4.0

    def test_distribution_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            distribution_latency({2: 0.0})

    def test_distribution_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            distribution_latency({0: 1.0})

    def test_select_guard_distribution(self):
        guard = select_guard({"x": 0.9, "y": 0.1})
        rng = random.Random(2)
        picks = [next(iter(guard(rng))) for _ in range(1000)]
        assert picks.count("x") > 800


class TestSimulator:
    def test_ring_throughput_matches_bound(self):
        g = DualMarkedGraph()
        g.add_arc("a", "b", tokens=1)
        g.add_arc("b", "a", tokens=1)
        sim = TimedDMGSimulator(g)
        est = sim.run(1000)
        assert est.throughput("a") == pytest.approx(1.0, abs=0.01)

    def test_latency_reduces_throughput(self):
        g = DualMarkedGraph()
        g.add_arc("a", "b", tokens=1)
        g.add_arc("b", "a", tokens=0)
        sim = TimedDMGSimulator(g, latencies={"b": fixed_latency(3)})
        est = sim.run(2000)
        assert est.throughput("a") == pytest.approx(0.25, abs=0.02)

    def test_guard_on_non_early_node_rejected(self):
        g = DualMarkedGraph()
        g.add_arc("a", "b", tokens=1)
        g.add_arc("b", "a")
        with pytest.raises(ValueError):
            TimedDMGSimulator(g, guards={"a": select_guard({"b->a": 1.0})})

    def test_guard_requiring_foreign_arc_rejected(self):
        g = two_branch_mux_dmg()
        sim = TimedDMGSimulator(g, guards={"mux": select_guard({"sa": 1.0})})
        with pytest.raises(ValueError):
            sim.run(5)

    def test_early_firings_generate_antitokens_then_counterflow(self):
        # A two-stage slow branch: b2 is starved while b1 computes, so
        # anti-tokens left on b2->mux by early firings flow backwards
        # through b2 (negative firings = token counterflow).
        g = DualMarkedGraph()
        g.add_arc("src", "a", name="sa")
        g.add_arc("src", "b1", name="sb")
        g.add_arc("a", "mux", name="am")
        g.add_arc("b1", "b2", name="bb")
        g.add_arc("b2", "mux", name="bm")
        g.add_arc("mux", "src", tokens=2, name="ms")
        g.mark_early("mux")
        sim = TimedDMGSimulator(
            g,
            guards={"mux": select_guard({"am": 0.9, "bm": 0.1})},
            latencies={"b1": fixed_latency(6)},
            seed=5,
        )
        est = sim.run(2000)
        assert sum(est.early_firings.values()) > 0
        assert est.negative_firings["b2"] > 0

    def test_early_evaluation_beats_lazy_with_slow_branch(self):
        guards = {"mux": select_guard({"am": 0.9, "bm": 0.1})}
        lat = {"b": fixed_latency(8)}
        early = TimedDMGSimulator(two_branch_mux_dmg(), latencies=lat, guards=guards)
        th_early = early.run(4000).throughput("mux")
        lazy = TimedDMGSimulator(two_branch_mux_dmg(), latencies=lat)
        th_lazy = lazy.run(4000).throughput("mux")
        assert th_early > th_lazy * 1.5

    def test_reset_clears_statistics(self):
        g = two_branch_mux_dmg()
        sim = TimedDMGSimulator(g)
        sim.run(50)
        sim.reset()
        assert sim.cycle == 0
        assert all(v == 0 for v in sim.firings.values())
        assert sim.marking == g.initial_marking

    def test_firing_classification_partition(self):
        g = two_branch_mux_dmg()
        sim = TimedDMGSimulator(
            g, guards={"mux": select_guard({"am": 0.7, "bm": 0.3})}, seed=9
        )
        est = sim.run(500)
        for node in g.nodes:
            total = (
                est.positive_firings[node]
                + est.negative_firings[node]
                + est.early_firings[node]
            )
            assert total == est.firings[node]

    def test_throughput_zero_before_running(self):
        sim = TimedDMGSimulator(two_branch_mux_dmg())
        assert sim.run(0).throughput() == 0.0
