"""Tests for profiling hooks: phase timers, progress, simulator probes."""

import io

from repro.obs import MetricsRegistry, PhaseProfiler, ProgressReporter


class TestPhaseProfiler:
    def test_accumulates_per_phase(self):
        prof = PhaseProfiler()
        prof.add("high", 0.25)
        prof.add("high", 0.25)
        prof.add("low", 0.5)
        snap = prof.snapshot()
        assert snap["high"] == {"calls": 2, "seconds": 0.5}
        assert snap["low"]["calls"] == 1

    def test_context_manager(self):
        prof = PhaseProfiler()
        with prof.phase("work"):
            pass
        assert prof.calls["work"] == 1 and prof.seconds["work"] >= 0.0

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        prof = PhaseProfiler(registry)
        prof.add("high", 1.0)
        prof.snapshot()
        assert registry.gauge("phase_seconds", phase="high").last == 1.0

    def test_render_orders_by_cost(self):
        prof = PhaseProfiler()
        prof.add("cheap", 0.1)
        prof.add("dear", 0.9)
        lines = prof.render().splitlines()
        assert lines[0].startswith("dear")


class TestBatchsimProfile:
    def test_phase_wall_time_recorded(self):
        from repro.faults.targets import dual_ehb
        from repro.rtl.batchsim import BatchSimulator

        sim = BatchSimulator(dual_ehb().netlist, 4)
        sim.profile = PhaseProfiler()
        for _ in range(10):
            sim.cycle({})
        snap = sim.profile.snapshot()
        assert snap["high"]["calls"] == 10 and snap["low"]["calls"] == 10

    def test_no_profile_by_default(self):
        from repro.faults.targets import dual_ehb
        from repro.rtl.batchsim import BatchSimulator

        sim = BatchSimulator(dual_ehb().netlist, 4)
        assert sim.profile is None
        sim.cycle({})


class TestProgressReporter:
    def test_throttles_to_every_nth(self):
        stream = io.StringIO()
        report = ProgressReporter("frontier", every=10, stream=stream)
        for i in range(25):
            report(i)
        lines = stream.getvalue().splitlines()
        assert lines == ["frontier: 0", "frontier: 9", "frontier: 19"]

    def test_total_rendering(self):
        stream = io.StringIO()
        ProgressReporter("sweep", every=1, stream=stream)(3, 12)
        assert stream.getvalue() == "sweep: 3/12\n"


class TestKripkeProgress:
    def test_build_kripke_reports_progress(self):
        from repro.rtl.netlist import Netlist
        from repro.verif.kripke import build_kripke

        nl = Netlist("counter2")
        en = nl.add_input("en")
        q0 = nl.add_flop("d0", q="q0", init=0)
        q1 = nl.add_flop("d1", q="q1", init=0)
        nl.XOR(q0, en, out="d0")
        carry = nl.AND(q0, en)
        nl.XOR(q1, carry, out="d1")
        nl.add_output("q1")

        calls = []
        kripke = build_kripke(
            nl, progress=lambda n, f: calls.append((n, f)), progress_every=1,
        )
        assert calls, "progress hook never called"
        assert calls[-1][1] == 0  # final call: frontier drained
        assert calls[-1][0] == 4  # the 2-bit counter's sequential states
        assert len(kripke) == 8


class TestCampaignProgress:
    def test_run_campaign_counts_up_to_total(self):
        from repro.faults.campaign import CampaignConfig, run_campaign

        seen = []
        run_campaign(
            "dual_ehb",
            CampaignConfig(cycles=60, untestable_analysis=False),
            lanes=16,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen and seen[-1][0] == seen[-1][1]
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


class TestNetworkProbes:
    def test_probe_runs_once_per_cycle(self):
        from repro.elastic.behavioral import ElasticNetwork, Sink, Source

        net = ElasticNetwork("probed")
        ch = net.add_channel("c")
        net.add(Source("src", ch))
        net.add(Sink("snk", ch))
        cycles = []
        net.probes.append(lambda n: cycles.append(n.cycle))
        net.run(5)
        assert cycles == [0, 1, 2, 3, 4]
