"""Tests for the TraceRecorder across the behavioural simulator."""

import io
import json

from repro.elastic.behavioral import (
    ElasticBuffer,
    ElasticNetwork,
    Sink,
    Source,
)
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    TraceRecorder,
    collect_network_metrics,
)


def pipeline(stages=2, **sink_kwargs):
    net = ElasticNetwork("pipe")
    chans = [net.add_channel(f"c{i}") for i in range(stages + 1)]
    net.add(Source("src", chans[0]))
    for i in range(stages):
        net.add(ElasticBuffer(f"eb{i}", chans[i], chans[i + 1]))
    net.add(Sink("snk", chans[-1], **sink_kwargs))
    return net


class TestRingBuffer:
    def test_capacity_bounds_events(self):
        rec = TraceRecorder(capacity=8)
        for t in range(100):
            rec.emit(t, "edge", "w", 1)
        assert len(rec.events) == 8
        assert rec.events[0].cycle == 92  # oldest evicted first
        assert rec.emitted == 100

    def test_counts_survive_eviction(self):
        rec = TraceRecorder(capacity=4)
        for t in range(10):
            rec.emit(t, "transfer+", "ch")
        assert rec.counts() == {"transfer+": 10}


class TestNetworkAttachment:
    def test_transfer_events_match_channel_stats(self):
        net = pipeline()
        rec = TraceRecorder().attach_network(net)
        net.run(50)
        counts = rec.counts()
        stats_total = sum(
            net.channels[c].stats.positive for c in net.channels
        )
        assert counts["transfer+"] == stats_total > 0

    def test_metrics_reconcile_with_trace(self):
        net = pipeline()
        registry = MetricsRegistry()
        rec = TraceRecorder(metrics=registry).attach_network(net)
        net.run(50)
        collect_network_metrics(net, registry)
        counted = sum(
            c.value for c in registry.series("channel_transfers_total")
        )
        traced = (rec.counts().get("transfer+", 0)
                  + rec.counts().get("transfer-", 0))
        assert traced == counted

    def test_kill_events_recorded(self):
        import random

        net = ElasticNetwork("killy")
        a, b = net.add_channel("a"), net.add_channel("b")
        net.add(Source("src", a))
        net.add(ElasticBuffer("eb", a, b))
        net.add(Sink("snk", b, p_kill=0.5, rng=random.Random(7)))
        rec = TraceRecorder().attach_network(net)
        net.run(100)
        counts = rec.counts()
        assert counts.get("kill", 0) > 0 or counts.get("transfer-", 0) > 0

    def test_idle_skipped_unless_requested(self):
        import random

        def sparse():
            net = ElasticNetwork("sparse")
            a, b = net.add_channel("a"), net.add_channel("b")
            net.add(Source("src", a, p_valid=0.1, rng=random.Random(3)))
            net.add(ElasticBuffer("eb", a, b))
            net.add(Sink("snk", b))
            return net

        net = sparse()
        quiet = TraceRecorder().attach_network(net)
        net.run(50)
        assert "idle" not in quiet.counts()

        net = sparse()
        loud = TraceRecorder().attach_network(net, include_idle=True)
        net.run(50)
        assert loud.counts()["idle"] > 0

    def test_channel_subset(self):
        net = pipeline()
        rec = TraceRecorder().attach_network(net, channels=["c0"])
        net.run(20)
        subjects = {e.subject.split(".")[0] for e in rec.events}
        assert subjects == {"c0"}


class TestDisabledRecorder:
    def test_attaches_nothing(self):
        net = pipeline()
        rec = TraceRecorder(enabled=False)
        assert rec.attach_network(net) is rec
        assert all(not net.channels[c].observers for c in net.channels)
        assert not net.probes

    def test_output_identical_to_untraced_run(self):
        untraced = pipeline()
        untraced.run(80)

        traced = pipeline()
        rec = TraceRecorder(enabled=False).attach_network(traced)
        traced.run(80)

        assert rec.emitted == 0
        assert traced.report() == untraced.report()

    def test_emit_is_noop(self):
        rec = TraceRecorder(enabled=False)
        rec.emit(0, "edge", "w", 1)
        assert rec.emitted == 0 and not rec.events


class TestEarlyEvalEvents:
    def test_fig9_join_fires(self):
        from repro.casestudy.fig9 import Config, build_fig9_spec
        from repro.synthesis.elaborate import to_behavioral

        net = to_behavioral(build_fig9_spec(Config.ACTIVE, seed=0), seed=0)
        registry = MetricsRegistry()
        rec = TraceRecorder(metrics=registry).attach_network(net)
        net.run(200)
        counts = rec.counts()
        assert counts.get("ee-fire", 0) > 0
        fires = registry.series("ee_firings_total")
        assert fires and sum(c.value for c in fires) == counts["ee-fire"]
        early = sum(c.value for c in registry.series("ee_early_firings_total"))
        assert 0 < early <= counts["ee-fire"]
        ee = next(e for e in rec.events if e.kind == "ee-fire")
        assert "early" in ee.extra and "missing" in ee.extra


class TestJsonlSink:
    def test_round_trip(self):
        buffer = io.StringIO()
        net = pipeline()
        rec = TraceRecorder(sinks=[JsonlSink(buffer)]).attach_network(net)
        net.run(10)
        rec.close()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == rec.emitted > 0
        for line in lines:
            obj = json.loads(line)
            assert {"t", "kind", "subject"} <= set(obj)

    def test_jsonl_transfer_count_matches_metrics(self):
        buffer = io.StringIO()
        net = pipeline()
        registry = MetricsRegistry()
        rec = TraceRecorder(
            sinks=[JsonlSink(buffer)], metrics=registry
        ).attach_network(net)
        net.run(40)
        rec.close()
        collect_network_metrics(net, registry)
        events = [json.loads(l) for l in buffer.getvalue().splitlines()]
        jsonl_transfers = sum(1 for e in events if e["kind"] == "transfer+")
        counted = sum(
            c.value for c in registry.series("channel_transfers_total")
        )
        assert jsonl_transfers == counted
