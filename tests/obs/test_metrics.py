"""Tests for the labeled metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, SummaryStats, summarize


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("transfers", channel="a")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_different_labels_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("x", ch="a").inc()
        assert reg.counter("x", ch="b").value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_running_moments(self):
        g = MetricsRegistry().gauge("occ")
        for v in (1, 5, 3):
            g.set(v)
        assert g.last == 3
        assert g.minimum == 1 and g.maximum == 5
        assert g.mean == pytest.approx(3.0)

    def test_snapshot_shape(self):
        g = MetricsRegistry().gauge("occ")
        g.set(2.0)
        snap = g.snapshot()
        assert set(snap) == {"last", "mean", "min", "max", "n"}


class TestHistogram:
    def test_stats_match_summarize(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(v)
        s = h.stats()
        assert s.p50 == 50 and s.p95 == 95 and s.maximum == 100

    def test_snapshot_empty(self):
        assert MetricsRegistry().histogram("lat").snapshot()["count"] == 0


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_keyed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", ch="z").inc(2)
        snap = reg.snapshot()
        assert list(snap) == ["a{ch=z}", "b"]
        assert snap["a{ch=z}"] == 2

    def test_series_filters_by_name(self):
        reg = MetricsRegistry()
        reg.counter("x", ch="a")
        reg.counter("x", ch="b")
        reg.counter("y")
        assert [m.key for m in reg.series("x")] == ["x{ch=a}", "x{ch=b}"]

    def test_render_mentions_every_series(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(7)
        reg.gauge("occ").set(1.5)
        text = reg.render()
        assert "hits" in text and "occ" in text and "7" in text


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s == SummaryStats(0, 0.0, 0.0, 0.0, 0)

    def test_str_format(self):
        assert str(summarize([1, 2, 3])).startswith("n=3 mean=2.00")


class TestByteStability:
    """Golden bytes: snapshots must not depend on int-vs-float arrival."""

    def test_int_and_float_samples_snapshot_identically(self):
        import json

        def registry(values):
            reg = MetricsRegistry()
            g = reg.gauge("occ", eb="0")
            h = reg.histogram("lat", ch="a")
            for v in values:
                g.set(v)
                h.observe(v)
            return reg

        ints = registry([1, 2, 4])
        floats = registry([1.0, 2.0, 4.0])
        a = json.dumps(ints.snapshot(), sort_keys=True)
        b = json.dumps(floats.snapshot(), sort_keys=True)
        assert a == b
        assert "1.0" not in a  # integral floats collapse to ints

    def test_gauge_snapshot_golden(self):
        g = MetricsRegistry().gauge("occ")
        for v in (1, 2.5, 4.0):
            g.set(v)
        assert g.snapshot() == {
            "last": 4, "mean": 2.5, "min": 1, "max": 4, "n": 3,
        }

    def test_histogram_snapshot_golden(self):
        h = MetricsRegistry().histogram("lat")
        for v in (3.0, 1, 2):
            h.observe(v)
        assert h.snapshot() == {
            "count": 3, "mean": 2, "p50": 2, "p95": 3, "max": 3,
        }

    def test_non_integral_floats_round_to_six_places(self):
        g = MetricsRegistry().gauge("th")
        g.set(1 / 3)
        assert g.snapshot()["last"] == 0.333333


class TestPrometheusRender:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("channel_transfers_total", channel="a", dir="+").inc(7)
        reg.gauge("channel_throughput", channel="a").set(0.5)
        h = reg.histogram("token_latency", ch="a")
        for v in (1, 2, 3, 4):
            h.observe(v)
        return reg

    def test_exposition_format(self):
        text = self.build().render_prometheus()
        assert '# TYPE channel_transfers_total counter' in text
        assert 'channel_transfers_total{channel="a",dir="+"} 7' in text
        assert '# TYPE channel_throughput gauge' in text
        assert '# TYPE token_latency summary' in text
        assert 'token_latency{ch="a",quantile="0.5"} 2' in text
        assert 'token_latency_sum{ch="a"} 10' in text
        assert 'token_latency_count{ch="a"} 4' in text
        assert text.endswith("\n")

    def test_render_is_deterministic(self):
        assert (self.build().render_prometheus()
                == self.build().render_prometheus())

    def test_names_and_values_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("9bad-name", note='say "hi"\n').inc()
        text = reg.render_prometheus()
        assert "# TYPE _9bad_name counter" in text
        assert 'note="say \\"hi\\"\\n"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
