"""Tests for the labeled metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, SummaryStats, summarize


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("transfers", channel="a")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_different_labels_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("x", ch="a").inc()
        assert reg.counter("x", ch="b").value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_running_moments(self):
        g = MetricsRegistry().gauge("occ")
        for v in (1, 5, 3):
            g.set(v)
        assert g.last == 3
        assert g.minimum == 1 and g.maximum == 5
        assert g.mean == pytest.approx(3.0)

    def test_snapshot_shape(self):
        g = MetricsRegistry().gauge("occ")
        g.set(2.0)
        snap = g.snapshot()
        assert set(snap) == {"last", "mean", "min", "max", "n"}


class TestHistogram:
    def test_stats_match_summarize(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(v)
        s = h.stats()
        assert s.p50 == 50 and s.p95 == 95 and s.maximum == 100

    def test_snapshot_empty(self):
        assert MetricsRegistry().histogram("lat").snapshot()["count"] == 0


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_keyed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", ch="z").inc(2)
        snap = reg.snapshot()
        assert list(snap) == ["a{ch=z}", "b"]
        assert snap["a{ch=z}"] == 2

    def test_series_filters_by_name(self):
        reg = MetricsRegistry()
        reg.counter("x", ch="a")
        reg.counter("x", ch="b")
        reg.counter("y")
        assert [m.key for m in reg.series("x")] == ["x{ch=a}", "x{ch=b}"]

    def test_render_mentions_every_series(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(7)
        reg.gauge("occ").set(1.5)
        text = reg.render()
        assert "hits" in text and "occ" in text and "7" in text


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s == SummaryStats(0, 0.0, 0.0, 0.0, 0)

    def test_str_format(self):
        assert str(summarize([1, 2, 3])).startswith("n=3 mean=2.00")
