"""Tests for the performance observatory (``repro.obs.analyze``).

The tentpole guarantees under test:

* the JSON report is byte-identical across repeated seeded runs and
  across the three RTL backends (scalar, batch, compiled);
* per-channel cycle accounting balances and the token/anti-token
  conservation check closes (zero residual on every buffer);
* backpressure attribution walks an asserted-Stop chain back to its
  root cause;
* ``--compare-model`` reproduces the paper's numbers where the DMG
  abstraction is faithful and *flags* (rather than hides) the known
  protocol-level divergence of the variable-latency target.
"""

import json

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.targets import TARGETS
from repro.obs.analyze import (
    NetworkProfiler,
    RtlChannelProfiler,
    classify_strict,
    profile_designs,
    run_profile,
)
from repro.rtl.logic import X
from repro.rtl.simulator import TwoPhaseSimulator

CYCLES = 400
SEED = 2007


def report_json(design, backend="auto", cache=None, **kw):
    report = run_profile(design, cycles=CYCLES, seed=SEED,
                         backend=backend, cache=cache, **kw)
    return report.to_json()


class TestClassifyStrict:
    def test_category_order_follows_the_protocol_table(self):
        assert classify_strict(1, 0, 0, 0) == "transfer+"
        assert classify_strict(0, 0, 1, 0) == "transfer-"
        assert classify_strict(1, 1, 1, 1) == "kill"
        assert classify_strict(1, 1, 0, 0) == "retry+"
        assert classify_strict(0, 0, 1, 1) == "retry-"
        assert classify_strict(0, 0, 0, 0) == "idle"

    def test_kill_beats_transfer(self):
        # Simultaneous tokens annihilate regardless of the stop wires.
        assert classify_strict(1, 0, 1, 0) == "kill"

    def test_x_falls_through_to_idle(self):
        assert classify_strict(X, 0, 0, 0) == "idle"
        assert classify_strict(1, X, 0, 0) == "idle"


class TestDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        assert report_json("early_join") == report_json("early_join")

    def test_network_design_repeats_byte_identical(self):
        assert report_json("pipeline") == report_json("pipeline")

    def test_backends_agree_byte_for_byte(self, tmp_path):
        scalar = report_json("early_join", backend="scalar")
        batch = report_json("early_join", backend="batch")
        compiled = report_json("early_join", backend="compiled",
                               cache=str(tmp_path / "cache"))
        # Only the backend tag may differ between the three reports.
        assert scalar == batch.replace('"batch"', '"scalar"')
        assert scalar == compiled.replace('"compiled"', '"scalar"')

    def test_report_ends_with_newline_and_sorted_keys(self):
        text = report_json("dual_ehb")
        assert text.endswith("\n")
        d = json.loads(text)
        assert list(d) == sorted(d)


class TestAccountingAndConservation:
    def test_channel_categories_sum_to_cycles(self):
        report = run_profile("dual_ehb", cycles=CYCLES, seed=SEED)
        for name, counts in report.channels.items():
            total = sum(
                counts[k] for k in ("transfer+", "transfer-", "kill",
                                    "retry+", "retry-", "idle")
            )
            assert total == CYCLES, name

    def test_conservation_closes_on_rtl_targets(self):
        for design in ("dual_ehb", "early_join", "vl"):
            report = run_profile(design, cycles=200, seed=SEED)
            cons = report.conservation
            assert cons["complete"] is True, design
            for name, buf in cons["buffers"].items():
                assert buf["residual"] == 0, (design, name)

    def test_conservation_closes_on_network_designs(self):
        report = run_profile("pipeline", cycles=CYCLES, seed=SEED)
        assert report.conservation["complete"] is True
        for buf in report.conservation["buffers"].values():
            assert buf["residual"] == 0


class TestAttribution:
    def test_stop_chain_walks_to_the_stalled_sink(self):
        # A sink holding stall=1 blocks R directly and L behind it:
        # the attribution must name R.sp as L.sp's root cause.
        target = TARGETS["dual_ehb"]()
        sim = TwoPhaseSimulator(target.netlist)
        profiler = RtlChannelProfiler(target).attach_scalar(sim)
        stuck = {"src.choice": 1, "src.accept": 0,
                 "snk.stall": 1, "snk.kill": 0}
        for _ in range(40):
            sim.cycle(stuck)
        attr = profiler.attribution_section()
        assert attr["lost_cycles"] > 0
        assert attr["sinks"]["L.sp"]["roots"] == {"R.sp": 38}

    def test_healthy_eager_run_loses_no_cycles(self):
        report = run_profile("dual_ehb", cycles=CYCLES, seed=SEED)
        assert report.attribution["lost_cycles"] == 0
        assert report.attribution["stalls"] == []

    def test_disabled_profilers_attach_nothing(self):
        target = TARGETS["dual_ehb"]()
        sim = TwoPhaseSimulator(target.netlist)
        RtlChannelProfiler(target, enabled=False).attach_scalar(sim)
        assert not sim.observers

        from repro.obs.analyze import _pipeline_network

        net = _pipeline_network(SEED)
        probes = len(net.probes)
        observers = sum(len(c.observers) for c in net.channels.values())
        NetworkProfiler(enabled=False).attach(net)
        assert len(net.probes) == probes
        assert sum(len(c.observers) for c in net.channels.values()) \
            == observers


class TestModelComparison:
    def test_early_join_matches_the_model_exactly(self):
        report = run_profile("early_join", cycles=CYCLES, seed=SEED,
                             compare_model=True)
        model = report.model
        assert model["within_tolerance"] is True
        assert model["divergence"] == 0
        # All-combinational mirror: the clock is the limit and the
        # critical cycle is one input's forward/return pair.
        assert model["critical_cycle"]["limit"] == "clock"
        assert model["critical_cycle"]["arcs"] == ["I0", "~I0"]
        assert model["lazy_bound"] == "1/1"

    def test_fig9_active_reproduces_the_paper(self):
        report = run_profile("active", cycles=2000, seed=SEED,
                             compare_model=True)
        model = report.model
        assert model["within_tolerance"] is True
        assert model["beats_lazy_bound"] is True
        cc = model["critical_cycle"]
        assert cc["arcs"] == ["M1->M2", "~M1->M2"]
        assert cc["ratio"] == "1/4"
        assert cc["limit"] == "structural"
        assert model["lazy_bound"] == "1/4"

    def test_vl_divergence_is_flagged_not_hidden(self):
        # Known model limitation: the timed DMG's snapshot initiation
        # order costs one cycle per lap on the capacity-1 return arc
        # (predicts 1/3 where the RTL measures 1/2).  The report's job
        # is to surface that divergence.
        report = run_profile("vl", cycles=200, seed=SEED,
                             compare_model=True)
        assert report.model["within_tolerance"] is False

    def test_ee_benefit_accounting_on_the_processor(self):
        report = run_profile("processor", cycles=300, seed=SEED)
        ee = report.ee
        join = ee["joins"]["writeback"]
        assert join["fires"] > 0
        assert 0 < join["early"] <= join["fires"]
        assert join["anti_tokens_generated"] >= join["early"]
        replay = ee["late_replay"]
        assert replay["design"] == "in_order_writeback"
        assert replay["cycles_saved"] > 0


class TestInputValidation:
    def test_unknown_design_lists_the_catalogue(self):
        with pytest.raises(ValueError, match="early_join"):
            run_profile("nonesuch")

    def test_network_designs_reject_backend_override(self):
        with pytest.raises(ValueError, match="behavioural network"):
            run_profile("processor", backend="batch")

    def test_processor_has_no_model(self):
        with pytest.raises(ValueError, match="no DMG abstraction"):
            run_profile("processor", cycles=50, compare_model=True)

    def test_catalogue_covers_both_engines(self):
        designs = profile_designs()
        assert "early_join" in designs and "processor" in designs
        assert len(designs) == len(set(designs))


class TestCampaignProfileKey:
    def test_profile_key_is_opt_in(self, tmp_path):
        cfg = CampaignConfig(cycles=80, seed=SEED)
        bare = run_campaign("dual_ehb", cfg)
        assert "profile" not in bare.to_dict()
        profiled = run_campaign("dual_ehb", cfg, profile=True)
        d = profiled.to_dict()
        assert d["profile"]["design"] == "dual_ehb"
        assert d["profile"]["backend"] == "scalar"
        assert d["profile"]["cycles"] == 80
