"""VCD export: writer unit tests + a golden waveform snapshot.

The golden file was produced by ``repro trace --config pipeline
--cycles 32 --seed 0 --vcd tests/obs/golden/fig5_pipeline.vcd`` and is
deterministic (the Fig. 5 chain's environment draws from seeded RNGs).
"""

import io
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.vcd import VcdSink, VcdWriter, vcd_identifier
from repro.obs.events import TraceEvent

GOLDEN = Path(__file__).parent / "golden" / "fig5_pipeline.vcd"


class TestIdentifiers:
    def test_first_codes(self):
        assert vcd_identifier(0) == "!"
        assert vcd_identifier(1) == '"'
        assert vcd_identifier(93) == "~"

    def test_two_char_rollover(self):
        assert vcd_identifier(94) == "!!"
        assert len(vcd_identifier(94 * 95)) == 3

    def test_unique_over_a_range(self):
        codes = {vcd_identifier(i) for i in range(500)}
        assert len(codes) == 500


class TestWriter:
    def test_header_then_changes(self):
        out = io.StringIO()
        w = VcdWriter(out)
        w.add_wire("ch.vp", scope="ch")
        w.change(0, "ch.vp", 1)
        w.change(3, "ch.vp", 0)
        w.close(end_time=5)
        text = out.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$scope module ch $end" in text
        assert "$var wire 1 ! vp $end" in text
        assert "$enddefinitions $end" in text
        assert text.index("#0") < text.index("1!") < text.index("#3")
        assert text.rstrip().endswith("#5")

    def test_declaration_after_header_rejected(self):
        w = VcdWriter(io.StringIO())
        w.add_wire("a")
        w.write_header()
        with pytest.raises(RuntimeError):
            w.add_wire("b")

    def test_time_monotonicity_enforced(self):
        w = VcdWriter(io.StringIO())
        w.add_wire("a")
        w.change(5, "a", 1)
        with pytest.raises(ValueError):
            w.change(4, "a", 0)

    def test_sanitized_names(self):
        out = io.StringIO()
        w = VcdWriter(out)
        w.add_wire("C->W.vp", scope="C->W")
        w.write_header()
        text = out.getvalue()
        assert "$scope module C__W $end" in text
        assert "->" not in text.split("$enddefinitions")[0].replace(
            "$comment repro.obs trace $end", ""
        )


class TestSink:
    def test_routes_edges_and_ignores_transfers(self):
        out = io.StringIO()
        sink = VcdSink(out)
        sink.declare_wire("ch.vp")
        sink.emit(TraceEvent(0, "edge", "ch.vp", 1))
        sink.emit(TraceEvent(0, "transfer+", "ch"))
        sink.emit(TraceEvent(2, "x-onset", "ch.vp"))
        sink.close()
        text = out.getvalue()
        assert "1!" in text and "x!" in text
        assert text.count("#") == 2  # times 0 and 2 only


class TestGoldenWaveform:
    def test_cli_reproduces_golden_bytes(self, tmp_path):
        out = tmp_path / "fig5.vcd"
        assert main([
            "trace", "--config", "pipeline", "--cycles", "32",
            "--seed", "0", "--vcd", str(out),
        ]) == 0
        assert out.read_bytes() == GOLDEN.read_bytes()

    def test_golden_is_parseable_vcd(self):
        text = GOLDEN.read_text()
        header, _, body = text.partition("$enddefinitions $end\n")
        # every declared id is a known code; every change uses one
        ids = set()
        for line in header.splitlines():
            if line.startswith("$var wire 1 "):
                ids.add(line.split()[3])
        assert len(ids) == 12  # 3 channels x 4 wires
        times = []
        for line in body.splitlines():
            if line.startswith("#"):
                times.append(int(line[1:]))
            elif line and line[0] in "01x" and not line.startswith("$"):
                assert line[1:] in ids
        assert times == sorted(times) and times[0] == 0
