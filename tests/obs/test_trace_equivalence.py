"""Trace equivalence: scalar RTL simulator vs one batchsim lane.

Both engines replay the same seeded stimulus on the Fig. 5 dual-EB
target; the recorder attached to each must produce the identical
edge/x-onset event stream -- the cross-engine guarantee that makes
batch-kernel waveforms trustworthy.
"""

from repro.faults.campaign import make_stimulus
from repro.faults.targets import dual_ehb
from repro.obs import TraceRecorder
from repro.rtl.batchsim import BatchSimulator, broadcast
from repro.rtl.simulator import TwoPhaseSimulator

CYCLES = 120
SEED = 2007


def scalar_events(target, stimulus):
    sim = TwoPhaseSimulator(target.netlist)
    rec = TraceRecorder().attach_rtl(sim, target.observe)
    for inputs in stimulus:
        sim.cycle(inputs)
    return list(rec.events)


def batch_events(target, stimulus, lanes=4, lane=0):
    sim = BatchSimulator(target.netlist, lanes)
    rec = TraceRecorder().attach_batch(sim, target.observe, lane=lane)
    for inputs in stimulus:
        sim.cycle({
            name: broadcast(value, lanes) for name, value in inputs.items()
        })
    return list(rec.events)


class TestScalarBatchEquivalence:
    def test_event_streams_identical(self):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, CYCLES, SEED)
        scalar = scalar_events(target, stimulus)
        batch = batch_events(target, stimulus)
        assert scalar, "scalar run recorded no events"
        assert scalar == batch

    def test_nonzero_lane_matches_too(self):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, 60, SEED)
        assert (scalar_events(target, stimulus)
                == batch_events(target, stimulus, lanes=8, lane=5))

    def test_disabled_recorder_attaches_to_neither(self):
        target = dual_ehb()
        scalar = TwoPhaseSimulator(target.netlist)
        batch = BatchSimulator(target.netlist, 4)
        rec = TraceRecorder(enabled=False)
        rec.attach_rtl(scalar, target.observe)
        rec.attach_batch(batch, target.observe)
        assert not scalar.observers and not batch.observers
