"""Trace equivalence: scalar RTL simulator vs batchsim/compiled lanes.

All three engines replay the same seeded stimulus on the Fig. 5
dual-EB target; the recorder attached to each must produce the
identical edge/x-onset event stream -- the cross-engine guarantee that
makes batch-kernel and compiled-module waveforms trustworthy.
"""

import pytest

from repro.faults.campaign import make_stimulus
from repro.faults.targets import dual_ehb
from repro.obs import TraceRecorder
from repro.rtl.batchsim import BatchSimulator, broadcast
from repro.rtl.simulator import TwoPhaseSimulator

CYCLES = 120
SEED = 2007


def scalar_events(target, stimulus):
    sim = TwoPhaseSimulator(target.netlist)
    rec = TraceRecorder().attach_rtl(sim, target.observe)
    for inputs in stimulus:
        sim.cycle(inputs)
    return list(rec.events)


def batch_events(target, stimulus, lanes=4, lane=0):
    sim = BatchSimulator(target.netlist, lanes)
    rec = TraceRecorder().attach_batch(sim, target.observe, lane=lane)
    for inputs in stimulus:
        sim.cycle({
            name: broadcast(value, lanes) for name, value in inputs.items()
        })
    return list(rec.events)


def compiled_events(target, stimulus, cache, lanes=4, lane=0):
    from repro.codegen import build_cache
    from repro.codegen.sim import CompiledSimulator

    sim = CompiledSimulator(
        target.netlist, lanes, hooks=frozenset(),
        observe=frozenset(target.observe), cache=build_cache(str(cache)),
    )
    rec = TraceRecorder().attach_batch(sim, target.observe, lane=lane)
    for inputs in stimulus:
        sim.cycle({
            name: broadcast(value, lanes) for name, value in inputs.items()
        })
    return list(rec.events)


class TestScalarBatchEquivalence:
    def test_event_streams_identical(self):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, CYCLES, SEED)
        scalar = scalar_events(target, stimulus)
        batch = batch_events(target, stimulus)
        assert scalar, "scalar run recorded no events"
        assert scalar == batch

    def test_nonzero_lane_matches_too(self):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, 60, SEED)
        assert (scalar_events(target, stimulus)
                == batch_events(target, stimulus, lanes=8, lane=5))

    def test_disabled_recorder_attaches_to_neither(self):
        target = dual_ehb()
        scalar = TwoPhaseSimulator(target.netlist)
        batch = BatchSimulator(target.netlist, 4)
        rec = TraceRecorder(enabled=False)
        rec.attach_rtl(scalar, target.observe)
        rec.attach_batch(batch, target.observe)
        assert not scalar.observers and not batch.observers


class TestCompiledEquivalence:
    def test_compiled_stream_matches_scalar(self, tmp_path):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, CYCLES, SEED)
        scalar = scalar_events(target, stimulus)
        compiled = compiled_events(target, stimulus, tmp_path / "cache")
        assert scalar, "scalar run recorded no events"
        assert scalar == compiled

    def test_compiled_nonzero_lane_matches(self, tmp_path):
        target = dual_ehb()
        stimulus = make_stimulus(target.free_inputs, 60, SEED)
        assert (scalar_events(target, stimulus)
                == compiled_events(target, stimulus, tmp_path / "cache",
                                   lanes=8, lane=3))

    def test_unobserved_watch_fails_at_attach(self, tmp_path):
        from repro.codegen import build_cache
        from repro.codegen.sim import CompiledSimulator

        target = dual_ehb()
        # Observe only the channel wires; the EB state bits are absent,
        # so watching one must fail loudly at attach time instead of
        # tracing a stale slot.
        observe = frozenset(w for ch in target.channels for w in ch.wires())
        sim = CompiledSimulator(
            target.netlist, 4, hooks=frozenset(), observe=observe,
            cache=build_cache(str(tmp_path / "cache")),
        )
        state_bit = target.ebs[0].state_bits[0]
        with pytest.raises(ValueError, match="not observed"):
            TraceRecorder().attach_batch(sim, [state_bit])
        assert not sim.observers
