"""Tests for the Fig. 9 case study and the Table 1 reproduction.

These are the repository's end-to-end checks: each configuration is
simulated with full protocol monitoring, and the qualitative claims of
Table 1 must hold (ordering of throughputs, placement of kills and
anti-token transfers, area ordering).
"""

import pytest

from repro.casestudy.fig9 import (
    CHANNELS_REPORTED,
    Config,
    OPCODE_PROBABILITIES,
    build_fig9_spec,
    opcode_source,
)
from repro.casestudy.table1 import format_table, run_config, run_table1
from repro.synthesis.elaborate import to_behavioral

CYCLES = 2500


@pytest.fixture(scope="module")
def rows():
    return {row.config: row for row in run_table1(cycles=CYCLES, seed=2)}


class TestSpec:
    @pytest.mark.parametrize("config", list(Config))
    def test_specs_validate(self, config):
        build_fig9_spec(config).validate()

    def test_opcode_source_distribution(self):
        fn = opcode_source(1)
        draws = [fn(i) for i in range(4000)]
        for op, p in OPCODE_PROBABILITIES.items():
            assert draws.count(op) / 4000 == pytest.approx(p, abs=0.05)

    def test_no_buffer_config_drops_eb_c(self):
        assert "EB_C" in build_fig9_spec(Config.ACTIVE).registers
        assert "EB_C" not in build_fig9_spec(Config.NO_BUFFER).registers

    def test_passive_flags(self):
        spec = build_fig9_spec(Config.PASSIVE_F3W)
        assert spec.connection("F3->W").passive
        assert not spec.connection("M2->W").passive

    def test_lazy_has_no_ee(self):
        assert build_fig9_spec(Config.LAZY).blocks["W"].ee is None
        assert build_fig9_spec(Config.ACTIVE).blocks["W"].ee is not None


class TestSimulation:
    def test_protocol_clean_under_monitors(self):
        net = to_behavioral(build_fig9_spec(Config.ACTIVE), seed=0)
        net.run(500)  # monitors raise on violations

    def test_w_selects_correct_operand(self):
        """The EJ output payload equals the opcode the select carried."""
        spec = build_fig9_spec(Config.ACTIVE, seed=1)
        net = to_behavioral(spec, seed=1)
        sink = next(c for c in net.controllers if c.name == "Dout")
        net.run(800)
        assert len(sink.received) > 100
        # every payload is an opcode string (the selected operand
        # carries the opcode of its own operation)
        assert set(sink.received) <= {"I", "F", "M"}

    def test_throughput_equal_on_all_channels(self, rows):
        row = rows[Config.ACTIVE]
        for name in CHANNELS_REPORTED:
            rates = row.channel_rates[name]
            assert rates["+"] + rates["-"] + rates["±"] == pytest.approx(
                row.throughput, abs=0.02
            )


class TestTable1Shape:
    """The qualitative claims of Table 1 (we match shape, not RNG)."""

    def test_config_ordering(self, rows):
        th = {c: rows[c].throughput for c in Config}
        assert th[Config.ACTIVE] > th[Config.NO_BUFFER]
        assert th[Config.ACTIVE] > th[Config.PASSIVE_M2W]
        assert th[Config.ACTIVE] >= th[Config.PASSIVE_F3W] - 0.02
        assert th[Config.PASSIVE_F3W] > th[Config.LAZY]
        assert th[Config.LAZY] == min(th.values())

    def test_early_evaluation_gain_is_substantial(self, rows):
        assert rows[Config.ACTIVE].throughput > 1.3 * rows[Config.LAZY].throughput

    def test_lazy_has_no_antitoken_activity(self, rows):
        for rates in rows[Config.LAZY].channel_rates.values():
            assert rates["-"] == 0 and rates["±"] == 0

    def test_active_kill_and_anti_placement(self, rows):
        """Kills at latch boundaries, anti transfers elsewhere (paper:
        F2->F3 kills, F3->W anti-transfers)."""
        rates = rows[Config.ACTIVE].channel_rates
        assert rates["F2->F3"]["±"] > 0 and rates["F2->F3"]["-"] == 0
        assert rates["F3->W"]["-"] > 0 and rates["F3->W"]["±"] == 0
        assert rates["M2->W"]["-"] > 0

    def test_passive_f3w_stops_antis_upstream_of_f3(self, rows):
        rates = rows[Config.PASSIVE_F3W].channel_rates
        assert rates["F2->F3"]["±"] == 0 and rates["F2->F3"]["-"] == 0
        assert rates["F3->W"]["±"] > 0  # kills at the passive interface

    def test_passive_m2w_stops_antis_on_m_path(self, rows):
        rates = rows[Config.PASSIVE_M2W].channel_rates
        assert rates["S->M1"]["-"] == 0 and rates["S->M1"]["±"] == 0
        assert rates["M1->M2"]["-"] == 0
        assert rates["M2->W"]["±"] > 0

    def test_area_ordering(self, rows):
        lits = {c: rows[c].area.literals for c in Config}
        lats = {c: rows[c].area.latches for c in Config}
        ffs = {c: rows[c].area.flops for c in Config}
        assert lits[Config.ACTIVE] == max(lits.values())
        assert lits[Config.LAZY] == min(lits.values())
        assert lats[Config.LAZY] == 40  # 10 EBs x 4 latches
        assert lats[Config.ACTIVE] > lats[Config.PASSIVE_F3W]
        assert ffs[Config.LAZY] < ffs[Config.ACTIVE]

    def test_passive_variants_cheaper_than_active(self, rows):
        assert rows[Config.PASSIVE_F3W].area.literals < rows[Config.ACTIVE].area.literals
        assert rows[Config.PASSIVE_M2W].area.literals < rows[Config.ACTIVE].area.literals

    def test_format_table_renders(self, rows):
        text = format_table(list(rows.values()))
        assert "Configuration" in text and "F2->F3" in text
        assert len(text.splitlines()) == 6

    def test_run_config_without_area(self):
        row = run_config(Config.LAZY, cycles=200, seed=0, with_area=False)
        assert row.area.literals == 0
