"""Tests for the elastic processor pipeline."""

import pytest

from repro.casestudy.processor import (
    FetchUnit,
    Instruction,
    ProcessorConfig,
    build_processor,
    run_processor,
)


@pytest.fixture(scope="module")
def default_run():
    return run_processor(ProcessorConfig(seed=3), cycles=3000)


class TestBasicOperation:
    def test_instructions_commit(self, default_run):
        report, commit = default_run
        assert report.committed > 300
        assert report.ipc == pytest.approx(report.committed / 3000)

    def test_commit_strictly_in_order(self, default_run):
        _, commit = default_run
        seqs = [i.seq for i in commit.committed]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # no duplicates

    def test_epochs_monotone(self, default_run):
        _, commit = default_run
        epochs = [i.epoch for i in commit.committed]
        assert epochs == sorted(epochs)

    def test_no_wrong_path_commits(self, default_run):
        """The commit unit asserts epoch freshness internally; verify
        the stream ends at the fetch's final epoch."""
        _, commit = default_run
        assert commit.committed[-1].epoch == commit.fetch.epoch

    def test_op_mix_respected(self, default_run):
        _, commit = default_run
        ops = [i.op for i in commit.committed]
        assert ops.count("alu") > ops.count("mul") > 0


class TestFlushing:
    def test_flushes_happen_and_kill(self, default_run):
        report, _ = default_run
        assert report.flushes > 5
        assert report.wrong_path_killed >= report.flushes

    def test_no_branches_no_flushes(self):
        report, _ = run_processor(
            ProcessorConfig(p_branch=0.0, seed=1), cycles=1500
        )
        assert report.flushes == 0
        assert report.wrong_path_killed == 0

    def test_always_mispredict_still_progresses(self):
        report, commit = run_processor(
            ProcessorConfig(p_mispredict=1.0, seed=2), cycles=3000
        )
        assert report.committed > 50
        seqs = [i.seq for i in commit.committed]
        assert seqs == sorted(seqs)

    def test_mispredictions_cost_throughput(self):
        clean = run_processor(
            ProcessorConfig(p_mispredict=0.0, seed=4), cycles=3000
        )[0]
        dirty = run_processor(
            ProcessorConfig(p_mispredict=0.5, seed=4), cycles=3000
        )[0]
        assert clean.ipc > dirty.ipc


class TestEarlyEvaluation:
    def test_early_writeback_beats_lazy(self):
        early = run_processor(
            ProcessorConfig(early_writeback=True, seed=7), cycles=3000
        )[0]
        lazy = run_processor(
            ProcessorConfig(early_writeback=False, seed=7), cycles=3000
        )[0]
        assert early.ipc > lazy.ipc * 1.3

    def test_alu_only_mix_runs_fast(self):
        cfg = ProcessorConfig(
            op_mix={"alu": 1.0, "mul": 0.0, "mem": 0.0},
            p_branch=0.0,
            seed=8,
        )
        report, _ = run_processor(cfg, cycles=2000)
        assert report.ipc > 0.55  # never waits for mul/mem

    def test_mul_heavy_mix_bound_by_multiplier(self):
        cfg = ProcessorConfig(
            op_mix={"alu": 0.0, "mul": 1.0, "mem": 0.0},
            p_branch=0.0,
            seed=9,
        )
        report, _ = run_processor(cfg, cycles=2000)
        # mean mul latency 3*0.8 + 12*0.2 = 4.8
        assert report.ipc < 0.3


class TestProtocol:
    def test_network_protocol_monitored(self):
        """Channels run with full V/S persistence monitoring."""
        net, fetch, commit = build_processor(ProcessorConfig(seed=5))
        net.run(800)  # raises on any protocol violation

    def test_report_str(self, default_run):
        report, _ = default_run
        assert "IPC" in str(report)
