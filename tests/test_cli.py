"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_config_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--config", "bogus", "--cycles", "10"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--cycles", "300", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Active anti-tokens" in out and "No early evaluation" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--config", "lazy", "--cycles", "300"]) == 0
        out = capsys.readouterr().out
        assert "system throughput" in out
        assert "F2->F3" in out

    def test_verify(self, capsys):
        assert main(["verify", "--design", "early"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_export_verilog_stdout(self, capsys):
        assert main(["export", "--format", "verilog", "--config", "lazy"]) == 0
        assert "endmodule" in capsys.readouterr().out

    def test_export_blif_to_file(self, tmp_path, capsys):
        out = tmp_path / "x.blif"
        assert main(["export", "--format", "blif", "-o", str(out)]) == 0
        assert out.read_text().startswith(".model")
        assert "wrote" in capsys.readouterr().out

    def test_export_smv(self, capsys):
        assert main(["export", "--format", "smv", "--config", "active"]) == 0
        out = capsys.readouterr().out
        assert "MODULE main" in out and "SPEC" in out

    def test_export_dot(self, capsys):
        assert main(["export", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_bound(self, capsys):
        assert main(["bound", "--config", "lazy"]) == 0
        out = capsys.readouterr().out
        assert "structurally live: True" in out
        assert "cycle ratio" in out

    def test_dmg(self, capsys):
        assert main(["dmg"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out and "○" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestInject:
    def test_dual_ehb_campaign_report(self, tmp_path, capsys):
        report = tmp_path / "campaign.json"
        assert main([
            "inject", "--netlist", "dual_ehb", "--fault", "stuck0,stuck1",
            "--cycles", "200", "--report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out and "(100.0%)" in out
        assert report.exists()
        import json

        data = json.loads(report.read_text())
        assert data["coverage"] == 1.0

    def test_shrink_prints_minimal_trace(self, capsys):
        assert main([
            "inject", "--netlist", "dual_ehb", "--fault", "stuck1",
            "--cycles", "150", "--shrink",
        ]) == 0
        out = capsys.readouterr().out
        assert "violation:" in out
        assert "counterexample" in out

    def test_unknown_netlist_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "--netlist", "bogus"])

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SystemExit, match="stuck2"):
            main(["inject", "--fault", "stuck2"])

    def test_empty_fault_list_rejected(self):
        with pytest.raises(SystemExit, match="no fault kinds"):
            main(["inject", "--fault", ""])


class TestInjectMetrics:
    def test_metrics_flag_adds_report_metadata(self, tmp_path, capsys):
        import json

        report = tmp_path / "campaign.json"
        assert main([
            "inject", "--netlist", "dual_ehb", "--cycles", "120",
            "--lanes", "8", "--metrics", "--report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "wall time:" in out
        assert "campaign_faults_total" in out
        data = json.loads(report.read_text())
        meta = data["metrics"]
        assert meta["lanes"] == 8 and meta["jobs"] == 1
        assert meta["wall_time_s"] > 0
        assert meta["injections"] == len(data["faults"])
        assert "batchsim_lane_utilization" in meta["series"]

    def test_default_report_has_no_metrics_key(self, tmp_path):
        import json

        report = tmp_path / "campaign.json"
        assert main([
            "inject", "--netlist", "dual_ehb", "--cycles", "120",
            "--report", str(report),
        ]) == 0
        assert "metrics" not in json.loads(report.read_text())

    def test_progress_lines_on_stderr(self, capsys):
        assert main([
            "inject", "--netlist", "dual_ehb", "--cycles", "120",
            "--lanes", "64", "--progress",
        ]) == 0
        assert "campaign:" in capsys.readouterr().err


class TestTrace:
    def test_pipeline_trace_writes_artifacts(self, tmp_path, capsys):
        vcd = tmp_path / "out.vcd"
        events = tmp_path / "out.jsonl"
        assert main([
            "trace", "--config", "pipeline", "--cycles", "24",
            "--vcd", str(vcd), "--events", str(events),
        ]) == 0
        out = capsys.readouterr().out
        assert "reconciliation:" in out and "OK" in out
        assert vcd.read_text().startswith("$comment")
        assert events.read_text().count("\n") > 0

    def test_fig9_config_traces(self, capsys):
        assert main(["trace", "--config", "active", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "transfer+" in out and "ee-fire" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "--config", "bogus"])


class TestStats:
    def test_stats_prints_registry(self, capsys):
        assert main(["stats", "--config", "active", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "channel_throughput" in out
        assert "eb_tokens" in out
        assert "ee_firings_total" in out


class TestInjectLanes:
    def test_lanes_and_jobs_report_is_byte_identical(self, tmp_path):
        sequential = tmp_path / "seq.json"
        sharded = tmp_path / "sharded.json"
        base = ["inject", "--netlist", "dual_ehb", "--fault",
                "stuck0,stuck1", "--cycles", "120"]
        assert main(base + ["--report", str(sequential)]) == 0
        assert main(base + ["--lanes", "64", "--jobs", "4",
                            "--report", str(sharded)]) == 0
        assert sharded.read_bytes() == sequential.read_bytes()

    def test_processor_rejects_lanes(self):
        with pytest.raises(SystemExit, match="RTL netlist"):
            main(["inject", "--netlist", "processor", "--lanes", "64"])

    def test_nonpositive_lanes_rejected(self):
        with pytest.raises(SystemExit, match="positive"):
            main(["inject", "--lanes", "0"])
        with pytest.raises(SystemExit, match="positive"):
            main(["inject", "--jobs", "-1"])


class TestInjectResilience:
    def test_checkpointed_report_is_byte_identical(self, tmp_path):
        plain = tmp_path / "plain.json"
        checkpointed = tmp_path / "ck.json"
        base = ["inject", "--netlist", "dual_ehb", "--cycles", "120"]
        assert main(base + ["--report", str(plain)]) == 0
        assert main(base + ["--checkpoint", str(tmp_path / "store"),
                            "--report", str(checkpointed)]) == 0
        assert checkpointed.read_bytes() == plain.read_bytes()
        # Resuming the completed store reproduces the same bytes again.
        resumed = tmp_path / "resumed.json"
        assert main(base + ["--resume", str(tmp_path / "store"),
                            "--report", str(resumed)]) == 0
        assert resumed.read_bytes() == plain.read_bytes()

    def test_resume_without_manifest_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoint manifest"):
            main(["inject", "--netlist", "dual_ehb",
                  "--resume", str(tmp_path / "nowhere")])

    def test_conflicting_checkpoint_and_resume_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="different directories"):
            main(["inject", "--netlist", "dual_ehb",
                  "--checkpoint", str(tmp_path / "a"),
                  "--resume", str(tmp_path / "b")])

    def test_checkpoint_from_other_campaign_rejected(self, tmp_path):
        store = str(tmp_path / "store")
        assert main(["inject", "--netlist", "dual_ehb", "--cycles", "120",
                     "--checkpoint", store]) == 0
        with pytest.raises(SystemExit, match="different workload"):
            main(["inject", "--netlist", "dual_ehb", "--cycles", "200",
                  "--checkpoint", store])

    def test_processor_rejects_checkpoint(self, tmp_path):
        with pytest.raises(SystemExit, match="RTL netlist"):
            main(["inject", "--netlist", "processor",
                  "--checkpoint", str(tmp_path / "store")])

    def test_shard_timeout_and_retries_accepted(self, tmp_path):
        report = tmp_path / "r.json"
        assert main(["inject", "--netlist", "dual_ehb", "--cycles", "120",
                     "--lanes", "16", "--jobs", "2",
                     "--shard-timeout", "300", "--max-retries", "3",
                     "--report", str(report)]) == 0
        assert report.exists()


class TestVerifyCheckpoint:
    def test_verify_with_checkpoint_passes_and_persists(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["verify", "--design", "early",
                     "--checkpoint", str(store)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert (store / "snapshot.json").is_file()
        # Resume from the drained snapshot: same verdict.
        assert main(["verify", "--design", "early",
                     "--checkpoint", str(store)]) == 0
        assert "PASS" in capsys.readouterr().out


class TestLint:
    def test_list_targets(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9:active" in out and "zoo:capacity1" in out

    def test_clean_target_exits_zero(self, capsys):
        assert main(["lint", "rtl:join"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_zoo_target_exits_nonzero(self, capsys):
        assert main(["lint", "zoo:capacity1"]) == 1
        out = capsys.readouterr().out
        assert "ELX005" in out and "new error(s)" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit, match="unknown lint target"):
            main(["lint", "bogus:target"])

    def test_json_and_sarif_written(self, tmp_path, capsys):
        json_path = tmp_path / "findings.json"
        sarif_path = tmp_path / "findings.sarif"
        assert main(["lint", "zoo:comb_cycle",
                     "--json", str(json_path),
                     "--sarif", str(sarif_path)]) == 1
        import json as jsonlib
        findings = jsonlib.loads(json_path.read_text())
        assert findings["findings"][0]["rule"] == "LNT005"
        sarif = jsonlib.loads(sarif_path.read_text())
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"][0]["ruleId"] == "LNT005"

    def test_baseline_suppresses_known_errors(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "zoo:capacity1",
                     "--write-baseline", str(baseline)]) == 1
        capsys.readouterr()
        assert main(["lint", "zoo:capacity1",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_explain_prints_catalog_entry(self, capsys):
        assert main(["lint", "--explain", "LNT008"]) == 0
        out = capsys.readouterr().out
        assert "LNT008 [WARNING]" in out
        assert "state bit can never leave X" in out

    def test_explain_unknown_rule_rejected(self):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", "--explain", "LNT999"])

    def test_explain_with_target_renders_witnesses(self, capsys):
        assert main(["lint", "--explain", "ELX009",
                     "zoo:starved_counterflow"]) == 0
        out = capsys.readouterr().out
        assert "1 finding(s) for ELX009" in out
        assert "witness (starved-counterflow)" in out
        assert "channel:DEAD->EJ -> source:DEAD" in out

    def test_explain_exits_zero_even_on_errors(self, capsys):
        assert main(["lint", "--explain", "LNT005", "zoo:comb_cycle"]) == 0
        out = capsys.readouterr().out
        assert "1 finding(s) for LNT005" in out

    def _write_defective_blif(self, tmp_path):
        from repro.rtl.export import to_blif
        from repro.rtl.logic import X
        from repro.rtl.netlist import Netlist

        nl = Netlist("xdemo")
        a = nl.add_input("a")
        nl.BUF("q", out="d")
        nl.add_flop("d", q="q", init=X)
        nl.AND(a, "q", out="o")
        nl.add_output("o")
        path = tmp_path / "xdemo.blif"
        path.write_text(to_blif(nl))
        return path

    def test_file_target_reports_located_findings(self, tmp_path, capsys):
        path = self._write_defective_blif(tmp_path)
        sarif_path = tmp_path / "file.sarif"
        assert main(["lint", "--file", str(path),
                     "--sarif", str(sarif_path)]) == 0  # warnings only
        out = capsys.readouterr().out
        assert "LNT008" in out
        assert "xdemo.blif:" in out  # findings carry file:line:column
        import json as jsonlib
        sarif = jsonlib.loads(sarif_path.read_text())
        for result in sarif["runs"][0]["results"]:
            physical = result["locations"][0]["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith("xdemo.blif")
            assert physical["region"]["startLine"] >= 1

    def test_file_mixes_with_named_targets(self, tmp_path, capsys):
        path = self._write_defective_blif(tmp_path)
        assert main(["lint", "rtl:join", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "LNT008" in out

    def test_file_baseline_suppresses(self, tmp_path, capsys):
        path = self._write_defective_blif(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--file", str(path),
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", "--file", str(path),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model bad\n.inputs a\n.outputs y\n"
                       ".names a y\n.end\n")
        with pytest.raises(SystemExit, match="truncated .names cover"):
            main(["lint", "--file", str(bad)])

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="ghost.blif"):
            main(["lint", "--file", str(tmp_path / "ghost.blif")])

    def test_inject_degradation_flag(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        assert main(["inject", "--netlist", "dual_ehb", "--cycles", "120",
                     "--lanes", "8", "--degradation",
                     "--report", str(report)]) == 0
        import json as jsonlib
        payload = jsonlib.loads(report.read_text())
        assert payload["degradation"]["enabled"] is True
        assert payload["degradation"]["quarantined"] == 0

    def test_processor_rejects_degradation(self):
        with pytest.raises(SystemExit, match="RTL netlist"):
            main(["inject", "--netlist", "processor", "--degradation"])
