"""Every example script must run end-to-end (they assert internally)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "in order: True" in out


def test_dmg_playground(capsys):
    out = _run("dmg_playground.py", capsys)
    assert "liveness: True" in out
    assert "early throughput" in out


def test_exception_flush(capsys):
    out = _run("exception_flush.py", capsys)
    assert "wrong-path instructions cancelled" in out


def test_trace_waveforms(capsys):
    out = _run("trace_waveforms.py", capsys)
    assert "counters reconcile across all three exports" in out
    assert "gtkwave" in out


@pytest.mark.slow
def test_variable_latency_alu(capsys):
    out = _run("variable_latency_alu.py", capsys)
    assert "mul ratio" in out


@pytest.mark.slow
def test_elastic_processor(capsys):
    out = _run("elastic_processor.py", capsys)
    assert "commit stream strictly in order" in out


@pytest.mark.slow
def test_fig9_case_study(capsys):
    out = _run("fig9_case_study.py", capsys)
    assert "early evaluation speed-up" in out


@pytest.mark.slow
def test_kill_and_resume(capsys):
    out = _run("kill_and_resume.py", capsys)
    assert "matches the uninterrupted run byte-for-byte" in out


def test_build_cache_demo(capsys):
    out = _run("build_cache_demo.py", capsys)
    assert "byte-identical" in out
    assert "zero codegen" in out
