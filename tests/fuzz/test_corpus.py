"""Corpus persistence: byte-deterministic JSON, lossless replay."""

import json
import random

from repro.fuzz.corpus import (
    CORPUS_SCHEMA,
    CorpusEntry,
    load_corpus,
    replay_entry,
    save_entry,
)
from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.fuzz.oracle import OracleConfig, run_oracle

FAST = OracleConfig(cycles=48, lanes=4, check_gates=False,
                    check_verify=False)


def _entry(name="case0", mutation="broken-early-join"):
    model = generate_model(random.Random("corpus:1"),
                           GeneratorConfig(max_blocks=8), name=name)
    finding = {"spec": name, "stage": "behavioral", "detail": "boom",
               "seed": 5}
    return CorpusEntry(name=name, seed=5, finding=finding,
                       model=model.to_dict(), shrunk=model.to_dict(),
                       mutation=mutation, rules_hit=["ELX006", "ELX001"])


class TestRoundTrip:
    def test_dict_round_trip(self):
        entry = _entry()
        clone = CorpusEntry.from_dict(entry.to_dict())
        assert clone.to_json() == entry.to_json()

    def test_to_dict_carries_schema_and_sizes(self):
        d = _entry().to_dict()
        assert d["schema"] == CORPUS_SCHEMA
        assert d["blocks_before"] == len(d["model"]["blocks"])
        assert d["blocks_after"] == len(d["shrunk"]["blocks"])

    def test_to_dict_sorts_rules_hit(self):
        assert _entry().to_dict()["rules_hit"] == ["ELX001", "ELX006"]

    def test_rules_hit_survives_round_trip(self):
        clone = CorpusEntry.from_dict(json.loads(_entry().to_json()))
        assert clone.rules_hit == ["ELX001", "ELX006"]

    def test_legacy_entry_without_rules_hit_loads(self):
        data = _entry().to_dict()
        del data["rules_hit"]
        assert CorpusEntry.from_dict(data).rules_hit == []

    def test_json_is_byte_stable(self):
        assert _entry().to_json() == _entry().to_json()
        assert _entry().to_json().endswith("\n")

    def test_runner_populates_rules_hit_deterministically(self):
        from repro.fuzz.runner import _rules_hit

        model = generate_model(random.Random("corpus:2"),
                               GeneratorConfig(max_blocks=8), name="rh")
        hits = _rules_hit(model)
        assert hits == sorted(set(hits))
        assert hits == _rules_hit(model)


class TestSaveLoad:
    def test_save_then_load(self, tmp_path):
        entry = _entry()
        target = save_entry(entry, tmp_path / "corpus")
        assert target.name == "case0.json"
        loaded = load_corpus(tmp_path / "corpus")
        assert len(loaded) == 1
        assert loaded[0].to_json() == entry.to_json()

    def test_load_is_name_sorted(self, tmp_path):
        for name in ("zz", "aa", "mm"):
            save_entry(_entry(name=name), tmp_path)
        assert [e.name for e in load_corpus(tmp_path)] == ["aa", "mm", "zz"]

    def test_saved_bytes_are_deterministic(self, tmp_path):
        a = save_entry(_entry(), tmp_path / "a")
        b = save_entry(_entry(), tmp_path / "b")
        assert a.read_bytes() == b.read_bytes()

    def test_file_is_plain_sorted_json(self, tmp_path):
        target = save_entry(_entry(), tmp_path)
        data = json.loads(target.read_text())
        assert list(data) == sorted(data)


class TestReplay:
    def test_clean_entry_does_not_reproduce_without_mutation(self):
        entry = _entry(mutation=None)
        assert replay_entry(entry, config=FAST) is None

    def test_mutated_entry_reproduces_when_the_bug_is_real(self):
        # Find an actually-failing model first, then round-trip it
        # through the corpus format and replay.
        from repro.fuzz.mutations import MUTATIONS

        model = None
        for trial in range(30):
            candidate = generate_model(
                random.Random(f"replay:{trial}"),
                GeneratorConfig(max_blocks=10, p_join=0.9, p_early=1.0,
                                p_vl=0.0, p_kill_sink=0.0,
                                source_p_valid=(0.5, 0.75)),
                name=f"rp{trial}")
            finding = run_oracle(candidate, seed=0, config=FAST,
                                 mutate=MUTATIONS["broken-early-join"])
            if finding is not None and finding.stage == "behavioral":
                model = candidate
                break
        assert model is not None, "no failing model found"
        entry = CorpusEntry(name=model.name, seed=0,
                            finding=finding.to_dict(),
                            model=model.to_dict(), shrunk=model.to_dict(),
                            mutation="broken-early-join")
        replayed = replay_entry(entry, config=FAST)
        assert replayed is not None
        assert replayed.stage == "behavioral"

    def test_replay_survives_disk_round_trip(self, tmp_path):
        entry = _entry(mutation=None)
        save_entry(entry, tmp_path)
        (loaded,) = load_corpus(tmp_path)
        assert replay_entry(loaded, config=FAST) is None
