"""Generator validity: fuzzed specs are clean by construction.

The central contract of :mod:`repro.fuzz.generate`: every model the
generator emits builds into a :class:`SystemSpec`, passes the
spec-level lint with zero ERROR findings, elaborates to the
behavioural network, and (since the default palette keeps register
capacities at 2) to the gate netlist too.  Hypothesis drives the
shared :func:`tests.strategies.spec_models` strategy; the edge-case
class pins the repair/typed-error behaviour for degenerate inputs.
"""

import random

import pytest
from hypothesis import given, settings

from repro.fuzz.generate import (
    GeneratorConfig,
    SpecRepairError,
    generate_model,
    repair_model,
)
from repro.fuzz.model import (
    BlockModel,
    ConnModel,
    InvalidSpecModel,
    RegisterModel,
    SinkModel,
    SourceModel,
    SpecModel,
)
from repro.lint.elastic_rules import lint_spec
from repro.synthesis.elaborate import to_behavioral, to_gates
from tests.strategies import spec_models


def _errors(spec):
    return [f for f in lint_spec(spec) if f.severity.name == "ERROR"]


@settings(max_examples=30, deadline=None)
@given(spec_models(max_blocks=12))
def test_generated_models_are_valid(model):
    spec = model.build()
    assert _errors(spec) == []
    net = to_behavioral(spec, seed=0, monitor=True, check_data=True)
    for _ in range(16):
        net.step()
    if all(r.capacity == 2 for r in spec.registers.values()):
        elab = to_gates(spec, include_env=True, as_latches=False)
        assert elab.netlist.name == model.name


@settings(max_examples=20, deadline=None)
@given(spec_models(max_blocks=12))
def test_round_trip_is_byte_stable(model):
    clone = SpecModel.from_dict(model.to_dict())
    assert clone.to_json() == model.to_json()


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = generate_model(random.Random("s:1"), GeneratorConfig(max_blocks=20))
        b = generate_model(random.Random("s:1"), GeneratorConfig(max_blocks=20))
        assert a.to_json() == b.to_json()

    def test_different_seed_different_model(self):
        a = generate_model(random.Random("s:1"), GeneratorConfig(max_blocks=20))
        b = generate_model(random.Random("s:2"), GeneratorConfig(max_blocks=20))
        assert a.to_json() != b.to_json()

    def test_scales_to_hundreds_of_controllers(self):
        cfg = GeneratorConfig(max_blocks=400, min_blocks=400)
        model = generate_model(random.Random("big"), cfg, name="big")
        assert len(model.blocks) == 400
        spec = model.build()
        assert _errors(spec) == []
        # controllers = blocks + registers + sources + sinks
        assert len(spec.blocks) + len(spec.registers) > 400


class TestEdgeCases:
    """Degenerate models must repair cleanly or raise a typed error --
    never elaborate silently."""

    def test_empty_model_raises_typed_error(self):
        with pytest.raises(InvalidSpecModel, match="empty model"):
            SpecModel("empty").build()
        with pytest.raises(InvalidSpecModel):
            repair_model(SpecModel("empty"))

    def test_zero_block_model_repairs_cleanly(self):
        model = SpecModel("wire", sources=[SourceModel("src0")],
                          sinks=[SinkModel("snk0")],
                          connections=[ConnModel(("source", "src0", "out"),
                                                 ("sink", "snk0", "in"))])
        fixed = repair_model(model)
        assert fixed.blocks == []
        assert _errors(fixed.build()) == []

    def test_self_loop_register_repairs_cleanly(self):
        model = SpecModel(
            "selfloop",
            registers=[RegisterModel("r0", capacity=2, initial_tokens=0)],
            connections=[ConnModel(("register", "r0", "out"),
                                   ("register", "r0", "in"))],
        )
        fixed = repair_model(model)
        reg = next(r for r in fixed.registers if r.name == "r0")
        # The repair pass seeds a token and keeps a bubble available.
        assert reg.initial_tokens >= 1
        assert reg.capacity >= 2
        spec = fixed.build()
        assert _errors(spec) == []
        to_behavioral(spec, seed=0).step()

    def _capacity1_loop(self):
        return SpecModel(
            "cap1",
            sources=[SourceModel("src0")], sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0", n_inputs=2, n_outputs=2)],
            registers=[RegisterModel("r0", capacity=1, initial_tokens=1)],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
                ConnModel(("block", "b0", "out0"), ("register", "r0", "in")),
                ConnModel(("register", "r0", "out"), ("block", "b0", "in1")),
                ConnModel(("block", "b0", "out1"), ("sink", "snk0", "in")),
            ],
        )

    def test_capacity1_loop_raises_typed_error_unrepaired(self):
        from repro.synthesis.flow import ElasticLintError, elasticize

        model = self._capacity1_loop()
        errors = _errors(model.build())
        assert any(f.rule == "ELX005" for f in errors)
        with pytest.raises(ElasticLintError):
            elasticize(model.build())

    def test_capacity1_loop_repairs_cleanly(self):
        fixed = repair_model(self._capacity1_loop())
        reg = next(r for r in fixed.registers if r.name == "r0")
        assert reg.capacity >= 2  # the bubble the loop was missing
        assert _errors(fixed.build()) == []

    def test_passive_only_interfaces_elaborate_with_info_only(self):
        model = SpecModel(
            "passv",
            sources=[SourceModel("src0")], sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0")],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0"),
                          passive=True),
                ConnModel(("block", "b0", "out0"), ("sink", "snk0", "in"),
                          passive=True),
            ],
        )
        spec = model.build()
        findings = lint_spec(spec)
        assert _errors(spec) == []
        assert all(f.rule == "ELX007" for f in findings)
        net = to_behavioral(spec, seed=0, monitor=True)
        for _ in range(8):
            net.step()

    def test_unrepairable_cycle_raises_typed_error(self):
        # ELX004 fixes and register insertion are monotone, so genuine
        # non-convergence needs a model .build() accepts but whose lint
        # errors the fixer cannot map to a connection arc; simulate by
        # exhausting rounds.
        model = self._capacity1_loop()
        with pytest.raises(SpecRepairError):
            repair_model(model, max_rounds=0)

    def test_dangling_ports_are_stubbed(self):
        model = SpecModel("dangle", blocks=[BlockModel("b0", n_inputs=2,
                                                       n_outputs=2)])
        fixed = repair_model(model)
        assert len(fixed.sources) == 2
        assert len(fixed.sinks) == 2
        assert _errors(fixed.build()) == []

    def test_bad_ee_token_raises_typed_error(self):
        model = SpecModel("badee", blocks=[BlockModel("b0", n_inputs=2,
                                                      ee="magic:3")])
        with pytest.raises(InvalidSpecModel, match="palette"):
            model.build()

    def test_bad_latency_token_raises_typed_error(self):
        model = SpecModel("badvl", blocks=[BlockModel("b0",
                                                      latency="gauss:2")])
        with pytest.raises(InvalidSpecModel, match="palette"):
            model.build()
