"""Spec-level shrinking: ddmin over blocks/registers with re-repair."""

import random

import pytest

from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.fuzz.model import (
    BlockModel,
    ConnModel,
    SinkModel,
    SourceModel,
    SpecModel,
)
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracle import OracleConfig, run_oracle
from repro.fuzz.shrink import prune_stubs, remove_components, shrink_model

FAST = OracleConfig(cycles=48, lanes=4, check_gates=False,
                    check_verify=False)


def _ee_predicate(seed=0):
    mutate = MUTATIONS["broken-early-join"]

    def fails(model):
        finding = run_oracle(model, seed=seed, config=FAST, mutate=mutate)
        return finding is not None and finding.stage == "behavioral"

    return fails


class TestRemoveComponents:
    def test_bridges_one_in_one_out_block(self):
        model = SpecModel(
            "bridge",
            sources=[SourceModel("src0")], sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0"), BlockModel("b1")],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
                ConnModel(("block", "b0", "out0"), ("block", "b1", "in0")),
                ConnModel(("block", "b1", "out0"), ("sink", "snk0", "in")),
            ],
        )
        smaller = remove_components(model, ["b0"])
        assert [b.name for b in smaller.blocks] == ["b1"]
        # src0 now feeds b1 directly.
        assert any(c.src == ("source", "src0", "out")
                   and c.dst == ("block", "b1", "in0")
                   for c in smaller.connections)

    def test_unmatched_ports_left_dangling(self):
        model = SpecModel(
            "dangle",
            sources=[SourceModel("src0"), SourceModel("src1")],
            sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0", n_inputs=2, n_outputs=1)],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
                ConnModel(("source", "src1", "out"), ("block", "b0", "in1")),
                ConnModel(("block", "b0", "out0"), ("sink", "snk0", "in")),
            ],
        )
        smaller = remove_components(model, ["b0"])
        assert smaller.blocks == []
        # 2-in/1-out: one bridge (src0 -> snk0), src1 left dangling.
        assert sum(1 for c in smaller.connections) == 1


class TestPruneStubs:
    def test_direct_source_sink_chains_removed(self):
        model = SpecModel(
            "stubs",
            sources=[SourceModel("src0"), SourceModel("src1")],
            sinks=[SinkModel("snk0"), SinkModel("snk1")],
            blocks=[BlockModel("b0")],
            connections=[
                ConnModel(("source", "src0", "out"), ("sink", "snk0", "in")),
                ConnModel(("source", "src1", "out"), ("block", "b0", "in0")),
                ConnModel(("block", "b0", "out0"), ("sink", "snk1", "in")),
            ],
        )
        pruned = prune_stubs(model)
        assert [s.name for s in pruned.sources] == ["src1"]
        assert [s.name for s in pruned.sinks] == ["snk1"]
        assert len(pruned.connections) == 2


class TestShrinkModel:
    def test_requires_a_failing_model(self):
        model = generate_model(random.Random("sm:0"),
                               GeneratorConfig(max_blocks=4))
        with pytest.raises(ValueError, match="does not fail"):
            shrink_model(model, lambda m: False)

    def test_shrinks_to_the_guilty_join(self):
        cfg = GeneratorConfig(max_blocks=16, min_blocks=8, p_join=0.9,
                              p_early=1.0, p_vl=0.0, p_kill_sink=0.0,
                              source_p_valid=(0.5, 0.75))
        fails = _ee_predicate()
        model = None
        for trial in range(30):
            candidate = generate_model(
                random.Random(f"shrinkdemo:{trial}"), cfg,
                name=f"sd{trial}")
            if fails(candidate):
                model = candidate
                break
        assert model is not None, "mutated EE spec never failed"
        shrunk = shrink_model(model, fails)
        assert fails(shrunk), "shrunk model must still fail"
        assert len(shrunk.blocks) <= 6
        assert len(shrunk.blocks) < len(model.blocks)
        # The surviving block is an early join (the planted bug's host).
        assert any(b.ee is not None for b in shrunk.blocks)

    def test_shrink_is_deterministic(self):
        fails = _ee_predicate()
        cfg = GeneratorConfig(max_blocks=12, min_blocks=6, p_join=0.9,
                              p_early=1.0, p_vl=0.0, p_kill_sink=0.0,
                              source_p_valid=(0.5,))
        model = None
        for trial in range(30):
            candidate = generate_model(
                random.Random(f"det:{trial}"), cfg, name=f"det{trial}")
            if fails(candidate):
                model = candidate
                break
        assert model is not None
        a = shrink_model(model, fails)
        b = shrink_model(model.clone(), fails)
        assert a.to_json() == b.to_json()

    def test_flaky_predicate_keeps_last_confirmed(self):
        model = generate_model(random.Random("flaky:1"),
                               GeneratorConfig(max_blocks=6), name="flaky")
        calls = {"n": 0}

        def fails(candidate):
            calls["n"] += 1
            if calls["n"] == 1:
                return True
            raise RuntimeError("replay infrastructure fell over")

        shrunk = shrink_model(model, fails)
        # Nothing was confirmed smaller, so the original survives
        # (modulo the always-valid stub pruning).
        assert len(shrunk.blocks) == len(model.blocks)
