"""The differential oracle: clean specs pass, planted bugs are caught."""

import random

import pytest

from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.fuzz.model import (
    BlockModel,
    ConnModel,
    RegisterModel,
    SinkModel,
    SourceModel,
    SpecModel,
)
from repro.fuzz.mutations import MUTATIONS, BrokenEarlyJoin, break_early_join
from repro.fuzz.oracle import OracleConfig, run_oracle

FAST = OracleConfig(cycles=48, lanes=4, check_gates=False,
                    check_verify=False)


def _ee_model(name="eeunit", p_valid=0.5):
    """One OR-causality early join fed by two unreliable sources."""
    return SpecModel(
        name,
        sources=[SourceModel("src0", p_valid=p_valid),
                 SourceModel("src1", p_valid=p_valid)],
        sinks=[SinkModel("snk0")],
        blocks=[BlockModel("b0", n_inputs=2, ee="thr:1")],
        connections=[
            ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
            ConnModel(("source", "src1", "out"), ("block", "b0", "in1")),
            ConnModel(("block", "b0", "out0"), ("sink", "snk0", "in")),
        ],
    )


class TestCleanSpecs:
    def test_generated_spec_passes_all_stages(self):
        model = generate_model(random.Random("oracle:1"),
                               GeneratorConfig(max_blocks=8), name="ok")
        config = OracleConfig(cycles=48, lanes=4, verify_max_inputs=4,
                              verify_max_states=5_000)
        assert run_oracle(model, seed=0, config=config) is None

    def test_early_join_unit_passes(self):
        assert run_oracle(_ee_model(), seed=0, config=FAST) is None

    def test_full_pipeline_on_ee_unit(self):
        config = OracleConfig(cycles=64, lanes=4, verify_max_inputs=6,
                              verify_max_states=50_000)
        assert run_oracle(_ee_model(), seed=0, config=config) is None


class TestStages:
    def test_build_stage_finding(self):
        model = SpecModel("broken", blocks=[BlockModel("b0", n_inputs=2,
                                                       ee="magic:1")])
        finding = run_oracle(model, seed=0, config=FAST)
        assert finding is not None
        assert finding.stage == "build"

    def test_lint_stage_finding(self):
        # A capacity-1 loop with a token and no bubble: builds, but the
        # spec lint flags the zero-spare cycle.
        model = SpecModel(
            "stuck",
            sources=[SourceModel("src0")], sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0", n_inputs=2, n_outputs=2)],
            registers=[RegisterModel("r0", capacity=1, initial_tokens=1)],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
                ConnModel(("block", "b0", "out0"), ("register", "r0", "in")),
                ConnModel(("register", "r0", "out"), ("block", "b0", "in1")),
                ConnModel(("block", "b0", "out1"), ("sink", "snk0", "in")),
            ],
        )
        finding = run_oracle(model, seed=0, config=FAST)
        assert finding is not None
        assert finding.stage == "lint"
        assert "ELX005" in finding.detail

    def test_finding_serialises(self):
        model = SpecModel("broken", blocks=[BlockModel("b0", n_inputs=2,
                                                       ee="magic:1")])
        finding = run_oracle(model, seed=0, config=FAST)
        d = finding.to_dict()
        assert d["spec"] == "broken"
        assert d["stage"] == "build"
        assert str(finding).startswith("broken [build]")


class TestSeededBugs:
    def test_broken_early_join_is_caught(self):
        finding = run_oracle(_ee_model(), seed=0, config=FAST,
                             mutate=MUTATIONS["broken-early-join"])
        assert finding is not None
        assert finding.stage == "behavioral"
        assert "invariant" in finding.detail or "Retry" in finding.detail

    def test_mutation_patches_every_early_join(self):
        from repro.synthesis.elaborate import to_behavioral

        net = to_behavioral(_ee_model().build(), seed=0)
        assert break_early_join(net) == 1
        assert any(type(c) is BrokenEarlyJoin for c in net.controllers)

    def test_mutation_leaves_plain_joins_alone(self):
        from repro.synthesis.elaborate import to_behavioral

        model = SpecModel(
            "plain",
            sources=[SourceModel("src0"), SourceModel("src1")],
            sinks=[SinkModel("snk0")],
            blocks=[BlockModel("b0", n_inputs=2)],
            connections=[
                ConnModel(("source", "src0", "out"), ("block", "b0", "in0")),
                ConnModel(("source", "src1", "out"), ("block", "b0", "in1")),
                ConnModel(("block", "b0", "out0"), ("sink", "snk0", "in")),
            ],
        )
        net = to_behavioral(model.build(), seed=0)
        assert break_early_join(net) == 0
        assert run_oracle(model, seed=0, config=FAST,
                          mutate=break_early_join) is None


class TestDeterminism:
    def test_same_seed_same_finding(self):
        mutate = MUTATIONS["broken-early-join"]
        a = run_oracle(_ee_model(), seed=3, config=FAST, mutate=mutate)
        b = run_oracle(_ee_model(), seed=3, config=FAST, mutate=mutate)
        assert a.to_dict() == b.to_dict()


class TestRetryDataPersistence:
    """Regression for the bug the fuzzer found in EarlyJoin: a late
    operand arriving while the output is stalled in Retry+ must not
    change the offered payload (SELF persistence)."""

    def test_stalled_early_join_holds_its_payload(self):
        model = _ee_model("retrydata")
        model.sinks[0].p_stop = 0.5  # provoke Retry+ stalls
        assert run_oracle(model, seed=7, config=FAST) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_generated_ee_specs_hold_payloads(self, seed):
        cfg = GeneratorConfig(max_blocks=10, p_join=0.8, p_early=1.0,
                              sink_p_stop=(0.25, 0.5),
                              source_p_valid=(0.5, 0.75))
        model = generate_model(random.Random(f"retry:{seed}"), cfg,
                               name=f"retry{seed}")
        assert run_oracle(model, seed=seed, config=FAST) is None
