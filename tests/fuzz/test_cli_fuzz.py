"""The ``repro fuzz`` verb: byte-deterministic campaigns, corpus
replay, and the documented exit codes."""

import filecmp
import json

import pytest

from repro.cli import main


def _run(capsys, argv):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


FAST = ["--cycles", "48", "--lanes", "4", "--no-gates", "--no-verify",
        "--no-cache"]


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, capsys, tmp_path):
        argv = (["fuzz", "--seed", "3", "--specs", "4",
                 "--max-blocks", "12"] + FAST
                + ["--mutate", "broken-early-join"])
        runs = []
        for label in ("a", "b"):
            corpus = tmp_path / label
            report = tmp_path / f"{label}.json"
            code, out, _ = _run(capsys, argv + [
                "--corpus", str(corpus), "--json", str(report)])
            out = out.replace(str(report), "<report>")
            out = out.replace(str(corpus), "<corpus>")
            runs.append((code, out, corpus, report))
        (code_a, out_a, corpus_a, report_a), \
            (code_b, out_b, corpus_b, report_b) = runs
        assert code_a == code_b
        assert out_a == out_b
        assert report_a.read_bytes() == report_b.read_bytes()
        files_a = sorted(p.name for p in corpus_a.glob("*.json"))
        files_b = sorted(p.name for p in corpus_b.glob("*.json"))
        assert files_a == files_b and files_a
        match, mismatch, errors = filecmp.cmpfiles(
            corpus_a, corpus_b, files_a, shallow=False)
        assert mismatch == [] and errors == []

    def test_clean_campaign_exits_zero(self, capsys):
        code, out, _ = _run(
            capsys, ["fuzz", "--seed", "1", "--specs", "2",
                     "--max-blocks", "8"] + FAST)
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_nonzero(self, capsys):
        code, out, _ = _run(
            capsys, ["fuzz", "--seed", "3", "--specs", "4",
                     "--max-blocks", "12", "--mutate",
                     "broken-early-join"] + FAST)
        assert code == 1
        assert "finding(s)" in out
        assert "shrunk" in out


class TestReplay:
    @pytest.fixture()
    def corpus(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        code, _, _ = _run(
            capsys, ["fuzz", "--seed", "3", "--specs", "4",
                     "--max-blocks", "12", "--mutate", "broken-early-join",
                     "--corpus", str(corpus)] + FAST)
        assert code == 1
        return corpus

    def test_replay_reproduces(self, capsys, corpus):
        code, out, _ = _run(
            capsys, ["fuzz", "--replay", str(corpus)] + FAST)
        assert code == 0
        assert "reproduced" in out
        assert "0 without repro" in out

    def test_replay_flags_a_fixed_bug(self, capsys, corpus, tmp_path):
        # Strip the mutation from one entry: the historical bug is now
        # "fixed", so the entry must stop reproducing and exit nonzero.
        entry_file = sorted(corpus.glob("*.json"))[0]
        data = json.loads(entry_file.read_text())
        data["mutation"] = None
        entry_file.write_text(json.dumps(data, sort_keys=True, indent=2))
        code, out, _ = _run(
            capsys, ["fuzz", "--replay", str(corpus)] + FAST)
        assert code == 1
        assert "NO REPRO" in out

    def test_empty_corpus_is_an_error(self, capsys, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no corpus entries"):
            main(["fuzz", "--replay", str(empty)] + FAST)


class TestErrors:
    def test_unknown_mutation_is_an_error(self, capsys):
        with pytest.raises(SystemExit, match="unknown mutation"):
            main(["fuzz", "--mutate", "nonsense"] + FAST)


class TestReport:
    def test_json_report_matches_stdout_counts(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code, out, _ = _run(
            capsys, ["fuzz", "--seed", "3", "--specs", "4",
                     "--max-blocks", "12", "--mutate", "broken-early-join",
                     "--json", str(report_path)] + FAST)
        report = json.loads(report_path.read_text())
        assert report["seed"] == 3
        assert report["examined"] == 4
        assert report["budget_exhausted"] is False
        assert f"{len(report['findings'])} finding(s)" in out
        for entry in report["findings"]:
            assert entry["blocks_after"] <= entry["blocks_before"]

    def test_progress_goes_to_stderr(self, capsys):
        code, out, err = _run(
            capsys, ["fuzz", "--seed", "1", "--specs", "2",
                     "--max-blocks", "8", "--progress"] + FAST)
        assert "2/2 spec(s)" in err
        assert "spec(s), 0 finding(s)" in out
