"""Acceptance: the planted broken-early-join arbiter is found by the
oracle and auto-shrunk to a handful of blocks, and the corpus entry
replays."""

import pytest

from repro.fuzz.corpus import replay_entry
from repro.fuzz.model import SpecModel
from repro.fuzz.oracle import OracleConfig
from repro.fuzz.runner import run_demo

FAST = OracleConfig(cycles=64, lanes=8, check_gates=False,
                    check_verify=False)


@pytest.fixture(scope="module")
def demo_entry():
    return run_demo(seed=0)


class TestDemo:
    def test_finding_is_a_protocol_violation(self, demo_entry):
        assert demo_entry.finding["stage"] == "behavioral"
        detail = demo_entry.finding["detail"]
        assert "invariant" in detail or "Retry" in detail

    def test_shrunk_to_at_most_six_blocks(self, demo_entry):
        d = demo_entry.to_dict()
        assert d["blocks_after"] <= 6
        assert d["blocks_after"] <= d["blocks_before"]

    def test_guilty_early_join_survives_the_shrink(self, demo_entry):
        shrunk = SpecModel.from_dict(demo_entry.shrunk)
        assert any(b.ee is not None and b.n_inputs >= 2
                   for b in shrunk.blocks)

    def test_entry_replays(self, demo_entry):
        replayed = replay_entry(demo_entry, config=FAST)
        assert replayed is not None
        assert replayed.stage == "behavioral"

    def test_demo_is_deterministic(self, demo_entry):
        again = run_demo(seed=0)
        assert again.to_json() == demo_entry.to_json()

    def test_mutation_name_is_recorded(self, demo_entry):
        assert demo_entry.mutation == "broken-early-join"
