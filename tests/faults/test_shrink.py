"""Trace shrinking: ddmin on injection schedules."""

import pytest

from repro.faults.campaign import CampaignConfig, CampaignHarness
from repro.faults.models import Injection
from repro.faults.shrink import (
    failing_predicate,
    render_failure,
    shrink_schedule,
)
from repro.faults.targets import dual_ehb


class TestDdmin:
    def test_single_culprit_survives(self):
        schedule = list(range(8))
        result = shrink_schedule(
            schedule, lambda s: 5 in s, minimise_windows=False
        )
        assert result == [5]

    def test_pair_of_culprits_survives(self):
        schedule = list(range(10))
        result = shrink_schedule(
            schedule, lambda s: 2 in s and 9 in s, minimise_windows=False
        )
        assert sorted(result) == [2, 9]

    def test_passing_schedule_is_rejected(self):
        with pytest.raises(ValueError):
            shrink_schedule([1, 2, 3], lambda s: False,
                            minimise_windows=False)

    def test_already_minimal_is_kept(self):
        assert shrink_schedule([4], lambda s: 4 in s,
                               minimise_windows=False) == [4]


class TestFlakyPredicates:
    """Probes that raise or stop reproducing must cost one reduction
    step, never crash the shrinker."""

    def test_probe_that_raises_is_not_taken(self):
        def fails(schedule):
            if len(schedule) < 4:
                raise RuntimeError("candidate replay exploded")
            return 5 in schedule

        result = shrink_schedule(list(range(8)), fails,
                                 minimise_windows=False)
        # Every sub-4 probe raised, so reduction stopped there -- but the
        # result is still a confirmed-failing schedule containing 5.
        assert 5 in result
        assert len(result) >= 4

    def test_probe_that_always_raises_keeps_the_original(self):
        calls = {"n": 0}

        def fails(schedule):
            calls["n"] += 1
            if calls["n"] == 1:
                return True  # the initial confirmation
            raise OSError("simulator went away")

        schedule = [3, 1, 4, 1, 5]
        assert shrink_schedule(schedule, fails,
                               minimise_windows=False) == schedule

    def test_intermittent_failure_still_shrinks_to_a_culprit(self):
        flaky = {"n": 0}

        def fails(schedule):
            flaky["n"] += 1
            if flaky["n"] % 3 == 0:
                return False  # every third probe loses the repro
            return 6 in schedule

        result = shrink_schedule(list(range(10)), fails,
                                 minimise_windows=False)
        assert 6 in result
        assert len(result) < 10

    def test_window_tightening_survives_raising_probes(self):
        # The _tighten probes mutate candidates via dataclasses.replace;
        # a predicate that raises on transient variants must leave the
        # confirmed permanent fault in place.
        culprit = Injection("eb.t0", "stuck1")

        def fails(schedule):
            if any(f.duration is not None for f in schedule):
                raise ValueError("transient replay unsupported here")
            return any(f.net == "eb.t0" for f in schedule)

        minimal = shrink_schedule([culprit], fails)
        assert minimal == [culprit]

    def test_initial_nonfailing_exception_propagates(self):
        def fails(schedule):
            raise RuntimeError("broken before we even started")

        # The first confirmation runs unwrapped: a schedule that cannot
        # even be evaluated is a caller bug, not a flake.
        with pytest.raises(RuntimeError, match="before we even started"):
            shrink_schedule([1, 2], fails, minimise_windows=False)


class TestDeterministicTieBreak:
    """Equal-sized reductions resolve by canonical label order, so the
    shrunk schedule is a function of the failing *set*, not of the
    order the campaign discovered it in."""

    def test_order_independent_result(self):
        fails = lambda s: len(s) >= 1  # noqa: E731 - anything fails
        assert shrink_schedule(["a", "b"], fails,
                               minimise_windows=False) == ["a"]
        assert shrink_schedule(["b", "a"], fails,
                               minimise_windows=False) == ["a"]

    def test_permutations_converge(self):
        import itertools

        def fails(s):
            return "x" in s or "y" in s

        results = {
            tuple(shrink_schedule(list(perm), fails,
                                  minimise_windows=False))
            for perm in itertools.permutations(["x", "y", "z"])
        }
        assert results == {("x",)}

    def test_fixed_seed_output_is_byte_stable(self):
        # Locks the shrink output for one seeded schedule: any change
        # to the reduction order or tie-break shows up here.
        import random

        rng = random.Random("shrink-regression:1")
        schedule = [f"inj{rng.randrange(100):02d}" for _ in range(17)]
        culprits = {schedule[3], schedule[11]}

        def fails(s):
            return culprits.issubset(s)

        result = shrink_schedule(list(schedule), fails,
                                 minimise_windows=False)
        assert result == sorted(
            culprits, key=schedule.index
        ), f"tie-break regression: {result!r}"
        again = shrink_schedule(list(schedule), fails,
                                minimise_windows=False)
        assert repr(again) == repr(result)

    def test_injection_labels_drive_the_tie_break(self):
        a = Injection("eb.a0", "flip", cycle=3, duration=1)
        b = Injection("eb.t1", "flip", cycle=3, duration=1)
        fails = lambda s: len(s) >= 1  # noqa: E731
        fwd = shrink_schedule([a, b], fails, minimise_windows=False)
        rev = shrink_schedule([b, a], fails, minimise_windows=False)
        assert fwd == rev == [a]


class TestEndToEnd:
    """The acceptance scenario: a multi-fault failing schedule shrinks
    to a single-injection repro."""

    @pytest.fixture(scope="class")
    def harness(self):
        return CampaignHarness(dual_ehb(), CampaignConfig(cycles=120))

    def test_multi_fault_schedule_shrinks_to_one(self, harness):
        fails = failing_predicate(harness)
        culprit = Injection("eb.t0", "stuck1")
        # Riders with windows beyond the horizon never influence the
        # run; ddmin must strip them all.
        riders = [
            Injection(net, "flip", cycle=10_000, duration=1)
            for net in ("eb.t1", "eb.a0", "eb.a1")
        ]
        schedule = riders[:2] + [culprit] + riders[2:]
        assert fails(schedule)
        minimal = shrink_schedule(schedule, fails)
        assert len(minimal) == 1
        assert minimal[0].net == culprit.net
        assert minimal[0].kind == culprit.kind
        assert fails(minimal)

    def test_window_minimisation_produces_a_transient(self, harness):
        fails = failing_predicate(harness)
        minimal = shrink_schedule([Injection("eb.t0", "stuck1")], fails)
        # A permanent stuck-at whose effect is immediate tightens to a
        # short transient window.
        assert minimal[0].duration is not None

    def test_render_failure_shows_trace_and_verdict(self, harness):
        minimal = shrink_schedule(
            [Injection("eb.t0", "stuck1")], failing_predicate(harness)
        )
        text = render_failure(harness, minimal)
        assert "violation:" in text
        assert "counterexample" in text
        assert minimal[0].label().split("@")[0] in text

    def test_render_without_failure_says_so(self, harness):
        text = render_failure(
            harness, [Injection("eb.t0", "flip", cycle=10_000, duration=1)]
        )
        assert "no violation" in text
