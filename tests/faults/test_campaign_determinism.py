"""Determinism of the lane-parallel / process-sharded campaign runner.

The bit-parallel backend and the process sharding are pure
implementation choices: for a given (target, config) the JSON campaign
report must be *byte-identical* whatever ``lanes``/``jobs`` split runs
it.  A fixed-seed golden report is checked in to catch any silent
drift in stimulus generation, monitor ordering or report formatting.
"""

import functools
import pathlib

import pytest

from repro.faults import (
    CampaignConfig,
    CampaignHarness,
    enumerate_injections,
    resolve_target,
    run_campaign,
    run_seed_sweep,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "dual_ehb_c120_s2007.json"
CONFIG = CampaignConfig(cycles=120, seed=2007)


@functools.lru_cache(maxsize=None)
def _report_json(lanes: int, jobs: int, kinds=None) -> str:
    config = CONFIG if kinds is None else CampaignConfig(
        cycles=120, seed=2007, kinds=kinds
    )
    return run_campaign("dual_ehb", config, lanes=lanes, jobs=jobs).to_json()


def test_matches_checked_in_golden():
    assert _report_json(1, 1) == GOLDEN.read_text()


@pytest.mark.parametrize("lanes,jobs", [(64, 1), (64, 4), (1, 3), (7, 2)])
def test_sharded_report_is_byte_identical(lanes, jobs):
    assert _report_json(lanes, jobs) == _report_json(1, 1)


def test_flip_faults_shard_identically():
    kinds = ("stuck0", "stuck1", "flip")
    assert _report_json(64, 4, kinds) == _report_json(1, 1, kinds)


def test_invalid_lane_and_job_counts():
    with pytest.raises(ValueError):
        run_campaign("dual_ehb", CONFIG, lanes=0)
    with pytest.raises(ValueError):
        run_campaign("dual_ehb", CONFIG, jobs=0)


def test_chunk_order_never_changes_batch_verdicts():
    """Regression: a reused batch harness must clear lane overrides.

    Stuck faults stay active to the end of their run; before the fix a
    chunk whose earliest activity edge sat past cycle 0 simulated its
    opening cycles under the *previous* chunk's faults, so verdicts
    depended on which chunk a worker happened to run first (late
    injection cycles made this visible: spurious detections of faults
    that never even activate inside the horizon).
    """
    from repro.faults.campaign import _chunked, _make_harness

    config = CampaignConfig(
        cycles=40, seed=2007, injection_cycles=tuple(range(0, 109, 7)),
        untestable_analysis=False,
    )
    target = resolve_target("dual_ehb")
    chunks = _chunked(enumerate_injections(target, config), 32)
    reused = _make_harness(target, config, 32, True, None)
    in_order = [
        [o.to_dict() for o in reused.run_chunk(chunk)] for chunk in chunks
    ]
    for index in (2, 0, len(chunks) - 1):
        fresh = _make_harness(target, config, 32, True, None)
        assert [
            o.to_dict() for o in fresh.run_chunk(chunks[index])
        ] == in_order[index], f"chunk {index} depends on chunk order"


def test_seed_sweep_matches_scalar_harnesses():
    """One fault x many seeds: each lane equals its own scalar run."""
    target = resolve_target("early_join")
    seeds = list(range(8))
    injections = enumerate_injections(target, CONFIG)[:3]
    for injection in injections:
        batched = run_seed_sweep(target, injection, seeds, CONFIG)
        for seed, outcome in zip(seeds, batched):
            config = CampaignConfig(cycles=CONFIG.cycles, seed=seed)
            scalar = CampaignHarness(target, config).outcome(injection)
            assert outcome == scalar, (injection.label(), seed)
