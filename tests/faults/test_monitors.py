"""Online monitors: invariants, persistence, encoding, conservation."""

import pytest

from repro.elastic.gates import GateChannel
from repro.faults.monitors import (
    ConservationMonitor,
    EbProbe,
    EncodingMonitor,
    GoldenMonitor,
    InvariantMonitor,
    PersistenceMonitor,
    buffer_monitors,
    channel_monitors,
)
from repro.rtl.netlist import Netlist


@pytest.fixture
def channel():
    return GateChannel.declare(Netlist("scratch"), "C")


def wires(ch, vp=0, sp=0, vn=0, sn=0):
    return {ch.vp: vp, ch.sp: sp, ch.vn: vn, ch.sn: sn}


class TestInvariantMonitor:
    def test_quiet_channel_is_fine(self, channel):
        mon = InvariantMonitor(channel)
        assert mon.observe(0, wires(channel)) is None
        assert mon.observe(1, wires(channel, vp=1, sp=1)) is None

    def test_vp_and_sn_fires(self, channel):
        violation = InvariantMonitor(channel).observe(
            3, wires(channel, vp=1, sn=1)
        )
        assert violation is not None
        assert violation.cycle == 3
        assert "invariant" in violation.monitor

    def test_vn_and_sp_fires(self, channel):
        assert InvariantMonitor(channel).observe(
            0, wires(channel, vn=1, sp=1)
        ) is not None


class TestPersistenceMonitor:
    def test_retry_must_persist(self, channel):
        mon = PersistenceMonitor(channel)
        assert mon.observe(0, wires(channel, vp=1, sp=1)) is None
        violation = mon.observe(1, wires(channel))
        assert violation is not None and "Retry+" in violation.detail

    def test_kill_resolves_the_retry(self, channel):
        mon = PersistenceMonitor(channel)
        # V+ and V- together: the token is killed, no retry pends.
        assert mon.observe(0, wires(channel, vp=1, sp=1, vn=1)) is None
        assert mon.observe(1, wires(channel)) is None

    def test_negative_retry_must_persist(self, channel):
        mon = PersistenceMonitor(channel)
        assert mon.observe(0, wires(channel, vn=1, sn=1)) is None
        violation = mon.observe(1, wires(channel))
        assert violation is not None and "Retry-" in violation.detail

    def test_reset_forgets_history(self, channel):
        mon = PersistenceMonitor(channel)
        mon.observe(0, wires(channel, vp=1, sp=1))
        mon.reset()
        assert mon.observe(1, wires(channel)) is None


@pytest.fixture
def probe():
    nl = Netlist("scratch")
    return EbProbe("eb", GateChannel.declare(nl, "L"),
                   GateChannel.declare(nl, "R"))


def eb_values(probe, t0=0, t1=0, a0=0, a1=0, **boundary):
    values = {f"eb.{k}": v
              for k, v in dict(t0=t0, t1=t1, a0=a0, a1=a1).items()}
    values.update(wires(probe.left))
    values.update(wires(probe.right))
    for key, value in boundary.items():
        side, wire = key.split("_")
        ch = probe.left if side == "l" else probe.right
        values[getattr(ch, wire)] = value
    return values


class TestEncodingMonitor:
    def test_thermometer_violations(self, probe):
        mon = EncodingMonitor(probe)
        assert mon.observe(0, eb_values(probe, t0=1, t1=1)) is None
        assert mon.observe(1, eb_values(probe, t1=1)) is not None
        assert mon.observe(2, eb_values(probe, a1=1)) is not None

    def test_token_antitoken_exclusion(self, probe):
        violation = EncodingMonitor(probe).observe(
            0, eb_values(probe, t0=1, a0=1)
        )
        assert violation is not None and "coexist" in violation.detail


class TestConservationMonitor:
    def test_spontaneous_token_loss_fires(self, probe):
        mon = ConservationMonitor(probe)
        assert mon.observe(0, eb_values(probe, t0=1)) is None
        violation = mon.observe(1, eb_values(probe))
        assert violation is not None and "conservation" in violation.monitor

    def test_transfer_out_is_legal(self, probe):
        mon = ConservationMonitor(probe)
        # Cycle 0: one token, transferring out (R.vp, no stop/anti).
        assert mon.observe(0, eb_values(probe, t0=1, r_vp=1)) is None
        # Cycle 1: empty, as the event implies.
        assert mon.observe(1, eb_values(probe)) is None

    def test_token_in_is_legal(self, probe):
        mon = ConservationMonitor(probe)
        assert mon.observe(0, eb_values(probe, l_vp=1)) is None
        assert mon.observe(1, eb_values(probe, t0=1)) is None
        # ... and a second consecutive accept.
        assert mon.observe(1, eb_values(probe, t0=1, l_vp=1)) is None
        assert mon.observe(2, eb_values(probe, t0=1, t1=1)) is None

    def test_kill_annihilates(self, probe):
        mon = ConservationMonitor(probe)
        # An anti-token stored; a token arrives: kill at the left edge.
        assert mon.observe(0, eb_values(probe, a0=1, l_vp=1, l_vn=1)) is None
        assert mon.observe(1, eb_values(probe)) is None


class TestGoldenMonitor:
    def test_matches_are_silent(self):
        mon = GoldenMonitor(["w"], [{"w": 1}, {"w": 0}])
        assert mon.observe(0, {"w": 1}) is None
        assert mon.observe(1, {"w": 0}) is None
        assert mon.observe(5, {"w": 1}) is None  # past the reference

    def test_divergence_names_the_wire(self):
        violation = GoldenMonitor(["w"], [{"w": 1}]).observe(0, {"w": 0})
        assert violation is not None
        assert "w" in violation.monitor


def test_factories_cover_all_rules(probe, channel):
    bank = channel_monitors([channel])
    assert {type(m) for m in bank} == {InvariantMonitor, PersistenceMonitor}
    bank = buffer_monitors([probe])
    assert {type(m) for m in bank} == {EncodingMonitor, ConservationMonitor}
