"""The opt-in ``degradation`` key of the campaign report."""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    _degradation_summary,
    run_campaign,
)
from repro.obs import MetricsRegistry

CONFIG = CampaignConfig(cycles=120, seed=2007)


def test_default_report_has_no_degradation_key():
    report = run_campaign("join", CONFIG, lanes=8)
    assert report.degradation is None
    assert "degradation" not in report.to_dict()


def test_opt_in_adds_the_key_without_touching_outcomes():
    plain = run_campaign("join", CONFIG, lanes=8)
    with_key = run_campaign("join", CONFIG, lanes=8, degradation=True)
    assert [o.to_dict() for o in plain.outcomes] == [
        o.to_dict() for o in with_key.outcomes
    ]
    summary = with_key.degradation
    assert summary == with_key.to_dict()["degradation"]
    assert summary["enabled"] is True
    assert summary["lanes"] == 8
    # A healthy sweep quarantines nothing.
    assert summary["quarantined"] == 0
    assert summary["by_reason"] == {}
    # The rest of the report is unchanged: stripping the key restores
    # the byte-identical golden serialisation.
    with_key.degradation = None
    assert plain.to_json() == with_key.to_json()


def test_scalar_campaign_reports_degradation_disabled():
    report = run_campaign("join", CONFIG, lanes=1, degradation=True)
    assert report.degradation["enabled"] is False
    assert report.degradation["lanes"] == 1


def test_summary_tallies_quarantines_by_reason():
    registry = MetricsRegistry()
    registry.counter(
        "campaign_lane_quarantine_total", reason="integrity", target="join"
    ).inc(3)
    registry.counter(
        "campaign_lane_quarantine_total", reason="compile", target="join"
    ).inc(8)
    registry.counter(  # another target's lanes must not leak in
        "campaign_lane_quarantine_total", reason="integrity", target="fork"
    ).inc(5)
    registry.counter("campaign_shard_retries_total", reason="timeout").inc(2)
    summary = _degradation_summary(registry, "join", lanes=8, degrade=True)
    assert summary["quarantined"] == 11
    assert summary["by_reason"] == {"compile": 8, "integrity": 3}
    assert summary["shard_retries"] == 2


def test_degradation_serialises_next_to_metrics():
    report = CampaignReport(target="t", seed=1, cycles=10)
    report.metrics = {"wall_time_s": 0.5}
    report.degradation = {"enabled": True, "quarantined": 0}
    d = report.to_dict()
    assert d["metrics"] == {"wall_time_s": 0.5}
    assert d["degradation"] == {"enabled": True, "quarantined": 0}
