"""Campaign runner: coverage, determinism, untestability proofs."""

import json

import pytest

from repro.faults.campaign import (
    CampaignConfig,
    CampaignHarness,
    ProcessorCampaignConfig,
    enumerate_injections,
    make_stimulus,
    prove_untestable,
    resolve_target,
    run_campaign,
    run_processor_campaign,
)
from repro.faults.models import Injection
from repro.faults.targets import TARGETS, dual_ehb

CONFIG = CampaignConfig(cycles=250, seed=2007)


@pytest.fixture(scope="module")
def dual_ehb_report():
    return run_campaign("dual_ehb", CONFIG)


class TestDualEhbCoverage:
    """The headline claim: every testable stuck-at on the dual-EHB
    control nets is caught by an online monitor."""

    def test_full_coverage(self, dual_ehb_report):
        assert dual_ehb_report.coverage == 1.0
        assert dual_ehb_report.counts()["undetected"] == 0
        assert dual_ehb_report.counts()["latent"] == 0

    def test_sweep_covers_every_site_and_kind(self, dual_ehb_report):
        target = dual_ehb()
        assert len(dual_ehb_report.outcomes) == 2 * len(target.fault_sites)

    def test_detections_name_monitor_and_cycle(self, dual_ehb_report):
        for outcome in dual_ehb_report.detected():
            assert outcome.monitor
            assert outcome.detection_cycle is not None
            assert 0 <= outcome.detection_cycle < CONFIG.cycles

    def test_multiple_monitor_classes_fire(self, dual_ehb_report):
        classes = {o.monitor.split("[")[0] for o in dual_ehb_report.detected()}
        # Faults are caught by protocol rules and state checks alike,
        # not just by the golden reference.
        assert len(classes) >= 3

    def test_escapes_are_proven_untestable(self, dual_ehb_report):
        escapes = [
            o for o in dual_ehb_report.outcomes if o.status == "untestable"
        ]
        # The Fig. 5 implementation has exactly two redundant faults:
        # the ¬V− term of out_pos and the ¬V+ term of out_neg are
        # shadowed by the kill terms of dec/inc.
        assert len(escapes) == 2
        assert all("equivalent" in o.detail for o in escapes)
        assert {o.fault.split("(")[0] for o in escapes} == {"stuck1"}


class TestUntestabilityProof:
    def test_known_redundant_fault_is_proven(self, dual_ehb_report):
        target = dual_ehb()
        escapes = {
            o.fault for o in dual_ehb_report.outcomes
            if o.status == "untestable"
        }
        by_label = {
            i.label(): i for i in enumerate_injections(target, CONFIG)
        }
        for label in escapes:
            assert prove_untestable(target, by_label[label])

    def test_testable_fault_is_not_proven(self):
        target = dual_ehb()
        assert not prove_untestable(target, Injection("eb.t0", "stuck1"))


class TestDeterminism:
    def test_stimulus_is_seeded(self):
        a = make_stimulus(["x", "y"], 50, seed=1)
        b = make_stimulus(["x", "y"], 50, seed=1)
        c = make_stimulus(["x", "y"], 50, seed=2)
        assert a == b
        assert a != c

    def test_report_is_byte_for_byte_reproducible(self, dual_ehb_report):
        again = run_campaign("dual_ehb", CONFIG)
        assert again.to_json() == dual_ehb_report.to_json()

    def test_json_is_valid_and_complete(self, dual_ehb_report):
        data = json.loads(dual_ehb_report.to_json())
        assert data["target"] == "dual_ehb"
        assert data["seed"] == CONFIG.seed
        assert len(data["faults"]) == len(dual_ehb_report.outcomes)
        assert data["coverage"] == 1.0


class TestSweepMechanics:
    def test_enumeration_is_site_times_kind_times_cycle(self):
        target = dual_ehb()
        config = CampaignConfig(
            kinds=("stuck0", "flip"), injection_cycles=(0, 7)
        )
        injections = enumerate_injections(target, config)
        assert len(injections) == len(target.fault_sites) * 2 * 2
        flips = [i for i in injections if i.kind == "flip"]
        assert all(i.duration == config.flip_duration for i in flips)

    def test_resolve_target_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_target("nonesuch")

    def test_transient_flips_are_mostly_caught(self):
        report = run_campaign(
            "dual_ehb",
            CampaignConfig(cycles=120, kinds=("flip",),
                           injection_cycles=(25,)),
        )
        counts = report.counts()
        assert counts["detected"] > len(report.outcomes) // 2

    @pytest.mark.parametrize("name", sorted(set(TARGETS) - {"dual_ehb"}))
    def test_other_targets_accept_campaigns(self, name):
        report = run_campaign(
            name,
            CampaignConfig(cycles=60, kinds=("stuck1",),
                           untestable_analysis=False),
        )
        assert report.outcomes
        assert report.counts()["detected"] > 0


class TestHarness:
    def test_empty_schedule_matches_golden(self):
        harness = CampaignHarness(dual_ehb(), CampaignConfig(cycles=80))
        violation, _, final_state = harness.run_schedule([])
        assert violation is None
        assert final_state == harness.golden_final

    def test_recording_returns_int_signals(self):
        harness = CampaignHarness(dual_ehb(), CampaignConfig(cycles=30))
        _, steps, _ = harness.run_schedule([], record=True)
        assert len(steps) == 30
        for step in steps:
            assert all(v in (0, 1) for v in step.signals.values())


class TestProcessorCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_processor_campaign(
            ProcessorCampaignConfig(cycles=150, seed=2007)
        )

    def test_online_and_golden_detections(self, report):
        monitors = {o.monitor for o in report.detected()}
        assert "protocol" in monitors      # caught while running
        assert "golden-data" in monitors   # caught by the committed trace

    def test_statuses_are_classified(self, report):
        assert {o.status for o in report.outcomes} <= {
            "detected", "latent", "undetected"
        }
        assert report.counts()["detected"] > len(report.outcomes) // 2

    def test_reproducible(self, report):
        again = run_processor_campaign(
            ProcessorCampaignConfig(cycles=150, seed=2007)
        )
        assert again.to_json() == report.to_json()
