"""Fault models: RTL injections, channel glitches, buffer upsets."""

import random

import pytest

from repro.elastic.behavioral import (
    ElasticBuffer,
    ElasticNetwork,
    Sink,
    Source,
)
from repro.elastic.channel import Channel
from repro.elastic.protocol import ProtocolViolation
from repro.faults.models import (
    BufferFault,
    ChannelFault,
    Injection,
    RtlFaultInjector,
    StateSaboteur,
    WireSaboteur,
    transient_flip,
)
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator


def tiny_netlist():
    """a -> flop -> y, one cycle of latency."""
    nl = Netlist("tiny")
    a = nl.add_input("a")
    q = nl.add_flop("q_d", q="q", init=0)
    nl.BUF(a, out="q_d")
    nl.BUF(q, out="y")
    nl.add_output("y")
    return nl


class TestInjection:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Injection("n", "bridge")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            Injection("n", "stuck0", cycle=-1)
        with pytest.raises(ValueError):
            Injection("n", "flip", cycle=0, duration=0)

    def test_permanent_window(self):
        inj = Injection("n", "stuck1", cycle=3)
        assert not inj.active(2)
        assert inj.active(3)
        assert inj.active(1000)

    def test_transient_window(self):
        inj = transient_flip("n", cycle=5, duration=2)
        assert [t for t in range(10) if inj.active(t)] == [5, 6]

    def test_overrides(self):
        assert Injection("n", "stuck0").override() == 0
        assert Injection("n", "stuck1").override() == 1
        flip = Injection("n", "flip", duration=1).override()
        assert callable(flip) and flip(0) == 1 and flip(1) == 0

    def test_labels_are_unique_per_fault(self):
        labels = {
            Injection("n", k, c).label()
            for k in ("stuck0", "stuck1")
            for c in (0, 1)
        }
        assert len(labels) == 4


class TestRtlFaultInjector:
    def test_rejects_unknown_net(self):
        sim = TwoPhaseSimulator(tiny_netlist())
        with pytest.raises(ValueError):
            RtlFaultInjector(sim, [Injection("nope", "stuck0")])

    def test_fault_free_passthrough(self):
        inj = RtlFaultInjector(TwoPhaseSimulator(tiny_netlist()))
        assert inj.cycle({"a": 1})["y"] == 0
        assert inj.cycle({"a": 0})["y"] == 1
        assert inj.cycle({"a": 0})["y"] == 0

    def test_stuck_at_forces_net(self):
        inj = RtlFaultInjector(
            TwoPhaseSimulator(tiny_netlist()), [Injection("y", "stuck1")]
        )
        assert all(inj.cycle({"a": 0})["y"] == 1 for _ in range(4))

    def test_flop_recovers_after_transient(self):
        # Flip the flop's visible q for one cycle: the sampled d is
        # unaffected, so the output must recover the cycle after.
        inj = RtlFaultInjector(
            TwoPhaseSimulator(tiny_netlist()), [transient_flip("q", cycle=2)]
        )
        outs = [inj.cycle({"a": 1})["y"] for _ in range(5)]
        assert outs == [0, 1, 0, 1, 1]

    def test_reset_replaces_schedule(self):
        injector = RtlFaultInjector(
            TwoPhaseSimulator(tiny_netlist()), [Injection("y", "stuck1")]
        )
        injector.cycle({"a": 0})
        injector.reset([])
        assert injector.sim.time == 0
        assert injector.cycle({"a": 0})["y"] == 0


class TestChannelFault:
    def settled_channel(self, vp=0, sp=0, vn=0, sn=0, data=None):
        ch = Channel("c", monitor=False)
        ch.drive_vp(vp)
        ch.drive_sp(sp)
        ch.drive_vn(vn)
        ch.drive_sn(sn)
        if data is not None:
            ch.put_data(data)
        return ch

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ChannelFault("c", "emp", 0)

    def test_token_drop_needs_a_token(self):
        fault = ChannelFault("c", "token_drop", 0)
        assert not fault.apply(self.settled_channel(vp=0))
        ch = self.settled_channel(vp=1, data=7)
        assert fault.apply(ch)
        assert ch.vp == 0 and ch.data is None

    def test_spurious_token_and_anti(self):
        ch = self.settled_channel()
        assert ChannelFault("c", "spurious_token", 0).apply(ch)
        assert ch.vp == 1
        assert ChannelFault("c", "spurious_anti", 0).apply(ch)
        assert ch.vn == 1

    def test_handshake_glitches_invert(self):
        ch = self.settled_channel(sp=1, sn=0)
        assert ChannelFault("c", "glitch_sp", 0).apply(ch)
        assert ch.sp == 0
        assert ChannelFault("c", "glitch_sn", 0).apply(ch)
        assert ch.sn == 1


class TestBufferFault:
    def buffered(self, tokens):
        left, right = Channel("l", monitor=False), Channel("r", monitor=False)
        return ElasticBuffer(
            "b", left, right, capacity=2, initial_tokens=tokens,
            initial_data=list(range(tokens)),
        )

    def test_dup_and_loss(self):
        buf = self.buffered(1)
        assert BufferFault("b", "token_dup", 0).apply(buf)
        assert buf.count == 2 and buf.data == [0, 0]
        assert BufferFault("b", "token_loss", 0).apply(buf)
        assert buf.count == 1

    def test_empty_buffer_does_not_arm(self):
        buf = self.buffered(0)
        assert not BufferFault("b", "token_dup", 0).apply(buf)
        assert not BufferFault("b", "token_loss", 0).apply(buf)


def source_sink_network(seed=3, p_stop=0.0):
    net = ElasticNetwork("n")
    a, b = net.add_channel("a"), net.add_channel("b")
    net.add(Source("src", a, rng=random.Random(seed)))
    net.add(ElasticBuffer("eb", a, b))
    sink = Sink("snk", b, p_stop=p_stop, rng=random.Random(seed + 1))
    net.add(sink)
    return net, sink


class TestSaboteurs:
    def test_wire_saboteur_delays_the_stream(self):
        golden_net, golden_sink = source_sink_network()
        golden_net.run(40)
        net, sink = source_sink_network()
        saboteur = WireSaboteur([ChannelFault("b", "token_drop", 10)])
        net.add_saboteur(saboteur)
        net.run(40)
        assert saboteur.applied
        assert len(sink.received) < len(golden_sink.received)
        # No data corruption, only delay: the received prefix matches.
        assert golden_sink.received[: len(sink.received)] == sink.received

    def test_state_saboteur_overflow_is_flagged(self):
        # Stall the sink so the EB is full, then duplicate: the
        # buffer's own occupancy-range check must trip.
        net, _ = source_sink_network(p_stop=1.0)
        saboteur = StateSaboteur(
            [BufferFault("eb", "token_dup", 20)], {"eb": net.controllers[1]}
        )
        net.add_saboteur(saboteur)
        with pytest.raises(ProtocolViolation):
            net.run(40)
        assert saboteur.applied

    def test_state_saboteur_rejects_unknown_buffer(self):
        with pytest.raises(ValueError):
            StateSaboteur([BufferFault("ghost", "token_loss", 0)], {})
