"""Tests for the deadlock/livelock watchdogs (behavioural and RTL)."""

import random

import pytest

from repro.elastic.behavioral import (
    EagerFork,
    ElasticBuffer,
    ElasticNetwork,
    EarlyJoin,
    Sink,
    Source,
)
from repro.elastic.ee import AndEE
from repro.faults.targets import TARGETS
from repro.resilience import (
    NetworkStallWatchdog,
    RtlStallWatchdog,
    StallDiagnosis,
    StallError,
)
from repro.rtl.simulator import TwoPhaseSimulator


def full_eb_ring(n=3):
    """A ring of full capacity-1 EBs: the canonical token deadlock."""
    net = ElasticNetwork("ring")
    chans = [net.add_channel(f"c{i}", monitor=False) for i in range(n)]
    for i in range(n):
        net.add(ElasticBuffer(
            f"eb{i}", chans[i], chans[(i + 1) % n],
            capacity=1, initial_tokens=1, initial_data=[i],
        ))
    return net


def ee_join_loop(capacity):
    """Fig. 7 shape: EE join fed by a source and its own feedback loop."""
    net = ElasticNetwork("eej")
    a = net.add_channel("a", monitor=False)
    z = net.add_channel("z", monitor=False)
    out = net.add_channel("out", monitor=False)
    fbp = net.add_channel("fbp", monitor=False)
    fb = net.add_channel("fb", monitor=False)
    net.add(Source("src", a, rng=random.Random(1)))
    net.add(EarlyJoin("ej", [a, fb], z, AndEE(2)))
    net.add(EagerFork("fk", z, [out, fbp]))
    net.add(ElasticBuffer(
        "eb", fbp, fb, capacity=capacity, initial_tokens=1, initial_data=[0]
    ))
    sink = Sink("snk", out, p_stop=0.0, rng=random.Random(2))
    net.add(sink)
    return net, sink


class TestNetworkWatchdog:
    def test_deadlock_ring_names_the_stop_cycle(self):
        net = full_eb_ring()
        NetworkStallWatchdog(window=8).attach(net)
        with pytest.raises(StallError) as exc:
            net.run(100)
        d = exc.value.diagnosis
        assert d.stop_cycle == ("c0.sp", "c2.sp", "c1.sp")
        assert d.cycle - d.last_progress >= 8
        assert "deadlock ring" in str(d)

    def test_stuck_stall_on_ee_join_network_fires_within_window(self):
        net, sink = ee_join_loop(capacity=2)
        wd = NetworkStallWatchdog(window=10).attach(net)
        net.run(40)  # healthy: tokens circulate, no stall
        assert wd.diagnoses == []
        sink.p_stop = 1.0  # the sink's stall control sticks at 1
        with pytest.raises(StallError) as exc:
            net.run(11)  # fires within one window of the fault
        d = exc.value.diagnosis
        # Acyclic wait graph: the chain walks join -> fork -> stuck sink.
        assert d.stop_cycle == ()
        assert d.blocked == ("a.sp", "z.sp", "out.sp")
        assert "stalled behind out.sp" in str(d)

    def test_wedged_ee_feedback_loop_is_a_ring(self):
        # A capacity-1 loop buffer cannot drain and refill in one cycle,
        # so the feedback ring wedges against itself.
        net, _ = ee_join_loop(capacity=1)
        NetworkStallWatchdog(window=10).attach(net)
        with pytest.raises(StallError) as exc:
            net.run(60)
        d = exc.value.diagnosis
        assert d.stop_cycle == ("fb.sp", "fbp.sp", "z.sp")

    def test_healthy_network_never_fires(self):
        net = ElasticNetwork("ok")
        c0 = net.add_channel("c0", monitor=False)
        c1 = net.add_channel("c1", monitor=False)
        net.add(Source("s", c0, rng=random.Random(7)))
        net.add(ElasticBuffer("eb", c0, c1))
        net.add(Sink("k", c1, p_stop=0.3, rng=random.Random(8)))
        wd = NetworkStallWatchdog(window=8).attach(net)
        net.run(300)
        assert wd.diagnoses == []

    def test_idle_network_is_not_a_stall(self):
        # Nothing offered -> nothing blocked, however long it idles.
        net = ElasticNetwork("idle")
        c0 = net.add_channel("c0", monitor=False)
        c1 = net.add_channel("c1", monitor=False)
        net.add(Source("s", c0, p_valid=0.0, rng=random.Random(1)))
        net.add(ElasticBuffer("eb", c0, c1))
        net.add(Sink("k", c1, p_stop=1.0, rng=random.Random(2)))
        wd = NetworkStallWatchdog(window=4).attach(net)
        net.run(50)
        assert wd.diagnoses == []

    def test_non_raising_mode_reports_and_continues(self):
        net = full_eb_ring()
        events = []
        diagnoses = []
        wd = NetworkStallWatchdog(
            window=5, sink=events.append, on_stall=diagnoses.append,
            raise_on_stall=False,
        )
        wd.attach(net)
        net.run(25)  # three windows' worth of stalling
        assert len(wd.diagnoses) >= 3
        assert diagnoses == wd.diagnoses
        assert all(e.kind == "stall" for e in events)
        assert events[0].extra["stop_cycle"] == ["c0.sp", "c2.sp", "c1.sp"]

    def test_stall_event_is_a_valid_trace_event(self):
        d = StallDiagnosis(
            cycle=40, window=8, last_progress=31,
            stop_cycle=("a.sp",), blocked=("a.sp",), detail="test",
        )
        event = d.to_event()
        assert event.kind == "stall"
        assert event.subject == "watchdog"
        assert event.extra["window"] == 8

    def test_window_validated(self):
        with pytest.raises(ValueError):
            NetworkStallWatchdog(window=0)


class TestRtlWatchdog:
    def _stalled_dual_ehb(self, window=8):
        target = TARGETS["dual_ehb"]()
        sim = TwoPhaseSimulator(target.netlist)
        wd = RtlStallWatchdog.for_target(target, sim, window=window)
        inputs = {
            "src.choice": 1, "src.accept": 0, "snk.stall": 1, "snk.kill": 0,
        }
        return sim, wd, inputs

    def test_stalled_sink_fires_within_window(self):
        sim, wd, inputs = self._stalled_dual_ehb(window=8)
        with pytest.raises(StallError) as exc:
            for _ in range(100):
                sim.cycle(inputs)
        d = exc.value.diagnosis
        # The EB cuts every combinational path, so the wait edges come
        # from the sequential fallback: the two retrying channels wait
        # on each other across cycles.
        assert d.blocked == ("L.sp", "R.sp")
        assert d.stop_cycle == ("L.sp", "R.sp")
        assert sim.time <= 8 + 3  # fired within the window, not at 100

    def test_healthy_rtl_run_never_fires(self):
        target = TARGETS["dual_ehb"]()
        sim = TwoPhaseSimulator(target.netlist)
        wd = RtlStallWatchdog.for_target(target, sim, window=8)
        rng = random.Random(5)
        for _ in range(200):
            sim.cycle({
                "src.choice": rng.getrandbits(1), "src.accept": 0,
                "snk.stall": rng.getrandbits(1), "snk.kill": 0,
            })
        assert wd.diagnoses == []

    def test_non_raising_mode_accumulates(self):
        sim, wd, inputs = self._stalled_dual_ehb(window=5)
        wd.raise_on_stall = False
        for _ in range(30):
            sim.cycle(inputs)
        assert len(wd.diagnoses) >= 2

    def test_window_validated(self):
        target = TARGETS["dual_ehb"]()
        sim = TwoPhaseSimulator(target.netlist)
        with pytest.raises(ValueError):
            RtlStallWatchdog.for_target(target, sim, window=0)
