"""Tests for graceful degradation: batch lanes falling back to scalar."""

import pytest

from repro.faults.batch import BatchCampaignHarness
from repro.faults.campaign import (
    CampaignConfig,
    CampaignHarness,
    enumerate_injections,
    resolve_target,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    DegradingCampaignHarness,
    LaneFaultError,
    verify_degradation,
)
from repro.rtl.toposort import CombinationalCycleError

CFG = CampaignConfig(cycles=60, seed=3, untestable_analysis=False)


def scalar_reference(tgt, injections):
    return CampaignHarness(tgt, CFG).run_chunk(injections)


class TestLaneIntegrity:
    def test_clean_simulator_reports_no_bad_lanes(self):
        tgt = resolve_target("dual_ehb")
        harness = BatchCampaignHarness(tgt, CFG, 4)
        harness.run_chunk(enumerate_injections(tgt, CFG)[:4])
        assert harness.sim.check_lane_integrity() == 0

    def test_encoding_violation_names_the_lane(self):
        tgt = resolve_target("dual_ehb")
        harness = BatchCampaignHarness(tgt, CFG, 4)
        harness.run_chunk(enumerate_injections(tgt, CFG)[:4])
        sim = harness.sim
        slot = next(iter(sim.state))
        vp, kp = sim.state[slot]
        sim.state[slot] = (vp | 0b100, kp & ~0b100)  # lane 2: v set, k clear
        assert sim.check_lane_integrity() == 0b100

    def test_bit_above_the_mask_taints_every_lane(self):
        tgt = resolve_target("dual_ehb")
        harness = BatchCampaignHarness(tgt, CFG, 4)
        harness.run_chunk(enumerate_injections(tgt, CFG)[:4])
        sim = harness.sim
        slot = next(iter(sim.state))
        vp, kp = sim.state[slot]
        above = 1 << 4
        sim.state[slot] = (vp | above, kp | above)
        assert sim.check_lane_integrity() == sim.mask


class TestQuarantine:
    def test_hook_lanes_replayed_on_scalar_and_merged(self):
        tgt = resolve_target("dual_ehb")
        metrics = MetricsRegistry()
        harness = DegradingCampaignHarness(
            tgt, CFG, lanes=4, metrics=metrics,
            quarantine_hook=lambda injections, batch: 0b1010,
        )
        injections = enumerate_injections(tgt, CFG)[:8]
        merged = []
        for start in (0, 4):
            merged.extend(harness.run_chunk(injections[start:start + 4]))
        assert merged == scalar_reference(tgt, injections)
        assert harness.quarantined_total == 4  # lanes {1, 3} in 2 chunks
        assert metrics.counter(
            "campaign_lane_quarantine_total", reason="hook", target="dual_ehb"
        ).value == 4

    def test_integrity_violation_quarantines_the_lane(self):
        tgt = resolve_target("dual_ehb")
        metrics = MetricsRegistry()
        harness = DegradingCampaignHarness(tgt, CFG, lanes=4, metrics=metrics)
        batch = harness._batch_harness()
        original = batch.run_chunk

        def corrupting(injections):
            outcomes = original(injections)
            slot = next(iter(batch.sim.state))
            vp, kp = batch.sim.state[slot]
            batch.sim.state[slot] = (vp | 0b100, kp & ~0b100)
            return outcomes

        batch.run_chunk = corrupting
        injections = enumerate_injections(tgt, CFG)[:4]
        assert harness.run_chunk(injections) == scalar_reference(tgt, injections)
        assert harness.quarantined_total == 1
        assert metrics.counter(
            "campaign_lane_quarantine_total",
            reason="integrity", target="dual_ehb",
        ).value == 1

    def test_hook_mask_clipped_to_chunk_width(self):
        tgt = resolve_target("dual_ehb")
        harness = DegradingCampaignHarness(
            tgt, CFG, lanes=4, quarantine_hook=lambda i, b: ~0,
        )
        injections = enumerate_injections(tgt, CFG)[:3]
        assert harness.run_chunk(injections) == scalar_reference(tgt, injections)
        assert harness.quarantined_total == 3

    def test_empty_chunk_is_a_noop(self):
        harness = DegradingCampaignHarness(resolve_target("dual_ehb"), CFG, 4)
        assert harness.run_chunk([]) == []


class TestChunkReplay:
    def test_lane_fault_error_replays_the_chunk_on_scalar(self):
        tgt = resolve_target("dual_ehb")
        metrics = MetricsRegistry()
        harness = DegradingCampaignHarness(tgt, CFG, lanes=4, metrics=metrics)
        harness._batch_harness().run_chunk = _raise_lane_fault
        injections = enumerate_injections(tgt, CFG)[:4]
        assert harness.run_chunk(injections) == scalar_reference(tgt, injections)
        assert harness.quarantined_total == 4
        assert metrics.counter(
            "campaign_lane_quarantine_total",
            reason="crosscheck", target="dual_ehb",
        ).value == 4
        assert not harness._permanent_scalar  # next chunk retries batch

    def test_midrun_cycle_error_degrades_permanently(self):
        tgt = resolve_target("dual_ehb")
        harness = DegradingCampaignHarness(tgt, CFG, lanes=4)
        harness._batch_harness().run_chunk = _raise_cycle_error
        injections = enumerate_injections(tgt, CFG)[:4]
        assert harness.run_chunk(injections) == scalar_reference(tgt, injections)
        assert harness._permanent_scalar


def _raise_lane_fault(injections):
    raise LaneFaultError(0b1, "crosscheck")


def _raise_cycle_error(injections):
    raise CombinationalCycleError("loop through eb.t0 -> eb.t0")


class TestCompileFallback:
    def test_uncompilable_netlist_runs_scalar_only(self, monkeypatch):
        def boom(*args, **kwargs):
            raise CombinationalCycleError("cannot compile the faulted cone")

        monkeypatch.setattr("repro.faults.batch.BatchCampaignHarness", boom)
        tgt = resolve_target("dual_ehb")
        metrics = MetricsRegistry()
        harness = DegradingCampaignHarness(tgt, CFG, lanes=4, metrics=metrics)
        injections = enumerate_injections(tgt, CFG)[:4]
        assert harness.run_chunk(injections) == scalar_reference(tgt, injections)
        assert harness._permanent_scalar
        assert metrics.counter(
            "campaign_lane_quarantine_total",
            reason="compile", target="dual_ehb",
        ).value == 4


class TestVerifyDegradation:
    def test_full_sweep_matches_all_scalar(self):
        outcomes = verify_degradation("dual_ehb", CFG, lanes=8)
        assert len(outcomes) == len(
            enumerate_injections(resolve_target("dual_ehb"), CFG)
        )

    def test_forced_quarantine_still_matches(self):
        verify_degradation(
            "dual_ehb", CFG, lanes=8,
            quarantine_hook=lambda injections, batch: 0b01010101,
        )
