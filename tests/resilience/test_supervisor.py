"""Tests for the crash-tolerant shard supervisor.

The flaky workers coordinate through marker files in a temp directory:
a first attempt leaves its marker and then crashes/hangs/raises, the
retry finds the marker and succeeds -- so every scenario converges to
the same results a healthy pool would produce.
"""

import functools
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import ShardFailure, ShardSupervisor, SupervisorConfig


def _square(payload):
    return payload * payload


def _square_init():
    return _square


def _first_attempt(marker_dir, payload):
    """True exactly once per (marker_dir, payload)."""
    marker = Path(marker_dir) / f"seen-{payload}"
    if marker.exists():
        return False
    marker.write_text("")
    return True


def _crash_once(marker_dir, payload):
    if payload == 2 and _first_attempt(marker_dir, payload):
        os._exit(3)
    return payload * 10


def _crash_once_init(marker_dir):
    return functools.partial(_crash_once, marker_dir)


def _hang_once(marker_dir, payload):
    if payload == 1 and _first_attempt(marker_dir, payload):
        time.sleep(120)
    return payload + 100


def _hang_once_init(marker_dir):
    return functools.partial(_hang_once, marker_dir)


def _raise_once(marker_dir, payload):
    if payload == 0 and _first_attempt(marker_dir, payload):
        raise ValueError("transient classifier wobble")
    return -payload


def _raise_once_init(marker_dir):
    return functools.partial(_raise_once, marker_dir)


def _always_fail(payload):
    raise RuntimeError(f"shard {payload} is cursed")


def _always_fail_init():
    return _always_fail


def _fast_config(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("backoff_cap", 0.05)
    kw.setdefault("poll_interval", 0.01)
    return SupervisorConfig(**kw)


class TestHappyPath:
    def test_all_shards_complete(self):
        tasks = [(i, i) for i in range(6)]
        sup = ShardSupervisor(_square_init, (), tasks, config=_fast_config())
        assert sup.run() == {i: i * i for i in range(6)}

    def test_single_job_pool(self):
        tasks = [(i, i) for i in range(3)]
        sup = ShardSupervisor(
            _square_init, (), tasks, config=_fast_config(jobs=1)
        )
        assert sup.run() == {0: 0, 1: 1, 2: 4}

    def test_no_tasks(self):
        sup = ShardSupervisor(_square_init, (), [], config=_fast_config())
        assert sup.run() == {}

    def test_on_result_sees_every_shard_once(self):
        seen = {}
        sup = ShardSupervisor(
            _square_init, (), [(i, i) for i in range(5)],
            config=_fast_config(),
            on_result=lambda i, r: seen.__setitem__(i, r),
        )
        sup.run()
        assert seen == {i: i * i for i in range(5)}

    def test_no_orphan_processes_after_run(self):
        sup = ShardSupervisor(
            _square_init, (), [(i, i) for i in range(4)],
            config=_fast_config(jobs=3),
        )
        sup.run()
        assert mp.active_children() == []


class TestCrashRecovery:
    def test_killed_worker_shard_requeued(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _crash_once_init, (str(tmp_path),), [(i, i) for i in range(4)],
            config=_fast_config(), metrics=metrics,
        )
        assert sup.run() == {i: i * 10 for i in range(4)}
        assert metrics.counter(
            "campaign_shard_retries_total", reason="crash"
        ).value == 1

    def test_hung_worker_killed_and_shard_requeued(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _hang_once_init, (str(tmp_path),), [(i, i) for i in range(3)],
            config=_fast_config(shard_timeout=0.6), metrics=metrics,
        )
        assert sup.run() == {i: i + 100 for i in range(3)}
        assert metrics.counter(
            "campaign_shard_retries_total", reason="timeout"
        ).value == 1
        assert mp.active_children() == []

    def test_worker_exception_requeued_as_error(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _raise_once_init, (str(tmp_path),), [(i, i) for i in range(3)],
            config=_fast_config(), metrics=metrics,
        )
        assert sup.run() == {0: 0, 1: -1, 2: -2}
        assert metrics.counter(
            "campaign_shard_retries_total", reason="error"
        ).value == 1

    def test_heartbeats_recorded(self):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _square_init, (), [(0, 5)],
            config=_fast_config(jobs=1), metrics=metrics,
        )
        sup.run()
        total = sum(
            m.value for m in metrics
            if m.key.startswith("supervisor_heartbeats_total")
        )
        assert total >= 3  # ready + start + result


class TestExhaustedRetries:
    def test_shard_failure_names_shard_and_error(self):
        sup = ShardSupervisor(
            _always_fail_init, (), [(0, 0)],
            config=_fast_config(jobs=1, max_retries=1),
        )
        with pytest.raises(ShardFailure, match="shard 0 .* cursed") as exc:
            sup.run()
        assert exc.value.index == 0
        assert exc.value.attempts == 2  # initial + 1 retry
        assert mp.active_children() == []

    def test_run_after_shutdown_rejected(self):
        sup = ShardSupervisor(
            _square_init, (), [(0, 1)], config=_fast_config()
        )
        sup.shutdown()
        sup.shutdown()  # idempotent
        with pytest.raises(RuntimeError, match="shut down"):
            sup.run()


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ShardSupervisor(
                _square_init, (), [], config=SupervisorConfig(jobs=0)
            )
