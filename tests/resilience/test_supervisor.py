"""Tests for the crash-tolerant shard supervisor.

The flaky workers coordinate through marker files in a temp directory:
a first attempt leaves its marker and then crashes/hangs/raises, the
retry finds the marker and succeeds -- so every scenario converges to
the same results a healthy pool would produce.
"""

import functools
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import ShardFailure, ShardSupervisor, SupervisorConfig


def _square(payload):
    return payload * payload


def _square_init():
    return _square


def _first_attempt(marker_dir, payload):
    """True exactly once per (marker_dir, payload)."""
    marker = Path(marker_dir) / f"seen-{payload}"
    if marker.exists():
        return False
    marker.write_text("")
    return True


def _crash_once(marker_dir, payload):
    if payload == 2 and _first_attempt(marker_dir, payload):
        os._exit(3)
    return payload * 10


def _crash_once_init(marker_dir):
    return functools.partial(_crash_once, marker_dir)


def _hang_once(marker_dir, payload):
    if payload == 1 and _first_attempt(marker_dir, payload):
        time.sleep(120)
    return payload + 100


def _hang_once_init(marker_dir):
    return functools.partial(_hang_once, marker_dir)


def _raise_once(marker_dir, payload):
    if payload == 0 and _first_attempt(marker_dir, payload):
        raise ValueError("transient classifier wobble")
    return -payload


def _raise_once_init(marker_dir):
    return functools.partial(_raise_once, marker_dir)


def _always_fail(payload):
    raise RuntimeError(f"shard {payload} is cursed")


def _always_fail_init():
    return _always_fail


def _fast_config(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("backoff_cap", 0.05)
    kw.setdefault("poll_interval", 0.01)
    return SupervisorConfig(**kw)


def _retries(metrics, reason):
    """Total requeues for one reason, summed over the attempt label."""
    return sum(
        m.value for m in metrics.series("campaign_shard_retries_total")
        if dict(m.labels).get("reason") == reason
    )


class TestHappyPath:
    def test_all_shards_complete(self):
        tasks = [(i, i) for i in range(6)]
        sup = ShardSupervisor(_square_init, (), tasks, config=_fast_config())
        assert sup.run() == {i: i * i for i in range(6)}

    def test_single_job_pool(self):
        tasks = [(i, i) for i in range(3)]
        sup = ShardSupervisor(
            _square_init, (), tasks, config=_fast_config(jobs=1)
        )
        assert sup.run() == {0: 0, 1: 1, 2: 4}

    def test_no_tasks(self):
        sup = ShardSupervisor(_square_init, (), [], config=_fast_config())
        assert sup.run() == {}

    def test_on_result_sees_every_shard_once(self):
        seen = {}
        sup = ShardSupervisor(
            _square_init, (), [(i, i) for i in range(5)],
            config=_fast_config(),
            on_result=lambda i, r: seen.__setitem__(i, r),
        )
        sup.run()
        assert seen == {i: i * i for i in range(5)}

    def test_no_orphan_processes_after_run(self):
        sup = ShardSupervisor(
            _square_init, (), [(i, i) for i in range(4)],
            config=_fast_config(jobs=3),
        )
        sup.run()
        assert mp.active_children() == []


class TestCrashRecovery:
    def test_killed_worker_shard_requeued(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _crash_once_init, (str(tmp_path),), [(i, i) for i in range(4)],
            config=_fast_config(), metrics=metrics,
        )
        assert sup.run() == {i: i * 10 for i in range(4)}
        assert _retries(metrics, "crash") == 1

    def test_hung_worker_killed_and_shard_requeued(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _hang_once_init, (str(tmp_path),), [(i, i) for i in range(3)],
            config=_fast_config(shard_timeout=0.6), metrics=metrics,
        )
        assert sup.run() == {i: i + 100 for i in range(3)}
        assert _retries(metrics, "timeout") == 1
        assert mp.active_children() == []

    def test_worker_exception_requeued_as_error(self, tmp_path):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _raise_once_init, (str(tmp_path),), [(i, i) for i in range(3)],
            config=_fast_config(), metrics=metrics,
        )
        assert sup.run() == {0: 0, 1: -1, 2: -2}
        assert _retries(metrics, "error") == 1

    def test_heartbeats_recorded(self):
        metrics = MetricsRegistry()
        sup = ShardSupervisor(
            _square_init, (), [(0, 5)],
            config=_fast_config(jobs=1), metrics=metrics,
        )
        sup.run()
        total = sum(
            m.value for m in metrics
            if m.key.startswith("supervisor_heartbeats_total")
        )
        assert total >= 3  # ready + start + result


class TestExhaustedRetries:
    def test_shard_failure_names_shard_and_error(self):
        sup = ShardSupervisor(
            _always_fail_init, (), [(0, 0)],
            config=_fast_config(jobs=1, max_retries=1),
        )
        with pytest.raises(ShardFailure, match="shard 0 .* cursed") as exc:
            sup.run()
        assert exc.value.index == 0
        assert exc.value.attempts == 2  # initial + 1 retry
        assert mp.active_children() == []

    def test_run_after_shutdown_rejected(self):
        sup = ShardSupervisor(
            _square_init, (), [(0, 1)], config=_fast_config()
        )
        sup.shutdown()
        sup.shutdown()  # idempotent
        with pytest.raises(RuntimeError, match="shut down"):
            sup.run()


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ShardSupervisor(
                _square_init, (), [], config=SupervisorConfig(jobs=0)
            )


class TestBackoffAccounting:
    """Requeue backoff on a fake clock: exact arithmetic, zero sleeps."""

    def _requeue_n(self, n, *, base=0.25, cap=2.0, metrics=None):
        from repro.resilience import FakeClock

        clock = FakeClock()
        sup = ShardSupervisor(
            _square_init, (), [(0, 0)],
            config=_fast_config(
                backoff_base=base, backoff_cap=cap, max_retries=n + 1
            ),
            metrics=metrics, clock=clock,
        )
        task = sup._pending[0]
        eligible = []
        for _ in range(n):
            sup._pending.remove(task)
            sup._requeue(task, "crash", "synthetic")
            eligible.append(task.eligible_at - clock())
        return eligible

    def test_backoff_schedule_and_cap(self):
        assert self._requeue_n(6, base=0.25, cap=2.0) == [
            0.25, 0.5, 1.0, 2.0, 2.0, 2.0  # capped from attempt 4 on
        ]

    def test_backoff_for_honours_cap_at_huge_attempts(self):
        from repro.resilience import backoff_for

        assert backoff_for(1, 0.25, 8.0) == 0.25
        assert backoff_for(6, 0.25, 8.0) == 8.0
        assert backoff_for(10_000, 0.25, 8.0) == 8.0  # no overflow
        with pytest.raises(ValueError):
            backoff_for(0, 0.25, 8.0)

    def test_attempt_label_is_deterministic(self):
        metrics = MetricsRegistry()
        self._requeue_n(3, base=0.5, cap=8.0, metrics=metrics)
        series = {
            dict(m.labels)["attempt"]: m.value
            for m in metrics.series("campaign_shard_retries_total")
        }
        assert series == {"1": 1, "2": 1, "3": 1}
        assert all(
            dict(m.labels)["reason"] == "crash"
            for m in metrics.series("campaign_shard_retries_total")
        )
        # The gauge remembers the latest chosen backoff (attempt 3).
        gauge = metrics.gauge("supervisor_backoff_seconds", reason="crash")
        assert gauge.last == 2.0

    def test_eligibility_follows_fake_clock(self):
        from repro.resilience import FakeClock

        clock = FakeClock(start=100.0)
        sup = ShardSupervisor(
            _square_init, (), [(0, 0)],
            config=_fast_config(backoff_base=1.0, backoff_cap=4.0),
            clock=clock,
        )
        task = sup._pending[0]
        sup._pending.remove(task)
        sup._requeue(task, "timeout", "synthetic")
        assert task.eligible_at == 101.0
        # _assign skips the task until the clock passes eligible_at.
        sup._assign()
        assert task in sup._pending
        clock.advance(1.0)
        assert clock() >= task.eligible_at
