"""Unit tests for the atomic checkpoint store."""

import json
import os

import pytest

from repro.resilience import CheckpointMismatch, CheckpointStore
from repro.resilience.checkpoint import atomic_write_json


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, {"b": 2, "a": [1, None]})
        assert json.loads(path.read_text()) == {"a": [1, None], "b": 2}

    def test_no_temp_files_left(self, tmp_path):
        atomic_write_json(tmp_path / "x.json", [1, 2, 3])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["x.json"]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, "old")
        atomic_write_json(path, "new")
        assert json.loads(path.read_text()) == "new"


class TestManifest:
    def test_fresh_directory_adopts_fingerprint(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        assert store.ensure_manifest({"kind": "t", "seed": 1}) is False
        assert store.read_manifest() == {"kind": "t", "seed": 1}

    def test_matching_manifest_resumes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.ensure_manifest({"kind": "t", "seed": 1})
        assert CheckpointStore(tmp_path).ensure_manifest(
            {"kind": "t", "seed": 1}
        ) is True

    def test_mismatched_manifest_names_the_keys(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.ensure_manifest({"kind": "t", "seed": 1, "cycles": 100})
        with pytest.raises(CheckpointMismatch, match="cycles, seed"):
            store.ensure_manifest({"kind": "t", "seed": 2, "cycles": 200})

    def test_torn_manifest_treated_as_fresh(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"kind": "t", ')
        store = CheckpointStore(tmp_path)
        assert store.read_manifest() is None
        assert store.ensure_manifest({"kind": "t"}) is False

    def test_creates_nested_directories(self, tmp_path):
        store = CheckpointStore(tmp_path / "a" / "b" / "c")
        assert store.directory.is_dir()


class TestChunks:
    def test_save_and_enumerate(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_chunk(0, ["a"])
        store.save_chunk(7, ["b"])
        assert store.chunks() == {0: ["a"], 7: ["b"]}

    def test_torn_chunk_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_chunk(0, ["ok"])
        store.chunk_path(1).write_text('["torn')
        assert store.chunks() == {0: ["ok"]}

    def test_foreign_files_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "notes.txt").write_text("hello")
        (tmp_path / "chunk-1.json").write_text("[1]")  # too few digits
        assert store.chunks() == {}

    def test_stray_temp_file_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path)
        name = f"chunk-000002.json.tmp.{os.getpid()}"
        (tmp_path / name).write_text("[1]")
        assert store.chunks() == {}


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_snapshot() is None
        store.save_snapshot({"frontier": [1, 2]})
        assert store.load_snapshot() == {"frontier": [1, 2]}

    def test_torn_snapshot_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "snapshot.json").write_text("{")
        assert store.load_snapshot() is None


class TestClear:
    def test_removes_only_checkpoint_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.ensure_manifest({"kind": "t"})
        store.save_chunk(3, [1])
        store.save_snapshot({})
        (tmp_path / "keep.txt").write_text("x")
        store.clear()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.txt"]
