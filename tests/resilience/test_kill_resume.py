"""Checkpoint/resume determinism, including the SIGKILL acceptance test."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.resilience import CheckpointMismatch

CFG = CampaignConfig(cycles=120, seed=2007)
SRC = Path(__file__).resolve().parent.parent.parent / "src"


def golden_json():
    return run_campaign("dual_ehb", CFG).to_json()


class TestCheckpointDeterminism:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = golden_json()
        ck = run_campaign("dual_ehb", CFG, checkpoint=str(tmp_path / "ck"))
        assert ck.to_json() == plain

    def test_resume_from_completed_store_is_byte_identical(self, tmp_path):
        ck = str(tmp_path / "ck")
        first = run_campaign("dual_ehb", CFG, checkpoint=ck)
        resumed = run_campaign("dual_ehb", CFG, checkpoint=ck)
        assert resumed.to_json() == first.to_json() == golden_json()

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        ck = str(tmp_path / "ck")

        class Abort(Exception):
            pass

        def bail_early(done, total):
            if done >= total // 3:
                raise Abort

        with pytest.raises(Abort):
            run_campaign("dual_ehb", CFG, lanes=4, checkpoint=ck,
                         progress=bail_early)
        chunks = list(Path(ck).glob("chunk-*.json"))
        assert chunks, "the interrupted run must have persisted chunks"
        resumed = run_campaign("dual_ehb", CFG, lanes=4, checkpoint=ck)
        assert resumed.to_json() == run_campaign("dual_ehb", CFG, lanes=4).to_json()

    def test_resume_announces_head_start(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_campaign("dual_ehb", CFG, lanes=8, checkpoint=ck)
        calls = []
        run_campaign("dual_ehb", CFG, lanes=8, checkpoint=ck,
                     progress=lambda done, total: calls.append((done, total)))
        assert len(calls) == 1 and calls[0][0] == calls[0][1]

    def test_mismatched_config_rejected(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_campaign("dual_ehb", CampaignConfig(cycles=60, seed=3), checkpoint=ck)
        with pytest.raises(CheckpointMismatch, match="cycles"):
            run_campaign("dual_ehb", CFG, checkpoint=ck)

    def test_mismatched_lanes_rejected(self, tmp_path):
        ck = str(tmp_path / "ck")
        cfg = CampaignConfig(cycles=60, seed=3)
        run_campaign("dual_ehb", cfg, lanes=4, checkpoint=ck)
        with pytest.raises(CheckpointMismatch, match="lanes"):
            run_campaign("dual_ehb", cfg, lanes=8, checkpoint=ck)


@pytest.mark.slow
class TestKillAndResume:
    """The acceptance scenario: SIGKILL a sharded campaign, resume it."""

    def test_sigkilled_campaign_resumes_byte_identical(self, tmp_path):
        ck = tmp_path / "ck"
        report = tmp_path / "campaign.json"
        argv = [
            sys.executable, "-m", "repro", "inject",
            "--netlist", "dual_ehb", "--cycles", "120", "--jobs", "2",
            "--checkpoint", str(ck), "--report", str(report),
        ]
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for some—but not all—chunks, then kill without grace.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it; still fine
                if len(list(ck.glob("chunk-*.json"))) >= 2:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign produced no chunks to kill over")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        resume = subprocess.run(
            [
                sys.executable, "-m", "repro", "inject",
                "--netlist", "dual_ehb", "--cycles", "120", "--jobs", "2",
                "--resume", str(ck), "--report", str(report),
            ],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert resume.returncode == 0, resume.stderr
        assert report.read_text() == golden_json()
        # The store was reused, not rebuilt from scratch.
        manifest = json.loads((ck / "manifest.json").read_text())
        assert manifest["target"] == "dual_ehb"
