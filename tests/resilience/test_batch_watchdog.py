"""Tests for the per-lane stall watchdog on the word-parallel engines.

The scalar :class:`RtlStallWatchdog` defines the ground truth; the
batch watchdog must reproduce its diagnosis for an equivalent lane --
on both the interpreted batch kernel and the compiled backend -- while
tracking each lane's window independently.
"""

import pytest

from repro.faults.targets import TARGETS
from repro.resilience import BatchStallWatchdog, RtlStallWatchdog, StallError
from repro.rtl.batchsim import (
    BatchSimulator,
    broadcast,
    pack_stimulus,
    strict_planes,
)
from repro.rtl.logic import X
from repro.rtl.simulator import TwoPhaseSimulator

STUCK = {"src.choice": 1, "src.accept": 0, "snk.stall": 1, "snk.kill": 0}
HEALTHY = {"src.choice": 1, "src.accept": 0, "snk.stall": 0, "snk.kill": 0}


def scalar_diagnosis(window=8):
    target = TARGETS["dual_ehb"]()
    sim = TwoPhaseSimulator(target.netlist)
    RtlStallWatchdog.for_target(target, sim, window=window)
    with pytest.raises(StallError) as exc:
        for _ in range(100):
            sim.cycle(STUCK)
    return exc.value.diagnosis


class TestStrictPlanes:
    def test_lane_masks_split_ones_zeros_and_x(self):
        class Fake:
            def planes(self, sig):
                # lanes: 0 -> known 1, 1 -> known 0, 2 -> X
                return (0b001, 0b011)

        ones, zeros = strict_planes(Fake(), "w")
        assert ones == 0b001
        assert zeros == 0b010


class TestBatchWatchdog:
    def test_stalled_lanes_match_the_scalar_diagnosis(self):
        reference = scalar_diagnosis()
        target = TARGETS["dual_ehb"]()
        lanes = 4
        sim = BatchSimulator(target.netlist, lanes)
        BatchStallWatchdog.for_target(target, sim, window=8)
        with pytest.raises(StallError) as exc:
            for _ in range(100):
                sim.cycle({k: broadcast(v, lanes)
                           for k, v in STUCK.items()})
        d = exc.value.diagnosis
        assert d.blocked == reference.blocked == ("L.sp", "R.sp")
        assert d.stop_cycle == reference.stop_cycle
        assert d.cycle == reference.cycle
        assert d.lane is not None

    def test_only_the_stalled_lane_is_diagnosed(self):
        # Lane 0 wedges behind a stuck sink; lane 1 drains freely.
        target = TARGETS["dual_ehb"]()
        sim = BatchSimulator(target.netlist, 2)
        wd = BatchStallWatchdog.for_target(
            target, sim, window=8, raise_on_stall=False
        )
        cycles = 60
        stimulus = pack_stimulus([[STUCK] * cycles, [HEALTHY] * cycles])
        for inputs in stimulus:
            sim.cycle(inputs)
        assert wd.diagnoses
        assert {d.lane for d in wd.diagnoses} == {0}

    def test_no_progress_mask_names_expired_lanes(self):
        target = TARGETS["dual_ehb"]()
        sim = BatchSimulator(target.netlist, 2)
        wd = BatchStallWatchdog.for_target(target, sim, window=8)
        cycles = 40
        with pytest.raises(StallError) as exc:
            for inputs in pack_stimulus(
                [[STUCK] * cycles, [HEALTHY] * cycles]
            ):
                sim.cycle(inputs)
        # At the moment lane 0's window expired, lane 1 was progressing.
        assert wd.no_progress_mask(exc.value.diagnosis.cycle) == 0b01

    def test_healthy_broadcast_run_never_fires(self):
        target = TARGETS["dual_ehb"]()
        lanes = 4
        sim = BatchSimulator(target.netlist, lanes)
        wd = BatchStallWatchdog.for_target(target, sim, window=8)
        for _ in range(100):
            sim.cycle({k: broadcast(v, lanes) for k, v in HEALTHY.items()})
        assert wd.diagnoses == []

    def test_idle_lane_is_not_a_stall(self):
        # Nothing offered, nothing pending: windows refresh on idle
        # however long the lanes sit there.
        target = TARGETS["dual_ehb"]()
        idle = {"src.choice": 0, "src.accept": 0,
                "snk.stall": 0, "snk.kill": 0}
        sim = BatchSimulator(target.netlist, 2)
        wd = BatchStallWatchdog.for_target(target, sim, window=4)
        for _ in range(30):
            sim.cycle({k: broadcast(v, 2) for k, v in idle.items()})
        assert wd.diagnoses == []

    def test_window_validated(self):
        target = TARGETS["dual_ehb"]()
        sim = BatchSimulator(target.netlist, 2)
        with pytest.raises(ValueError):
            BatchStallWatchdog.for_target(target, sim, window=0)


class TestCompiledWatchdog:
    def test_compiled_lane_matches_the_scalar_diagnosis(self, tmp_path):
        from repro.codegen import build_cache
        from repro.codegen.sim import CompiledSimulator

        reference = scalar_diagnosis()
        target = TARGETS["dual_ehb"]()
        lanes = 2
        sim = CompiledSimulator(
            target.netlist, lanes, hooks=frozenset(),
            observe=frozenset(target.observe),
            cache=build_cache(str(tmp_path / "cache")),
        )
        BatchStallWatchdog.for_target(target, sim, window=8)
        with pytest.raises(StallError) as exc:
            for _ in range(100):
                sim.cycle({k: broadcast(v, lanes)
                           for k, v in STUCK.items()})
        d = exc.value.diagnosis
        assert d.blocked == reference.blocked
        assert d.stop_cycle == reference.stop_cycle
        assert d.cycle == reference.cycle
