"""Tests for the Sect. 7 extension: multi-anti-token storage in EJs."""

import random

import pytest

from repro.elastic.behavioral import EarlyJoin, ElasticNetwork
from repro.elastic.crosscheck import ScriptedEnd
from repro.elastic.ee import MuxEE


def make_ej(anti_capacity=1):
    net = ElasticNetwork("ej")
    ins = [net.add_channel(n, monitor=False) for n in ("s", "a", "b")]
    out = net.add_channel("z", monitor=False)
    prods = [ScriptedEnd(f"p.{ch.name}", ch, "producer") for ch in ins]
    cons = ScriptedEnd("c", out, "consumer")
    ee = MuxEE(select=0, chooser=lambda s: 1 if s else 2, arity=3)
    ej = EarlyJoin("ej", ins, out, ee, anti_capacity=anti_capacity)
    for p in prods:
        net.add(p)
    net.add(ej)
    net.add(cons)
    return net, prods, ej, cons


class TestCapacityValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_ej(anti_capacity=0)


class TestCapacityOne:
    """Capacity 1 must behave exactly like the paper's controller."""

    def test_single_firing_then_blocked(self):
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=1)
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 1)  # b refuses anti-tokens
        cons.set(0, 0)
        net.step()
        assert ej.apend == [0, 0, 1]
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A2")
        net.step()
        assert net.channels["z"].vp == 0  # B gate blocks


class TestCapacityTwo:
    def test_two_firings_before_blocking(self):
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=2)
        cons.set(0, 0)
        pb.set(0, 1)  # b never absorbs anti-tokens
        fired = 0
        for k in range(3):
            ps.set(1, 0, data=True)
            pa.set(1, 0, data=f"A{k}")
            net.step()
            fired += net.channels["z"].last_event.value == "+"
        assert fired == 2
        assert ej.apend[2] == 2

    def test_counters_drain_one_per_cycle(self):
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=2)
        cons.set(0, 0)
        pb.set(0, 1)
        for k in range(2):
            ps.set(1, 0, data=True)
            pa.set(1, 0, data=f"A{k}")
            net.step()
        assert ej.apend[2] == 2
        # now b accepts anti-tokens again
        ps.set(0, 0)
        pa.set(0, 0)
        pb.set(0, 0)
        net.step()
        assert ej.apend[2] == 1
        assert net.channels["b"].last_event.value == "-"
        net.step()
        assert ej.apend[2] == 0

    def test_pending_antis_kill_two_late_tokens(self):
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=2)
        cons.set(0, 0)
        pb.set(0, 1)
        for k in range(2):
            ps.set(1, 0, data=True)
            pa.set(1, 0, data=f"A{k}")
            net.step()
        ps.set(0, 0)
        pa.set(0, 0)
        for _ in range(2):
            pb.set(1, 0, data="late")
            net.step()
            assert net.channels["b"].last_event.value == "±"
        assert ej.apend[2] == 0

    def test_masked_input_not_consumed(self):
        """A token on an input with pending anti-tokens is annihilated,
        never used as an operand."""
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=2)
        cons.set(0, 0)
        pb.set(0, 1)
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A0")
        net.step()  # apend[b] = 1
        # now select b while b's token arrives -- but it is doomed
        ps.set(1, 0, data=False)
        pa.set(0, 0)
        pb.set(1, 0, data="DOOMED")
        net.step()
        assert net.channels["z"].vp == 0  # cannot fire with a doomed operand
        assert net.channels["b"].last_event.value == "±"


class TestThroughputEffect:
    def _run(self, anti_capacity, cycles=2000, seed=7):
        """Bursty anti-token drain on b (mean adequate, high variance)."""
        rng = random.Random(seed)
        net, (ps, pa, pb), ej, cons = make_ej(anti_capacity=anti_capacity)
        transfers = 0
        drain_open = True
        for cycle in range(cycles):
            if rng.random() < 0.1:  # bursty: toggle the drain rarely
                drain_open = not drain_open
            ps.set(1, 0, data=True)  # always select a
            pa.set(1, 0, data="a")
            pb.set(0, 0 if drain_open else 1)
            cons.set(0, 0)
            net.step()
            transfers += net.channels["z"].last_event.value == "+"
        return transfers / cycles

    def test_paper_finding_little_motivation_for_deeper_storage(self):
        """Reproduces the Sect. 7 remark: "this might improve
        performance in some corner cases, but we found little
        experimental motivation for this feature."

        The structural reason: the negative sub-channel delivers at
        most one anti-token per cycle, so a join firing once per cycle
        saturates the counterflow wire no matter how many anti-tokens
        it can *store* -- steady-state throughput is capped by the
        drain's duty cycle for every capacity.
        """
        th1 = self._run(anti_capacity=1)
        th8 = self._run(anti_capacity=8)
        assert th8 >= th1  # never hurts...
        assert th8 < th1 * 1.05  # ...but barely helps
