"""Lock-step equivalence of the gate-level and behavioural controllers.

Every controller is driven by identical, protocol-legal random
environments in both implementations; all controller-driven wires must
agree every cycle.  This is the bridge that lets the model-checking
results on the gate netlists speak for the behavioural simulations and
vice versa.
"""

import pytest

from repro.elastic.behavioral import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    Join,
    PassiveAntiToken,
)
from repro.elastic.channel import Channel
from repro.elastic.crosscheck import ControllerCrossCheck, CrossCheckMismatch
from repro.elastic.ee import ThresholdEE
from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_fork,
    build_join,
    build_passive,
)
from repro.rtl.netlist import Netlist

CYCLES = 300
SEEDS = range(4)


def declare_env_channel(nl: Netlist, name: str, env_side: str) -> GateChannel:
    g = GateChannel.declare(nl, name)
    if env_side == "producer":
        nl.add_input(g.vp)
        nl.add_input(g.sn)
    else:
        nl.add_input(g.sp)
        nl.add_input(g.vn)
    return g


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("tokens", [0, 1, 2])
@pytest.mark.parametrize("as_latches", [True, False])
def test_elastic_buffer(seed, tokens, as_latches):
    nl = Netlist("eb")
    gl = declare_env_channel(nl, "L", "producer")
    gr = declare_env_channel(nl, "R", "consumer")
    build_elastic_buffer(nl, gl, gr, prefix="eb", initial_tokens=tokens,
                         as_latches=as_latches)
    L, R = Channel("L", monitor=False), Channel("R", monitor=False)
    eb = ElasticBuffer("eb", L, R, initial_tokens=tokens)
    cc = ControllerCrossCheck(
        eb, [(L, gl, "consumer"), (R, gr, "producer")], nl, seed=seed
    )
    cc.run(CYCLES)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [2, 3])
def test_join(seed, n):
    nl = Netlist("join")
    gins = [declare_env_channel(nl, f"I{k}", "producer") for k in range(n)]
    gz = declare_env_channel(nl, "Z", "consumer")
    build_join(nl, gins, gz, prefix="j")
    ins = [Channel(f"I{k}", monitor=False) for k in range(n)]
    z = Channel("Z", monitor=False)
    join = Join("j", ins, z)
    triples = [(ch, g, "consumer") for ch, g in zip(ins, gins)]
    triples.append((z, gz, "producer"))
    ControllerCrossCheck(join, triples, nl, seed=seed).run(CYCLES)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", [2, 3])
def test_fork(seed, n):
    nl = Netlist("fork")
    gi = declare_env_channel(nl, "I", "producer")
    gouts = [declare_env_channel(nl, f"O{k}", "consumer") for k in range(n)]
    build_fork(nl, gi, gouts, prefix="f")
    i = Channel("I", monitor=False)
    outs = [Channel(f"O{k}", monitor=False) for k in range(n)]
    fork = EagerFork("f", i, outs)
    triples = [(i, gi, "consumer")]
    triples.extend((ch, g, "producer") for ch, g in zip(outs, gouts))
    ControllerCrossCheck(fork, triples, nl, seed=seed).run(CYCLES)


@pytest.mark.parametrize("seed", SEEDS)
def test_early_join_threshold(seed):
    """EJ with a data-independent (threshold) EE in both layers."""
    n = 2

    def gate_ee(nl, vps, datas):
        return nl.OR(*vps)  # 1-of-2 threshold

    nl = Netlist("ej")
    gins = [declare_env_channel(nl, f"I{k}", "producer") for k in range(n)]
    gz = declare_env_channel(nl, "Z", "consumer")
    build_join(nl, gins, gz, prefix="ej", ee=gate_ee, datas=[(), ()])
    ins = [Channel(f"I{k}", monitor=False) for k in range(n)]
    z = Channel("Z", monitor=False)
    ej = EarlyJoin("ej", ins, z, ThresholdEE(1, n))
    triples = [(ch, g, "consumer") for ch, g in zip(ins, gins)]
    triples.append((z, gz, "producer"))
    ControllerCrossCheck(ej, triples, nl, seed=seed).run(CYCLES)


def _eb_crosscheck(seed, gate_tokens=0, behavioral_tokens=0):
    nl = Netlist("eb")
    gl = declare_env_channel(nl, "L", "producer")
    gr = declare_env_channel(nl, "R", "consumer")
    build_elastic_buffer(nl, gl, gr, prefix="eb",
                         initial_tokens=gate_tokens)
    L, R = Channel("L", monitor=False), Channel("R", monitor=False)
    eb = ElasticBuffer("eb", L, R, initial_tokens=behavioral_tokens)
    cc = ControllerCrossCheck(
        eb, [(L, gl, "consumer"), (R, gr, "producer")], nl, seed=seed
    )
    return cc, (L, R)


def _eb_trace(seed, cycles=100):
    cc, (L, R) = _eb_crosscheck(seed)
    trace = []
    for _ in range(cycles):
        cc.step()
        trace.append((L.vp, L.sp, L.vn, L.sn, R.vp, R.sp, R.vn, R.sn))
    return trace


class TestSeedReproducibility:
    def test_same_seed_same_run(self):
        assert _eb_trace(5) == _eb_trace(5)

    def test_different_seed_different_run(self):
        assert _eb_trace(5) != _eb_trace(6)

    def test_mismatch_reports_the_seed(self):
        # Deliberately disagree on the initial occupancy: the very
        # first divergence must quote the seed needed to replay it.
        cc, _ = _eb_crosscheck(seed=11, gate_tokens=1, behavioral_tokens=0)
        with pytest.raises(CrossCheckMismatch) as excinfo:
            cc.run(50)
        assert excinfo.value.seed == 11
        assert "seed=11" in str(excinfo.value)


@pytest.mark.parametrize("seed", SEEDS)
def test_passive_interface(seed):
    nl = Netlist("pas")
    gu = declare_env_channel(nl, "U", "producer")
    gd = declare_env_channel(nl, "D", "consumer")
    build_passive(nl, gu, gd, prefix="p")
    u, d = Channel("U", monitor=False), Channel("D", monitor=False)
    pas = PassiveAntiToken("p", u, d)
    cc = ControllerCrossCheck(
        pas, [(u, gu, "consumer"), (d, gd, "producer")], nl, seed=seed
    )
    cc.run(CYCLES)
