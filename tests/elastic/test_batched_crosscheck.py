"""Batched gate-vs-behavioural cross-checking, one seed per lane.

``BatchedCrossCheck`` must be a pure accelerator of the scalar
``ControllerCrossCheck``: a clean controller passes every seed, and a
planted divergence raises a mismatch that replays *verbatim* -- same
cycle, wire, values and seed -- on the scalar harness.
"""

import pytest

from repro.elastic.behavioral import EarlyJoin, ElasticBuffer
from repro.elastic.channel import Channel
from repro.elastic.crosscheck import (
    BatchedCrossCheck,
    ControllerCrossCheck,
    CrossCheckMismatch,
)
from repro.elastic.ee import ThresholdEE
from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_join,
)
from repro.rtl.netlist import Netlist

CYCLES = 300


def declare_env_channel(nl: Netlist, name: str, env_side: str) -> GateChannel:
    g = GateChannel.declare(nl, name)
    if env_side == "producer":
        nl.add_input(g.vp)
        nl.add_input(g.sn)
    else:
        nl.add_input(g.sp)
        nl.add_input(g.vn)
    return g


def buffer_factory(tokens_gate, tokens_behavioral):
    def factory(seed):
        nl = Netlist("eb")
        gl = declare_env_channel(nl, "L", "producer")
        gr = declare_env_channel(nl, "R", "consumer")
        build_elastic_buffer(nl, gl, gr, prefix="eb",
                             initial_tokens=tokens_gate)
        nl.validate()
        L, R = Channel("L", monitor=False), Channel("R", monitor=False)
        eb = ElasticBuffer("eb", L, R, initial_tokens=tokens_behavioral)
        return ControllerCrossCheck(
            eb, [(L, gl, "consumer"), (R, gr, "producer")], nl, seed=seed
        )

    return factory


@pytest.mark.parametrize("tokens", [0, 1, 2])
def test_elastic_buffer_64_seeds(tokens):
    BatchedCrossCheck(buffer_factory(tokens, tokens), range(64)).run(CYCLES)


def test_early_join_64_seeds():
    def factory(seed):
        nl = Netlist("ej")
        gins = [declare_env_channel(nl, f"I{k}", "producer") for k in range(2)]
        gz = declare_env_channel(nl, "Z", "consumer")
        build_join(nl, gins, gz, prefix="ej",
                   ee=lambda nl, vps, datas: nl.OR(*vps), datas=[(), ()])
        ins = [Channel(f"I{k}", monitor=False) for k in range(2)]
        z = Channel("Z", monitor=False)
        join = EarlyJoin("ej", ins, z, ThresholdEE(1, 2))
        triples = [(ch, g, "consumer") for ch, g in zip(ins, gins)]
        triples.append((z, gz, "producer"))
        return ControllerCrossCheck(join, triples, nl, seed=seed)

    BatchedCrossCheck(factory, range(64)).run(CYCLES)


def test_mismatch_replays_on_scalar_harness():
    # gate twin seeded with a token the behavioural model doesn't have
    factory = buffer_factory(0, 1)
    with pytest.raises(CrossCheckMismatch) as batched:
        BatchedCrossCheck(factory, range(64)).run(CYCLES)
    e = batched.value
    with pytest.raises(CrossCheckMismatch) as scalar:
        factory(e.seed).run(CYCLES)
    s = scalar.value
    assert (e.cycle, e.wire, e.behavioral, e.gate, e.seed) == (
        s.cycle, s.wire, s.behavioral, s.gate, s.seed
    )


def test_seed_count_bounds():
    factory = buffer_factory(1, 1)
    with pytest.raises(ValueError):
        BatchedCrossCheck(factory, [])
    with pytest.raises(ValueError):
        BatchedCrossCheck(factory, range(65))
