"""Tests for the ASCII waveform renderer."""

import random

import pytest

from repro.elastic.behavioral import ElasticBuffer, ElasticNetwork, Sink, Source
from repro.elastic.visualize import channel_waveform, event_summary, render_waveforms


@pytest.fixture
def net():
    net = ElasticNetwork("wave")
    a, b = net.add_channel("a"), net.add_channel("b")
    net.add(Source("p", a, p_valid=0.6, rng=random.Random(1)))
    net.add(ElasticBuffer("eb", a, b))
    net.add(Sink("c", b, p_stop=0.3, p_kill=0.2, rng=random.Random(2)))
    net.run(50)
    return net


class TestChannelWaveform:
    def test_length_matches_cycles(self, net):
        assert len(channel_waveform(net.channels["a"])) == 50

    def test_last_trims(self, net):
        assert len(channel_waveform(net.channels["a"], last=10)) == 10

    def test_glyphs_legal(self, net):
        wave = channel_waveform(net.channels["b"])
        assert set(wave) <= set("+-±Rr.")
        assert "+" in wave

    def test_unmonitored_channel_rejected(self):
        net = ElasticNetwork("x")
        ch = net.add_channel("c", monitor=False)
        with pytest.raises(ValueError):
            channel_waveform(ch)


class TestRender:
    def test_all_channels_listed(self, net):
        text = render_waveforms(net)
        assert "a " in text and "b " in text and "cycle" in text

    def test_channel_selection(self, net):
        text = render_waveforms(net, channels=["b"])
        assert "\nb" in text and "\na" not in text

    def test_window_header(self, net):
        text = render_waveforms(net, last=10)
        assert "40..49" in text


class TestSummary:
    def test_counts_add_up(self, net):
        text = event_summary(net)
        assert "50 cycles" in text and "2 channels" in text
        # sum of all glyph counts = cycles x channels
        counts = dict(
            part.split(":") for part in text.split("|")[1].split()
        )
        assert sum(int(v) for v in counts.values()) == 100
