"""Property-based tests over randomly generated elastic networks.

Hypothesis builds arbitrary acyclic networks of buffers, forks, joins,
early joins and variable-latency units between random producers and
(possibly killing) consumers, then asserts the invariants any correct
elastic system must satisfy:

* the protocol monitors on every channel stay silent (persistence and
  invariant (2) hold cycle by cycle);
* the network always reaches its combinational fixed point;
* throughput equalises across all channels (repetitive behaviour);
* tokens are conserved: everything a source emitted is either consumed,
  killed, or still in flight.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.performance import fixed_latency
from repro.elastic.behavioral import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    Sink,
    Source,
    VariableLatency,
)
from repro.elastic.ee import ThresholdEE


@st.composite
def random_network(draw):
    """An acyclic elastic network plus its source/sink handles."""
    seed = draw(st.integers(min_value=0, max_value=2**20))
    n_sources = draw(st.integers(min_value=1, max_value=3))
    n_ops = draw(st.integers(min_value=1, max_value=6))
    p_stop = draw(st.sampled_from([0.0, 0.2, 0.5]))
    p_kill = draw(st.sampled_from([0.0, 0.2, 0.4]))
    rng = random.Random(seed)

    net = ElasticNetwork(f"hyp[{seed}]")
    counter = [0]

    def fresh():
        counter[0] += 1
        # Payload-stability checking is off: a threshold early join may
        # legitimately refine its output tuple while retried (more
        # operands arrive).  Control persistence and invariant (2) are
        # still enforced by the monitors; payload correctness has its
        # own suite (tests/verif/test_datapath.py, merge semantics).
        return net.add_channel(f"h{counter[0]}", check_data=False)

    sources = []
    live = []
    for i in range(n_sources):
        ch = fresh()
        src = Source(f"P{i}", ch, p_valid=rng.choice([1.0, 0.6]),
                     rng=random.Random(seed + i))
        net.add(src)
        sources.append(src)
        live.append(ch)

    for k in range(n_ops):
        op = rng.choice(["buffer", "buffer", "fork", "join", "ejoin", "vl"])
        if op == "join" and len(live) >= 2:
            a = live.pop(rng.randrange(len(live)))
            b = live.pop(rng.randrange(len(live)))
            out = fresh()
            net.add(Join(f"J{k}", [a, b], out))
            live.append(out)
        elif op == "ejoin" and len(live) >= 2:
            a = live.pop(rng.randrange(len(live)))
            b = live.pop(rng.randrange(len(live)))
            out = fresh()
            net.add(EarlyJoin(f"EJ{k}", [a, b], out, ThresholdEE(1, 2)))
            live.append(out)
        elif op == "fork":
            src_ch = live.pop(rng.randrange(len(live)))
            outs = [fresh(), fresh()]
            net.add(EagerFork(f"F{k}", src_ch, outs))
            live.extend(outs)
        elif op == "vl":
            src_ch = live.pop(rng.randrange(len(live)))
            out = fresh()
            net.add(VariableLatency(f"V{k}", src_ch, out,
                                    latency=fixed_latency(rng.randint(1, 4)),
                                    rng=random.Random(seed + 100 + k)))
            live.append(out)
        else:
            idx = rng.randrange(len(live))
            out = fresh()
            net.add(ElasticBuffer(
                f"B{k}", live[idx], out,
                initial_tokens=rng.choice([0, 0, 1]),
            ))
            live[idx] = out

    sinks = []
    for i, ch in enumerate(live):
        # decouple killing consumers through a buffer so their
        # anti-tokens have somewhere to land
        out = fresh()
        net.add(ElasticBuffer(f"BS{i}", ch, out))
        snk = Sink(f"C{i}", out, p_stop=p_stop, p_kill=p_kill,
                   rng=random.Random(seed + 999 + i))
        net.add(snk)
        sinks.append(snk)
    return net, sources, sinks


@given(random_network())
@settings(max_examples=40, deadline=None)
def test_protocol_invariants_hold(network):
    net, _, _ = network
    net.run(150)  # monitors raise on any violation


@given(random_network())
@settings(max_examples=25, deadline=None)
def test_local_throughput_balance(network):
    """Flow balance at every controller.

    The repetitive-behaviour theorem makes throughput *globally* equal
    only for strongly connected systems; an open network with
    independent source->sink paths can run them at different rates.
    What must always hold is the local balance: every channel of a join
    (or early join) moves at the same rate, each fork branch matches
    the fork input, and stateful stages (buffers, VL units) match their
    two sides up to their capacity.
    """
    net, _, _ = network
    cycles = 600
    net.run(cycles)
    slack = 6 / cycles + 0.01

    def th(ch):
        return ch.stats.throughput

    for ctrl in net.controllers:
        if isinstance(ctrl, (Join, EarlyJoin)):
            rates = [th(c) for c in ctrl.inputs] + [th(ctrl.output)]
            assert max(rates) - min(rates) < slack, ctrl.name
        elif isinstance(ctrl, EagerFork):
            for out in ctrl.outputs:
                assert abs(th(out) - th(ctrl.input)) < slack, ctrl.name
        elif isinstance(ctrl, (ElasticBuffer, VariableLatency)):
            assert abs(th(ctrl.left) - th(ctrl.right)) < slack, ctrl.name


@given(random_network())
@settings(max_examples=25, deadline=None)
def test_token_conservation(network):
    """Sources' emissions = consumptions + kills + in flight.

    Only checked for fork/EJ-free networks where tokens are neither
    duplicated nor annihilated pairwise inside controllers.
    """
    net, sources, sinks = network
    if any(isinstance(c, (EagerFork, EarlyJoin, Join)) for c in net.controllers):
        return  # forks duplicate, joins merge: conservation is modal
    net.run(400)
    emitted = sum(s.sent for s in sources)
    initial = sum(
        c._initial[0] for c in net.controllers if isinstance(c, ElasticBuffer)
    )
    consumed = sum(len(s.received) for s in sinks)
    killed_at_sources = sum(s.killed for s in sources)
    in_buffers = sum(
        c.tokens for c in net.controllers if isinstance(c, ElasticBuffer)
    )
    in_vls = sum(
        (0 if c.state == c.IDLE else 1)
        for c in net.controllers
        if isinstance(c, VariableLatency)
    )
    anti_debt = sum(
        c.anti_tokens for c in net.controllers if isinstance(c, ElasticBuffer)
    )
    # every emitted or initial token is consumed, killed inside (paired
    # with a sink anti-token), or still in flight
    kills_inside = sum(s.kills_sent for s in sinks) - anti_debt
    assert (
        emitted + killed_at_sources + initial
        == consumed + in_buffers + in_vls + kills_inside
    )


@given(random_network())
@settings(max_examples=15, deadline=None)
def test_determinism(network):
    """The same seeds produce the same statistics (no hidden state)."""
    net, _, _ = network
    net.run(100)
    snapshot = {n: c.stats.positive for n, c in net.channels.items()}
    assert all(v >= 0 for v in snapshot.values())
