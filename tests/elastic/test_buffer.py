"""Unit tests for the dual elastic buffer (Fig. 5 semantics)."""

import pytest

from repro.elastic.behavioral import ElasticBuffer, ElasticNetwork
from repro.elastic.crosscheck import ScriptedEnd
from repro.elastic.protocol import ProtocolViolation


def make_eb(initial_tokens=0, initial_data=None, capacity=2):
    net = ElasticNetwork("eb")
    left = net.add_channel("L", monitor=False)
    right = net.add_channel("R", monitor=False)
    producer = ScriptedEnd("prod", left, "producer")
    consumer = ScriptedEnd("cons", right, "consumer")
    eb = ElasticBuffer(
        "eb", left, right,
        capacity=capacity, initial_tokens=initial_tokens, initial_data=initial_data,
    )
    net.add(producer)
    net.add(eb)
    net.add(consumer)
    return net, producer, eb, consumer


class TestConstruction:
    def test_capacity_validated(self):
        net = ElasticNetwork("x")
        l, r = net.add_channel("l"), net.add_channel("r")
        with pytest.raises(ValueError):
            ElasticBuffer("eb", l, r, capacity=0)

    def test_initial_tokens_bounded(self):
        net = ElasticNetwork("x")
        l, r = net.add_channel("l"), net.add_channel("r")
        with pytest.raises(ValueError):
            ElasticBuffer("eb", l, r, initial_tokens=3)

    def test_initial_data_length_checked(self):
        net = ElasticNetwork("x")
        l, r = net.add_channel("l"), net.add_channel("r")
        with pytest.raises(ValueError):
            ElasticBuffer("eb", l, r, initial_tokens=1, initial_data=["a", "b"])

    def test_token_antitoken_views(self):
        net, _, eb, _ = make_eb(initial_tokens=2)
        assert eb.tokens == 2 and eb.anti_tokens == 0
        eb.count = -1
        assert eb.tokens == 0 and eb.anti_tokens == 1


class TestForwardFlow:
    def test_forward_latency_is_one_cycle(self):
        net, prod, eb, cons = make_eb()
        prod.set(1, 0, data="t0")
        cons.set(0, 0)
        net.step()
        assert eb.count == 1  # absorbed, not yet visible downstream
        prod.set(0, 1)
        net.step()
        assert net.channels["R"].last_event.value == "+"
        assert eb.count == 0

    def test_data_fifo_order(self):
        net, prod, eb, cons = make_eb()
        cons.set(1, 0)  # stall: fill the buffer
        prod.set(1, 0, data="a")
        net.step()
        prod.set(1, 0, data="b")
        net.step()
        assert eb.data == ["a", "b"]
        cons.set(0, 0)
        prod.set(0, 1)
        net.step()
        net.step()
        assert eb.data == []

    def test_backpressure_at_capacity(self):
        net, prod, eb, cons = make_eb()
        cons.set(1, 0)
        prod.set(1, 0, data="a")
        net.step()
        prod.set(1, 0, data="b")
        net.step()
        prod.set(1, 0, data="c")
        net.step()  # third token must be refused
        assert eb.count == 2
        assert net.channels["L"].last_event.value == "R+"

    def test_capacity_one_buffer(self):
        net, prod, eb, cons = make_eb(capacity=1)
        cons.set(1, 0)
        prod.set(1, 0, data="a")
        net.step()
        prod.set(1, 0, data="b")
        net.step()
        assert eb.count == 1


class TestAntiTokenFlow:
    def test_kill_at_output_boundary(self):
        net, prod, eb, cons = make_eb(initial_tokens=1, initial_data=["a"])
        prod.set(0, 1)
        cons.set(0, 1)  # consumer sends an anti-token
        net.step()
        assert net.channels["R"].last_event.value == "±"
        assert eb.count == 0 and eb.data == []

    def test_anti_token_enters_empty_buffer(self):
        net, prod, eb, cons = make_eb()
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()
        assert net.channels["R"].last_event.value == "-"
        assert eb.anti_tokens == 1

    def test_stored_anti_token_kills_arriving_token(self):
        net, prod, eb, cons = make_eb()
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()  # anti stored
        cons.set(0, 0)
        prod.set(1, 0, data="doomed")
        net.step()
        assert net.channels["L"].last_event.value == "±"
        assert eb.count == 0 and eb.data == []

    def test_anti_token_propagates_backward(self):
        net, prod, eb, cons = make_eb()
        prod.set(0, 0)  # producer side accepts anti-tokens (sn=0)
        cons.set(0, 1)
        net.step()  # anti enters
        cons.set(0, 0)
        net.step()  # anti leaves on the left channel
        assert net.channels["L"].last_event.value == "-"
        assert eb.count == 0

    def test_anti_capacity_backpressure(self):
        net, prod, eb, cons = make_eb()
        prod.set(0, 1)  # upstream blocks anti-tokens
        cons.set(0, 1)
        net.step()
        net.step()  # two antis stored
        assert eb.anti_tokens == 2
        net.step()  # third anti refused: Retry-
        assert eb.anti_tokens == 2
        assert net.channels["R"].last_event.value == "R-"

    def test_simultaneous_token_and_anti_annihilate_inside(self):
        net, prod, eb, cons = make_eb()
        prod.set(1, 0, data="x")
        cons.set(0, 1)
        net.step()
        assert eb.count == 0 and eb.data == []
        assert net.channels["L"].last_event.value == "+"
        assert net.channels["R"].last_event.value == "-"


class TestStateIntegrity:
    def test_reset(self):
        net, prod, eb, cons = make_eb(initial_tokens=1, initial_data=["z"])
        prod.set(0, 1)
        cons.set(0, 0)
        net.step()
        eb.reset()
        assert eb.count == 1 and eb.data == ["z"]

    def test_outputs_are_state_functions(self):
        """An EB cuts combinational paths: outputs depend on state only."""
        net, prod, eb, cons = make_eb(initial_tokens=1, initial_data=["v"])
        prod.set(1, 0, data="w")
        cons.set(1, 0)
        net.step()
        ch = net.channels["R"]
        assert ch.vp == 1  # from state, regardless of consumer stop
        assert net.channels["L"].sp == 0  # capacity not full
