"""Tests for the dual-channel wire model."""

import pytest

from repro.elastic.channel import Channel, ChannelStats
from repro.elastic.protocol import DualChannelEvent, ProtocolViolation
from repro.rtl.logic import X


@pytest.fixture
def ch():
    c = Channel("c", monitor=False)
    c.begin_cycle()
    return c


class TestDriving:
    def test_wires_start_unknown(self, ch):
        assert ch.vp is X and ch.sp is X and ch.vn is X and ch.sn is X

    def test_drive_returns_change_flag(self, ch):
        assert ch.drive_vp(1) is True
        assert ch.drive_vp(1) is False  # same value, no change

    def test_driving_x_is_noop(self, ch):
        assert ch.drive_vp(X) is False
        assert ch.vp is X

    def test_conflicting_drive_raises(self, ch):
        ch.drive_sp(0)
        with pytest.raises(ProtocolViolation):
            ch.drive_sp(1)

    def test_truthy_normalisation(self, ch):
        ch.drive_vn(True)
        assert ch.vn == 1


class TestSettling:
    def test_settled_requires_all_four(self, ch):
        ch.drive_vp(1)
        ch.drive_sp(0)
        ch.drive_vn(0)
        assert not ch.settled()
        ch.drive_sn(0)
        assert ch.settled()

    def test_require_settled_raises(self, ch):
        with pytest.raises(ProtocolViolation):
            ch.require_settled()

    def test_event_predicates(self, ch):
        for wire, value in (("vp", 1), ("sp", 0), ("vn", 0), ("sn", 0)):
            ch._drive(wire, value)
        assert ch.pos_transfer and not ch.neg_transfer and not ch.kill


class TestLifecycle:
    def test_finish_cycle_classifies_and_counts(self, ch):
        ch.drive_vp(1)
        ch.drive_sp(0)
        ch.drive_vn(0)
        ch.drive_sn(0)
        event = ch.finish_cycle()
        assert event is DualChannelEvent.POSITIVE_TRANSFER
        assert ch.stats.positive == 1

    def test_begin_cycle_clears_wires_and_data(self, ch):
        ch.drive_vp(1)
        ch.put_data("payload")
        ch.begin_cycle()
        assert ch.vp is X and ch.data is None

    def test_monitored_channel_enforces_persistence(self):
        c = Channel("m")
        c.begin_cycle()
        for wire, value in (("vp", 1), ("sp", 1), ("vn", 0), ("sn", 0)):
            c._drive(wire, value)
        c.put_data("a")
        c.finish_cycle()
        c.begin_cycle()
        for wire, value in (("vp", 0), ("sp", 0), ("vn", 0), ("sn", 0)):
            c._drive(wire, value)
        with pytest.raises(ProtocolViolation):
            c.finish_cycle()


class TestStats:
    def test_throughput_formula(self):
        s = ChannelStats()
        for ev in (
            DualChannelEvent.POSITIVE_TRANSFER,
            DualChannelEvent.NEGATIVE_TRANSFER,
            DualChannelEvent.KILL,
            DualChannelEvent.IDLE,
        ):
            s.record(ev)
        assert s.throughput == pytest.approx(0.75)

    def test_rates(self):
        s = ChannelStats()
        s.record(DualChannelEvent.POSITIVE_TRANSFER)
        s.record(DualChannelEvent.KILL)
        rates = s.rates()
        assert rates["+"] == 0.5 and rates["±"] == 0.5 and rates["-"] == 0.0

    def test_all_event_kinds_counted(self):
        s = ChannelStats()
        for ev in DualChannelEvent:
            s.record(ev)
        assert s.cycles == 6
        assert s.retries_pos == 1 and s.retries_neg == 1 and s.idle == 1

    def test_zero_cycles_throughput(self):
        assert ChannelStats().throughput == 0.0
