"""Exhaustive lane equivalence on the paper's controller netlists.

Every boundary-input sequence up to depth 4 (16 input symbols per
cycle, 16^4 = 65536 sequences) is run through the bit-parallel
simulator in 64-lane batches and compared against a scalar reference
on *every* signal, every cycle.  The scalar side is memoised on
(state, input symbol) -- the controllers reach only a handful of
states, so the scalar work collapses while the batch side still
executes every lane for real.
"""

import pytest

from repro.faults.targets import TARGETS
from repro.rtl.batchsim import BatchSimulator
from repro.rtl.simulator import TwoPhaseSimulator

DEPTH = 4
LANES = 64


class _ScalarReference:
    """Memoised (state, symbol) -> (observation, next state) oracle."""

    def __init__(self, netlist, free_inputs, signals):
        self.sim = TwoPhaseSimulator(netlist)
        self.free_inputs = free_inputs
        self.signals = signals
        self._states = {}  # interned state tuple -> id
        self._by_id = []
        self._memo = {}
        self.initial = self._intern(self.sim.initial_state())

    def _intern(self, state):
        key = tuple(sorted(state.items()))
        sid = self._states.get(key)
        if sid is None:
            sid = self._states[key] = len(self._by_id)
            self._by_id.append(dict(state))
        return sid

    def step(self, sid, symbol):
        """Returns (obs, next_sid); obs[i] is signals[i]'s value."""
        hit = self._memo.get((sid, symbol))
        if hit is None:
            inputs = {
                name: (symbol >> i) & 1
                for i, name in enumerate(self.free_inputs)
            }
            values, next_state = self.sim.step_function(
                self._by_id[sid], inputs
            )
            obs = tuple(values[sig] for sig in self.signals)
            hit = (obs, self._intern(next_state))
            self._memo[(sid, symbol)] = hit
        return hit


@pytest.mark.parametrize("name", ["dual_ehb", "early_join"])
def test_depth4_exhaustive_lane_equivalence(name):
    target = TARGETS[name]()
    nl = target.netlist
    free = list(target.free_inputs)
    assert len(free) == 4, "16 symbols per cycle is baked into the sweep"
    signals = sorted(nl.signals())
    ref = _ScalarReference(nl, free, signals)
    batch = BatchSimulator(nl, lanes=LANES)
    full = batch.mask
    n_sigs = len(signals)

    total = 16 ** DEPTH
    for base in range(0, total, LANES):
        batch.reset()
        sids = [ref.initial] * LANES
        for t in range(DEPTH):
            digits = [((base + lane) >> (4 * t)) & 15 for lane in range(LANES)]
            # pack the 4 input bits of each lane's symbol of this cycle
            inputs = {}
            for i, name_in in enumerate(free):
                v = 0
                for lane, digit in enumerate(digits):
                    if (digit >> i) & 1:
                        v |= 1 << lane
                inputs[name_in] = (v, full)
            batch.cycle(inputs)

            # scalar expectations, grouped by (state, symbol) so the
            # expected planes are built per distinct observation
            masks = {}
            for lane, digit in enumerate(digits):
                obs, sids[lane] = ref.step(sids[lane], digit)
                masks[obs] = masks.get(obs, 0) | (1 << lane)
            want_v = [0] * n_sigs
            for obs, mask in masks.items():
                for idx in range(n_sigs):
                    if obs[idx] == 1:
                        want_v[idx] |= mask
            v, k = batch.value_planes, batch.known_planes
            for idx, sig in enumerate(signals):
                slot = batch.slot(sig)
                assert k[slot] == full, (name, base, t, sig, "unknown lanes")
                assert v[slot] == want_v[idx], (name, base, t, sig)
