"""Unit tests for the passive anti-token interface and the VL controller."""

import random

import pytest

from repro.elastic.behavioral import (
    ElasticNetwork,
    PassiveAntiToken,
    Pipe,
    VariableLatency,
)
from repro.elastic.crosscheck import ScriptedEnd


def make_passive():
    net = ElasticNetwork("pas")
    up = net.add_channel("up", monitor=False)
    down = net.add_channel("down", monitor=False)
    prod = ScriptedEnd("p", up, "producer")
    cons = ScriptedEnd("c", down, "consumer")
    net.add(prod)
    net.add(PassiveAntiToken("pas", up, down))
    net.add(cons)
    return net, prod, cons


def make_vl(latency, seed=0):
    net = ElasticNetwork("vl")
    left = net.add_channel("l", monitor=False)
    right = net.add_channel("r", monitor=False)
    prod = ScriptedEnd("p", left, "producer")
    cons = ScriptedEnd("c", right, "consumer")
    vl = VariableLatency("vl", left, right, latency=latency, rng=random.Random(seed))
    net.add(prod)
    net.add(vl)
    net.add(cons)
    return net, prod, vl, cons


class TestPassiveInterface:
    def test_transparent_forward(self):
        net, prod, cons = make_passive()
        prod.set(1, 0, data="t")
        cons.set(0, 0)
        net.step()
        assert net.channels["down"].last_event.value == "+"
        assert net.channels["down"].data == "t"

    def test_kill_looks_like_transfer_upstream(self):
        net, prod, cons = make_passive()
        prod.set(1, 0, data="t")
        cons.set(0, 1)
        net.step()
        assert net.channels["down"].last_event.value == "±"
        assert net.channels["up"].last_event.value == "+"

    def test_anti_token_waits_passively(self):
        net, prod, cons = make_passive()
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()
        assert net.channels["down"].last_event.value == "R-"
        assert net.channels["up"].vn == 0  # never leaks upstream

    def test_stop_passes_backward(self):
        net, prod, cons = make_passive()
        prod.set(1, 0, data="t")
        cons.set(1, 0)
        net.step()
        assert net.channels["up"].last_event.value == "R+"

    def test_inverter_rule(self):
        """S− = not V+ (the Fig. 7(a) inverter)."""
        net, prod, cons = make_passive()
        prod.set(0, 0)
        cons.set(0, 0)
        net.step()
        assert net.channels["down"].sn == 1
        prod.set(1, 0, data="t")
        net.step()
        assert net.channels["down"].sn == 0


class TestVariableLatency:
    def test_fixed_latency_visible_after_n_cycles(self):
        net, prod, vl, cons = make_vl(lambda rng: 3)
        prod.set(1, 0, data="op")
        cons.set(0, 0)
        net.step()  # accepted (go)
        prod.set(0, 0)
        seen = []
        for _ in range(4):
            net.step()
            seen.append(net.channels["r"].last_event.value)
        assert seen.index("+") == 2  # done after 3 cycles total

    def test_result_function_applied(self):
        net, prod, vl, cons = make_vl(lambda rng: 1)
        vl.func = lambda x: x * 2
        prod.set(1, 0, data=21)
        cons.set(0, 0)
        net.step()
        prod.set(0, 0)
        net.step()
        assert net.channels["r"].data == 42

    def test_input_blocked_while_busy(self):
        net, prod, vl, cons = make_vl(lambda rng: 4)
        prod.set(1, 0, data="a")
        cons.set(0, 0)
        net.step()
        prod.set(1, 0, data="b")
        net.step()
        assert net.channels["l"].last_event.value == "R+"

    def test_back_to_back_accept_on_release(self):
        net, prod, vl, cons = make_vl(lambda rng: 1)
        prod.set(1, 0, data="a")
        cons.set(0, 0)
        net.step()
        prod.set(1, 0, data="b")
        net.step()  # result of a departs; b accepted the same cycle
        assert net.channels["r"].last_event.value == "+"
        assert net.channels["l"].last_event.value == "+"

    def test_result_killed_at_output(self):
        net, prod, vl, cons = make_vl(lambda rng: 1)
        prod.set(1, 0, data="a")
        cons.set(0, 0)
        net.step()
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()
        assert net.channels["r"].last_event.value == "±"
        assert vl.state == vl.IDLE

    def test_busy_computation_preempted_by_anti_token(self):
        net, prod, vl, cons = make_vl(lambda rng: 10)
        prod.set(1, 0, data="slow")
        cons.set(0, 0)
        net.step()
        assert vl.state == vl.BUSY
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()
        assert vl.state == vl.IDLE
        assert vl.aborted == 1
        assert net.channels["r"].last_event.value == "-"

    def test_anti_token_passes_through_idle_unit(self):
        net, prod, vl, cons = make_vl(lambda rng: 2)
        prod.set(0, 0)
        cons.set(0, 1)
        net.step()
        assert net.channels["l"].last_event.value == "-"
        assert net.channels["r"].last_event.value == "-"

    def test_kill_on_input_channel_before_entry(self):
        net, prod, vl, cons = make_vl(lambda rng: 2)
        prod.set(1, 0, data="doomed")
        cons.set(0, 1)
        net.step()
        assert net.channels["l"].last_event.value == "±"
        assert vl.state == vl.IDLE

    def test_zero_latency_rejected(self):
        net, prod, vl, cons = make_vl(lambda rng: 0)
        prod.set(1, 0, data="x")
        cons.set(0, 0)
        with pytest.raises(ValueError):
            net.step()

    def test_go_done_counters(self):
        net, prod, vl, cons = make_vl(lambda rng: 1)
        cons.set(0, 0)
        for k in range(6):
            prod.set(1, 0, data=k)
            net.step()
        assert vl.go_count >= 2
        assert vl.done_count == vl.go_count or vl.done_count == vl.go_count - 1


class TestPipe:
    def test_control_transparent_data_transformed(self):
        net = ElasticNetwork("pipe")
        l = net.add_channel("l", monitor=False)
        r = net.add_channel("r", monitor=False)
        p = ScriptedEnd("p", l, "producer")
        c = ScriptedEnd("c", r, "consumer")
        net.add(p)
        net.add(Pipe("f", l, r, func=lambda x: x + 1))
        net.add(c)
        p.set(1, 0, data=1)
        c.set(0, 0)
        net.step()
        assert r.data == 2
        c.set(0, 1)
        net.step()
        assert net.channels["l"].last_event.value == "±"
