"""Tests for latency tracing and occupancy probes."""

import random

import pytest

from repro.elastic.behavioral import ElasticBuffer, ElasticNetwork, Sink
from repro.elastic.instrumentation import (
    LatencyStats,
    OccupancyProbe,
    StampedToken,
    TracingSink,
    TracingSource,
    latency_stats,
)


def traced_pipeline(stages, p_stop=0.0, seed=0):
    net = ElasticNetwork("traced")
    chans = [net.add_channel(f"c{i}") for i in range(stages + 1)]
    src = TracingSource("src", chans[0], rng=random.Random(seed))
    net.add(src)
    buffers = []
    for i in range(stages):
        eb = ElasticBuffer(f"eb{i}", chans[i], chans[i + 1])
        buffers.append(eb)
        net.add(eb)
    sink = TracingSink("snk", chans[-1], p_stop=p_stop,
                       rng=random.Random(seed + 1))
    net.add(sink)
    probe = OccupancyProbe("probe", buffers)
    net.add(probe)
    return net, sink, probe


class TestLatencyTracing:
    def test_free_flow_latency_equals_depth(self):
        net, sink, _ = traced_pipeline(4)
        net.run(200)
        # steady state: one cycle per buffer
        steady = sink.latencies[10:]
        assert steady and all(l == 4 for l in steady)

    def test_stalls_increase_latency(self):
        net_free, sink_free, _ = traced_pipeline(4)
        net_free.run(400)
        net_slow, sink_slow, _ = traced_pipeline(4, p_stop=0.5, seed=3)
        net_slow.run(400)
        assert latency_stats(sink_slow.latencies).mean > latency_stats(
            sink_free.latencies
        ).mean

    def test_stamped_token_repr(self):
        assert "@3" in repr(StampedToken("x", 3))


class TestLatencyStats:
    def test_empty_sample(self):
        s = latency_stats([])
        assert s.count == 0 and s.mean == 0.0

    def test_percentiles(self):
        s = latency_stats(list(range(1, 101)))
        assert s.p50 == 50
        assert s.p95 == 95
        assert s.maximum == 100
        assert s.mean == pytest.approx(50.5)

    def test_str(self):
        assert "p95" in str(latency_stats([1, 2, 3]))


class TestOccupancy:
    def test_backpressure_fills_buffers(self):
        net_free, _, probe_free = traced_pipeline(3)
        net_free.run(300)
        net_slow, _, probe_slow = traced_pipeline(3, p_stop=0.7, seed=5)
        net_slow.run(300)
        assert probe_slow.mean_tokens > probe_free.mean_tokens

    def test_anti_token_occupancy_counted(self):
        net = ElasticNetwork("anti")
        a, b = net.add_channel("a"), net.add_channel("b")
        src = TracingSource("src", a, p_valid=0.05, rng=random.Random(1))
        net.add(src)
        eb = ElasticBuffer("eb", a, b)
        net.add(eb)
        net.add(Sink("snk", b, p_kill=0.8, rng=random.Random(2)))
        probe = OccupancyProbe("probe", [eb])
        net.add(probe)
        net.run(300)
        assert probe.mean_anti_tokens > 0

    def test_empty_probe(self):
        probe = OccupancyProbe("p", [])
        assert probe.mean_tokens == 0.0 and probe.mean_anti_tokens == 0.0
