"""Exhaustive verification of the elastic buffer's transition function.

The dual EB is the single most load-bearing controller (every stage
boundary is one).  This suite enumerates *every* (occupancy, boundary
wires) combination, compares the behavioural controller against an
independently written reference transition function, and checks the
safety invariants of Sect. 4 on each transition.
"""

import itertools

import pytest

from repro.elastic.behavioral import ElasticBuffer, ElasticNetwork
from repro.elastic.crosscheck import ScriptedEnd
from repro.elastic.protocol import invariant_holds


def reference_transition(count, vp_l, sn_l, sp_r, vn_r):
    """Independent dual-EB model (written from the DMG semantics).

    Returns (outputs, next_count) where outputs = (sp_l, vn_l, vp_r,
    sn_r).  Occupancy is the signed token count in [-2, 2].
    """
    # outputs are pure state functions
    sp_l = 1 if count >= 2 else 0
    vn_l = 1 if count < 0 else 0
    vp_r = 1 if count > 0 else 0
    sn_r = 1 if count <= -2 else 0

    nxt = count
    # right boundary: head token leaves or is annihilated; anti enters
    if vp_r and vn_r:
        nxt -= 1  # kill at the output boundary
    elif vp_r and not sp_r:
        nxt -= 1  # positive transfer out
    elif vn_r and not sn_r and not vp_r:
        nxt -= 1  # anti-token enters
    # left boundary: token enters or dies; anti leaves
    if vp_l and vn_l:
        nxt += 1  # arriving token annihilates a stored anti
    elif vn_l and not sn_l:
        nxt += 1  # anti-token moves backwards
    elif vp_l and not sp_l and not vn_l:
        nxt += 1  # positive transfer in
    return (sp_l, vn_l, vp_r, sn_r), nxt


def make_eb(count):
    net = ElasticNetwork("x")
    left = net.add_channel("L", monitor=False)
    right = net.add_channel("R", monitor=False)
    prod = ScriptedEnd("p", left, "producer")
    cons = ScriptedEnd("c", right, "consumer")
    tokens = max(count, 0)
    eb = ElasticBuffer("eb", left, right, initial_tokens=tokens,
                       initial_data=list(range(tokens)))
    eb.count = count
    eb.data = list(range(max(count, 0)))
    net.add(prod)
    net.add(eb)
    net.add(cons)
    return net, prod, eb, cons


ALL_CASES = [
    (count, vp_l, sn_l, sp_r, vn_r)
    for count in range(-2, 3)
    for vp_l, sn_l, sp_r, vn_r in itertools.product((0, 1), repeat=4)
]


@pytest.mark.parametrize("count,vp_l,sn_l,sp_r,vn_r", ALL_CASES)
def test_transition_matches_reference(count, vp_l, sn_l, sp_r, vn_r):
    # skip environment inputs that a protocol-legal neighbour cannot
    # produce against our outputs (invariant (2) pre-conditions)
    (sp_l, vn_l, vp_r, sn_r), expected = reference_transition(
        count, vp_l, sn_l, sp_r, vn_r
    )
    if (vp_l and sn_l) or (vn_r and sp_r):
        pytest.skip("illegal environment (violates invariant (2))")
    if vn_l and sp_l:
        pytest.skip("unreachable output combination")

    net, prod, eb, cons = make_eb(count)
    prod.set(vp_l, sn_l, data=99)
    cons.set(sp_r, vn_r)
    net.step()

    # outputs observed on the settled channels
    assert net.channels["L"].sp == sp_l
    assert net.channels["L"].vn == vn_l
    assert net.channels["R"].vp == vp_r
    assert net.channels["R"].sn == sn_r
    # both channels satisfied invariant (2)
    L, R = net.channels["L"], net.channels["R"]
    assert invariant_holds(L.vp, L.sp, L.vn, L.sn)
    assert invariant_holds(R.vp, R.sp, R.vn, R.sn)
    # next state
    assert eb.count == expected
    assert -2 <= eb.count <= 2
    assert len(eb.data) == max(eb.count, 0)


def test_reference_never_overflows():
    """The reference model itself stays within capacity under any
    legal environment -- a sanity check on the test oracle."""
    for count, vp_l, sn_l, sp_r, vn_r in ALL_CASES:
        outs, nxt = reference_transition(count, vp_l, sn_l, sp_r, vn_r)
        sp_l, vn_l, vp_r, sn_r = outs
        if (vp_l and sn_l) or (vn_r and sp_r):
            continue
        assert -2 <= nxt <= 2
