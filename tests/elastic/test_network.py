"""Integration tests for the elastic network simulator."""

import random

import pytest

from repro.elastic.behavioral import (
    Controller,
    EagerFork,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    Sink,
    Source,
)
from repro.elastic.protocol import ProtocolViolation


def pipeline(stages, p_stop=0.0, p_kill=0.0, seed=0):
    net = ElasticNetwork("pipe")
    chans = [net.add_channel(f"c{i}") for i in range(stages + 1)]
    net.add(Source("src", chans[0], rng=random.Random(seed)))
    for i in range(stages):
        net.add(ElasticBuffer(f"eb{i}", chans[i], chans[i + 1],
                              initial_tokens=1 if i == 0 else 0, initial_data=[-1] if i == 0 else None))
    sink = Sink("sink", chans[-1], p_stop=p_stop, p_kill=p_kill,
                rng=random.Random(seed + 1))
    net.add(sink)
    return net, sink


class TestRegistration:
    def test_duplicate_channel_rejected(self):
        net = ElasticNetwork()
        net.add_channel("c")
        with pytest.raises(ValueError):
            net.add_channel("c")

    def test_unregistered_channel_rejected(self):
        net = ElasticNetwork()
        other = ElasticNetwork()
        ch = other.add_channel("c")
        with pytest.raises(ValueError):
            net.add(Source("s", ch))


class TestPipelines:
    def test_full_throughput_free_flow(self):
        net, sink = pipeline(3)
        net.run(100)
        assert net.throughput("c0") > 0.95

    def test_data_arrives_in_order(self):
        net, sink = pipeline(4, p_stop=0.3, seed=2)
        net.run(300)
        values = [v for v in sink.received if v != -1]
        assert values == sorted(values)
        assert len(values) > 50

    def test_no_data_lost_without_kills(self):
        net, sink = pipeline(3, p_stop=0.4, seed=3)
        net.run(200)
        src = next(c for c in net.controllers if isinstance(c, Source))
        in_flight = sum(
            c.tokens for c in net.controllers if isinstance(c, ElasticBuffer)
        )
        assert src.sent + 1 == len(sink.received) + in_flight  # +1 initial token

    def test_killing_consumer_throughput_equalises(self):
        net, sink = pipeline(3, p_stop=0.2, p_kill=0.3, seed=4)
        net.run(500)
        ths = [ch.stats.throughput for ch in net.channels.values()]
        assert max(ths) - min(ths) < 0.03

    def test_kills_counted(self):
        net, sink = pipeline(2, p_kill=0.5, seed=5)
        net.run(300)
        total_kills = sum(ch.stats.kills for ch in net.channels.values())
        assert total_kills > 0
        assert sink.kills_sent > 0


class TestDiamond:
    def test_fork_join_pairs_match(self):
        net = ElasticNetwork("diamond")
        cin, c0 = net.add_channel("cin"), net.add_channel("c0")
        fa, fb = net.add_channel("fa"), net.add_channel("fb")
        a1, b1 = net.add_channel("a1"), net.add_channel("b1")
        j = net.add_channel("j")
        net.add(Source("src", cin, data_fn=lambda n: n))
        net.add(ElasticBuffer("ebi", cin, c0, initial_tokens=1, initial_data=[-1]))
        net.add(EagerFork("fork", c0, [fa, fb]))
        net.add(ElasticBuffer("eba", fa, a1))
        net.add(ElasticBuffer("ebb", fb, b1))
        net.add(Join("join", [a1, b1], j))
        seen = []
        net.add(Sink("sink", j, on_data=seen.append, p_stop=0.2,
                     rng=random.Random(9)))
        net.run(300)
        assert len(seen) > 100
        assert all(x == y for x, y in seen)

    def test_repetitive_behavior_equal_throughput(self):
        net = ElasticNetwork("ring")
        # closed ring: 3 EBs, one token
        chans = [net.add_channel(f"r{i}") for i in range(3)]
        net.add(ElasticBuffer("e0", chans[0], chans[1], initial_tokens=1))
        net.add(ElasticBuffer("e1", chans[1], chans[2]))
        net.add(ElasticBuffer("e2", chans[2], chans[0]))
        net.run(120)
        ths = {round(ch.stats.throughput, 2) for ch in net.channels.values()}
        assert len(ths) == 1


class TestFixedPoint:
    def test_unsettled_network_detected(self):
        class Lazy(Controller):
            """Never drives its wires -- the fixed point can't settle."""

            def __init__(self, ch):
                super().__init__("lazy")
                self.ch = ch

            def channels(self):
                return (self.ch,)

            def evaluate(self):
                return False

        net = ElasticNetwork()
        ch = net.add_channel("c")
        net.add(Lazy(ch))
        with pytest.raises(ProtocolViolation):
            net.step()

    def test_report_lists_channels(self):
        net, _ = pipeline(2)
        net.run(10)
        text = net.report()
        assert "c0" in text and "Th=" in text


class TestSourceSink:
    def test_source_probability_thins_stream(self):
        net = ElasticNetwork()
        c = net.add_channel("c")
        src = Source("s", c, p_valid=0.3, rng=random.Random(0))
        net.add(src)
        net.add(Sink("k", c))
        net.run(1000)
        assert 0.2 < net.throughput("c") < 0.4

    def test_source_persistence_under_stalls(self):
        net = ElasticNetwork()
        c = net.add_channel("c")  # monitored: would raise on violation
        net.add(Source("s", c, p_valid=0.5, rng=random.Random(1)))
        net.add(Sink("k", c, p_stop=0.6, rng=random.Random(2)))
        net.run(500)
        assert c.stats.retries_pos > 0  # stalls actually happened

    def test_sink_invalid_probabilities(self):
        net = ElasticNetwork()
        c = net.add_channel("c")
        with pytest.raises(ValueError):
            Sink("k", c, p_stop=0.8, p_kill=0.5)

    def test_killed_source_tokens_counted(self):
        net = ElasticNetwork()
        c = net.add_channel("c")
        src = Source("s", c, rng=random.Random(3))
        net.add(src)
        net.add(Sink("k", c, p_kill=1.0, rng=random.Random(4)))
        net.run(50)
        assert src.killed == 50 and src.sent == 0
