"""Tests for early-evaluation functions and the unateness constraint."""

import pytest

from repro.elastic.ee import (
    AndEE,
    EarlyEvalFunction,
    MuxEE,
    ThresholdEE,
    check_positive_unate,
)
from repro.rtl.logic import X


class TestAndEE:
    def test_all_valid(self):
        ee = AndEE(3)
        assert ee.evaluate([1, 1, 1], [None] * 3) == 1

    def test_any_missing(self):
        ee = AndEE(3)
        assert ee.evaluate([1, 0, 1], [None] * 3) == 0

    def test_unknown(self):
        ee = AndEE(2)
        assert ee.evaluate([1, X], [None, None]) is X

    def test_output_data_tuple(self):
        ee = AndEE(2)
        assert ee.output_data([1, 1], ["a", "b"]) == ("a", "b")


class TestMuxEE:
    @pytest.fixture
    def mux(self):
        return MuxEE(select=0, chooser=lambda s: 1 if s else 2, arity=3)

    def test_select_unknown_gives_x(self, mux):
        assert mux.evaluate([X, 1, 1], [None] * 3) is X

    def test_select_invalid_gives_zero(self, mux):
        assert mux.evaluate([0, 1, 1], [None] * 3) == 0

    def test_fires_with_only_selected_operand(self, mux):
        assert mux.evaluate([1, 1, 0], [True, "a", None]) == 1
        assert mux.evaluate([1, 0, 1], [True, None, "b"]) == 0

    def test_selected_operand_unknown(self, mux):
        assert mux.evaluate([1, X, 0], [True, None, None]) is X

    def test_output_data_selects(self, mux):
        assert mux.output_data([1, 1, 0], [True, "a", None]) == "a"
        assert mux.output_data([1, 0, 1], [False, None, "b"]) == "b"

    def test_chooser_out_of_range_raises(self):
        bad = MuxEE(select=0, chooser=lambda s: 7, arity=3)
        with pytest.raises(ValueError):
            bad.evaluate([1, 1, 1], ["x", None, None])


class TestThresholdEE:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ThresholdEE(0, 3)
        with pytest.raises(ValueError):
            ThresholdEE(4, 3)

    def test_fires_at_threshold(self):
        ee = ThresholdEE(2, 3)
        assert ee.evaluate([1, 1, 0], [None] * 3) == 1
        assert ee.evaluate([1, 0, 0], [None] * 3) == 0

    def test_unknowns_straddling_threshold(self):
        ee = ThresholdEE(2, 3)
        assert ee.evaluate([1, X, 0], [None] * 3) is X

    def test_or_causality(self):
        ee = ThresholdEE(1, 2)
        assert ee.evaluate([0, 1], [None, "b"]) == 1

    def test_output_data_filters_valid(self):
        ee = ThresholdEE(1, 3)
        assert ee.output_data([1, 0, 1], ["a", None, "c"]) == ("a", "c")


class TestUnatenessChecker:
    def test_and_is_unate(self):
        assert check_positive_unate(AndEE(3), data_domain=[None])

    def test_mux_is_unate(self):
        mux = MuxEE(select=0, chooser=lambda s: 1 if s else 2, arity=3)
        assert check_positive_unate(mux, data_domain=[True, False], select_indices=[0])

    def test_threshold_is_unate(self):
        assert check_positive_unate(ThresholdEE(2, 3), data_domain=[None])

    def test_violation_detected(self):
        class AbsenceEE(EarlyEvalFunction):
            """Fires on the *absence* of input 1 -- forbidden by Sect. 4.3."""

            arity = 2

            def evaluate(self, valids, datas):
                if any(v is X for v in valids):
                    return X
                return 1 if (valids[0] == 1 and valids[1] == 0) else 0

        with pytest.raises(AssertionError):
            check_positive_unate(AbsenceEE(), data_domain=[None])

    def test_x_on_known_inputs_detected(self):
        class LeakyEE(EarlyEvalFunction):
            arity = 1

            def evaluate(self, valids, datas):
                return X

        with pytest.raises(AssertionError):
            check_positive_unate(LeakyEE(), data_domain=[None])
