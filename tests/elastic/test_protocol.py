"""Tests for the SELF protocol layer (Sect. 3 and 4)."""

import pytest

from repro.elastic.protocol import (
    ChannelState,
    DualChannelEvent,
    ProtocolMonitor,
    ProtocolViolation,
    classify,
    classify_dual,
    invariant_holds,
)


class TestClassify:
    def test_transfer(self):
        assert classify(1, 0) is ChannelState.TRANSFER

    def test_idle(self):
        assert classify(0, 0) is ChannelState.IDLE
        assert classify(0, 1) is ChannelState.IDLE

    def test_retry(self):
        assert classify(1, 1) is ChannelState.RETRY


class TestInvariant:
    @pytest.mark.parametrize(
        "wires,ok",
        [
            ((0, 0, 0, 0), True),
            ((1, 1, 0, 0), True),
            ((0, 0, 1, 0), True),
            ((1, 0, 1, 0), True),   # kill
            ((0, 1, 1, 0), False),  # V- & S+
            ((1, 0, 0, 1), False),  # V+ & S-
        ],
    )
    def test_cases(self, wires, ok):
        assert invariant_holds(*wires) is ok


class TestClassifyDual:
    def test_positive_transfer(self):
        assert classify_dual(1, 0, 0, 0) is DualChannelEvent.POSITIVE_TRANSFER

    def test_negative_transfer(self):
        assert classify_dual(0, 0, 1, 0) is DualChannelEvent.NEGATIVE_TRANSFER

    def test_kill(self):
        assert classify_dual(1, 0, 1, 0) is DualChannelEvent.KILL

    def test_retries(self):
        assert classify_dual(1, 1, 0, 0) is DualChannelEvent.RETRY_POS
        assert classify_dual(0, 0, 1, 1) is DualChannelEvent.RETRY_NEG

    def test_idle(self):
        assert classify_dual(0, 1, 0, 1) is DualChannelEvent.IDLE

    def test_invariant_violation_raises(self):
        with pytest.raises(ProtocolViolation):
            classify_dual(1, 0, 0, 1)


class TestMonitor:
    def test_accepts_iirt_language(self):
        mon = ProtocolMonitor("ch")
        trace = [(0, 0), (0, 1), (1, 1), (1, 1), (1, 0), (0, 0), (1, 0)]
        for vp, sp in trace:
            mon.observe(vp, sp, 0, 0, data="d" if vp else None)
        assert mon.language_ok()

    def test_dropping_valid_during_retry_raises(self):
        mon = ProtocolMonitor("ch")
        mon.observe(1, 1, 0, 0, data="a")
        with pytest.raises(ProtocolViolation):
            mon.observe(0, 0, 0, 0)

    def test_changing_data_during_retry_raises(self):
        mon = ProtocolMonitor("ch")
        mon.observe(1, 1, 0, 0, data="a")
        with pytest.raises(ProtocolViolation):
            mon.observe(1, 1, 0, 0, data="b")

    def test_data_check_can_be_disabled(self):
        mon = ProtocolMonitor("ch", check_data=False)
        mon.observe(1, 1, 0, 0, data="a")
        mon.observe(1, 0, 0, 0, data="b")  # no raise

    def test_anti_token_persistence(self):
        mon = ProtocolMonitor("ch")
        mon.observe(0, 0, 1, 1)  # Retry-
        with pytest.raises(ProtocolViolation):
            mon.observe(0, 0, 0, 0)

    def test_kill_discharges_retry(self):
        mon = ProtocolMonitor("ch")
        mon.observe(1, 1, 0, 0, data="a")
        mon.observe(1, 0, 1, 0, data="a")  # killed
        mon.observe(0, 0, 0, 0)  # idle fine now

    def test_throughput_counts_moving_events(self):
        mon = ProtocolMonitor("ch")
        mon.observe(1, 0, 0, 0, data=1)   # +
        mon.observe(0, 0, 1, 0)           # -
        mon.observe(1, 0, 1, 0, data=2)   # kill
        mon.observe(0, 0, 0, 0)           # idle
        assert mon.throughput() == pytest.approx(0.75)

    def test_language_ok_detects_bad_history(self):
        mon = ProtocolMonitor("ch")
        mon.history.extend(
            [DualChannelEvent.RETRY_POS, DualChannelEvent.IDLE]
        )
        assert not mon.language_ok()
