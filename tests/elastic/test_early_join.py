"""Unit tests for the early-evaluation join (Fig. 6(c))."""

import pytest

from repro.elastic.behavioral import EarlyJoin, ElasticNetwork
from repro.elastic.crosscheck import ScriptedEnd
from repro.elastic.ee import AndEE, MuxEE


def make_ej():
    """An EJ with a select channel (index 0) and two operands."""
    net = ElasticNetwork("ej")
    ins = [net.add_channel(n, monitor=False) for n in ("s", "a", "b")]
    out = net.add_channel("z", monitor=False)
    prods = [ScriptedEnd(f"p.{ch.name}", ch, "producer") for ch in ins]
    cons = ScriptedEnd("c", out, "consumer")
    ee = MuxEE(select=0, chooser=lambda s: 1 if s else 2, arity=3)
    ej = EarlyJoin("ej", ins, out, ee)
    for p in prods:
        net.add(p)
    net.add(ej)
    net.add(cons)
    return net, prods, ej, cons


class TestEarlyFiring:
    def test_fires_without_unselected_operand(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)   # select a
        pa.set(1, 0, data="A")
        pb.set(0, 0)              # b missing
        cons.set(0, 0)
        net.step()
        assert net.channels["z"].last_event.value == "+"
        assert net.channels["z"].data == "A"

    def test_antitoken_generated_on_missing_input(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 0)
        cons.set(0, 0)
        net.step()
        assert net.channels["b"].last_event.value == "-"  # G gate fired
        assert ej.apend == [0, 0, 0]  # delivered immediately

    def test_blocked_antitoken_latched(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 1)  # upstream b refuses anti-tokens
        cons.set(0, 0)
        net.step()
        assert ej.apend == [0, 0, 1]

    def test_pending_antitoken_kills_late_arrival(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 1)
        cons.set(0, 0)
        net.step()
        ps.set(0, 0)
        pa.set(0, 0)
        pb.set(1, 0, data="LATE")
        net.step()
        assert net.channels["b"].last_event.value == "±"
        assert ej.apend == [0, 0, 0]

    def test_b_gate_blocks_next_firing_until_drained(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 1)
        cons.set(0, 0)
        net.step()
        assert ej.apend == [0, 0, 1]
        # next operation ready, but the anti-token has not drained
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A2")
        pb.set(0, 1)
        net.step()
        assert net.channels["z"].vp == 0

    def test_no_early_firing_without_select(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(0, 0)
        pa.set(1, 0, data="A")
        pb.set(1, 0, data="B")
        cons.set(0, 0)
        net.step()
        assert net.channels["z"].vp == 0

    def test_no_antitoken_on_stalled_output(self):
        """G gates require an output transfer (not S+out)."""
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 0)
        cons.set(1, 0)  # output stalled
        net.step()
        assert net.channels["b"].vn == 0
        assert net.channels["z"].last_event.value == "R+"

    def test_kill_at_output_still_generates_antitokens(self):
        """A kill consumes the firing, so missing inputs owe anti-tokens."""
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=True)
        pa.set(1, 0, data="A")
        pb.set(0, 0)
        cons.set(0, 1)  # anti-token at the output
        net.step()
        assert net.channels["z"].last_event.value == "±"
        assert net.channels["b"].last_event.value == "-"

    def test_all_inputs_present_behaves_like_join(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(1, 0, data=False)  # select b
        pa.set(1, 0, data="A")
        pb.set(1, 0, data="B")
        cons.set(0, 0)
        net.step()
        assert net.channels["z"].data == "B"
        # a's token is consumed too (early firing decrements all inputs)
        assert net.channels["a"].last_event.value == "+"

    def test_arity_mismatch_rejected(self):
        net = ElasticNetwork("bad")
        ins = [net.add_channel("x", monitor=False)]
        out = net.add_channel("z", monitor=False)
        with pytest.raises(ValueError):
            EarlyJoin("bad", ins, out, AndEE(2))


class TestAntiForkThroughEJ:
    def test_incoming_anti_forked_when_not_firing(self):
        net, (ps, pa, pb), ej, cons = make_ej()
        ps.set(0, 0)
        pa.set(0, 0)
        pb.set(0, 0)
        cons.set(0, 1)
        net.step()
        for name in ("s", "a", "b"):
            assert net.channels[name].last_event.value == "-"
