"""Unit tests for the dual join and eager fork (Figs. 4 and 6)."""

import pytest

from repro.elastic.behavioral import EagerFork, ElasticNetwork, Join, LazyFork
from repro.elastic.crosscheck import ScriptedEnd


def make_join(n=2):
    net = ElasticNetwork("join")
    ins = [net.add_channel(f"i{k}", monitor=False) for k in range(n)]
    out = net.add_channel("z", monitor=False)
    prods = [ScriptedEnd(f"p{k}", ch, "producer") for k, ch in enumerate(ins)]
    cons = ScriptedEnd("c", out, "consumer")
    join = Join("j", ins, out)
    for p in prods:
        net.add(p)
    net.add(join)
    net.add(cons)
    return net, prods, join, cons


def make_fork(n=2):
    net = ElasticNetwork("fork")
    inp = net.add_channel("i", monitor=False)
    outs = [net.add_channel(f"o{k}", monitor=False) for k in range(n)]
    prod = ScriptedEnd("p", inp, "producer")
    conss = [ScriptedEnd(f"c{k}", ch, "consumer") for k, ch in enumerate(outs)]
    fork = EagerFork("f", inp, outs)
    net.add(prod)
    net.add(fork)
    for c in conss:
        net.add(c)
    return net, prod, fork, conss


class TestJoinPositive:
    def test_needs_all_inputs(self):
        net, prods, join, cons = make_join()
        prods[0].set(1, 0, data="a")
        prods[1].set(0, 1)
        cons.set(0, 0)
        net.step()
        assert net.channels["z"].vp == 0
        assert net.channels["i0"].last_event.value == "R+"

    def test_fires_when_complete(self):
        net, prods, join, cons = make_join()
        prods[0].set(1, 0, data="a")
        prods[1].set(1, 0, data="b")
        cons.set(0, 0)
        net.step()
        assert net.channels["z"].last_event.value == "+"
        assert net.channels["z"].data == ("a", "b")
        assert net.channels["i0"].last_event.value == "+"
        assert net.channels["i1"].last_event.value == "+"

    def test_stop_propagates_to_all_inputs(self):
        net, prods, join, cons = make_join()
        prods[0].set(1, 0, data="a")
        prods[1].set(1, 0, data="b")
        cons.set(1, 0)
        net.step()
        assert net.channels["i0"].sp == 1 and net.channels["i1"].sp == 1

    def test_custom_combine(self):
        net = ElasticNetwork("j2")
        a, b = net.add_channel("a", monitor=False), net.add_channel("b", monitor=False)
        z = net.add_channel("z", monitor=False)
        pa, pb = ScriptedEnd("pa", a, "producer"), ScriptedEnd("pb", b, "producer")
        cz = ScriptedEnd("cz", z, "consumer")
        for c in (pa, Join("j", [a, b], z, combine=lambda xs: xs[0] + xs[1]), pb, cz):
            net.add(c)
        pa.set(1, 0, data=2)
        pb.set(1, 0, data=3)
        cz.set(0, 0)
        net.step()
        assert z.data == 5

    def test_single_input_join_requires_channel(self):
        with pytest.raises(ValueError):
            Join("j", [], None)


class TestJoinAntiTokens:
    def test_kill_at_output_consumes_inputs(self):
        net, prods, join, cons = make_join()
        prods[0].set(1, 0, data="a")
        prods[1].set(1, 0, data="b")
        cons.set(0, 1)  # anti-token at the output
        net.step()
        assert net.channels["z"].last_event.value == "±"
        # both inputs were consumed by the (killed) firing
        assert net.channels["i0"].last_event.value == "+"

    def test_anti_token_forked_to_all_inputs_same_cycle(self):
        net, prods, join, cons = make_join()
        prods[0].set(1, 0, data="a")  # has a token -> kill
        prods[1].set(0, 0)            # empty -> anti-token passes
        cons.set(0, 1)
        net.step()
        assert net.channels["i0"].last_event.value == "±"
        assert net.channels["i1"].last_event.value == "-"
        assert join.apend == [0, 0]

    def test_blocked_anti_token_stored_in_ff(self):
        net, prods, join, cons = make_join()
        prods[0].set(0, 1)  # upstream refuses anti-tokens
        prods[1].set(0, 0)
        cons.set(0, 1)
        net.step()
        assert join.apend == [1, 0]

    def test_b_gate_blocks_transfers_while_draining(self):
        net, prods, join, cons = make_join()
        prods[0].set(0, 1)
        prods[1].set(0, 0)
        cons.set(0, 1)
        net.step()  # apend[0] set
        prods[0].set(1, 0, data="late")
        prods[1].set(1, 0, data="ok")
        cons.set(0, 0)
        net.step()
        # the pending anti-token kills the late token; no output transfer
        assert net.channels["i0"].last_event.value == "±"
        assert net.channels["z"].vp == 0
        assert join.apend == [0, 0]

    def test_second_anti_token_backpressured(self):
        net, prods, join, cons = make_join()
        prods[0].set(0, 1)
        prods[1].set(0, 1)
        cons.set(0, 1)
        net.step()
        assert join.apend == [1, 1]
        net.step()  # second anti must wait: Retry-
        assert net.channels["z"].last_event.value == "R-"


class TestForkPositive:
    def test_eager_branches_complete_independently(self):
        net, prod, fork, conss = make_fork()
        prod.set(1, 0, data="t")
        conss[0].set(0, 0)
        conss[1].set(1, 0)  # branch 1 stalls
        net.step()
        assert net.channels["o0"].last_event.value == "+"
        assert net.channels["o1"].last_event.value == "R+"
        assert fork.pend == [0, 1]
        assert net.channels["i"].last_event.value == "R+"  # token not consumed

    def test_no_duplicate_delivery_to_completed_branch(self):
        net, prod, fork, conss = make_fork()
        prod.set(1, 0, data="t")
        conss[0].set(0, 0)
        conss[1].set(1, 0)
        net.step()
        net.step()  # branch 0 already done: no new V+ for it
        assert net.channels["o0"].vp == 0

    def test_token_consumed_when_all_complete(self):
        net, prod, fork, conss = make_fork()
        prod.set(1, 0, data="t")
        conss[0].set(0, 0)
        conss[1].set(0, 0)
        net.step()
        assert net.channels["i"].last_event.value == "+"
        assert fork.pend == [1, 1]

    def test_branch_data_function(self):
        net = ElasticNetwork("fbd")
        i = net.add_channel("i", monitor=False)
        o0, o1 = net.add_channel("o0", monitor=False), net.add_channel("o1", monitor=False)
        p = ScriptedEnd("p", i, "producer")
        c0, c1 = ScriptedEnd("c0", o0, "consumer"), ScriptedEnd("c1", o1, "consumer")
        fork = EagerFork("f", i, [o0, o1], branch_data=lambda k, d: (k, d))
        for x in (p, fork, c0, c1):
            net.add(x)
        p.set(1, 0, data="v")
        c0.set(0, 0)
        c1.set(0, 0)
        net.step()
        assert o0.data == (0, "v") and o1.data == (1, "v")


class TestForkAntiTokens:
    def test_branch_anti_kills_pending_copy(self):
        net, prod, fork, conss = make_fork()
        prod.set(1, 0, data="t")
        conss[0].set(0, 1)  # anti on branch 0
        conss[1].set(0, 0)
        net.step()
        assert net.channels["o0"].last_event.value == "±"
        assert net.channels["o1"].last_event.value == "+"
        assert net.channels["i"].last_event.value == "+"  # consumed

    def test_anti_needs_all_branches_to_cross(self):
        net, prod, fork, conss = make_fork()
        prod.set(0, 0)
        conss[0].set(0, 1)
        conss[1].set(0, 0)
        net.step()
        assert net.channels["i"].vn == 0
        assert net.channels["o0"].last_event.value == "R-"

    def test_anti_crosses_when_all_present(self):
        net, prod, fork, conss = make_fork()
        prod.set(0, 0)
        conss[0].set(0, 1)
        conss[1].set(0, 1)
        net.step()
        assert net.channels["i"].last_event.value == "-"
        assert net.channels["o0"].last_event.value == "-"
        assert net.channels["o1"].last_event.value == "-"

    def test_anti_blocked_by_upstream(self):
        # The whole wave retries: V- is asserted (the wave is present
        # and aligned to a fresh token boundary) but S- blocks it, so
        # the input channel and every branch show Retry-.  Persistence
        # holds because the wave can only leave by moving or by
        # annihilating an arriving token, never by withdrawal.
        net, prod, fork, conss = make_fork()
        prod.set(0, 1)  # upstream stops anti-tokens
        conss[0].set(0, 1)
        conss[1].set(0, 1)
        net.step()
        assert net.channels["i"].last_event.value == "R-"
        assert net.channels["o0"].last_event.value == "R-"
        assert net.channels["o1"].last_event.value == "R-"
        # ... and the wave persists, then moves when S- drops.
        prod.set(0, 0)
        net.step()
        assert net.channels["i"].last_event.value == "-"

    def test_wave_annihilates_arriving_token(self):
        """Retry- discharged by a kill: token meets the full wave."""
        net, prod, fork, conss = make_fork()
        prod.set(0, 1)
        conss[0].set(0, 1)
        conss[1].set(0, 1)
        net.step()
        assert net.channels["i"].last_event.value == "R-"
        prod.set(1, 0, data="doomed")
        net.step()
        assert net.channels["i"].last_event.value == "±"
        assert net.channels["o0"].last_event.value == "±"
        assert fork.pend == [1, 1]

    def test_wave_waits_for_fresh_boundary(self):
        """A half-delivered token blocks the anti wave (state gate)."""
        net, prod, fork, conss = make_fork()
        prod.set(1, 0, data="t")
        conss[0].set(0, 0)  # branch 0 takes its copy
        conss[1].set(1, 0)  # branch 1 stalls
        net.step()
        assert fork.pend == [0, 1]
        prod.set(1, 0, data="t")  # retried token still in flight
        conss[0].set(0, 1)  # now branch 0 offers an anti (next token)
        conss[1].set(0, 0)  # branch 1 finally accepts its copy
        net.step()
        assert net.channels["i"].vn == 0  # wave gated off mid-token
        assert net.channels["o0"].last_event.value == "R-"
        assert net.channels["i"].last_event.value == "+"  # token done


class TestLazyFork:
    def test_all_or_nothing(self):
        net = ElasticNetwork("lf")
        i = net.add_channel("i", monitor=False)
        o0, o1 = net.add_channel("o0", monitor=False), net.add_channel("o1", monitor=False)
        p = ScriptedEnd("p", i, "producer")
        c0, c1 = ScriptedEnd("c0", o0, "consumer"), ScriptedEnd("c1", o1, "consumer")
        for x in (p, LazyFork("f", i, [o0, o1]), c0, c1):
            net.add(x)
        p.set(1, 0, data="t")
        c0.set(0, 0)
        c1.set(1, 0)
        net.step()
        assert o0.vp == 0  # sibling stalled -> no transfer anywhere
        assert net.channels["i"].last_event.value == "R+"
        c1.set(0, 0)
        net.step()
        assert net.channels["i"].last_event.value == "+"
