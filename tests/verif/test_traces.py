"""Tests for counterexample extraction."""

import pytest

from repro.elastic.gates import GateChannel, build_nd_sink, build_nd_source
from repro.rtl.netlist import Netlist
from repro.verif.ctl import AP, And, Not
from repro.verif.kripke import KripkeStructure, build_kripke
from repro.verif.traces import (
    counterexample_trace,
    format_trace,
    shortest_path_to,
)


def chain_kripke(initial, edges, n=5):
    """A synthetic structure: one boolean signal ``p``, true in state 0."""
    successors = [[] for _ in range(n)]
    for src, dst in edges:
        successors[src].append(dst)
    return KripkeStructure(
        signals=["p"],
        labels=[(1 if s == 0 else 0,) for s in range(n)],
        successors=successors,
        initial=list(initial),
    )


def broken_buffer_netlist():
    """The retry-dropping 'buffer' from the properties tests."""
    nl = Netlist("broken")
    left = GateChannel.declare(nl, "L")
    right = GateChannel.declare(nl, "R")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, left, prefix="src", choice_input=choice)
    v = nl.add_flop(left.vp, q="bad.v", init=0)
    nl.BUF(v, out=right.vp)
    nl.const0(out=right.sn)
    nl.const0(out=left.sp)
    nl.const0(out=left.vn)
    stall = nl.add_input("snk.stall")
    build_nd_sink(nl, right, prefix="snk", stall_input=stall)
    for ch in (left, right):
        for w in ch.wires():
            nl.add_output(w)
    return nl, right


class TestShortestPath:
    def test_initial_state_is_trivial_path(self):
        nl, _ = broken_buffer_netlist()
        k = build_kripke(nl)
        path = shortest_path_to(k, frozenset(k.initial))
        assert len(path) == 1

    def test_unreachable_target(self):
        nl, _ = broken_buffer_netlist()
        k = build_kripke(nl)
        assert shortest_path_to(k, frozenset()) is None

    def test_disconnected_target_is_unreachable(self):
        # 0 -> 1 -> 2, but 3 and 4 form their own island.
        k = chain_kripke(initial=[0], edges=[(0, 1), (1, 2), (3, 4)])
        assert shortest_path_to(k, frozenset({4})) is None

    def test_initial_state_already_in_target(self):
        # A violating initial state yields a length-1 path, even when a
        # longer route to the target set also exists.
        k = chain_kripke(initial=[0], edges=[(0, 1), (1, 0)])
        path = shortest_path_to(k, frozenset({0, 1}))
        assert path == [0]

    def test_multi_initial_bfs_picks_the_closest(self):
        # Two entry points; the target neighbours the second one, so
        # the path must start there rather than walk from state 0.
        k = chain_kripke(
            initial=[0, 3], edges=[(0, 1), (1, 2), (2, 4), (3, 4)]
        )
        path = shortest_path_to(k, frozenset({4}))
        assert path == [3, 4]

    def test_multi_initial_violating_entry_wins(self):
        # One of several initial states is itself a violation.
        k = chain_kripke(initial=[2, 0], edges=[(0, 1), (2, 1)])
        path = shortest_path_to(k, frozenset({2}))
        assert path == [2]


class TestCounterexample:
    def test_holding_invariant_gives_none(self):
        nl, right = broken_buffer_netlist()
        k = build_kripke(nl)
        # the dual-channel invariant (2) does hold on this netlist
        inv = And(
            Not(And(AP(right.vn), AP(right.sp))),
            Not(And(AP(right.vp), AP(right.sn))),
        )
        assert counterexample_trace(k, inv) is None

    def test_retry_violation_witnessed(self):
        """The broken buffer drops V+ after a retry: find the moment."""
        nl, right = broken_buffer_netlist()
        observe = list(nl.outputs) + list(nl.inputs) + ["bad.v"]
        k = build_kripke(nl, observe=observe)
        # Safety encoding of the retry bug: V+ with stop but the state
        # bit that should hold it is about to clear.  Simpler: witness
        # any reachable Retry+ state; then check its successors.
        trace = counterexample_trace(k, Not(And(AP(right.vp), AP(right.sp))))
        assert trace is not None
        last = trace[-1]
        assert last.signals[right.vp] == 1 and last.signals[right.sp] == 1
        # from that state, some successor drops V+ (the actual bug)
        assert any(
            k.value(t, right.vp) == 0 for t in k.successors[last.state]
        )

    def test_trace_starts_at_initial(self):
        nl, right = broken_buffer_netlist()
        k = build_kripke(nl)
        trace = counterexample_trace(k, Not(AP(right.vp)))
        assert trace is not None
        assert trace[0].state in k.initial

    def test_format_trace(self):
        nl, right = broken_buffer_netlist()
        k = build_kripke(nl)
        trace = counterexample_trace(k, Not(AP(right.vp)))
        text = format_trace(trace)
        assert "counterexample" in text and "cycle 0" in text

    def test_steps_expose_inputs(self):
        nl, right = broken_buffer_netlist()
        k = build_kripke(nl)
        trace = counterexample_trace(k, Not(AP(right.vp)))
        for step in trace:
            assert set(step.inputs) == {"src.choice", "snk.stall"}
