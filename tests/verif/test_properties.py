"""The paper's four channel properties on real controller netlists."""

import pytest

from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_join,
    build_fork,
    build_nd_sink,
    build_nd_source,
)
from repro.rtl.netlist import Netlist
from repro.verif.ctl import AP
from repro.verif.properties import (
    channel_properties,
    verify_channel_properties,
    verify_netlist,
)
from repro.verif.kripke import build_kripke


def closed_buffer_chain(n_buffers=2, with_kill=True):
    """source -> EB x n -> sink, with non-deterministic environment."""
    nl = Netlist("chain")
    chans = [GateChannel.declare(nl, f"c{i}") for i in range(n_buffers + 1)]
    choice = nl.add_input("src.choice")
    build_nd_source(nl, chans[0], prefix="src", choice_input=choice)
    for i in range(n_buffers):
        build_elastic_buffer(
            nl, chans[i], chans[i + 1], prefix=f"eb{i}",
            initial_tokens=1 if i == 0 else 0, as_latches=False,
        )
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill") if with_kill else None
    build_nd_sink(nl, chans[-1], prefix="snk", stall_input=stall, kill_input=kill)
    for ch in chans:
        for w in ch.wires():
            nl.add_output(w)
    nl.validate()
    return nl, chans


FAIRNESS = [AP("snk.stall", 0), AP("snk.kill", 0), AP("src.choice", 1)]


class TestChannelProperties:
    def test_formula_set(self):
        ch = GateChannel("c", "c.vp", "c.sp", "c.vn", "c.sn")
        props = channel_properties(ch)
        assert set(props) == {"retry_pos", "retry_neg", "invariant", "liveness"}

    def test_buffer_chain_passes_all(self):
        nl, chans = closed_buffer_chain()
        result = verify_netlist(nl, chans, fairness=FAIRNESS)
        assert result.ok, result.failures()

    def test_chain_without_kills_passes(self):
        nl, chans = closed_buffer_chain(with_kill=False)
        result = verify_netlist(
            nl, chans, fairness=[AP("snk.stall", 0), AP("src.choice", 1)]
        )
        assert result.ok, result.failures()

    def test_join_structure_passes(self):
        nl = Netlist("jnet")
        a, b = GateChannel.declare(nl, "a"), GateChannel.declare(nl, "b")
        am, bm = GateChannel.declare(nl, "am"), GateChannel.declare(nl, "bm")
        z = GateChannel.declare(nl, "z")
        ca = nl.add_input("pa.choice")
        cb = nl.add_input("pb.choice")
        build_nd_source(nl, a, prefix="pa", choice_input=ca)
        build_nd_source(nl, b, prefix="pb", choice_input=cb)
        build_elastic_buffer(nl, a, am, prefix="eba", as_latches=False)
        build_elastic_buffer(nl, b, bm, prefix="ebb", as_latches=False)
        build_join(nl, [am, bm], z, prefix="j")
        stall = nl.add_input("c.stall")
        kill = nl.add_input("c.kill")
        build_nd_sink(nl, z, prefix="c", stall_input=stall, kill_input=kill)
        channels = [a, b, am, bm, z]
        fairness = [
            AP("c.stall", 0), AP("c.kill", 0),
            AP("pa.choice", 1), AP("pb.choice", 1),
        ]
        result = verify_netlist(nl, channels, fairness=fairness)
        assert result.ok, result.failures()

    def test_broken_controller_caught(self):
        """A 'buffer' that drops a stopped token violates Retry+."""
        nl = Netlist("broken")
        left = GateChannel.declare(nl, "L")
        right = GateChannel.declare(nl, "R")
        choice = nl.add_input("src.choice")
        build_nd_source(nl, left, prefix="src", choice_input=choice)
        # Bad half-buffer: V+out = FF(V+in) with no retry handling.
        v = nl.add_flop(left.vp, q="bad.v", init=0)
        nl.BUF(v, out=right.vp)
        nl.const0(out=right.sn)
        nl.const0(out=left.sp)
        nl.const0(out=left.vn)
        stall = nl.add_input("snk.stall")
        build_nd_sink(nl, right, prefix="snk", stall_input=stall)
        for ch in (left, right):
            for w in ch.wires():
                nl.add_output(w)
        result = verify_netlist(
            nl, [right], fairness=[AP("snk.stall", 0), AP("src.choice", 1)]
        )
        assert not result.ok
        assert ("R", "retry_pos") in result.failures()

    def test_deadlocking_structure_caught_by_liveness(self):
        """A feedback loop without an initial token can never fire.

        The join requires its feedback operand, which only the join's
        own output (through the fork and an *empty* buffer) can
        produce: a dead cycle in the underlying marked graph -- the
        liveness property fails on every channel of the loop.
        """
        nl = Netlist("dead")
        i = GateChannel.declare(nl, "i")
        z = GateChannel.declare(nl, "z")
        out = GateChannel.declare(nl, "out")
        fb = GateChannel.declare(nl, "fb")
        fbq = GateChannel.declare(nl, "fbq")
        choice = nl.add_input("src.choice")
        build_nd_source(nl, i, prefix="src", choice_input=choice)
        build_join(nl, [i, fbq], z, prefix="j")
        build_fork(nl, z, [out, fb], prefix="f")
        build_elastic_buffer(nl, fb, fbq, prefix="eb", initial_tokens=0,
                             as_latches=False)
        stall = nl.add_input("snk.stall")
        build_nd_sink(nl, out, prefix="snk", stall_input=stall)
        for ch in (i, z, out, fb, fbq):
            for w in ch.wires():
                nl.add_output(w)
        result = verify_netlist(
            nl, [z], fairness=[AP("snk.stall", 0), AP("src.choice", 1)]
        )
        assert not result.ok
        assert ("z", "liveness") in result.failures()

    def test_result_summary_string(self):
        nl, chans = closed_buffer_chain(n_buffers=1)
        result = verify_netlist(nl, chans, fairness=FAIRNESS)
        assert "PASS" in str(result)
