"""Regression tests: Kripke structures through the build cache.

Mirrors the lint-findings caching contract: a first build is a miss
that stores the exploration tables, a rebuild of the same netlist +
observation set is a hit that folds the stored tables into a
structurally identical Kripke structure, and changing the observation
set changes the key.
"""

from repro.codegen.cache import BuildCache, process_stats
from repro.rtl.netlist import Netlist
from repro.verif.kripke import _kripke_key, build_kripke
from repro.verif.properties import verify_netlist
from repro.verif.testbenches import DESIGNS, diamond_with_feedback


def toggler():
    nl = Netlist("tog")
    en = nl.add_input("en")
    q = nl.add_flop("d", q="q", init=0)
    nl.XOR(q, en, out="d")
    nl.add_output("q")
    return nl


def _equal(a, b):
    return (a.signals == b.signals and a.labels == b.labels
            and a.successors == b.successors and a.initial == b.initial
            and a.input_names == b.input_names
            and a.raw_states == b.raw_states)


class TestKripkeCache:
    def test_miss_then_hit(self, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        nl = toggler()
        before = process_stats()
        fresh = build_kripke(nl, cache=cache)
        after_miss = process_stats()
        assert after_miss["misses"] == before["misses"] + 1

        # A new cache instance against the same root: disk-tier hit.
        cached = build_kripke(nl, cache=BuildCache(tmp_path / "cache"))
        after_hit = process_stats()
        assert after_hit["hits"] == after_miss["hits"] + 1
        assert after_hit["misses"] == after_miss["misses"]
        assert _equal(fresh, cached)

    def test_cached_structure_is_identical(self, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        nl, chans, fairness = diamond_with_feedback(**DESIGNS["early"])
        fresh = verify_netlist(nl, chans, fairness=fairness, cache=cache)
        again = verify_netlist(nl, chans, fairness=fairness, cache=cache)
        assert fresh.ok == again.ok
        assert fresh.results == again.results
        assert fresh.states == again.states

    def test_observe_set_is_part_of_the_key(self):
        nl = toggler()
        assert _kripke_key(nl, ["q"]) != _kripke_key(nl, ["q", "en"])

    def test_netlist_change_changes_key(self):
        a = toggler()
        b = toggler()
        b.add_input("extra")
        assert _kripke_key(a, ["q"]) != _kripke_key(b, ["q"])

    def test_oversized_cached_entry_not_served(self, tmp_path):
        cache = BuildCache(tmp_path / "cache")
        nl = Netlist("big")
        prev = nl.add_input("in0")
        for i in range(4):
            prev = nl.add_flop(prev, q=f"q{i}", init=0)
        nl.add_output(prev)
        build_kripke(nl, cache=cache)  # stores the full exploration
        import pytest

        from repro.verif.kripke import StateSpaceLimitError

        with pytest.raises(StateSpaceLimitError):
            build_kripke(nl, cache=cache, max_states=3)

    def test_no_cache_still_works(self):
        k = build_kripke(toggler(), cache=None)
        assert len(k) == 4
