"""Tests for the CTL model checker, including fairness."""

import pytest

from repro.verif.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    AP,
    And,
    Implies,
    ModelChecker,
    Not,
    Or,
    TrueF,
    check,
)
from repro.verif.kripke import KripkeStructure


def diamond():
    """s0 -> {s1, s2}; s1 -> s3; s2 -> s3; s3 -> s3.  p holds in s1, s3."""
    return KripkeStructure(
        signals=["p", "q"],
        labels=[(0, 0), (1, 0), (0, 1), (1, 1)],
        successors=[[1, 2], [3], [3], [3]],
        initial=[0],
    )


def two_loops():
    """s0 -> s0 and s0 -> s1 -> s1.  p holds only in s1."""
    return KripkeStructure(
        signals=["p"],
        labels=[(0,), (1,)],
        successors=[[0, 1], [1]],
        initial=[0],
    )


class TestBoolean:
    def test_ap_and_value(self):
        k = diamond()
        mc = ModelChecker(k)
        assert mc.sat(AP("p")) == frozenset({1, 3})
        assert mc.sat(AP("p", 0)) == frozenset({0, 2})

    def test_not_and_or_implies(self):
        mc = ModelChecker(diamond())
        assert mc.sat(Not(AP("p"))) == frozenset({0, 2})
        assert mc.sat(And(AP("p"), AP("q"))) == frozenset({3})
        assert mc.sat(Or(AP("p"), AP("q"))) == frozenset({1, 2, 3})
        assert mc.sat(Implies(AP("p"), AP("q"))) == frozenset({0, 2, 3})

    def test_true(self):
        mc = ModelChecker(diamond())
        assert mc.sat(TrueF()) == frozenset(range(4))


class TestTemporal:
    def test_ex(self):
        mc = ModelChecker(diamond())
        assert mc.sat(EX(AP("p"))) == frozenset({0, 1, 2, 3})
        assert mc.sat(EX(AP("q"))) == frozenset({0, 1, 2, 3})

    def test_ax(self):
        mc = ModelChecker(diamond())
        # AX p: all successors satisfy p -> true for s1, s2, s3; s0 has s2
        assert mc.sat(AX(AP("p"))) == frozenset({1, 2, 3})

    def test_ef_eu(self):
        mc = ModelChecker(two_loops())
        assert mc.sat(EF(AP("p"))) == frozenset({0, 1})
        assert mc.sat(EU(AP("p", 0), AP("p"))) == frozenset({0, 1})

    def test_eg(self):
        mc = ModelChecker(two_loops())
        # EG !p: stay in s0 forever
        assert mc.sat(EG(AP("p", 0))) == frozenset({0})

    def test_ag(self):
        mc = ModelChecker(two_loops())
        assert mc.sat(AG(Or(AP("p"), AP("p", 0)))) == frozenset({0, 1})
        assert mc.sat(AG(AP("p"))) == frozenset({1})

    def test_af_fails_with_escape_loop(self):
        mc = ModelChecker(two_loops())
        # s0 can loop forever: AF p does not hold there
        assert mc.sat(AF(AP("p"))) == frozenset({1})

    def test_au(self):
        mc = ModelChecker(diamond())
        # A[!q U p] from s0: path via s2 reaches q=1 at s2? s2 has q=1...
        result = mc.sat(AU(AP("q", 0), AP("p")))
        assert 1 in result and 3 in result

    def test_check_wrapper(self):
        assert check(diamond(), EF(AP("q")))
        assert not check(diamond(), AP("p"))


class TestFairness:
    def test_fairness_rescues_liveness(self):
        k = two_loops()
        # unfair: s0 may loop forever, AG AF p fails
        assert not check(k, AG(AF(AP("p"))))
        # fair: p-states must occur infinitely often -> the s0 self-loop
        # is unfair, so every fair path reaches s1
        assert check(k, AG(AF(AP("p"))), fairness=[AP("p")])

    def test_fair_eg(self):
        k = two_loops()
        mc = ModelChecker(k, fairness=[AP("p")])
        # EG !p needs a fair path staying in s0: impossible
        assert mc.sat(EG(AP("p", 0))) == frozenset()

    def test_unsatisfiable_fairness_empties_paths(self):
        k = KripkeStructure(
            signals=["p"],
            labels=[(0,)],
            successors=[[0]],
            initial=[0],
        )
        mc = ModelChecker(k, fairness=[AP("p")])
        assert mc.fair_states == frozenset()

    def test_counterexample_state(self):
        mc = ModelChecker(diamond())
        assert mc.counterexample_state(AP("p")) == 0
        assert mc.counterexample_state(EF(AP("p"))) is None


class TestFormulaConstruction:
    def test_operators(self):
        f = AP("a") & AP("b") | ~AP("c")
        assert isinstance(f, Or)

    def test_str_forms(self):
        assert str(AP("x")) == "x"
        assert str(AP("x", 0)) == "!x"
        assert "EG" in str(EG(AP("x")))
        assert "U" in str(EU(TrueF(), AP("x")))

    def test_caching_consistency(self):
        mc = ModelChecker(diamond())
        f = EF(AP("p"))
        assert mc.sat(f) is mc.sat(EF(AP("p")))
