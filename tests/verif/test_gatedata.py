"""Exhaustive gate-level data correctness (the Fig. 8(b) check)."""

import itertools
import random

import pytest

from repro.elastic.gates import GateChannel
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator
from repro.verif.gatedata import (
    alternating_pipeline,
    build_alternating_source,
    build_checking_sink,
    build_data_buffer,
    build_data_fork,
    verify_data_correctness,
)


class TestDataBuffer:
    def test_fifo_semantics_random(self):
        """Drive the data buffer directly and model a reference FIFO."""
        nl = Netlist("dbuf")
        left = GateChannel.declare(nl, "L")
        right = GateChannel.declare(nl, "R")
        for w in (left.vp, left.sn, right.sp, right.vn):
            nl.add_input(w)
        din = nl.add_input("din")
        dout = build_data_buffer(nl, left, right, din, prefix="eb")
        nl.add_output(dout)
        sim = TwoPhaseSimulator(nl)
        rng = random.Random(0)
        fifo = []
        pending = None
        for _ in range(300):
            offer = pending if pending is not None else (
                rng.randint(0, 1) if rng.random() < 0.7 else None
            )
            stop = 1 if rng.random() < 0.3 else 0
            vals = sim.cycle({
                left.vp: 1 if offer is not None else 0,
                "din": offer if offer is not None else 0,
                left.sn: 1,
                right.sp: stop,
                right.vn: 0,
            })
            # reference model
            if vals[right.vp] == 1 and stop == 0:
                expect = fifo.pop(0)
                assert vals[dout] == expect
            if offer is not None:
                if vals[left.sp] == 0:
                    fifo.append(offer)
                    pending = None
                else:
                    pending = offer
            assert len(fifo) <= 2

    def test_exhaustive_pipeline_no_kills(self):
        nl, errors = alternating_pipeline(n_buffers=2, with_kill=False)
        ok, kripke = verify_data_correctness(nl, errors)
        assert ok
        assert len(kripke) > 20

    def test_exhaustive_pipeline_with_kills(self):
        nl, errors = alternating_pipeline(n_buffers=2, with_kill=True)
        ok, kripke = verify_data_correctness(nl, errors)
        assert ok, "alternating trace violated under kills"

    def test_single_buffer_with_kills(self):
        nl, errors = alternating_pipeline(n_buffers=1, with_kill=True)
        ok, _ = verify_data_correctness(nl, errors)
        assert ok

    def test_sabotage_detected(self):
        """A buffer that never shifts its head slot must be caught."""
        nl, errors = alternating_pipeline(n_buffers=2, with_kill=False,
                                          sabotage=True)
        ok, _ = verify_data_correctness(nl, errors)
        assert not ok


class TestForkedDatapath:
    def test_fork_to_two_checkers(self):
        """producer -> buffer -> fork -> two checking consumers."""
        nl = Netlist("forked")
        c0 = GateChannel.declare(nl, "c0")
        c1 = GateChannel.declare(nl, "c1")
        b0 = GateChannel.declare(nl, "b0")
        b1 = GateChannel.declare(nl, "b1")
        choice = nl.add_input("src.choice")
        data = build_alternating_source(nl, c0, prefix="src",
                                        choice_input=choice)
        data = build_data_buffer(nl, c0, c1, data, prefix="eb")
        build_data_fork(nl, c1, [b0, b1], data, prefix="f")
        errors = []
        for i, ch in enumerate((b0, b1)):
            stall = nl.add_input(f"s{i}.stall")
            kill = nl.add_input(f"s{i}.kill") if i == 0 else None
            errors.append(
                build_checking_sink(nl, ch, data, prefix=f"s{i}",
                                    stall_input=stall, kill_input=kill)
            )
        for e in errors:
            nl.add_output(e)
        ok, kripke = verify_data_correctness(nl, errors, max_states=2_000_000)
        assert ok


class TestBatchedErrorSweep:
    """Seeded random simulation as a complement to the CTL check."""

    def test_clean_pipeline_has_no_errors(self):
        from repro.verif.gatedata import batched_error_sweep

        nl, errors = alternating_pipeline(n_buffers=2, with_kill=True)
        assert batched_error_sweep(nl, errors, range(64), cycles=200) is None

    def test_sabotage_found_and_replays_scalar(self):
        from repro.verif.gatedata import batched_error_sweep, error_sweep

        nl, errors = alternating_pipeline(n_buffers=2, with_kill=True,
                                          sabotage=True)
        hit = batched_error_sweep(nl, errors, range(64), cycles=200)
        assert hit is not None
        seed, cycle, wire = hit
        assert wire in errors
        # the reported (seed, cycle, wire) replays on the scalar sim
        assert error_sweep(nl, errors, seed, cycles=200) == hit

    def test_first_failure_is_batching_invariant(self):
        from repro.verif.gatedata import batched_error_sweep, error_sweep

        nl, errors = alternating_pipeline(n_buffers=2, with_kill=True,
                                          sabotage=True)
        hit = batched_error_sweep(nl, errors, range(100), cycles=120)
        assert hit == batched_error_sweep(nl, errors, range(100), cycles=120)
        # the winner is minimal over per-seed scalar first failures
        firsts = [f for s in range(100)
                  if (f := error_sweep(nl, errors, s, cycles=120))]
        order = {w: i for i, w in enumerate(errors)}
        want = min(firsts, key=lambda f: (f[1], order[f[2]], f[0]))
        assert hit == want
