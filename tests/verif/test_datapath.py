"""The Fig. 8(b) data-correctness set-up."""

import random

import pytest

from repro.elastic.behavioral import ElasticBuffer, ElasticNetwork, Sink
from repro.elastic.channel import Channel
from repro.verif.datapath import (
    AlternatingChecker,
    DataCorrectnessHarness,
    DataMismatch,
    alternating_source,
    merge_equal,
    random_acyclic_network,
)


class TestMergeEqual:
    def test_agreeing_values(self):
        assert merge_equal([1, 1, None]) == 1

    def test_empty(self):
        assert merge_equal([None, None]) is None

    def test_mismatch_raises(self):
        with pytest.raises(DataMismatch):
            merge_equal([0, 1])


class TestAlternatingChecker:
    def _simple_net(self, p_stop=0.0, p_kill=0.0, seed=0):
        net = ElasticNetwork("alt")
        a = net.add_channel("a")
        b = net.add_channel("b")
        net.add(alternating_source("P", a, rng=random.Random(seed)))
        net.add(ElasticBuffer("B", a, b))
        checker = AlternatingChecker("C", b, p_stop=p_stop, p_kill=p_kill,
                                     rng=random.Random(seed + 1))
        net.add(checker)
        return net, checker

    def test_clean_stream_checks_out(self):
        net, checker = self._simple_net()
        net.run(100)
        assert checker.checked > 90

    def test_kills_advance_parity(self):
        net, checker = self._simple_net(p_kill=0.4, seed=3)
        net.run(400)
        assert checker.kills_sent > 50
        assert checker.checked > 50

    def test_corrupting_buffer_detected(self):
        """A buffer that mangles payloads breaks the alternating trace."""
        net = ElasticNetwork("bad")
        a, b = net.add_channel("a", check_data=False), net.add_channel("b", check_data=False)
        net.add(alternating_source("P", a))

        class CorruptingBuffer(ElasticBuffer):
            def commit(self):
                super().commit()
                if self.data and net.cycle == 7:
                    self.data[0] ^= 1  # flip a bit

        net.add(CorruptingBuffer("B", a, b))
        net.add(AlternatingChecker("C", b, p_stop=0, p_kill=0))
        with pytest.raises(DataMismatch):
            net.run(100)

    def test_reordering_detected(self):
        """Dropping one token desynchronises the parity."""
        net = ElasticNetwork("drop")
        a, b = net.add_channel("a", check_data=False), net.add_channel("b", check_data=False)
        net.add(alternating_source("P", a))

        class DroppingBuffer(ElasticBuffer):
            def commit(self):
                super().commit()
                if self.data and net.cycle == 5:
                    self.data.pop(0)
                    self.count -= 1

        net.add(DroppingBuffer("B", a, b))
        net.add(AlternatingChecker("C", b, p_stop=0, p_kill=0))
        with pytest.raises(DataMismatch):
            net.run(100)


class TestRandomNetworks:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_netlists_preserve_data(self, seed):
        net = random_acyclic_network(seed, n_sources=2, n_layers=4)
        harness = DataCorrectnessHarness(net)
        report = harness.run(400)
        assert report.consumed > 0

    def test_early_join_netlists(self):
        net = random_acyclic_network(11, n_sources=3, n_layers=5, early_joins=True)
        DataCorrectnessHarness(net).run(400)

    def test_heavy_killing(self):
        net = random_acyclic_network(5, p_kill=0.5, p_stop=0.3)
        report = DataCorrectnessHarness(net).run(500)
        assert report.kills > 0

    def test_harness_requires_checkers(self):
        net = ElasticNetwork("none")
        with pytest.raises(ValueError):
            DataCorrectnessHarness(net)

    def test_report_str(self):
        net = random_acyclic_network(1)
        report = DataCorrectnessHarness(net).run(50)
        assert "cycles" in str(report)
