"""Tests for the explicit-state Kripke builder."""

import pytest

from repro.rtl.netlist import Netlist
from repro.verif.kripke import build_kripke


def toggler():
    """A 1-bit counter with an enable input."""
    nl = Netlist("tog")
    en = nl.add_input("en")
    q = nl.add_flop("d", q="q", init=0)
    nl.XOR(q, en, out="d")
    nl.add_output("q")
    return nl


class TestBuild:
    def test_state_count(self):
        k = build_kripke(toggler())
        # 2 sequential states x 2 input combinations
        assert len(k) == 4

    def test_initial_states_cover_all_inputs(self):
        k = build_kripke(toggler())
        assert len(k.initial) == 2

    def test_labels_expose_signal_values(self):
        k = build_kripke(toggler())
        for s in k.initial:
            assert k.value(s, "q") == 0

    def test_successors_fan_out_over_inputs(self):
        k = build_kripke(toggler())
        for s in range(len(k)):
            assert len(k.successors[s]) == 2

    def test_transition_semantics(self):
        k = build_kripke(toggler())
        # from (q=0, en=1) every successor has q=1
        start = next(s for s in k.initial if k.value(s, "en") == 1)
        for t in k.successors[start]:
            assert k.value(t, "q") == 1

    def test_observe_selects_signals(self):
        k = build_kripke(toggler(), observe=["q"])
        assert k.signals == ["q"]

    def test_max_states_enforced(self):
        nl = Netlist("big")
        prev = nl.add_input("in0")
        for i in range(8):
            prev = nl.add_flop(prev, q=f"q{i}", init=0)
        nl.add_output(prev)
        with pytest.raises(RuntimeError):
            build_kripke(nl, max_states=10)

    def test_states_where(self):
        k = build_kripke(toggler())
        ones = k.states_where(lambda v: v["q"] == 1)
        assert len(ones) == 2

    def test_predecessors_inverse_of_successors(self):
        k = build_kripke(toggler())
        preds = k.predecessors()
        for src, succs in enumerate(k.successors):
            for dst in succs:
                assert src in preds[dst]

    def test_raw_states_align(self):
        k = build_kripke(toggler())
        for idx in k.initial:
            state, inputs = k.raw_states[idx]
            assert state == (0,)
            assert inputs[0] == k.value(idx, "en")
