"""Bounded and resumable state-space exploration."""

import pytest

from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_nd_sink,
    build_nd_source,
)
from repro.resilience import CheckpointMismatch
from repro.rtl.netlist import Netlist
from repro.verif.kripke import StateSpaceLimitError, build_kripke
from repro.verif.properties import verify_netlist


def small_chain():
    """source -> EB -> sink, flop state bits (small, fully explorable)."""
    nl = Netlist("chain")
    left = GateChannel.declare(nl, "L")
    right = GateChannel.declare(nl, "R")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, left, prefix="src", choice_input=choice)
    build_elastic_buffer(nl, left, right, prefix="eb", as_latches=False)
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, right, prefix="snk", stall_input=stall, kill_input=kill)
    for ch in (left, right):
        for w in ch.wires():
            nl.add_output(w)
    nl.validate()
    return nl, [left, right]


def structures_equal(a, b):
    return (
        a.signals == b.signals
        and a.labels == b.labels
        and a.successors == b.successors
        and a.initial == b.initial
        and a.input_names == b.input_names
        and a.raw_states == b.raw_states
    )


class TestStateSpaceLimit:
    def test_limit_error_names_the_last_controller_state(self):
        nl, _ = small_chain()
        with pytest.raises(StateSpaceLimitError) as exc:
            build_kripke(nl, max_states=5)
        message = str(exc.value)
        assert "state bound 5 exceeded" in message
        assert "eb.t0=" in message  # the state under expansion, by name
        assert exc.value.max_states == 5
        assert "eb.t0" in exc.value.last_state

    def test_limit_with_checkpoint_keeps_the_partial_exploration(self, tmp_path):
        nl, _ = small_chain()
        ck = str(tmp_path / "ck")
        with pytest.raises(StateSpaceLimitError):
            build_kripke(nl, max_states=5, checkpoint=ck)
        # The snapshot survived; a rerun with a lifted bound finishes and
        # matches the uninterrupted build exactly.
        resumed = build_kripke(nl, checkpoint=ck)
        fresh = build_kripke(nl)
        assert structures_equal(resumed, fresh)


class TestCheckpointResume:
    def test_periodic_snapshots_resume_identically(self, tmp_path):
        nl, _ = small_chain()
        fresh = build_kripke(nl)
        ck = str(tmp_path / "ck")
        # Force several snapshot boundaries, then interrupt at each bound
        # and resume until the frontier drains.
        bound = 8
        while True:
            try:
                resumed = build_kripke(
                    nl, max_states=bound, checkpoint=ck, checkpoint_every=4
                )
                break
            except StateSpaceLimitError:
                bound += 8
        assert structures_equal(resumed, fresh)

    def test_completed_store_resumes_identically(self, tmp_path):
        nl, _ = small_chain()
        ck = str(tmp_path / "ck")
        first = build_kripke(nl, checkpoint=ck)
        again = build_kripke(nl, checkpoint=ck)
        assert structures_equal(first, again)

    def test_fingerprint_excludes_the_bound(self, tmp_path):
        nl, _ = small_chain()
        ck = str(tmp_path / "ck")
        with pytest.raises(StateSpaceLimitError):
            build_kripke(nl, max_states=5, checkpoint=ck)
        # Same workload, different bound: accepted (that is the point).
        build_kripke(nl, max_states=100_000, checkpoint=ck)

    def test_mismatched_observe_list_rejected(self, tmp_path):
        nl, channels = small_chain()
        ck = str(tmp_path / "ck")
        build_kripke(nl, checkpoint=ck)
        with pytest.raises(CheckpointMismatch, match="observe"):
            build_kripke(nl, observe=[channels[0].vp], checkpoint=ck)


class TestVerifyNetlistCheckpoint:
    def test_verify_netlist_forwards_the_checkpoint(self, tmp_path):
        nl, channels = small_chain()
        ck = tmp_path / "ck"
        result = verify_netlist(
            nl, channels, include_liveness=False, checkpoint=str(ck)
        )
        assert result.ok
        assert (ck / "snapshot.json").is_file()
        # Second run resumes from the drained snapshot, same verdicts.
        again = verify_netlist(
            nl, channels, include_liveness=False, checkpoint=str(ck)
        )
        assert again.results == result.results
