"""Every shipped design lints clean; every zoo fixture is flagged."""

import pytest

from repro.lint import LINT_TARGETS, LintReport, all_targets, run_lint


@pytest.mark.parametrize("target", all_targets())
def test_shipped_design_lints_clean(target):
    """No WARNING or ERROR on any built-in design (INFO notes about the
    intentionally-constant anti-token logic are expected)."""
    report = LintReport(LINT_TARGETS[target]())
    noisy = [f for f in report.findings if f.severity.name != "INFO"]
    assert report.clean, "\n".join(str(f) for f in noisy)


@pytest.mark.parametrize(
    "target, expected_rule",
    [("zoo:capacity1", "ELX005"), ("zoo:comb_cycle", "LNT005")],
)
def test_zoo_fixture_is_flagged(target, expected_rule):
    report = run_lint([target])
    assert [f.rule for f in report.errors()] == [expected_rule]
    assert not report.clean


@pytest.mark.parametrize(
    "target, expected_rule",
    [
        ("zoo:x_stuck", "LNT008"),
        ("zoo:x_observable", "LNT009"),
        ("zoo:dead_ee_arm", "ELX008"),
        ("zoo:starved_counterflow", "ELX009"),
    ],
)
def test_dataflow_zoo_fixture_warns(target, expected_rule):
    """The dataflow defects are WARNINGs (report stays 'clean' in the
    exit-code sense) but the named rule must fire with a witness."""
    report = run_lint([target])
    hits = [f for f in report.findings if f.rule == expected_rule]
    assert hits
    assert all(f.witness for f in hits)
    assert not report.errors()


def test_default_target_set_excludes_the_zoo():
    defaults = all_targets()
    assert defaults == sorted(defaults)
    assert not any(t.startswith("zoo:") for t in defaults)
    assert set(all_targets(include_zoo=True)) == set(LINT_TARGETS)


def test_unknown_target_names_the_alternatives():
    with pytest.raises(KeyError, match="unknown lint target"):
        run_lint(["nope"])
