"""The common lint engine: reports, fingerprints, SARIF, baselines, obs."""

import json

import pytest

from repro.lint import (
    RULES,
    Finding,
    LintReport,
    Severity,
    load_baseline,
    new_findings,
    run_lint,
    sarif_json,
    to_sarif,
    write_baseline,
)
from repro.obs import TraceRecorder


def sample_report():
    return LintReport([
        Finding("LNT005", "netB", "x",
                "combinational cycle: x -> y -> x", path=("x", "y")),
        Finding("ELX004", "netA", "loop",
                "channel cycle loop -> back -> loop carries no token",
                path=("loop", "back")),
        Finding("LNT006", "netA", "g1", "AND gate is constant 0"),
    ])


# ----------------------------------------------------------------------
# Catalog and findings
# ----------------------------------------------------------------------
def test_catalog_is_stable():
    assert sorted(RULES) == [
        "ELX001", "ELX002", "ELX003", "ELX004", "ELX005", "ELX006",
        "ELX007", "ELX008", "ELX009",
        "LNT001", "LNT002", "LNT003", "LNT004", "LNT005", "LNT006",
        "LNT007", "LNT008", "LNT009",
    ]


def test_unknown_rule_code_is_rejected():
    with pytest.raises(ValueError, match="unknown lint rule"):
        Finding("LNT999", "t", "s", "m")


def test_severity_orders_and_maps_to_sarif():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.ERROR.sarif_level == "error"
    assert Severity.WARNING.sarif_level == "warning"
    assert Severity.INFO.sarif_level == "note"


def test_fingerprint_ignores_message_but_not_path():
    a = Finding("LNT005", "t", "x", "one wording", path=("x", "y"))
    b = Finding("LNT005", "t", "x", "another wording", path=("x", "y"))
    c = Finding("LNT005", "t", "x", "one wording", path=("x", "z"))
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


def test_report_sorts_and_dedupes():
    report = sample_report()
    report.extend(sample_report().findings)  # resubmit everything
    assert len(report) == 3
    assert [f.target for f in report] == ["netA", "netA", "netB"]
    assert not report.clean  # two errors present
    assert report.counts() == {"INFO": 1, "WARNING": 0, "ERROR": 2}
    assert [f.rule for f in report.errors()] == ["ELX004", "LNT005"]
    assert report.targets() == ["netA", "netB"]


def test_info_only_report_is_clean():
    report = LintReport([Finding("LNT006", "t", "g", "constant")])
    assert report.clean


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_json_and_sarif_are_deterministic_across_runs():
    targets = ["rtl:join", "zoo:capacity1", "zoo:comb_cycle"]
    first = run_lint(targets)
    second = run_lint(targets)
    assert first.to_json() == second.to_json()
    assert sarif_json(first) == sarif_json(second)
    # Target order must not matter either.
    third = run_lint(list(reversed(targets)))
    assert first.to_json() == third.to_json()


def test_report_json_shape():
    payload = json.loads(sample_report().to_json())
    assert payload["tool"] == "repro.lint"
    assert payload["counts"]["ERROR"] == 2
    first = payload["findings"][0]
    assert set(first) >= {
        "rule", "severity", "target", "subject", "message", "fingerprint",
    }
    # path only serialises when the finding carries one
    assert payload["findings"][0]["path"] == ["loop", "back"]
    assert "path" not in payload["findings"][1]


def test_render_mentions_every_finding_and_the_tally():
    text = sample_report().render()
    assert "LNT005" in text and "ELX004" in text
    assert "3 finding(s): 2 error(s), 0 warning(s), 1 note(s)" in text


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def test_sarif_structure():
    log = to_sarif(sample_report())
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    # The whole catalog ships with every log, sorted by code.
    assert [r["id"] for r in driver["rules"]] == sorted(RULES)
    for result in run["results"]:
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        location = result["locations"][0]["logicalLocations"][0]
        assert location["fullyQualifiedName"].count("::") == 1
        assert "reproLint/v1" in result["partialFingerprints"]
    cycle = [r for r in run["results"] if r["ruleId"] == "LNT005"][0]
    assert cycle["properties"]["path"] == ["x", "y"]
    assert cycle["level"] == "error"


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_baseline_roundtrip(tmp_path):
    report = sample_report()
    path = tmp_path / "baseline.json"
    assert write_baseline(report, path) == 3
    baseline = load_baseline(path)
    assert new_findings(report, baseline) == []
    # A fresh finding survives the suppression.
    report.add(Finding("LNT002", "netC", "ghost", "never driven"))
    fresh = new_findings(report, baseline)
    assert [f.rule for f in fresh] == ["LNT002"]


def test_baseline_survives_rewording(tmp_path):
    original = LintReport([Finding("LNT005", "t", "x", "old text",
                                   path=("x", "y"))])
    path = tmp_path / "baseline.json"
    write_baseline(original, path)
    reworded = LintReport([Finding("LNT005", "t", "x", "new text",
                                   path=("x", "y"))])
    assert new_findings(reworded, load_baseline(path)) == []


def test_malformed_baseline_is_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"fingerprints": "oops"}')
    with pytest.raises(ValueError, match="malformed baseline"):
        load_baseline(path)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_findings_emit_as_trace_events():
    recorder = TraceRecorder(capacity=16)
    report = sample_report()
    assert report.emit(recorder) == 3
    events = [e for e in recorder.events if e.kind == "finding"]
    assert len(events) == 3
    cycle_event = [e for e in events if e.value == "LNT005"][0]
    assert cycle_event.cycle == 0
    assert cycle_event.subject == "x"
    assert cycle_event.extra["severity"] == "ERROR"
    assert cycle_event.extra["path"] == ["x", "y"]
    # Events serialise to JSONL like every other kind.
    json.loads(cycle_event.to_json())
