"""The dataflow-backed rules: LNT008/LNT009, ELX008/ELX009, witnesses.

Every rule gets a positive fixture (the defect, the finding, a witness
that replays) and a negative fixture (the near-miss that must stay
silent).  The engine-based ternary constant analysis is held to exact
agreement with the legacy reference sweep, and the LNT005 cycle report
is pinned against netlist construction order.
"""

import random

import pytest

from repro.lint import render_witness, replay_spec_witness, replay_witness
from repro.lint.elastic_rules import (
    ALWAYS,
    NEVER,
    SOMETIMES,
    lint_spec,
    token_availability,
)
from repro.lint.netlist_rules import (
    _constant_fixpoint,
    constant_values,
    lint_netlist,
    value_sets,
)
from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.toposort import CombinationalCycleError, find_combinational_cycle


def rules(findings):
    return sorted({f.rule for f in findings})


def of_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# LNT008: state stuck at X
# ----------------------------------------------------------------------
def x_stuck_netlist():
    nl = Netlist("x_stuck")
    a = nl.add_input("a")
    nl.BUF("q", out="d")  # hold loop: X recirculates forever
    nl.add_flop("d", q="q", init=X)
    nl.AND(a, "q", out="o")
    nl.add_output("o")
    return nl


class TestXStuck:
    def test_positive_fires_with_replaying_witness(self):
        nl = x_stuck_netlist()
        findings = of_rule(lint_netlist(nl), "LNT008")
        assert [f.subject for f in findings] == ["q"]
        f = findings[0]
        assert f.witness["kind"] == "x-propagation"
        assert f.path[-1] == "q"
        assert replay_witness(nl, f)

    def test_value_sets_prove_the_claim(self):
        sets = value_sets(x_stuck_netlist())
        assert sets["q"] == frozenset((X,))
        assert sets["d"] == frozenset((X,))
        assert sets["o"] >= frozenset((X,))  # poisoned but not stuck-only

    def test_negative_loadable_x_is_silent(self):
        nl = Netlist("loads")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=X)  # next cycle q is known
        nl.BUF("q", out="o")
        nl.add_output("o")
        assert "LNT008" not in rules(lint_netlist(nl))

    def test_negative_known_init_is_silent(self):
        # the same hold loop, but with a known reset value
        nl = Netlist("x_stuck_covered")
        a = nl.add_input("a")
        nl.BUF("q", out="d")
        nl.add_flop("d", q="q", init=0)
        nl.AND(a, "q", out="o")
        nl.add_output("o")
        assert "LNT008" not in rules(lint_netlist(nl))

    def test_stuck_pair_reports_both_with_paths(self):
        nl = Netlist("pair")
        nl.BUF("q2", out="d1")
        nl.BUF("q1", out="d2")
        nl.add_flop("d1", q="q1", init=X)
        nl.add_flop("d2", q="q2", init=X)
        nl.add_output("q1")
        findings = of_rule(lint_netlist(nl), "LNT008")
        assert [f.subject for f in findings] == ["q1", "q2"]
        for f in findings:
            assert replay_witness(nl, f)

    def test_tampered_witness_is_rejected(self):
        nl = x_stuck_netlist()
        f = of_rule(lint_netlist(nl), "LNT008")[0]
        f.witness["path"] = ["a", "q"]  # a is not an X source
        assert not replay_witness(nl, f)


# ----------------------------------------------------------------------
# LNT009: uncovered reset observable
# ----------------------------------------------------------------------
class TestResetObservable:
    def test_positive_fires_with_replaying_witness(self):
        nl = Netlist("obs")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=X)
        nl.AND(a, "q", out="o")
        nl.add_output("o")
        findings = of_rule(lint_netlist(nl), "LNT009")
        assert [f.subject for f in findings] == ["q"]
        f = findings[0]
        assert f.witness["kind"] == "observable-before-load"
        assert f.witness["output"] == "o"
        assert replay_witness(nl, f)

    def test_direct_output_is_observable(self):
        nl = Netlist("direct")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=X)
        nl.add_output("q")
        f = of_rule(lint_netlist(nl), "LNT009")[0]
        assert f.path == ("q",)
        assert replay_witness(nl, f)

    def test_negative_shielded_by_state_is_silent(self):
        # q's X reaches the output only through a second, covered flop:
        # the environment never sees the reset X directly.
        nl = Netlist("shield")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=X)
        nl.add_flop("q", q="q2", init=0)
        nl.BUF("q2", out="o")
        nl.add_output("o")
        assert "LNT009" not in rules(lint_netlist(nl))

    def test_negative_covered_reset_is_silent(self):
        nl = Netlist("covered")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=1)
        nl.add_output("q")
        assert "LNT009" not in rules(lint_netlist(nl))

    def test_tampered_witness_is_rejected(self):
        nl = Netlist("obs2")
        a = nl.add_input("a")
        nl.add_flop(a, q="q", init=X)
        nl.add_output("q")
        f = of_rule(lint_netlist(nl), "LNT009")[0]
        f.witness["path"] = ["q", "a"]  # a is not an output
        assert not replay_witness(nl, f)


# ----------------------------------------------------------------------
# ELX008 / ELX009: token availability behind early joins
# ----------------------------------------------------------------------
def threshold_spec(k, p_valids):
    from repro.elastic.ee import ThresholdEE
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec("tj")
    spec.add_sink("Z")
    spec.add_block("J", n_inputs=len(p_valids), ee=ThresholdEE(k, len(p_valids)))
    for i, p in enumerate(p_valids):
        spec.add_source(f"S{i}", p_valid=p)
        spec.connect(spec.source(f"S{i}"), spec.block_in("J", i))
    spec.connect(spec.block_out("J", 0), spec.sink("Z"))
    return spec


class TestTokenAvailability:
    def test_levels_from_sources(self):
        avail = token_availability(threshold_spec(1, [1.0, 0.5, 0.0]))
        assert avail["channel:S0->J"] == ALWAYS
        assert avail["channel:S1->J"] == SOMETIMES
        assert avail["channel:S2->J"] == NEVER
        assert avail["block:J"] == ALWAYS  # 1-of-3: best arm decides

    def test_threshold_takes_kth_largest(self):
        assert token_availability(
            threshold_spec(2, [1.0, 0.5, 0.0])
        )["block:J"] == SOMETIMES
        assert token_availability(
            threshold_spec(3, [1.0, 0.5, 0.0])
        )["block:J"] == NEVER

    def test_token_loop_register_is_sometimes(self):
        from repro.synthesis.spec import SystemSpec

        spec = SystemSpec("loop")
        spec.add_source("A", p_valid=0.0)
        spec.add_sink("Z")
        spec.add_block("B", n_inputs=2, n_outputs=2)
        spec.add_register("R", capacity=2, initial_tokens=1)
        spec.connect(spec.source("A"), spec.block_in("B", 0))
        spec.connect(spec.register_out("R"), spec.block_in("B", 1))
        spec.connect(spec.block_out("B", 0), spec.sink("Z"))
        spec.connect(spec.block_out("B", 1), spec.register_in("R"))
        avail = token_availability(spec)
        # the initial token keeps the register alive despite the dead source
        assert avail["register:R"] == SOMETIMES


class TestDeadEEArm:
    def test_positive_one_of_two_always(self):
        spec = threshold_spec(1, [1.0, 1.0])
        findings = of_rule(lint_spec(spec), "ELX008")
        assert [f.subject for f in findings] == ["J.in0", "J.in1"]
        for f in findings:
            assert f.witness["kind"] == "dead-ee-arm"
            assert replay_spec_witness(spec, f)

    def test_negative_needs_both_arms(self):
        assert "ELX008" not in rules(lint_spec(threshold_spec(2, [1.0, 1.0])))

    def test_negative_no_always_arm(self):
        assert "ELX008" not in rules(lint_spec(threshold_spec(1, [0.5, 0.5])))

    def test_tampered_witness_is_rejected(self):
        spec = threshold_spec(1, [1.0, 1.0])
        f = of_rule(lint_spec(spec), "ELX008")[0]
        f.witness["threshold"] = 2
        assert not replay_spec_witness(spec, f)


class TestStarvedCounterflow:
    def test_positive_dead_arm_channel(self):
        spec = threshold_spec(1, [1.0, 0.0])
        findings = of_rule(lint_spec(spec), "ELX009")
        assert [f.subject for f in findings] == ["J.in1"]
        f = findings[0]
        assert f.witness["kind"] == "starved-counterflow"
        assert f.witness["chain"][0] == "channel:S1->J"
        assert replay_spec_witness(spec, f)

    def test_negative_sometimes_arm_is_silent(self):
        assert "ELX009" not in rules(lint_spec(threshold_spec(1, [1.0, 0.5])))

    def test_negative_dead_join_is_silent(self):
        # every arm dead: the join never fires, no anti-tokens at all
        assert "ELX009" not in rules(lint_spec(threshold_spec(1, [0.0, 0.0])))

    def test_tampered_witness_is_rejected(self):
        spec = threshold_spec(1, [1.0, 0.0])
        f = of_rule(lint_spec(spec), "ELX009")[0]
        f.witness["chain"] = ["channel:S0->J"]  # an ALWAYS channel
        assert not replay_spec_witness(spec, f)


# ----------------------------------------------------------------------
# LNT006 on the engine == legacy reference sweep
# ----------------------------------------------------------------------
def legacy_agrees(nl):
    engine = constant_values(nl)
    legacy = _constant_fixpoint(nl)
    # the legacy sweep leaves never-known signals out of its dict;
    # compare with .get-X semantics over the full signal set
    for sig in engine:
        if engine[sig] != legacy.get(sig, X):
            return False
    return True


class TestConstantEngineEquivalence:
    def test_constant_cone_witness_replays(self):
        nl = Netlist("const")
        a = nl.add_input("a")
        nl.const0(out="z")
        nl.AND(a, "z", out="g")  # constant 0 through the AND
        nl.OR(a, "g", out="o")
        nl.add_output("o")
        findings = of_rule(lint_netlist(nl), "LNT006")
        assert {f.subject for f in findings} == {"g"}
        for f in findings:
            assert f.witness["kind"] == "constant-cone"
            assert replay_witness(nl, f)

    def test_agreement_on_shipped_designs(self):
        from repro.faults.targets import TARGETS

        for name in sorted(TARGETS):
            assert legacy_agrees(TARGETS[name]().netlist), name

    def test_agreement_on_random_netlists(self):
        from tests.strategies import build_random_netlist

        for seed in range(25):
            nl = build_random_netlist(random.Random(seed))
            assert legacy_agrees(nl), f"seed {seed}"

    def test_state_widening_converges(self):
        # toggling flop: q alternates, widens to X, no false constants
        nl = Netlist("toggle")
        nl.NOT("q", out="d")
        nl.add_flop("d", q="q", init=0)
        nl.add_output("q")
        vals = constant_values(nl)
        assert vals["q"] is X
        assert "LNT006" not in rules(lint_netlist(nl))


# ----------------------------------------------------------------------
# LNT005 reporting is construction-order independent
# ----------------------------------------------------------------------
def cycle_netlist(order):
    nl = Netlist("cyc")
    a = nl.add_input("a")
    makers = {
        "x": lambda: nl.add_gate("AND", (a, "z"), out="x"),
        "y": lambda: nl.add_gate("BUF", ("x",), out="y"),
        "z": lambda: nl.add_gate("OR", (a, "y"), out="z"),
    }
    for name in order:
        makers[name]()
    nl.add_output("z")
    return nl


class TestCycleReportStability:
    def test_lint_path_is_insertion_order_independent(self):
        reports = [
            of_rule(lint_netlist(cycle_netlist(order)), "LNT005")
            for order in (("x", "y", "z"), ("z", "y", "x"), ("y", "z", "x"))
        ]
        paths = {tuple(f.path) for fs in reports for f in fs}
        messages = {f.message for fs in reports for f in fs}
        assert len(paths) == 1
        assert len(messages) == 1
        assert min(paths) == ("x", "y", "z")  # canonical rotation

    def test_simulator_error_matches_lint(self):
        for order in (("x", "y", "z"), ("z", "y", "x")):
            nl = cycle_netlist(order)
            cycle = find_combinational_cycle(nl, Phase.HIGH)
            assert cycle == ["x", "y", "z"]
            with pytest.raises(CombinationalCycleError) as exc:
                from repro.rtl.batchsim import BatchSimulator

                BatchSimulator(nl)
            assert exc.value.cycle == ["x", "y", "z"]


# ----------------------------------------------------------------------
# Witness rendering (the --explain payload)
# ----------------------------------------------------------------------
class TestRenderWitness:
    def test_paths_render_as_chains(self):
        lines = render_witness({
            "kind": "x-propagation", "source": "q", "path": ["q", "o"],
        })
        assert any("q -> o" in line for line in lines)

    def test_inputs_render_sorted(self):
        lines = render_witness({
            "kind": "constant-cone", "value": 0,
            "inputs": {"b": "X", "a": 1},
        })
        joined = "\n".join(lines)
        assert joined.index("a") < joined.index("b")
