"""The ELX0xx defect zoo: spec-, network- and DMG-level protocol rules."""

from repro.core.mg import MarkedGraph
from repro.elastic.behavioral import (
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    Pipe,
    Sink,
    Source,
)
from repro.elastic.ee import AndEE
from repro.lint import lint_dmg, lint_network, lint_spec
from repro.lint.findings import Severity
from repro.synthesis.spec import SystemSpec


def codes(findings):
    return sorted({f.rule for f in findings})


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def pipeline_spec(**register_kwargs):
    """Source -> block -> register -> sink: the minimal healthy spec."""
    spec = SystemSpec("ok")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block("F")
    spec.add_register("R", **register_kwargs)
    spec.connect(spec.source("Din"), spec.block_in("F"))
    spec.connect(spec.block_out("F"), spec.register_in("R"))
    spec.connect(spec.register_out("R"), spec.sink("Dout"))
    return spec


def loop_spec(capacity, initial_tokens, early=False):
    """A two-node loop through register R, plus an environment tap."""
    spec = SystemSpec("loop")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block(
        "A", n_inputs=2, n_outputs=2, ee=AndEE(2) if early else None
    )
    spec.add_register("R", capacity=capacity, initial_tokens=initial_tokens)
    spec.connect(spec.source("Din"), spec.block_in("A", 0))
    spec.connect(spec.register_out("R"), spec.block_in("A", 1))
    spec.connect(spec.block_out("A", 0), spec.sink("Dout"))
    spec.connect(spec.block_out("A", 1), spec.register_in("R"))
    return spec


def test_healthy_pipeline_is_clean():
    assert lint_spec(pipeline_spec()) == []


# ----------------------------------------------------------------------
# ELX001 connectivity
# ----------------------------------------------------------------------
def test_elx001_unconnected_port():
    spec = SystemSpec("zoo")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block("F", n_inputs=2)
    spec.connect(spec.source("Din"), spec.block_in("F", 0))
    spec.connect(spec.block_out("F"), spec.sink("Dout"))
    found = by_rule(lint_spec(spec), "ELX001")
    assert len(found) == 1
    assert "never connected" in found[0].message
    assert found[0].severity == Severity.ERROR


def test_elx001_role_reversal():
    spec = SystemSpec("zoo")
    spec.add_source("Din")
    spec.add_sink("Dout")
    # Wired backwards: the sink as producer, the source as consumer.
    spec.connect(spec.sink("Dout"), spec.source("Din"))
    found = by_rule(lint_spec(spec), "ELX001")
    assert found, "reversed roles must be flagged"
    assert any("declared as" in f.message for f in found)


def test_elx001_suppresses_graph_rules():
    spec = loop_spec(capacity=1, initial_tokens=1)
    spec.add_block("dangling")  # two unconnected ports
    found = lint_spec(spec)
    assert by_rule(found, "ELX001")
    # The deadlock rules stay silent on a mis-wired graph.
    assert not by_rule(found, "ELX005")


# ----------------------------------------------------------------------
# ELX003 controller shape
# ----------------------------------------------------------------------
def test_elx003_g_inputs_mask_arity():
    spec = pipeline_spec()
    spec.blocks["F"].g_inputs = [True, False]  # F has one input
    found = by_rule(lint_spec(spec), "ELX003")
    assert [f.subject for f in found] == ["F"]


def test_elx003_capacity_and_occupancy():
    spec = pipeline_spec(capacity=0)
    found = by_rule(lint_spec(spec), "ELX003")
    assert any("capacity 0 < 1" in f.message for f in found)

    spec = pipeline_spec(initial_tokens=3)  # default capacity 2
    found = by_rule(lint_spec(spec), "ELX003")
    assert any("does not fit" in f.message for f in found)

    spec = pipeline_spec(initial_tokens=1, initial_data=["a", "b"])
    found = by_rule(lint_spec(spec), "ELX003")
    assert any("initial_data" in f.message for f in found)


# ----------------------------------------------------------------------
# ELX004 / ELX005 / ELX006 deadlock analysis (spec level)
# ----------------------------------------------------------------------
def test_elx004_token_free_register_loop():
    found = lint_spec(loop_spec(capacity=2, initial_tokens=0))
    assert codes(found) == ["ELX004"]
    f = by_rule(found, "ELX004")[0]
    assert f.path == ("A", "R")
    assert "carries no token" in f.message


def test_elx005_full_capacity1_loop():
    found = lint_spec(loop_spec(capacity=1, initial_tokens=1))
    assert codes(found) == ["ELX005"]
    f = by_rule(found, "ELX005")[0]
    assert f.path == ("A", "R")
    assert "no spare EB capacity" in f.message


def test_elx005_clean_when_loop_has_a_bubble():
    assert lint_spec(loop_spec(capacity=2, initial_tokens=1)) == []


def test_elx006_early_join_cycle_without_annihilator():
    """A register-free cycle behind an early join: the anti-tokens it
    emits circulate forever."""
    spec = SystemSpec("zoo")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block("A", n_inputs=2, n_outputs=2, ee=AndEE(2))
    spec.add_block("B")
    spec.connect(spec.source("Din"), spec.block_in("A", 0))
    spec.connect(spec.block_out("A", 0), spec.sink("Dout"))
    spec.connect(spec.block_out("A", 1), spec.block_in("B"))
    spec.connect(spec.block_out("B"), spec.block_in("A", 1))
    found = lint_spec(spec)
    assert codes(found) == ["ELX006"]
    f = found[0]
    assert "early join 'A'" in f.message
    assert set(f.path) == {"A", "B"}


def test_elx006_downgrades_to_elx004_without_early_join():
    """The same dead cycle without early evaluation is a plain
    token-free loop, not a counterflow problem."""
    spec = SystemSpec("zoo")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block("A", n_inputs=2, n_outputs=2)
    spec.add_block("B")
    spec.connect(spec.source("Din"), spec.block_in("A", 0))
    spec.connect(spec.block_out("A", 0), spec.sink("Dout"))
    spec.connect(spec.block_out("A", 1), spec.block_in("B"))
    spec.connect(spec.block_out("B"), spec.block_in("A", 1))
    assert codes(lint_spec(spec)) == ["ELX004"]


# ----------------------------------------------------------------------
# ELX007 inert passive interfaces
# ----------------------------------------------------------------------
def test_elx007_passive_interface_without_early_join():
    spec = pipeline_spec()
    spec.connections[0].passive = True
    found = lint_spec(spec)
    assert codes(found) == ["ELX007"]
    assert found[0].severity == Severity.INFO


def test_elx007_silent_when_an_early_join_exists():
    spec = loop_spec(capacity=2, initial_tokens=1, early=True)
    for conn in spec.connections:
        if conn.dst == spec.block_in("A", 1):
            conn.passive = True
    assert by_rule(lint_spec(spec), "ELX007") == []


# ----------------------------------------------------------------------
# Network level
# ----------------------------------------------------------------------
def test_elx002_dangling_and_contended_channels():
    net = ElasticNetwork("zoo")
    a = net.add_channel("a", check_data=False)
    b = net.add_channel("b", check_data=False)
    orphan = net.add_channel("orphan", check_data=False)
    net.add(Source("src", a))
    net.add(Source("src2", a))  # second producer on a
    net.add(Pipe("p", a, b))
    net.add(Sink("snk", b))
    found = lint_network(net)
    assert codes(found) == ["ELX002"]
    subjects = {f.subject for f in found}
    assert {"a", "orphan"} <= subjects
    messages = " / ".join(f.message for f in found)
    assert "producer" in messages and "no controller drives" in messages


def test_elx004_network_token_free_loop():
    net = ElasticNetwork("zoo")
    a = net.add_channel("a", check_data=False)
    b = net.add_channel("b", check_data=False)
    net.add(ElasticBuffer("EB1", a, b, initial_tokens=0))
    net.add(ElasticBuffer("EB2", b, a, initial_tokens=0))
    found = lint_network(net)
    assert codes(found) == ["ELX004"]
    assert set(found[0].path) == {"EB1", "EB2"}


def test_elx005_network_full_loop():
    net = ElasticNetwork("zoo")
    a = net.add_channel("a", check_data=False)
    b = net.add_channel("b", check_data=False)
    net.add(ElasticBuffer("EB1", a, b, capacity=1, initial_tokens=1))
    net.add(ElasticBuffer("EB2", b, a, capacity=1, initial_tokens=1))
    found = lint_network(net)
    assert codes(found) == ["ELX005"]


def test_elx006_network_early_join_loop_without_buffer():
    net = ElasticNetwork("zoo")
    src = net.add_channel("src", check_data=False)
    loop = net.add_channel("loop", check_data=False)
    out = net.add_channel("out", check_data=False)
    net.add(Source("S", src))
    net.add(EarlyJoin("EJ", [src, loop], out, ee=AndEE(2)))
    net.add(Pipe("P", out, loop))
    found = lint_network(net)
    # The join's output fans nowhere else, so 'out' also lacks a
    # consumer-side check -- but the loop EJ -> P -> EJ has no
    # annihilating buffer, which is the interesting verdict.
    assert "ELX006" in codes(found)
    f = by_rule(found, "ELX006")[0]
    assert "early join 'EJ'" in f.message


def test_network_with_buffer_on_early_loop_is_clean():
    from repro.elastic.behavioral import EagerFork

    net = ElasticNetwork("ok")
    src = net.add_channel("src", check_data=False)
    out = net.add_channel("out", check_data=False)
    q = net.add_channel("q", check_data=False)
    loop = net.add_channel("loop", check_data=False)
    fb = net.add_channel("fb", check_data=False)
    net.add(Source("S", src))
    net.add(EarlyJoin("EJ", [src, fb], out, ee=AndEE(2)))
    net.add(EagerFork("F", out, [q, loop]))
    net.add(Sink("K", q))
    net.add(Pipe("P", loop, net.add_channel("pb", check_data=False)))
    net.add(ElasticBuffer("EB", net.channels["pb"], fb,
                          capacity=2, initial_tokens=1))
    assert lint_network(net) == []


# ----------------------------------------------------------------------
# DMG level
# ----------------------------------------------------------------------
def test_elx004_dmg_non_positive_cycle():
    g = MarkedGraph()
    g.add_arc("a", "b", tokens=0)
    g.add_arc("b", "a", tokens=0)
    found = lint_dmg(g, target="toy")
    assert codes(found) == ["ELX004"]
    assert "sums to 0 tokens" in found[0].message


def test_elx004_dmg_marked_cycle_is_clean():
    g = MarkedGraph()
    g.add_arc("a", "b", tokens=1)
    g.add_arc("b", "a", tokens=0)
    assert lint_dmg(g) == []
