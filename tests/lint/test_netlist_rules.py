"""The LNT0xx defect zoo: one broken netlist per netlist rule."""

import pytest

from repro.lint import lint_netlist
from repro.lint.findings import Severity
from repro.lint.netlist_rules import combinational_cycle_finding
from repro.rtl.logic import X
from repro.rtl.netlist import Gate, Netlist, Phase


def codes(findings):
    return sorted({f.rule for f in findings})


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def clean_reference():
    """A tiny healthy netlist: every rule must stay silent on it."""
    nl = Netlist("clean")
    a = nl.add_input("a")
    b = nl.add_input("b")
    q = nl.add_flop(nl.AND(a, b), q="q")
    nl.add_output(nl.XOR(q, a, out="y"))
    return nl


def test_clean_reference_has_no_findings():
    assert lint_netlist(clean_reference()) == []


# ----------------------------------------------------------------------
# LNT001 multiply-driven
# ----------------------------------------------------------------------
def test_lnt001_signal_owned_by_two_tables():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_flop(a, q="q")
    # The builder API refuses double drives; corrupt the tables the way
    # a buggy netlist generator would.
    nl.gates["q"] = Gate("q", "BUF", (a,))
    nl.add_output("q")
    found = by_rule(lint_netlist(nl), "LNT001")
    assert [f.subject for f in found] == ["q"]
    assert found[0].severity == Severity.ERROR
    assert "gate" in found[0].message and "flop" in found[0].message


# ----------------------------------------------------------------------
# LNT002 floating
# ----------------------------------------------------------------------
def test_lnt002_dangling_fanin():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_output(nl.AND(a, "ghost", out="y"))
    found = by_rule(lint_netlist(nl), "LNT002")
    assert [f.subject for f in found] == ["ghost"]
    assert found[0].severity == Severity.ERROR


def test_lnt002_undriven_output():
    nl = Netlist("zoo")
    nl.add_output("nowhere")
    found = by_rule(lint_netlist(nl), "LNT002")
    assert [f.subject for f in found] == ["nowhere"]


# ----------------------------------------------------------------------
# LNT003 dead cells
# ----------------------------------------------------------------------
def test_lnt003_cell_outside_output_cone():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_output(nl.BUF(a, out="y"))
    nl.NOT(a, out="orphan")
    found = by_rule(lint_netlist(nl), "LNT003")
    assert [f.subject for f in found] == ["orphan"]
    assert found[0].severity == Severity.WARNING


def test_lnt003_skipped_without_declared_outputs():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.NOT(a, out="orphan")
    assert by_rule(lint_netlist(nl), "LNT003") == []


# ----------------------------------------------------------------------
# LNT004 two-phase discipline
# ----------------------------------------------------------------------
def test_lnt004_same_phase_latch_chain():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    first = nl.add_latch(a, Phase.HIGH, q="first")
    mid = nl.BUF(first, out="mid")
    nl.add_latch(mid, Phase.HIGH, q="second")
    nl.add_output("second")
    found = by_rule(lint_netlist(nl), "LNT004")
    assert [f.subject for f in found] == ["second"]
    assert found[0].severity == Severity.WARNING
    assert found[0].path == ("first", "mid", "second")


def test_lnt004_alternating_phases_are_clean():
    nl = Netlist("ok")
    a = nl.add_input("a")
    first = nl.add_latch(a, Phase.HIGH, q="first")
    nl.add_latch(nl.BUF(first), Phase.LOW, q="second")
    nl.add_output("second")
    assert by_rule(lint_netlist(nl), "LNT004") == []


# ----------------------------------------------------------------------
# LNT005 combinational cycles
# ----------------------------------------------------------------------
def cyclic_netlist():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_gate("AND", (a, "y"), out="x")
    nl.BUF("x", out="y")
    nl.add_output("y")
    return nl


def test_lnt005_reports_canonical_cycle_once():
    found = by_rule(lint_netlist(cyclic_netlist()), "LNT005")
    # A gate cycle exists in both phases but is one structural defect:
    # exactly one finding, tagged with the first phase that hits it.
    assert len(found) == 1
    assert found[0].path == ("x", "y")
    assert found[0].subject == "x"
    assert found[0].message == "combinational cycle: x -> y -> x (phase H)"


def test_lnt005_finding_is_the_simulator_diagnostic():
    """The lint rule and both simulators share one message producer."""
    from repro.rtl.batchsim import BatchSimulator
    from repro.rtl.simulator import TwoPhaseSimulator
    from repro.rtl.toposort import CombinationalCycleError

    nl = cyclic_netlist()
    finding = combinational_cycle_finding(["x", "y"])
    with pytest.raises(CombinationalCycleError) as batch_err:
        BatchSimulator(nl, lanes=4)
    sim = TwoPhaseSimulator(nl, strict_x=True)
    with pytest.raises(CombinationalCycleError) as scalar_err:
        sim.cycle({"a": 1})
    assert str(batch_err.value) == finding.message
    assert str(scalar_err.value) == finding.message
    assert batch_err.value.cycle == list(finding.path)
    assert scalar_err.value.cycle == list(finding.path)


def test_lnt005_phase_suffix_only_when_asked():
    bare = combinational_cycle_finding(["b", "a"])
    assert bare.message == "combinational cycle: a -> b -> a"
    tagged = combinational_cycle_finding(["b", "a"], phase=Phase.LOW)
    assert tagged.message == "combinational cycle: a -> b -> a (phase L)"
    # The phase never enters the fingerprint inputs (rule/target/
    # subject/path), so baselines survive the wording difference.
    assert bare.fingerprint == tagged.fingerprint


def test_lnt005_multiple_distinct_cycles():
    nl = Netlist("zoo")
    nl.add_gate("BUF", ("b",), out="a")
    nl.add_gate("BUF", ("a",), out="b")
    nl.add_gate("BUF", ("d",), out="c")
    nl.add_gate("BUF", ("c",), out="d")
    found = by_rule(lint_netlist(nl), "LNT005")
    assert {f.path for f in found} == {("a", "b"), ("c", "d")}


# ----------------------------------------------------------------------
# LNT006 constants
# ----------------------------------------------------------------------
def test_lnt006_const_fed_gate_is_flagged_as_note():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    zero = nl.const0(out="zero")
    nl.add_output(nl.AND(a, zero, out="y"))
    found = by_rule(lint_netlist(nl), "LNT006")
    # The declared CONST0 cell is fine; the AND it silences is not.
    assert [f.subject for f in found] == ["y"]
    assert found[0].severity == Severity.INFO
    assert "constant 0" in found[0].message


def test_lnt006_sequential_constant_through_a_flop():
    nl = Netlist("zoo")
    # q starts 0 and recycles AND(q, a) = 0 forever.
    a = nl.add_input("a")
    nl.add_flop("feed", q="q", init=0)
    nl.AND("q", a, out="feed")
    nl.add_output("q")
    found = by_rule(lint_netlist(nl), "LNT006")
    assert [f.subject for f in found] == ["feed"]


def test_lnt006_opt_out():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_output(nl.AND(a, nl.const0(), out="y"))
    assert by_rule(lint_netlist(nl, constants=False), "LNT006") == []


def test_lnt006_free_running_toggle_is_not_constant():
    nl = Netlist("ok")
    nl.add_flop("n", q="q", init=0)
    nl.NOT("q", out="n")
    nl.add_output("q")
    assert by_rule(lint_netlist(nl), "LNT006") == []


# ----------------------------------------------------------------------
# LNT007 X-initialised state
# ----------------------------------------------------------------------
def test_lnt007_x_initialised_flop_and_latch():
    nl = Netlist("zoo")
    a = nl.add_input("a")
    nl.add_flop(a, q="qf", init=X)
    nl.add_latch(a, Phase.HIGH, q="ql", init=X)
    nl.add_output("qf")
    nl.add_output("ql")
    found = by_rule(lint_netlist(nl), "LNT007")
    assert sorted(f.subject for f in found) == ["qf", "ql"]
    assert all(f.severity == Severity.WARNING for f in found)
