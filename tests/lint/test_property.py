"""Property: structurally well-formed generated netlists lint clean.

The generator builds layered DAG netlists -- every signal driven once,
every gate's fan-in already defined, every cell reachable from an
output -- so none of the structural ERROR/WARNING rules may fire.
LNT006 (INFO) is allowed: random logic over constants may well be
constant, and that is exactly what the note reports.
"""

from hypothesis import given, settings, strategies as st

from repro.lint import lint_netlist
from repro.lint.findings import Severity
from repro.rtl.netlist import Netlist, Phase

OPS1 = ("BUF", "NOT")
OPS2 = ("AND", "OR", "XOR", "NAND", "NOR")


@st.composite
def netlists(draw):
    nl = Netlist("generated")
    signals = [nl.add_input(f"in{i}")
               for i in range(draw(st.integers(1, 3)))]
    # Which latch phases reach each signal through gates only; a latch
    # must pick the other phase (the two-phase discipline LNT004 checks).
    comb_phases = {s: frozenset() for s in signals}
    n_cells = draw(st.integers(1, 12))
    for _ in range(n_cells):
        kind = draw(st.sampled_from(("gate1", "gate2", "flop", "latch")))
        a = draw(st.sampled_from(signals))
        if kind == "gate1":
            out = nl.add_gate(draw(st.sampled_from(OPS1)), (a,))
            comb_phases[out] = comb_phases[a]
        elif kind == "gate2":
            b = draw(st.sampled_from(signals))
            out = nl.add_gate(draw(st.sampled_from(OPS2)), (a, b))
            comb_phases[out] = comb_phases[a] | comb_phases[b]
        elif kind == "latch" and len(comb_phases[a]) < 2:
            allowed = sorted(
                set(Phase) - comb_phases[a], key=lambda p: p.value
            )
            phase = draw(st.sampled_from(allowed))
            out = nl.add_latch(a, phase, init=draw(st.sampled_from((0, 1))))
            comb_phases[out] = frozenset({phase})
        else:  # flop, or a latch pinched between both phases
            out = nl.add_flop(a, init=draw(st.sampled_from((0, 1))))
            comb_phases[out] = frozenset()
        signals.append(out)
    # Declare every sink-less signal an output: nothing is dead.
    consumed = set()
    for gate in nl.gates.values():
        consumed.update(gate.ins)
    for latch in nl.latches.values():
        consumed.add(latch.d)
    for flop in nl.flops.values():
        consumed.add(flop.d)
    for sig in signals:
        if sig not in consumed:
            nl.add_output(sig)
    return nl


@given(netlists())
@settings(max_examples=40, deadline=None)
def test_generated_clean_netlists_lint_clean(nl):
    findings = lint_netlist(nl)
    problems = [f for f in findings if f.severity > Severity.INFO]
    assert problems == [], "\n".join(str(f) for f in problems)


@given(netlists())
@settings(max_examples=15, deadline=None)
def test_lint_is_deterministic_per_netlist(nl):
    first = [str(f) for f in lint_netlist(nl)]
    second = [str(f) for f in lint_netlist(nl)]
    assert first == second
