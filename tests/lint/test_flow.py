"""elasticize(): build-time deadlock diagnosis on the way to a network."""

import pytest

from repro.elastic.behavioral import ElasticNetwork
from repro.synthesis import ElasticLintError, elasticize
from repro.synthesis.spec import SystemSpec

from tests.lint.test_elastic_rules import loop_spec, pipeline_spec


def test_elasticize_builds_and_runs_a_healthy_spec():
    net = elasticize(pipeline_spec(), seed=7)
    assert isinstance(net, ElasticNetwork)
    net.run(50)
    assert net.cycle == 50


def test_elasticize_rejects_a_full_capacity1_loop():
    with pytest.raises(ElasticLintError) as err:
        elasticize(loop_spec(capacity=1, initial_tokens=1))
    exc = err.value
    assert [f.rule for f in exc.errors] == ["ELX005"]
    # The diagnosis names the offending cycle...
    assert exc.errors[0].path == ("A", "R")
    assert "A -> R -> A" in str(exc)
    # ...and the full findings ride along for rendering.
    assert exc.findings == exc.errors


def test_elasticize_rejects_a_token_free_loop():
    with pytest.raises(ElasticLintError) as err:
        elasticize(loop_spec(capacity=2, initial_tokens=0))
    assert [f.rule for f in err.value.errors] == ["ELX004"]


def test_elasticize_opt_out_builds_the_deadlocking_network():
    net = elasticize(loop_spec(capacity=1, initial_tokens=1), lint=False)
    assert isinstance(net, ElasticNetwork)


def test_elasticize_ignores_info_findings():
    spec = pipeline_spec()
    spec.connections[0].passive = True  # ELX007, INFO only
    assert isinstance(elasticize(spec), ElasticNetwork)


def test_undersized_capacity_is_a_gate_level_error():
    """The behavioural backend honours capacity; the gate-level backend
    only emits the paper's dual EB and says so."""
    from repro.synthesis.elaborate import to_gates

    spec = loop_spec(capacity=1, initial_tokens=0)
    spec.registers["R"].capacity = 3
    with pytest.raises(ValueError, match="capacity 3"):
        to_gates(spec)


def test_behavioral_backend_honours_capacity():
    from repro.elastic.behavioral import ElasticBuffer
    from repro.synthesis.elaborate import to_behavioral

    spec = pipeline_spec(capacity=4, initial_tokens=3)
    net = to_behavioral(spec)
    eb = [c for c in net.controllers if isinstance(c, ElasticBuffer)][0]
    assert eb.capacity == 4
    assert eb.count == 3
