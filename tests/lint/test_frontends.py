"""The BLIF/Verilog re-parse front-ends and source-mapped findings.

Round-trip contract: for every netlist this repo exports,
``parse(to_blif(nl))`` and ``parse(to_verilog(nl))`` reconstruct a
netlist with the *same content fingerprint* -- names, cell order, ops,
phases and reset values all survive.  Golden fixtures pin every shipped
design; a Hypothesis property extends the claim to the random-netlist
distribution the backend differential suites use.  The malformed-input
zoo pins the parser diagnostics, and the source-map tests pin the
file/line/column anchors SARIF ``physicalLocation`` entries are built
from.
"""

import json

import pytest
from hypothesis import given, settings

from repro.codegen.fingerprint import netlist_fingerprint
from repro.lint import (
    FrontendParseError,
    LintReport,
    attach_locations,
    lint_file,
    parse_blif,
    parse_design_file,
    parse_verilog,
    sarif_json,
)
from repro.rtl.export import to_blif, to_verilog
from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase
from tests.strategies import random_netlists


def shipped_netlists():
    """(name, netlist) for every design the repo exports."""
    from repro.casestudy.fig9 import Config, build_fig9_spec
    from repro.faults.targets import TARGETS
    from repro.synthesis.elaborate import to_gates
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    for cfg in Config:
        netlist = to_gates(
            build_fig9_spec(cfg), include_env=True, as_latches=True
        ).netlist
        yield f"fig9:{cfg.name.lower()}", netlist
    for design in sorted(DESIGNS):
        nl, _, _ = diamond_with_feedback(**DESIGNS[design])
        yield f"verif:{design}", nl
    for name in sorted(TARGETS):
        yield f"rtl:{name}", TARGETS[name]().netlist


def tricky_netlist():
    """Every exporter corner in one netlist."""
    nl = Netlist("fig.9 demo")  # sanitised module name
    a = nl.add_input("t one")  # sanitised signal names
    b = nl.add_input("b.x")
    nl.AND(out="allhigh")  # zero-input variadics
    nl.OR(out="alllow")
    nl.AND(a, out="single")  # one-input variadics (BUF/NOT ambiguous)
    nl.NAND(b, out="inv1")
    nl.NOR(a, out="inv2")
    nl.OR(a, b, "single", out="o3")
    nl.add_latch("o3", Phase.LOW, q="xl", init=X)  # X resets
    nl.add_flop("o3", q="xf", init=X)
    nl.add_flop("single", q="f1", init=1)
    nl.add_output("o3")
    nl.add_output("xf")
    nl.add_output("t one")  # an input that is also an output
    return nl


# ----------------------------------------------------------------------
# Round-trip fingerprints
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize(
        "name,netlist",
        list(shipped_netlists()),
        ids=[name for name, _ in shipped_netlists()],
    )
    def test_every_shipped_design(self, name, netlist):
        fp = netlist_fingerprint(netlist)
        via_blif = parse_blif(to_blif(netlist), file=f"{name}.blif")
        via_verilog = parse_verilog(to_verilog(netlist), file=f"{name}.v")
        assert netlist_fingerprint(via_blif.netlist) == fp
        assert netlist_fingerprint(via_verilog.netlist) == fp

    def test_exporter_corners(self):
        nl = tricky_netlist()
        fp = netlist_fingerprint(nl)
        assert netlist_fingerprint(parse_blif(to_blif(nl)).netlist) == fp
        assert netlist_fingerprint(parse_verilog(to_verilog(nl)).netlist) == fp

    @settings(max_examples=40, deadline=None)
    @given(random_netlists())
    def test_blif_roundtrip_property(self, nl):
        parsed = parse_blif(to_blif(nl))
        assert netlist_fingerprint(parsed.netlist) == netlist_fingerprint(nl)

    @settings(max_examples=25, deadline=None)
    @given(random_netlists())
    def test_verilog_roundtrip_property(self, nl):
        parsed = parse_verilog(to_verilog(nl))
        assert netlist_fingerprint(parsed.netlist) == netlist_fingerprint(nl)

    def test_foreign_blif_without_sourcemap_still_parses(self):
        text = "\n".join([
            ".model foreign",
            ".inputs a b",
            ".outputs y",
            ".names a b y",
            "11 1",
            ".end",
        ])
        design = parse_blif(text, file="foreign.blif")
        assert design.name == "foreign"
        assert design.netlist.gates["y"].op == "AND"

    def test_dispatch_by_extension(self, tmp_path):
        nl = tricky_netlist()
        blif = tmp_path / "t.blif"
        blif.write_text(to_blif(nl))
        verilog = tmp_path / "t.v"
        verilog.write_text(to_verilog(nl))
        fp = netlist_fingerprint(nl)
        assert netlist_fingerprint(parse_design_file(str(blif)).netlist) == fp
        assert netlist_fingerprint(parse_design_file(str(verilog)).netlist) == fp
        with pytest.raises(FrontendParseError, match="no parser"):
            parse_design_file(str(tmp_path / "t.edif"))


# ----------------------------------------------------------------------
# Malformed-input zoo
# ----------------------------------------------------------------------
class TestMalformedZoo:
    def test_truncated_names_cover(self):
        text = "\n".join([
            ".model bad",
            ".inputs a b",
            ".outputs y",
            ".names a b y",
            ".end",
        ])
        with pytest.raises(FrontendParseError, match="truncated .names cover"):
            parse_blif(text, file="bad.blif")

    def test_malformed_cover_row(self):
        text = "\n".join([
            ".model bad",
            ".inputs a b",
            ".outputs y",
            ".names a b y",
            "1 1",  # plane width 1 over two inputs
            ".end",
        ])
        with pytest.raises(FrontendParseError, match="truncated or malformed"):
            parse_blif(text, file="bad.blif")

    def test_undeclared_wire(self):
        text = "\n".join([
            ".model bad",
            ".inputs a",
            ".outputs y",
            ".names a ghost y",
            "11 1",
            ".end",
        ])
        with pytest.raises(FrontendParseError, match="undeclared wire"):
            parse_blif(text, file="bad.blif")

    def test_duplicate_model(self):
        text = "\n".join([
            ".model one",
            ".model two",
            ".inputs a",
            ".outputs a",
            ".end",
        ])
        with pytest.raises(FrontendParseError, match="duplicate .model"):
            parse_blif(text, file="bad.blif")

    def test_error_carries_file_and_line(self):
        text = ".model bad\n.inputs a\n.outputs y\n.garbage x\n.end\n"
        with pytest.raises(FrontendParseError) as exc:
            parse_blif(text, file="bad.blif")
        assert str(exc.value).startswith("bad.blif:4:")
        assert exc.value.line == 4

    def test_verilog_behavioural_statement_rejected(self):
        text = "\n".join([
            "module m (clk, rst, a, y);",
            "  input clk, rst;",
            "  input a;",
            "  output y;",
            "  initial y = 0;",
            "endmodule",
        ])
        with pytest.raises(FrontendParseError, match="unsupported statement"):
            parse_verilog(text, file="bad.v")

    def test_verilog_missing_module_rejected(self):
        with pytest.raises(FrontendParseError, match="missing module"):
            parse_verilog("assign y = a;\n", file="bad.v")


# ----------------------------------------------------------------------
# Source maps and located findings
# ----------------------------------------------------------------------
def x_stuck_blif(tmp_path):
    nl = Netlist("zoo[x_stuck]")
    a = nl.add_input("a")
    nl.BUF("q", out="d")
    nl.add_flop("d", q="q", init=X)
    nl.AND(a, "q", out="o")
    nl.add_output("o")
    path = tmp_path / "xstuck.blif"
    path.write_text(to_blif(nl))
    return path


class TestSourceMap:
    def test_anchors_point_at_defining_lines(self):
        nl = tricky_netlist()
        text = to_blif(nl)
        design = parse_blif(text, file="t.blif")
        lines = text.splitlines()
        for signal in ("t one", "b.x", "o3", "xl", "xf"):
            loc = design.source_map.location(signal)
            assert loc is not None, signal
            assert loc.file == "t.blif"
            line = lines[loc.line - 1]
            assert not line.startswith("#")  # a code line, not the trailer

    def test_every_finding_gets_a_location(self, tmp_path):
        findings = lint_file(str(x_stuck_blif(tmp_path)))
        assert findings
        assert all(f.location is not None for f in findings)
        assert {f.rule for f in findings} >= {"LNT007", "LNT008", "LNT009"}
        # all three findings anchor on the .latch line of q
        q_lines = {f.location.line for f in findings if f.subject == "q"}
        assert len(q_lines) == 1

    def test_unmapped_subject_falls_back_to_line_one(self):
        from repro.lint import Finding, SourceMap

        source_map = SourceMap(file="f.blif", anchors={})
        [located] = attach_locations(
            [Finding("LNT001", "t", "ghost", "m")], source_map
        )
        assert located.location.file == "f.blif"
        assert located.location.line == 1

    def test_sarif_carries_physical_locations(self, tmp_path):
        report = LintReport(lint_file(str(x_stuck_blif(tmp_path))))
        log = json.loads(sarif_json(report))
        results = log["runs"][0]["results"]
        assert results
        for result in results:
            physical = result["locations"][0]["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith("xstuck.blif")
            assert physical["region"]["startLine"] >= 1
            assert physical["region"]["startColumn"] >= 1

    def test_located_output_is_deterministic(self, tmp_path):
        path = str(x_stuck_blif(tmp_path))
        first = LintReport(lint_file(path))
        second = LintReport(lint_file(path))
        assert sarif_json(first) == sarif_json(second)
        assert first.to_json() == second.to_json()

    def test_finding_json_carries_location(self, tmp_path):
        [f] = [
            f for f in lint_file(str(x_stuck_blif(tmp_path)))
            if f.rule == "LNT008"
        ]
        payload = f.to_dict()
        assert payload["location"]["file"].endswith("xstuck.blif")
        assert payload["location"]["line"] == f.location.line
        assert str(f.location) in str(f)


class TestLintFileCache:
    def test_cache_hit_still_carries_locations_and_witnesses(self, tmp_path):
        from repro.codegen import build_cache

        path = str(x_stuck_blif(tmp_path))
        cache = build_cache(str(tmp_path / "cache"))
        first = lint_file(path, cache=cache)
        second = lint_file(path, cache=cache)  # served from the cache
        assert [f.fingerprint for f in first] == [f.fingerprint for f in second]
        for f in second:
            assert f.location is not None
        [stuck] = [f for f in second if f.rule == "LNT008"]
        assert stuck.witness["kind"] == "x-propagation"
        from repro.lint import replay_witness

        assert replay_witness(parse_design_file(path).netlist, stuck)
