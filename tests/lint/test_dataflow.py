"""The worklist fixpoint engine and its layer adapters."""

import pytest

from repro.lint.dataflow import (
    FixpointDivergence,
    FixpointResult,
    dmg_graph,
    fixpoint,
    netlist_graph,
    spec_graph,
    spec_in_channels,
)
from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase


def diamond():
    # a feeds b and c, both feed d
    return {"a": (), "b": ("a",), "c": ("a",), "d": ("b", "c")}


# ----------------------------------------------------------------------
# Core solver
# ----------------------------------------------------------------------
class TestFixpoint:
    def test_forward_reachability(self):
        result = fixpoint(
            diamond(),
            transfer=lambda n, get: n == "a" or any(
                get(i) for i in diamond()[n]
            ),
            init=lambda n: False,
            join=lambda old, new: old or new,
        )
        assert result.values == {"a": True, "b": True, "c": True, "d": True}

    def test_backward_liveness(self):
        # only d is observable; everything reaching it becomes live
        graph = diamond()
        succs = {
            n: [m for m, ins in graph.items() if n in ins] for n in graph
        }
        result = fixpoint(
            graph,
            transfer=lambda n, get: n == "d" or any(
                get(s) for s in succs[n]
            ),
            init=lambda n: n == "d",
            direction="backward",
            join=lambda old, new: old or new,
        )
        # backward: b and c feed d, a feeds both
        assert all(result.values.values())

    def test_longest_path_without_join_replaces(self):
        graph = {"a": (), "b": ("a",), "c": ("b",)}
        result = fixpoint(
            graph,
            transfer=lambda n, get: max(
                [get(i) + 1 for i in graph[n]], default=0
            ),
            init=lambda n: 0,
        )
        assert result.values == {"a": 0, "b": 1, "c": 2}

    def test_order_is_sorted_names(self):
        result = fixpoint(
            {"z": (), "a": ("z",), "m": ("a",)},
            transfer=lambda n, get: 0,
            init=lambda n: 0,
        )
        assert result.order == ("a", "m", "z")

    def test_insertion_order_does_not_change_result(self):
        base = {"a": (), "b": ("a",), "c": ("a", "b"), "d": ("c", "b")}
        permuted = {k: base[k] for k in ("d", "b", "c", "a")}

        def run(graph):
            return fixpoint(
                graph,
                transfer=lambda n, get: (
                    1 if not graph[n] else min(get(i) for i in graph[n]) + 1
                ),
                init=lambda n: 0,
                join=max,
            )

        first, second = run(base), run(permuted)
        assert first.values == second.values
        assert first.order == second.order
        assert first.evaluations == second.evaluations

    def test_cycle_converges_with_join(self):
        graph = {"a": ("b",), "b": ("a",), "seed": ()}
        result = fixpoint(
            {"a": ("b", "seed"), "b": ("a",), "seed": ()},
            transfer=lambda n, get: (
                1 if n == "seed" else max(
                    [get(i) for i in graph.get(n, ()) + (("seed",) if n == "a" else ())],
                    default=0,
                )
            ),
            init=lambda n: 0,
            join=max,
        )
        assert result.values["a"] == 1
        assert result.values["b"] == 1

    def test_divergent_transfer_raises(self):
        with pytest.raises(FixpointDivergence, match="changed more than"):
            fixpoint(
                {"a": ("a",)},
                transfer=lambda n, get: get("a") + 1,  # never stabilises
                init=lambda n: 0,
            )

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="forward/backward"):
            fixpoint({}, lambda n, g: 0, lambda n: 0, direction="sideways")

    def test_foreign_edges_are_dropped(self):
        # b depends on a name outside the graph: transfer never sees it
        result = fixpoint(
            {"b": ("ghost",)},
            transfer=lambda n, get: 7,
            init=lambda n: 0,
        )
        assert result.values == {"b": 7}

    def test_result_indexing(self):
        result = fixpoint({"a": ()}, lambda n, g: 3, lambda n: 0)
        assert isinstance(result, FixpointResult)
        assert result["a"] == 3


# ----------------------------------------------------------------------
# Adapters
# ----------------------------------------------------------------------
class TestNetlistGraph:
    def make(self):
        nl = Netlist("g")
        a = nl.add_input("a")
        nl.NOT(a, out="na")
        nl.add_flop("na", q="q", init=0)
        nl.add_latch("q", Phase.HIGH, q="l", init=X)
        nl.add_output("l")
        return nl

    def test_state_edges_on(self):
        g = netlist_graph(self.make())
        assert g["q"] == ("na",)
        assert g["l"] == ("q",)
        assert g["na"] == ("a",)
        assert g["a"] == ()

    def test_state_edges_off(self):
        g = netlist_graph(self.make(), state_edges=False)
        assert g["q"] == ()
        assert g["l"] == ()
        assert g["na"] == ("a",)


class TestSpecGraph:
    def make(self):
        from repro.synthesis.spec import SystemSpec

        spec = SystemSpec("s")
        spec.add_source("A")
        spec.add_sink("Z")
        spec.add_block("B", n_inputs=1)
        spec.connect(spec.source("A"), spec.block_in("B", 0), name="ab")
        spec.connect(spec.block_out("B", 0), spec.sink("Z"), name="bz")
        return spec

    def test_nodes_and_edges(self):
        g = spec_graph(self.make())
        assert g["channel:ab"] == ("source:A",)
        assert g["block:B"] == ("channel:ab",)
        assert g["sink:Z"] == ("channel:bz",)

    def test_in_channels_by_port(self):
        arms = spec_in_channels(self.make())
        assert arms == {"B": ["ab"]}


class TestDmgGraph:
    def test_arcs_become_dependencies(self):
        from repro.core.dmg import fig1_dmg

        graph = fig1_dmg()
        deps = dmg_graph(graph)
        assert set(deps) == {n for n in graph.nodes}
        for arc in graph.arcs:
            assert arc.src in deps[arc.dst]
