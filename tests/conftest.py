"""Shared fixtures: keep the codegen build cache out of ``~/.cache``.

Every test gets a private ``REPRO_CACHE_DIR`` under its tmp dir, so
tests exercising the compiled backend (or the CLI defaults) never read
or pollute the developer's real cache, and never see each other's
artifacts.

The shared Hypothesis strategies (random netlists, differential cases,
valid system-spec models) live in ``tests/strategies.py``; import from
there, or take the ``strategies`` fixture.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_build_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "codegen-cache"))


@pytest.fixture(scope="session")
def strategies():
    """The ``tests.strategies`` module, for fixture-style consumers."""
    from tests import strategies as module

    return module
