"""Shared Hypothesis strategies and random-circuit generators.

Two families live here:

* the random *netlist* generators that the batch/compiled differential
  suites drive (gate soup with latches, flip-flop feedback, X stimulus
  and per-lane fault injections), lifted out of
  ``tests/rtl/test_batchsim_differential.py`` so every backend suite
  consumes the same distribution;
* :func:`spec_models`, a Hypothesis strategy over the *system-level*
  :class:`repro.fuzz.model.SpecModel` generator -- valid (lint-clean,
  elaborable) specs by construction, the same distribution ``repro
  fuzz`` samples.

Import from ``tests.strategies``; ``tests/conftest.py`` re-exports the
module as the ``strategies`` fixture for tests that prefer fixtures
over imports.
"""

import random

from hypothesis import strategies as st

from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.rtl.batchsim import LaneOverride
from repro.rtl.logic import X, lnot
from repro.rtl.netlist import Netlist, Phase

LANES = 64
CYCLES = 5

_VARIADIC = ["AND", "OR", "NAND", "NOR"]


# ----------------------------------------------------------------------
# Random netlists + stimulus + injections (gate-level differentials)
# ----------------------------------------------------------------------
def build_random_netlist(rng: random.Random) -> Netlist:
    """A random netlist whose cells only read earlier-created signals."""
    nl = Netlist("rand")
    pool = [nl.add_input(f"in{i}") for i in range(rng.randint(1, 4))]
    ff_qs = [f"ff{j}" for j in range(rng.randint(0, 3))]
    pool += ff_qs  # flop outputs are readable before they are driven
    for i in range(rng.randint(3, 22)):
        r = rng.random()
        if r < 0.15:
            q = nl.add_latch(
                rng.choice(pool),
                rng.choice([Phase.HIGH, Phase.LOW]),
                q=f"lat{i}",
                init=rng.choice([0, 1, X]),
            )
        elif r < 0.25:
            q = nl.MUX(*(rng.choice(pool) for _ in range(3)), out=f"g{i}")
        elif r < 0.35:
            q = nl.XOR(rng.choice(pool), rng.choice(pool), out=f"g{i}")
        elif r < 0.45:
            op = rng.choice(["NOT", "BUF", "CONST0", "CONST1"])
            ins = (rng.choice(pool),) if op in ("NOT", "BUF") else ()
            q = nl.add_gate(op, ins, out=f"g{i}")
        else:
            op = rng.choice(_VARIADIC)
            ins = [rng.choice(pool) for _ in range(rng.randint(0, 3))]
            q = nl.add_gate(op, ins, out=f"g{i}")
        pool.append(q)
    for q in ff_qs:
        nl.add_flop(rng.choice(pool), q=q, init=rng.choice([0, 1]))
    nl.validate()
    return nl


def random_stimulus(rng: random.Random, netlist: Netlist,
                    lanes: int = LANES, cycles: int = CYCLES):
    """Per-lane, per-cycle input maps with ~15% explicit X drives."""
    def one_value():
        r = rng.random()
        return X if r < 0.15 else (1 if r < 0.575 else 0)

    return [
        [
            {name: one_value() for name in netlist.inputs}
            for _ in range(cycles)
        ]
        for _ in range(lanes)
    ]


def random_injections(rng: random.Random, netlist: Netlist,
                      lanes: int = LANES, cycles: int = CYCLES):
    """At most one fault per lane: (net, kind, cycle, duration|None)."""
    sites = sorted(netlist.signals())
    injections = []
    for _ in range(lanes):
        if rng.random() < 0.5:
            injections.append(None)
            continue
        injections.append((
            rng.choice(sites),
            rng.choice(["stuck0", "stuck1", "flip"]),
            rng.randrange(cycles),
            rng.choice([None, 1, 2]),
        ))
    return injections


def _active(inj, time):
    net, kind, cycle, duration = inj
    return time >= cycle and (duration is None or time < cycle + duration)


def _batch_overrides(injections, time):
    masks = {}
    for lane, inj in enumerate(injections):
        if inj is None or not _active(inj, time):
            continue
        net, kind, _, _ = inj
        m = masks.setdefault(net, [0, 0, 0])
        m[{"stuck0": 0, "stuck1": 1, "flip": 2}[kind]] |= 1 << lane
    return {
        net: LaneOverride(set0=m[0], set1=m[1], flip=m[2])
        for net, m in masks.items()
    }


def _scalar_overrides(inj, time):
    if inj is None or not _active(inj, time):
        return {}
    net, kind, _, _ = inj
    return {net: {"stuck0": 0, "stuck1": 1, "flip": lnot}[kind]}


@st.composite
def random_netlists(draw):
    """Random gate/latch netlists over the backend-suite distribution.

    One drawn seed determines the whole netlist (shrink-friendly,
    replayable); the re-parse front-end suite round-trips these through
    the BLIF/Verilog exporters.
    """
    seed = draw(st.integers(0, 2**32 - 1))
    return build_random_netlist(random.Random(seed))


@st.composite
def differential_cases(draw, lanes: int = LANES, cycles: int = CYCLES):
    """(netlist, per-lane stimulus, per-lane injections) triples.

    One drawn seed determines the whole case, so Hypothesis shrinks
    toward small seeds and failures replay from the seed alone.
    """
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)
    nl = build_random_netlist(rng)
    stimuli = random_stimulus(rng, nl, lanes=lanes, cycles=cycles)
    injections = random_injections(rng, nl, lanes=lanes, cycles=cycles)
    return seed, nl, stimuli, injections


# ----------------------------------------------------------------------
# System-level spec models (the repro.fuzz generator as a strategy)
# ----------------------------------------------------------------------
@st.composite
def spec_models(draw, max_blocks: int = 16, config: GeneratorConfig = None):
    """Valid :class:`~repro.fuzz.model.SpecModel`s, fuzz-distribution.

    Every drawn model is repaired to the clean-by-construction
    contract: it builds, passes the spec lint with no ERROR findings,
    and elaborates to both the behavioural network and (when all
    register capacities are 2) the gate netlist.
    """
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(f"hyp:{seed}")
    cfg = config or GeneratorConfig(max_blocks=max_blocks)
    return generate_model(rng, cfg, name=f"hyp{seed}")
