"""Tests for netlist construction and structural queries."""

import pytest

from repro.rtl.netlist import FlipFlop, Gate, Latch, Netlist, Phase


class TestGateValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Gate("q", "XNOR", ("a", "b"))

    def test_not_takes_one_input(self):
        with pytest.raises(ValueError):
            Gate("q", "NOT", ("a", "b"))

    def test_mux_takes_three(self):
        with pytest.raises(ValueError):
            Gate("q", "MUX", ("a", "b"))

    def test_const_takes_none(self):
        with pytest.raises(ValueError):
            Gate("q", "CONST0", ("a",))


class TestBuilders:
    def test_fresh_names_unique(self):
        nl = Netlist()
        assert nl.fresh() != nl.fresh()

    def test_single_driver_enforced(self):
        nl = Netlist()
        nl.AND("a", "b", out="q")
        with pytest.raises(ValueError):
            nl.OR("c", out="q")

    def test_input_conflicts_with_gate(self):
        nl = Netlist()
        nl.add_input("x")
        with pytest.raises(ValueError):
            nl.NOT("a", out="x")

    def test_all_cell_builders(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        for sig in (
            nl.AND(a, b), nl.OR(a, b), nl.NOT(a), nl.NAND(a, b),
            nl.NOR(a, b), nl.XOR(a, b), nl.MUX(a, b, b), nl.BUF(a),
            nl.const0(), nl.const1(),
        ):
            assert sig in nl.gates

    def test_latch_and_flop(self):
        nl = Netlist()
        d = nl.add_input("d")
        q1 = nl.add_latch(d, Phase.HIGH)
        q2 = nl.add_flop(d, init=1)
        assert nl.latches[q1].phase is Phase.HIGH
        assert nl.flops[q2].init == 1

    def test_outputs_deduplicated(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_output("a")
        nl.add_output("a")
        assert nl.outputs == ["a"]


class TestQueries:
    def test_signals_cover_all_drivers(self):
        nl = Netlist()
        a = nl.add_input("a")
        g = nl.NOT(a)
        l = nl.add_latch(a, Phase.LOW)
        f = nl.add_flop(a)
        assert {a, g, l, f} <= nl.signals()

    def test_fanin(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        g = nl.AND(a, b)
        assert nl.fanin(g) == (a, b)
        assert nl.fanin(a) == ()

    def test_driver_of(self):
        nl = Netlist()
        a = nl.add_input("a")
        g = nl.NOT(a)
        assert isinstance(nl.driver_of(g), Gate)
        assert nl.driver_of(a) is None

    def test_undriven_detection(self):
        nl = Netlist()
        nl.NOT("ghost", out="q")
        assert nl.undriven() == {"ghost"}
        with pytest.raises(ValueError):
            nl.validate()

    def test_stats(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.NOT(a)
        nl.add_latch(a, Phase.HIGH)
        s = nl.stats()
        assert s == {"inputs": 1, "gates": 1, "latches": 1, "flops": 0}


class TestMerge:
    def test_merge_with_prefix(self):
        inner = Netlist("inner")
        x = inner.add_input("x")
        inner.NOT(x, out="y")
        outer = Netlist("outer")
        outer.add_input("sub.x")
        rename = outer.merge(inner, prefix="sub.")
        assert rename["y"] == "sub.y"
        assert "sub.y" in outer.gates
        outer.validate()

    def test_merge_conflict_raises(self):
        inner = Netlist()
        inner.add_input("x")
        inner.NOT("x", out="y")
        outer = Netlist()
        outer.add_input("y")
        with pytest.raises(ValueError):
            outer.merge(inner)
