"""Tests for the Verilog / BLIF / SMV export backends."""

import re

import pytest

from repro.elastic.gates import GateChannel, build_elastic_buffer, build_nd_sink, build_nd_source
from repro.rtl.export import (
    _sanitize,
    channel_specs_smv,
    to_blif,
    to_smv,
    to_verilog,
)
from repro.rtl.netlist import Netlist, Phase


@pytest.fixture
def small():
    nl = Netlist("small.ctrl")
    a, b = nl.add_input("a"), nl.add_input("b.x")
    nb = nl.NOT(b, out="nb")
    g = nl.AND(a, nb, out="g1")
    nl.XOR(a, g, out="g2")
    nl.MUX(a, g, "g2", out="g3")
    nl.const1(out="one")
    nl.add_latch("g1", Phase.HIGH, q="lh", init=0)
    nl.add_latch("g1", Phase.LOW, q="ll", init=1)
    nl.add_flop("g2", q="ff", init=0)
    nl.add_output("g3")
    nl.add_output("ff")
    return nl


@pytest.fixture
def controller():
    """A real controller netlist (EB chain with nd environment)."""
    nl = Netlist("ebchain")
    c0 = GateChannel.declare(nl, "c0")
    c1 = GateChannel.declare(nl, "c1")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, c0, prefix="src", choice_input=choice)
    build_elastic_buffer(nl, c0, c1, prefix="eb", initial_tokens=1)
    stall = nl.add_input("snk.stall")
    build_nd_sink(nl, c1, prefix="snk", stall_input=stall)
    for ch in (c0, c1):
        for w in ch.wires():
            nl.add_output(w)
    return nl, [c0, c1]


class TestSanitize:
    def test_dots_become_underscores(self):
        assert _sanitize("eb.t0_d") == "eb_t0_d"

    def test_leading_digit_prefixed(self):
        assert _sanitize("1bad")[0].isalpha()


class TestVerilog:
    def test_module_structure(self, small):
        v = to_verilog(small)
        assert v.startswith("module small_ctrl (")
        assert "\nendmodule\n" in v
        assert "input clk, rst;" in v
        # only source-map comments may follow the module body
        trailer = v.split("\nendmodule\n", 1)[1]
        assert all(l.startswith("//") for l in trailer.splitlines() if l)
        assert "// repro.sourcemap 1" in trailer

    def test_all_cells_emitted(self, small):
        v = to_verilog(small)
        assert "assign g1 = a & nb;" in v
        assert "assign nb = ~b_x;" in v
        assert "g2 = a ^ g1" in v
        assert "? g1 : g2" in v
        assert "1'b1" in v  # constant

    def test_latch_phases(self, small):
        v = to_verilog(small)
        assert "else if (clk) lh = g1;" in v
        assert "else if (~clk) ll = g1;" in v

    def test_flop_reset_values(self, small):
        v = to_verilog(small)
        assert "ff <= rst ? 1'b0 : g2;" in v

    def test_controller_netlist_exports(self, controller):
        nl, _ = controller
        v = to_verilog(nl, module="ebchain")
        assert v.count("endmodule") == 1
        # deterministic output
        assert v == to_verilog(nl, module="ebchain")


class TestBlif:
    def test_model_header(self, small):
        b = to_blif(small)
        assert b.startswith(".model small_ctrl")
        assert ".end" in b

    def test_latch_kinds(self, small):
        b = to_blif(small)
        assert ".latch g1 lh ah clk 0" in b
        assert ".latch g1 ll al clk 1" in b
        assert ".latch g2 ff re clk 0" in b

    def test_covers(self, small):
        b = to_blif(small)
        assert ".names a b_x" not in b  # NOT gets its own .names
        assert "11 1" in b  # AND cover
        assert "10 1" in b and "01 1" in b  # XOR cover

    def test_mux_cover(self, small):
        b = to_blif(small)
        assert "11- 1" in b and "0-1 1" in b

    def test_const_covers(self):
        nl = Netlist("c")
        nl.const0(out="z")
        nl.const1(out="o")
        nl.add_output("z")
        nl.add_output("o")
        b = to_blif(nl)
        assert ".names z\n" in b  # empty cover = constant 0
        assert ".names o\n 1" in b


class TestSmv:
    def test_structure(self, small):
        s = to_smv(small)
        assert s.startswith("MODULE main")
        assert "VAR" in s and "DEFINE" in s and "ASSIGN" in s

    def test_state_updates(self, small):
        s = to_smv(small)
        assert "next(ff) := g2;" in s
        assert "init(ll) := TRUE;" in s

    def test_specs_rewritten(self, controller):
        nl, chans = controller
        specs = channel_specs_smv(chans)
        s = to_smv(nl, specs=specs, fairness=["snk.stall = FALSE"])
        assert "SPEC AG ((c0_vp & c0_sp) -> AX c0_vp)" in s
        assert "FAIRNESS snk_stall" in s
        assert len(specs) == 8  # 4 per channel

    def test_expressions(self, small):
        s = to_smv(small)
        assert "g1 := (a & nb);" in s
        assert "xor" in s


class TestSemanticRoundTrip:
    def test_blif_cover_semantics_match_simulator(self, small):
        """Evaluate each gate's BLIF cover against the simulator."""
        import itertools

        from repro.rtl.simulator import TwoPhaseSimulator

        b = to_blif(small)
        # parse the AND gate cover back and evaluate it
        sim = TwoPhaseSimulator(small)
        for a, bx in itertools.product((0, 1), repeat=2):
            vals = sim.cycle({"a": a, "b.x": bx})
            assert vals["g1"] == (a & (1 - bx))
            assert vals["g2"] == (a ^ vals["g1"])
