"""Tests for the two-phase netlist simulator."""

import pytest

from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.simulator import CombinationalCycleError, TwoPhaseSimulator


class TestCombinational:
    def test_gates_evaluate(self):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        q = nl.AND(a, nl.NOT(b))
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"a": 1, "b": 0})[q] == 1
        assert sim.cycle({"a": 1, "b": 1})[q] == 0

    def test_deep_chain(self):
        nl = Netlist()
        sig = nl.add_input("a")
        for _ in range(64):
            sig = nl.NOT(sig)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"a": 1})[sig] == 1

    def test_unknown_input_propagates(self):
        nl = Netlist()
        a = nl.add_input("a")
        q = nl.NOT(a)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({})[q] is X

    def test_x_blocked_by_controlling_value(self):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        q = nl.AND(a, b)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"a": 0})[q] == 0

    def test_mux_and_xor(self):
        nl = Netlist()
        s, a, b = (nl.add_input(n) for n in "sab")
        m = nl.MUX(s, a, b)
        x = nl.XOR(a, b)
        sim = TwoPhaseSimulator(nl)
        vals = sim.cycle({"s": 1, "a": 1, "b": 0})
        assert vals[m] == 1 and vals[x] == 1

    def test_constants(self):
        nl = Netlist()
        c0, c1 = nl.const0(), nl.const1()
        sim = TwoPhaseSimulator(nl)
        vals = sim.cycle({})
        assert vals[c0] == 0 and vals[c1] == 1


class TestSequential:
    def test_flop_delays_one_cycle(self):
        nl = Netlist()
        d = nl.add_input("d")
        q = nl.add_flop(d, init=0)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"d": 1})[q] == 0
        assert sim.cycle({"d": 0})[q] == 1
        assert sim.cycle({"d": 0})[q] == 0

    def test_flop_init_value(self):
        nl = Netlist()
        q = nl.add_flop(nl.add_input("d"), init=1)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"d": 0})[q] == 1

    def test_master_slave_latches_behave_like_flop(self):
        nl = Netlist()
        d = nl.add_input("d")
        master = nl.add_latch(d, Phase.LOW, init=0)
        slave = nl.add_latch(master, Phase.HIGH, init=0)
        flop = nl.add_flop(d, init=0)
        sim = TwoPhaseSimulator(nl)
        import random

        rng = random.Random(0)
        for _ in range(30):
            vals = sim.cycle({"d": rng.randint(0, 1)})
            assert vals[slave] == vals[flop]

    def test_transparent_high_latch_follows_input_same_cycle(self):
        nl = Netlist()
        d = nl.add_input("d")
        q = nl.add_latch(d, Phase.HIGH, init=0)
        sim = TwoPhaseSimulator(nl)
        # The HIGH latch captures during the high phase; at the end of
        # the cycle its output equals this cycle's input.
        assert sim.cycle({"d": 1})[q] == 1

    def test_low_latch_is_transparent_in_second_phase(self):
        nl = Netlist()
        d = nl.add_input("d")
        q = nl.add_latch(d, Phase.LOW, init=0)
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"d": 1})[q] == 1

    def test_counter(self):
        nl = Netlist()
        q = nl.add_flop("next", init=0)
        nl.NOT(q, out="next")
        sim = TwoPhaseSimulator(nl)
        values = [sim.cycle({})[q] for _ in range(4)]
        assert values == [0, 1, 0, 1]

    def test_reset_restores_init(self):
        nl = Netlist()
        q = nl.add_flop("next", init=0)
        nl.NOT(q, out="next")
        sim = TwoPhaseSimulator(nl)
        sim.cycle({})
        sim.cycle({})
        sim.reset()
        assert sim.cycle({})[q] == 0

    def test_step_function_is_pure(self):
        nl = Netlist()
        d = nl.add_input("d")
        nl.add_flop(d, q="q", init=0)
        sim = TwoPhaseSimulator(nl)
        state = sim.initial_state()
        _, nxt = sim.step_function(state, {"d": 1})
        assert state["q"] == 0  # unchanged
        assert nxt["q"] == 1


class TestCycles:
    def test_ring_oscillator_stays_x(self):
        nl = Netlist()
        nl.NOT("q", out="q2")
        nl.BUF("q2", out="q")
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({})["q"] is X

    def test_strict_mode_raises_on_unresolved(self):
        nl = Netlist()
        nl.NOT("q", out="q2")
        nl.BUF("q2", out="q")
        sim = TwoPhaseSimulator(nl, strict_x=True)
        with pytest.raises(CombinationalCycleError):
            sim.cycle({})

    def test_self_stabilising_cycle_resolves(self):
        # q = a OR q: with a=1 the least fixed point is q=X... ternary
        # simulation cannot assume the feedback; but q = a AND q with
        # a=0 resolves to 0.
        nl = Netlist()
        a = nl.add_input("a")
        nl.AND(a, "q", out="q")
        sim = TwoPhaseSimulator(nl)
        assert sim.cycle({"a": 0})["q"] == 0

    def test_validate_runs_at_construction(self):
        nl = Netlist()
        nl.NOT("missing", out="q")
        with pytest.raises(ValueError):
            TwoPhaseSimulator(nl)
