"""Differential testing: BatchSimulator vs TwoPhaseSimulator.

Hypothesis drives randomly generated acyclic netlists (gates, both
latch phases, flip-flop feedback), per-lane stimulus with explicit X
states, and per-lane fault injections; every one of the 64 lanes must
match its own scalar simulation cycle-for-cycle -- all signal values,
X-propagation, and latch/flop state included.  The generators live in
``tests/strategies.py`` (shared with the compiled-backend suite), and
build cells in topological order (each cell reads only earlier
signals), so phase-acyclicity is guaranteed by construction;
flip-flops are sequential cuts and may feed back freely.
"""

import random

from hypothesis import given, settings

from repro.rtl.batchsim import BatchSimulator, pack_stimulus
from repro.rtl.simulator import TwoPhaseSimulator
from tests.strategies import (
    LANES,
    _batch_overrides,
    _scalar_overrides,
    differential_cases,
)


@settings(max_examples=220, deadline=None)
@given(differential_cases())
def test_every_lane_matches_scalar(case):
    seed, nl, stimuli, injections = case

    batch = BatchSimulator(nl, lanes=LANES)
    scalars = [TwoPhaseSimulator(nl) for _ in range(LANES)]
    signals = sorted(nl.signals())

    for t, packed in enumerate(pack_stimulus(stimuli)):
        batch.set_overrides(_batch_overrides(injections, t))
        batch.cycle(packed)
        for lane, sim in enumerate(scalars):
            sim.overrides = _scalar_overrides(injections[lane], t)
            values = sim.cycle(stimuli[lane][t])
            for sig in signals:
                assert batch.lane_value(sig, lane) == values[sig], (
                    f"seed={seed} cycle={t} lane={lane} sig={sig} "
                    f"inj={injections[lane]}"
                )
            assert batch.lane_state(lane) == sim.state, (
                f"seed={seed} cycle={t} lane={lane} state diverged"
            )


def test_dual_ehb_directed():
    """The Fig. 5 dual-EHB netlist, 64 random-seed lanes, 100 cycles."""
    from repro.faults.targets import TARGETS

    target = TARGETS["dual_ehb"]()
    nl = target.netlist
    rngs = [random.Random(f"lane:{lane}") for lane in range(LANES)]
    stimuli = [
        [
            {name: rng.getrandbits(1) for name in target.free_inputs}
            for _ in range(100)
        ]
        for rng in rngs
    ]
    batch = BatchSimulator(nl, lanes=LANES)
    scalars = [TwoPhaseSimulator(nl) for _ in range(LANES)]
    observe = sorted(nl.signals())
    for t, packed in enumerate(pack_stimulus(stimuli)):
        batch.cycle(packed)
        for lane, sim in enumerate(scalars):
            values = sim.cycle(stimuli[lane][t])
            for sig in observe:
                assert batch.lane_value(sig, lane) == values[sig], (
                    t, lane, sig)
    for lane, sim in enumerate(scalars):
        assert batch.lane_state(lane) == sim.state
