"""Differential testing: BatchSimulator vs TwoPhaseSimulator.

Hypothesis drives randomly generated acyclic netlists (gates, both
latch phases, flip-flop feedback), per-lane stimulus with explicit X
states, and per-lane fault injections; every one of the 64 lanes must
match its own scalar simulation cycle-for-cycle -- all signal values,
X-propagation, and latch/flop state included.  The generator builds
cells in topological order (each cell reads only earlier signals), so
phase-acyclicity is guaranteed by construction; flip-flops are
sequential cuts and may feed back freely.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.rtl.batchsim import BatchSimulator, LaneOverride, pack_stimulus
from repro.rtl.logic import X, lnot
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.simulator import TwoPhaseSimulator

LANES = 64
CYCLES = 5

_VARIADIC = ["AND", "OR", "NAND", "NOR"]


def build_random_netlist(rng: random.Random) -> Netlist:
    """A random netlist whose cells only read earlier-created signals."""
    nl = Netlist("rand")
    pool = [nl.add_input(f"in{i}") for i in range(rng.randint(1, 4))]
    ff_qs = [f"ff{j}" for j in range(rng.randint(0, 3))]
    pool += ff_qs  # flop outputs are readable before they are driven
    for i in range(rng.randint(3, 22)):
        r = rng.random()
        if r < 0.15:
            q = nl.add_latch(
                rng.choice(pool),
                rng.choice([Phase.HIGH, Phase.LOW]),
                q=f"lat{i}",
                init=rng.choice([0, 1, X]),
            )
        elif r < 0.25:
            q = nl.MUX(*(rng.choice(pool) for _ in range(3)), out=f"g{i}")
        elif r < 0.35:
            q = nl.XOR(rng.choice(pool), rng.choice(pool), out=f"g{i}")
        elif r < 0.45:
            op = rng.choice(["NOT", "BUF", "CONST0", "CONST1"])
            ins = (rng.choice(pool),) if op in ("NOT", "BUF") else ()
            q = nl.add_gate(op, ins, out=f"g{i}")
        else:
            op = rng.choice(_VARIADIC)
            ins = [rng.choice(pool) for _ in range(rng.randint(0, 3))]
            q = nl.add_gate(op, ins, out=f"g{i}")
        pool.append(q)
    for q in ff_qs:
        nl.add_flop(rng.choice(pool), q=q, init=rng.choice([0, 1]))
    nl.validate()
    return nl


def random_stimulus(rng: random.Random, netlist: Netlist):
    """Per-lane, per-cycle input maps with ~15% explicit X drives."""
    def one_value():
        r = rng.random()
        return X if r < 0.15 else (1 if r < 0.575 else 0)

    return [
        [
            {name: one_value() for name in netlist.inputs}
            for _ in range(CYCLES)
        ]
        for _ in range(LANES)
    ]


def random_injections(rng: random.Random, netlist: Netlist):
    """At most one fault per lane: (net, kind, cycle, duration|None)."""
    sites = sorted(netlist.signals())
    injections = []
    for _ in range(LANES):
        if rng.random() < 0.5:
            injections.append(None)
            continue
        injections.append((
            rng.choice(sites),
            rng.choice(["stuck0", "stuck1", "flip"]),
            rng.randrange(CYCLES),
            rng.choice([None, 1, 2]),
        ))
    return injections


def _active(inj, time):
    net, kind, cycle, duration = inj
    return time >= cycle and (duration is None or time < cycle + duration)


def _batch_overrides(injections, time):
    masks = {}
    for lane, inj in enumerate(injections):
        if inj is None or not _active(inj, time):
            continue
        net, kind, _, _ = inj
        m = masks.setdefault(net, [0, 0, 0])
        m[{"stuck0": 0, "stuck1": 1, "flip": 2}[kind]] |= 1 << lane
    return {
        net: LaneOverride(set0=m[0], set1=m[1], flip=m[2])
        for net, m in masks.items()
    }


def _scalar_overrides(inj, time):
    if inj is None or not _active(inj, time):
        return {}
    net, kind, _, _ = inj
    return {net: {"stuck0": 0, "stuck1": 1, "flip": lnot}[kind]}


@settings(max_examples=220, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_every_lane_matches_scalar(seed):
    rng = random.Random(seed)
    nl = build_random_netlist(rng)
    stimuli = random_stimulus(rng, nl)
    injections = random_injections(rng, nl)

    batch = BatchSimulator(nl, lanes=LANES)
    scalars = [TwoPhaseSimulator(nl) for _ in range(LANES)]
    signals = sorted(nl.signals())

    for t, packed in enumerate(pack_stimulus(stimuli)):
        batch.set_overrides(_batch_overrides(injections, t))
        batch.cycle(packed)
        for lane, sim in enumerate(scalars):
            sim.overrides = _scalar_overrides(injections[lane], t)
            values = sim.cycle(stimuli[lane][t])
            for sig in signals:
                assert batch.lane_value(sig, lane) == values[sig], (
                    f"seed={seed} cycle={t} lane={lane} sig={sig} "
                    f"inj={injections[lane]}"
                )
            assert batch.lane_state(lane) == sim.state, (
                f"seed={seed} cycle={t} lane={lane} state diverged"
            )


def test_dual_ehb_directed():
    """The Fig. 5 dual-EHB netlist, 64 random-seed lanes, 100 cycles."""
    from repro.faults.targets import TARGETS

    target = TARGETS["dual_ehb"]()
    nl = target.netlist
    rngs = [random.Random(f"lane:{lane}") for lane in range(LANES)]
    stimuli = [
        [
            {name: rng.getrandbits(1) for name in target.free_inputs}
            for _ in range(100)
        ]
        for rng in rngs
    ]
    batch = BatchSimulator(nl, lanes=LANES)
    scalars = [TwoPhaseSimulator(nl) for _ in range(LANES)]
    observe = sorted(nl.signals())
    for t, packed in enumerate(pack_stimulus(stimuli)):
        batch.cycle(packed)
        for lane, sim in enumerate(scalars):
            values = sim.cycle(stimuli[lane][t])
            for sig in observe:
                assert batch.lane_value(sig, lane) == values[sig], (
                    t, lane, sig)
    for lane, sim in enumerate(scalars):
        assert batch.lane_state(lane) == sim.state
