"""Unit tests for the bit-parallel batch simulation kernel.

The deep cross-checking against the scalar simulator lives in
``test_batchsim_differential.py``; this file covers the packing
helpers, lane overrides, the compiled kernel's basic cadence, and the
combinational-cycle diagnostics shared by both simulators.
"""

import pytest

from repro.rtl.batchsim import (
    BatchSimulator,
    LaneOverride,
    broadcast,
    pack_stimulus,
    pack_values,
    unpack_lane,
)
from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.simulator import CombinationalCycleError, TwoPhaseSimulator
from repro.rtl.toposort import canonical_cycle, find_combinational_cycle


class TestPacking:
    def test_broadcast_known(self):
        assert broadcast(1, lanes=4) == (0b1111, 0b1111)
        assert broadcast(0, lanes=4) == (0, 0b1111)

    def test_broadcast_x(self):
        assert broadcast(X, lanes=4) == (0, 0)

    def test_pack_unpack_roundtrip(self):
        values = [0, 1, X, 1, X, 0, 0, 1]
        planes = pack_values(values)
        assert [unpack_lane(planes, i) for i in range(len(values))] == values

    def test_canonical_invariant(self):
        v, k = pack_values([0, 1, X, 1])
        assert v & ~k == 0

    def test_pack_stimulus_shapes(self):
        packed = pack_stimulus([
            [{"a": 1}, {"a": 0, "b": 1}],
            [{"a": X}, {"b": 0}],
        ])
        assert len(packed) == 2
        assert packed[0]["a"] == (0b01, 0b01)  # lane 1 is X
        # lane 0 never mentions "b" on cycle 0 -> absent entirely
        assert "b" not in packed[0]
        assert packed[1]["a"] == (0, 0b01)  # lane 1 leaves "a" at X
        assert packed[1]["b"] == (0b01, 0b11)  # lane0 b=1, lane1 b=0

    def test_pack_stimulus_ragged_traces(self):
        with pytest.raises(ValueError, match="differ in length"):
            pack_stimulus([[{"a": 1}], [{"a": 1}, {"a": 0}]])


class TestLaneOverride:
    def test_conflicting_masks(self):
        with pytest.raises(ValueError):
            LaneOverride(set0=0b10, set1=0b11)

    def test_stuck_lanes(self):
        ov = LaneOverride(set0=0b0001, set1=0b0010)
        v, k = ov.apply(*pack_values([1, 0, X, 1]))
        assert [unpack_lane((v, k), i) for i in range(4)] == [0, 1, X, 1]

    def test_flip_keeps_unknown_lanes_x(self):
        ov = LaneOverride(flip=0b111)
        v, k = ov.apply(*pack_values([1, 0, X]))
        assert [unpack_lane((v, k), i) for i in range(3)] == [0, 1, X]


def _toy_netlist() -> Netlist:
    nl = Netlist("toy")
    a = nl.add_input("a")
    b = nl.add_input("b")
    s = nl.XOR(a, b, out="s")
    nl.add_latch(s, Phase.HIGH, q="lh", init=0)
    nl.add_flop(nl.AND(a, "lh", out="c"), q="ff", init=0)
    nl.add_output(s)
    nl.validate()
    return nl


class TestBatchSimulator:
    def test_matches_scalar_on_toy(self):
        nl = _toy_netlist()
        batch = BatchSimulator(nl, lanes=4)
        scalars = [TwoPhaseSimulator(nl) for _ in range(4)]
        stimuli = [
            [{"a": 1, "b": 0}, {"a": 1, "b": 1}, {"a": 0, "b": 1}],
            [{"a": 0, "b": 0}, {"a": 1, "b": 0}, {"a": 1, "b": 0}],
            [{"a": X, "b": 1}, {"a": 1, "b": X}, {"a": 0, "b": 0}],
            [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": X, "b": X}],
        ]
        for t, packed in enumerate(pack_stimulus(stimuli)):
            batch.cycle(packed)
            for lane, sim in enumerate(scalars):
                values = sim.cycle(stimuli[lane][t])
                for sig in nl.signals():
                    assert batch.lane_value(sig, lane) == values[sig], (
                        t, lane, sig)
                assert batch.lane_state(lane) == sim.state

    def test_reset_keeps_plane_arrays_attached(self):
        batch = BatchSimulator(_toy_netlist(), lanes=2)
        v, k = batch.value_planes, batch.known_planes
        batch.cycle({"a": (0b11, 0b11), "b": (0b01, 0b11)})
        batch.reset()
        assert batch.value_planes is v and batch.known_planes is k
        assert batch.time == 0
        assert batch.lane_state(0) == {"lh": 0, "ff": 0}

    def test_unknown_override_net(self):
        batch = BatchSimulator(_toy_netlist(), lanes=2)
        with pytest.raises(ValueError, match="unknown net"):
            batch.set_overrides({"nope": LaneOverride(set1=1)})

    def test_missing_inputs_are_x(self):
        batch = BatchSimulator(_toy_netlist(), lanes=2)
        batch.cycle({})
        assert batch.lane_value("s", 0) is X
        assert batch.lane_value("s", 1) is X


def _ring_netlist() -> Netlist:
    nl = Netlist("ring")
    nl.NOT("q2", out="q")
    nl.BUF("q", out="q2")
    nl.validate()
    return nl


class TestCombinationalCycleDiagnostics:
    """Satellite: both simulators report the same full cycle path."""

    def test_canonical_rotation(self):
        assert canonical_cycle(["c", "a", "b"]) == ["a", "b", "c"]

    def test_find_cycle(self):
        nl = _ring_netlist()
        for phase in (Phase.HIGH, Phase.LOW):
            assert find_combinational_cycle(nl, phase) == ["q", "q2"]

    def _errors(self):
        """The error each simulator raises on the ring oscillator."""
        nl = _ring_netlist()
        with pytest.raises(CombinationalCycleError) as scalar:
            TwoPhaseSimulator(nl, strict_x=True).cycle({})
        with pytest.raises(CombinationalCycleError) as batch:
            BatchSimulator(nl, lanes=8)
        return scalar.value, batch.value

    def test_both_simulators_report_full_path(self):
        scalar, batch = self._errors()
        assert str(scalar) == "combinational cycle: q -> q2 -> q"
        assert str(batch) == str(scalar)
        assert scalar.cycle == batch.cycle == ["q", "q2"]

    def test_latch_through_path_is_not_a_cycle(self):
        # A loop broken by an opaque latch is fine in one phase: only
        # the phase where the latch is transparent closes the cycle.
        nl = Netlist("halfring")
        nl.add_latch("q", Phase.HIGH, q="lq", init=0)
        nl.NOT("lq", out="q")
        nl.validate()
        assert find_combinational_cycle(nl, Phase.LOW) is None
        cyc = find_combinational_cycle(nl, Phase.HIGH)
        assert cyc is not None and set(cyc) == {"lq", "q"}
        with pytest.raises(CombinationalCycleError):
            BatchSimulator(nl)
