"""Tests for the ternary (0/1/X) logic kernel."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.rtl.logic import X, is_known, land, lmux, lnot, lor, lxor

VALUES = [0, 1, X]


class TestBasics:
    def test_x_is_singleton(self):
        assert X is type(X)()

    def test_x_has_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(X)

    def test_is_known(self):
        assert is_known(0) and is_known(1)
        assert not is_known(X)

    def test_repr(self):
        assert repr(X) == "X"


class TestAnd:
    def test_zero_dominates(self):
        assert land(0, X) == 0
        assert land(X, 0, 1) == 0

    def test_all_ones(self):
        assert land(1, 1, 1) == 1

    def test_unknown_otherwise(self):
        assert land(1, X) is X

    def test_empty_is_one(self):
        assert land() == 1

    def test_truthy_normalisation(self):
        assert land(True, 2) == 1


class TestOr:
    def test_one_dominates(self):
        assert lor(1, X) == 1
        assert lor(X, 1, 0) == 1

    def test_all_zero(self):
        assert lor(0, 0) == 0

    def test_unknown_otherwise(self):
        assert lor(0, X) is X

    def test_empty_is_zero(self):
        assert lor() == 0


class TestNotXorMux:
    def test_not(self):
        assert lnot(0) == 1
        assert lnot(1) == 0
        assert lnot(X) is X

    def test_xor_table(self):
        assert lxor(0, 0) == 0
        assert lxor(0, 1) == 1
        assert lxor(1, 1) == 0
        assert lxor(X, 1) is X

    def test_mux_known_select(self):
        assert lmux(1, 1, 0) == 1
        assert lmux(0, 1, 0) == 0

    def test_mux_x_select_agreeing_data(self):
        assert lmux(X, 1, 1) == 1
        assert lmux(X, 0, 0) == 0

    def test_mux_x_select_disagreeing_data(self):
        assert lmux(X, 1, 0) is X


def _leq(a, b):
    """Information order: X below 0 and 1."""
    return a is X or a == b


@given(
    st.lists(st.sampled_from(VALUES), min_size=1, max_size=4),
    st.lists(st.sampled_from(VALUES), min_size=1, max_size=4),
)
def test_and_or_monotone(us, vs):
    """Refining an input (X -> 0/1) never changes a known output."""
    n = min(len(us), len(vs))
    us, vs = us[:n], vs[:n]
    refined = [v if u is X else u for u, v in zip(us, vs)]
    assert _leq(land(*us), land(*refined))
    assert _leq(lor(*us), lor(*refined))


@given(st.sampled_from(VALUES), st.sampled_from(VALUES), st.sampled_from(VALUES))
def test_mux_monotone(sel, a, b):
    for known_sel in (0, 1):
        if sel is X:
            assert _leq(lmux(sel, a, b), lmux(known_sel, a, b))


@given(st.sampled_from(VALUES))
def test_double_negation(v):
    r = lnot(lnot(v))
    assert (r is X) if v is X else (r == v)
