"""Tests for the area pipeline: constants, pruning, literal counts."""

import pytest

from repro.rtl.area import (
    constant_propagate,
    count_area,
    prune_dead,
    sequential_constants,
    synthesize_area,
)
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.simulator import TwoPhaseSimulator


def _build_sample():
    nl = Netlist("sample")
    a, b = nl.add_input("a"), nl.add_input("b")
    q = nl.AND(a, nl.NOT(b), out="q")
    nl.add_output(q)
    return nl


class TestCountArea:
    def test_literals_by_fanin(self):
        nl = Netlist()
        a, b, c = (nl.add_input(n) for n in "abc")
        nl.AND(a, b, c)
        nl.OR(a, b)
        assert count_area(nl).literals == 5

    def test_inverters_and_buffers_free(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.NOT(a)
        nl.BUF(a)
        assert count_area(nl).literals == 0

    def test_xor_mux_cost(self):
        nl = Netlist()
        a, b, s = (nl.add_input(n) for n in "abs")
        nl.XOR(a, b)
        nl.MUX(s, a, b)
        assert count_area(nl).literals == 8

    def test_state_counts(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_latch(a, Phase.HIGH)
        nl.add_flop(a)
        report = count_area(nl)
        assert (report.latches, report.flops) == (1, 1)

    def test_str(self):
        assert "lit" in str(count_area(Netlist()))


class TestConstantPropagate:
    def test_and_with_zero_collapses(self):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        nl.AND(a, b, out="q")
        nl.add_output("q")
        out = constant_propagate(nl, {"a": 0})
        assert count_area(out).literals == 0

    def test_and_with_one_drops_literal(self):
        nl = Netlist()
        a, b, c = (nl.add_input(n) for n in "abc")
        nl.AND(a, b, c, out="q")
        nl.add_output("q")
        out = constant_propagate(nl, {"a": 1})
        assert count_area(out).literals == 2

    def test_nand_nor_xor_mux_rules(self):
        nl = Netlist()
        a, b, s = (nl.add_input(n) for n in "abs")
        nl.NAND(a, b, out="n1")
        nl.NOR(a, b, out="n2")
        nl.XOR(a, b, out="x")
        nl.MUX(s, a, b, out="m")
        for sig in ("n1", "n2", "x", "m"):
            nl.add_output(sig)
        out = constant_propagate(nl, {"a": 0, "s": 1})
        sim = TwoPhaseSimulator(out)
        vals = sim.cycle({"b": 1})
        # NAND(0,1)=1, NOR(0,1)=0, XOR(0,1)=1, MUX(1,a=0,b)=0
        assert vals[out.outputs[0]] == 1
        assert vals[out.outputs[1]] == 0
        assert vals[out.outputs[2]] == 1
        assert vals[out.outputs[3]] == 0

    def test_semantics_preserved_on_free_inputs(self):
        nl = _build_sample()
        out = constant_propagate(nl, {})
        sim_in = TwoPhaseSimulator(nl)
        sim_out = TwoPhaseSimulator(out)
        for a in (0, 1):
            for b in (0, 1):
                inputs = {"a": a, "b": b}
                assert sim_in.cycle(inputs)["q"] == sim_out.cycle(inputs)["q"]

    def test_stuck_flop_removed(self):
        nl = Netlist()
        zero = nl.const0()
        q = nl.add_flop(zero, init=0)
        a = nl.add_input("a")
        nl.OR(a, q, out="out")
        nl.add_output("out")
        out = constant_propagate(nl)
        assert not out.flops

    def test_flop_with_const_but_different_init_kept(self):
        nl = Netlist()
        one = nl.const1()
        q = nl.add_flop(one, init=0)  # becomes 1 after first cycle
        nl.add_output(q)
        out = constant_propagate(nl)
        assert len(out.flops) == 1


class TestSequentialConstants:
    def test_cyclic_stuck_at_zero_pair(self):
        """Two flops feeding each other through OR logic stay 0."""
        nl = Netlist()
        a = nl.add_input("a")
        q1 = nl.add_flop("d1", q="q1", init=0)
        q2 = nl.add_flop("d2", q="q2", init=0)
        zero = nl.const0()
        nl.OR(nl.AND(q2, a), zero, out="d1")
        nl.BUF(q1, out="d2")
        known = sequential_constants(nl)
        assert known.get("q1") == 0 and known.get("q2") == 0

    def test_escaping_flop_not_constant(self):
        nl = Netlist()
        a = nl.add_input("a")
        nl.add_flop("d", q="q", init=0)
        nl.OR("q", a, out="d")
        known = sequential_constants(nl)
        assert "q" not in known

    def test_constant_propagate_uses_sequential_analysis(self):
        nl = Netlist()
        a = nl.add_input("a")
        q1 = nl.add_flop("d1", q="q1", init=0)
        q2 = nl.add_flop("d2", q="q2", init=0)
        nl.AND(q2, a, out="d1")
        nl.BUF(q1, out="d2")
        nl.OR(a, q1, out="out")
        nl.add_output("out")
        out = constant_propagate(nl)
        assert not out.flops


class TestPruneDead:
    def test_unreferenced_logic_removed(self):
        nl = _build_sample()
        nl.OR("a", "b")  # dangling gate
        out = prune_dead(nl)
        assert len(out.gates) == 2  # NOT + AND only

    def test_keeps_transitive_state(self):
        nl = Netlist()
        a = nl.add_input("a")
        q = nl.add_flop(a, init=0)
        nl.NOT(q, out="out")
        nl.add_output("out")
        out = prune_dead(nl)
        assert len(out.flops) == 1

    def test_explicit_keep_roots(self):
        nl = _build_sample()
        extra = nl.OR("a", "b")
        out = prune_dead(nl, keep=[extra])
        assert extra in out.gates and "q" not in out.gates


class TestSynthesizeArea:
    def test_pipeline_composition(self):
        nl = Netlist()
        a, b = nl.add_input("a"), nl.add_input("b")
        zero = nl.const0()
        dead = nl.AND(a, zero)
        nl.OR(dead, b, out="q")
        nl.add_output("q")
        report = synthesize_area(nl)
        assert report.literals == 0  # q == b, a buffer
