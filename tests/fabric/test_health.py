"""Health-machine tests on a fake clock: zero sleeps, every deadline."""

import pytest

from repro.fabric.health import WorkerHealth, WorkerState, state_census
from repro.obs.metrics import MetricsRegistry
from repro.resilience.clock import FakeClock


def machine(metrics=None, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("degraded_after", 2.0)
    kwargs.setdefault("dead_after", 6.0)
    return WorkerHealth("w0", clock=clock, metrics=metrics, **kwargs), clock


class TestLadder:
    def test_starts_connecting(self):
        health, _ = machine()
        assert health.state == WorkerState.CONNECTING

    def test_connect_makes_healthy(self):
        health, _ = machine()
        health.on_connected()
        assert health.state == WorkerState.HEALTHY

    def test_silence_degrades_then_kills(self):
        health, clock = machine()
        health.on_connected()
        clock.advance(1.9)
        assert health.check() == WorkerState.HEALTHY
        clock.advance(0.2)  # 2.1s silent
        assert health.check() == WorkerState.DEGRADED
        clock.advance(4.0)  # 6.1s silent
        assert health.check() == WorkerState.DEAD

    def test_one_long_gap_walks_both_steps(self):
        health, clock = machine()
        health.on_connected()
        clock.advance(100.0)
        assert health.check() == WorkerState.DEAD

    def test_frame_recovers_degraded(self):
        health, clock = machine()
        health.on_connected()
        clock.advance(3.0)
        assert health.check() == WorkerState.DEGRADED
        health.on_frame()
        assert health.state == WorkerState.HEALTHY
        # and the deadline is re-armed from the frame
        clock.advance(1.0)
        assert health.check() == WorkerState.HEALTHY

    def test_deadlines_idle_while_connecting_or_dead(self):
        health, clock = machine()
        clock.advance(1000.0)
        assert health.check() == WorkerState.CONNECTING
        health.on_connected()
        health.on_disconnect()
        clock.advance(1000.0)
        assert health.check() == WorkerState.DEAD

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            WorkerHealth("w", degraded_after=5.0, dead_after=2.0)


class TestReconnectBackoff:
    def test_backoff_schedule_is_capped_exponential(self):
        health, clock = machine(backoff_base=0.25, backoff_cap=2.0)
        waits = []
        for _ in range(5):
            health.on_reconnecting()
            before = clock()
            health.on_disconnect()
            waits.append(health.reconnect_at - before)
        assert waits == [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_may_reconnect_waits_for_backoff(self):
        health, clock = machine(backoff_base=1.0, backoff_cap=8.0)
        health.on_disconnect()
        assert not health.may_reconnect()
        clock.advance(0.99)
        assert not health.may_reconnect()
        clock.advance(0.02)
        assert health.may_reconnect()

    def test_successful_connect_resets_the_schedule(self):
        health, clock = machine(backoff_base=0.25, backoff_cap=8.0)
        for _ in range(4):
            health.on_disconnect()
        health.on_connected()
        before = clock()
        health.on_disconnect()
        assert health.reconnect_at - before == 0.25  # round 1 again

    def test_max_rounds_pins_terminal(self):
        health, clock = machine(max_rounds=2)
        health.on_disconnect()
        health.on_disconnect()
        assert not health.terminal
        health.on_disconnect()
        assert health.terminal
        clock.advance(1e9)
        assert not health.may_reconnect()

    def test_rejection_is_terminal_immediately(self):
        health, clock = machine()
        health.on_disconnect(terminal=True)
        assert health.terminal
        clock.advance(1e9)
        assert not health.may_reconnect()


class TestMetrics:
    def test_transitions_are_counted_by_edge(self):
        metrics = MetricsRegistry()
        health, clock = machine(metrics=metrics)
        health.on_connected()
        clock.advance(3.0)
        health.check()  # -> DEGRADED
        health.on_frame()  # -> HEALTHY
        clock.advance(100.0)
        health.check()  # -> DEAD

        def edges():
            return {
                (dict(m.labels)["from"], dict(m.labels)["to"]): m.value
                for m in metrics.series("fabric_worker_transitions_total")
            }

        assert edges() == {
            ("CONNECTING", "HEALTHY"): 1,
            ("HEALTHY", "DEGRADED"): 1,
            ("DEGRADED", "HEALTHY"): 1,
            ("HEALTHY", "DEAD"): 1,
        }

    def test_state_gauge_tracks_current_state(self):
        metrics = MetricsRegistry()
        health, _ = machine(metrics=metrics)
        health.on_connected()
        gauge = metrics.gauge("fabric_worker_state", worker="w0")
        assert gauge.last == int(WorkerState.HEALTHY)
        health.on_disconnect()
        assert gauge.last == int(WorkerState.DEAD)

    def test_state_census_gauges(self):
        metrics = MetricsRegistry()
        a, _ = machine(metrics=metrics)
        b, _ = machine(metrics=metrics)
        a.on_connected()
        state_census([a, b], metrics)
        by_state = {
            dict(m.labels)["state"]: m.last
            for m in metrics.series("fabric_workers")
        }
        assert by_state == {
            "CONNECTING": 1, "HEALTHY": 1, "DEGRADED": 0, "DEAD": 0,
        }
