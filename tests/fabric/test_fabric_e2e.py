"""Fabric end-to-end and chaos tests.

Each chaos scenario -- SIGKILL mid-shard, a torn frame, a SIGSTOPped
(heartbeat-timeout) worker -- must end with the lost chunks requeued,
the health transition counted, and the merged report byte-identical to
the single-process run.  Workers are real OS processes (forked, so
they inherit test-registered job kinds, and killable with real
signals); coordinators run in the test process.
"""

import asyncio
import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricMismatch,
    JobKind,
    register_job,
    serve,
)
from repro.fabric.frames import encode_frame, read_frame
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.obs.metrics import MetricsRegistry
from repro.resilience import ShardFailure

CFG = CampaignConfig(cycles=120, seed=2007)

#: Tight deadlines so chaos is detected in tens of milliseconds.
FAST = dict(
    heartbeat_interval=0.05,
    degraded_after=0.4,
    dead_after=1.0,
    backoff_base=0.05,
    backoff_cap=0.2,
    connect_timeout=2.0,
    max_rounds=8,
)


# -- worker process targets (module-level: forked children run these) --
def _serve_worker(queue):
    serve("127.0.0.1", 0, on_ready=lambda host, port: queue.put(port))


def _serve_skewed_worker(queue):
    # Simulated version skew: this worker's code fingerprints the
    # "unit" job differently from the coordinator's.
    register_job(JobKind(
        name="unit",
        build=lambda params: (lambda payload: payload),
        fingerprint=lambda params: {"kind": "unit", "rev": "skewed"},
    ))
    _serve_worker(queue)


def _serve_torn_frame_worker(queue):
    """A worker that handshakes cleanly, then tears the connection
    mid-length-prefix on its first lease."""

    async def handle(reader, writer):
        async def send(message):
            writer.write(encode_frame(message))
            await writer.drain()

        await read_frame(reader)  # hello
        await send({"type": "welcome", "version": 1, "worker": "evil"})
        init = await read_frame(reader)
        await send({"type": "bound", "fingerprint": init["fingerprint"]})
        await read_frame(reader)  # first lease (or ping)
        writer.write(b"\x00\x00\x01")  # 3 of 4 prefix bytes, then gone
        await writer.drain()
        writer.close()
        os._exit(0)

    async def main():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        queue.put(server.sockets[0].getsockname()[1])
        async with server:
            await server.serve_forever()

    asyncio.run(main())


def start_worker(target=_serve_worker):
    queue = mp.Queue()
    process = mp.Process(target=target, args=(queue,), daemon=True)
    process.start()
    port = queue.get(timeout=30)
    return process, port


def stop(*processes):
    for process in processes:
        if process.is_alive():
            try:
                os.kill(process.pid, signal.SIGCONT)  # in case it's stopped
            except ProcessLookupError:
                pass
            process.terminate()
        process.join(timeout=10)


def register_unit_job(fail_payloads=()):
    """The trivial coordinator-side 'unit' job used by synthetic tests."""
    fail = set(fail_payloads)

    def build(params):
        def run(payload):
            if payload in fail:
                raise RuntimeError(f"unit {payload!r} always fails")
            return payload

        return run

    register_job(JobKind(
        name="unit",
        build=build,
        fingerprint=lambda params: {"kind": "unit", "rev": "r1"},
    ))


def transitions_to(metrics, state):
    return sum(
        m.value
        for m in metrics.series("fabric_worker_transitions_total")
        if dict(m.labels)["to"] == state
    )


def crash_requeues(metrics, reason="crash"):
    return sum(
        m.value
        for m in metrics.series("campaign_shard_retries_total")
        if dict(m.labels)["reason"] == reason
    )


@pytest.fixture(scope="module")
def golden_json():
    return run_campaign("dual_ehb", CFG, lanes=4).to_json()


class TestByteIdentity:
    def test_two_workers_match_jobs1(self, golden_json):
        w1, p1 = start_worker()
        w2, p2 = start_worker()
        try:
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[f"127.0.0.1:{p1}", f"127.0.0.1:{p2}"],
                fabric=FabricConfig(**FAST),
            )
            assert report.to_json() == golden_json
        finally:
            stop(w1, w2)

    def test_fabric_composes_with_checkpoint(self, golden_json, tmp_path):
        w1, p1 = start_worker()
        try:
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[f"127.0.0.1:{p1}"],
                fabric=FabricConfig(**FAST),
                checkpoint=str(tmp_path / "ck"),
            )
            assert report.to_json() == golden_json
            # resume from the completed store: no fabric traffic needed
            resumed = run_campaign(
                "dual_ehb", CFG, lanes=4, checkpoint=str(tmp_path / "ck"),
            )
            assert resumed.to_json() == golden_json
        finally:
            stop(w1)


class TestChaos:
    def test_sigkill_mid_shard(self, golden_json):
        w1, p1 = start_worker()
        w2, p2 = start_worker()
        metrics = MetricsRegistry()
        killed = []

        def kill_on_first_chunk(done, total):
            # By the first completed chunk both workers still hold
            # most of their fixed 6-unit leases; killing one now
            # guarantees outstanding work is lost and requeued.
            if not killed:
                killed.append(w2.pid)
                os.kill(w2.pid, signal.SIGKILL)

        try:
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[f"127.0.0.1:{p1}", f"127.0.0.1:{p2}"],
                fabric=FabricConfig(fixed_lease=6, **FAST),
                metrics=metrics,
                progress=kill_on_first_chunk,
            )
        finally:
            stop(w1, w2)
        assert killed, "the chaos hook never fired"
        assert report.to_json() == golden_json
        assert crash_requeues(metrics) >= 1
        assert transitions_to(metrics, "DEAD") >= 1

    def test_torn_frame_mid_lease(self, golden_json):
        evil, evil_port = start_worker(_serve_torn_frame_worker)
        good, good_port = start_worker()
        metrics = MetricsRegistry()
        try:
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[
                    f"127.0.0.1:{evil_port}", f"127.0.0.1:{good_port}",
                ],
                fabric=FabricConfig(fixed_lease=6, **FAST),
                metrics=metrics,
            )
        finally:
            stop(evil, good)
        assert report.to_json() == golden_json
        assert crash_requeues(metrics) >= 1
        assert transitions_to(metrics, "DEAD") >= 1

    def test_sigstop_heartbeat_timeout(self, golden_json):
        w1, p1 = start_worker()
        w2, p2 = start_worker()
        metrics = MetricsRegistry()
        stopped = []

        def stop_on_first_chunk(done, total):
            if not stopped:
                stopped.append(w2.pid)
                os.kill(w2.pid, signal.SIGSTOP)

        try:
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[f"127.0.0.1:{p1}", f"127.0.0.1:{p2}"],
                fabric=FabricConfig(fixed_lease=6, **FAST),
                metrics=metrics,
                progress=stop_on_first_chunk,
            )
        finally:
            stop(w1, w2)
        assert stopped, "the chaos hook never fired"
        assert report.to_json() == golden_json
        # The hung worker walked HEALTHY -> DEGRADED -> DEAD on missed
        # heartbeats and its chunks were requeued to the live worker.
        assert transitions_to(metrics, "DEGRADED") >= 1
        assert transitions_to(metrics, "DEAD") >= 1
        assert crash_requeues(metrics) >= 1

    def test_coordinator_killed_and_resumed(self, golden_json, tmp_path):
        """A dead coordinator's replacement re-adopts surviving workers."""
        w1, p1 = start_worker()
        checkpoint = str(tmp_path / "ck")

        class CoordinatorDown(BaseException):
            pass

        def die_partway(done, total):
            if done >= total // 3:
                raise CoordinatorDown

        try:
            with pytest.raises(CoordinatorDown):
                run_campaign(
                    "dual_ehb", CFG, lanes=4,
                    workers=[f"127.0.0.1:{p1}"],
                    fabric=FabricConfig(**FAST),
                    checkpoint=checkpoint,
                    progress=die_partway,
                )
            assert w1.is_alive(), "the worker must survive the coordinator"
            # The replacement coordinator: same checkpoint, same worker.
            report = run_campaign(
                "dual_ehb", CFG, lanes=4,
                workers=[f"127.0.0.1:{p1}"],
                fabric=FabricConfig(**FAST),
                checkpoint=checkpoint,
            )
        finally:
            stop(w1)
        assert report.to_json() == golden_json


class TestHandshake:
    def test_fingerprint_mismatch_rejects_worker(self):
        register_unit_job()
        skewed, port = start_worker(_serve_skewed_worker)
        try:
            coordinator = FabricCoordinator(
                "unit", {}, [(0, "a")], [("127.0.0.1", port)],
                config=FabricConfig(**FAST),
            )
            with pytest.raises(FabricMismatch, match="rejected the handshake"):
                coordinator.run()
        finally:
            stop(skewed)

    def test_no_worker_reachable_is_fabric_error(self):
        register_unit_job()
        coordinator = FabricCoordinator(
            "unit", {}, [(0, "a")],
            [("127.0.0.1", 1)],  # nothing listens on port 1
            config=FabricConfig(max_rounds=1, **{
                k: v for k, v in FAST.items() if k != "max_rounds"
            }),
        )
        with pytest.raises(FabricError, match="lost every worker"):
            coordinator.run()

    def test_failing_unit_exhausts_retries(self):
        register_unit_job(fail_payloads=("bad",))
        worker, port = start_worker()
        try:
            coordinator = FabricCoordinator(
                "unit", {}, [(0, "ok"), (1, "bad")],
                [("127.0.0.1", port)],
                config=FabricConfig(max_retries=1, **FAST),
            )
            with pytest.raises(ShardFailure, match="always fails"):
                coordinator.run()
        finally:
            stop(worker)

    def test_worker_serves_one_coordinator_at_a_time(self):
        register_unit_job()
        from repro.fabric import WorkerServer

        async def main():
            server = WorkerServer("127.0.0.1", 0)
            host, port = await server.start()
            # First connection occupies the worker mid-handshake.
            r1, w1 = await asyncio.open_connection(host, port)
            w1.write(encode_frame({"type": "hello", "version": 1}))
            await w1.drain()
            assert (await read_frame(r1))["type"] == "welcome"
            # Second connection is rejected as busy.
            r2, w2 = await asyncio.open_connection(host, port)
            reject = await asyncio.wait_for(read_frame(r2), 5)
            assert reject == {"type": "reject", "reason": "worker busy"}
            w1.close()
            w2.close()
            server.stop()

        asyncio.run(main())
