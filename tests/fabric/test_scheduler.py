"""Scheduler tests: adaptive leases, deterministic stealing, dedup."""

import pytest

from repro.fabric.scheduler import WorkStealingScheduler


def sched(n=20, **kwargs):
    return WorkStealingScheduler([(i, f"p{i}") for i in range(n)], **kwargs)


class TestLeasing:
    def test_grants_are_index_ordered_runs(self):
        s = sched(10, fixed_lease=4)
        assert [i for i, _ in s.grant("a")] == [0, 1, 2, 3]
        assert [i for i, _ in s.grant("b")] == [4, 5, 6, 7]
        assert [i for i, _ in s.grant("a")] == [8, 9]
        assert s.grant("b") == []

    def test_first_lease_is_minimal_for_calibration(self):
        s = sched(100, min_lease=2, max_lease=64)
        assert s.lease_size() == 2

    def test_ewma_grows_leases_for_fast_units(self):
        s = sched(1000, lease_target_s=1.0, min_lease=1, max_lease=64)
        for _ in range(5):
            s.observe(0.05)  # 50ms/unit -> ~20 units per second
        assert s.lease_size() == 20

    def test_ewma_shrinks_leases_for_slow_units(self):
        s = sched(1000, lease_target_s=1.0, max_lease=64)
        s.observe(0.05)
        for _ in range(20):
            s.observe(5.0)  # units got slow
        assert s.lease_size() == 1

    def test_lease_respects_bounds(self):
        s = sched(1000, lease_target_s=1.0, min_lease=2, max_lease=8)
        s.observe(1e-9)
        assert s.lease_size() == 8
        s2 = sched(1000, lease_target_s=1.0, min_lease=2, max_lease=8)
        s2.observe(100.0)
        assert s2.lease_size() == 2

    def test_injections_per_unit_scales_the_estimate(self):
        # 64 injections per unit at 1ms each -> 64ms per unit.
        s = sched(1000, injections_per_unit=64, lease_target_s=0.64,
                  max_lease=100)
        s.observe(0.064)
        assert s.lease_size() == 10

    def test_fixed_lease_ignores_observations(self):
        s = sched(100, fixed_lease=7)
        s.observe(100.0)
        assert s.lease_size() == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            sched(fixed_lease=0)
        with pytest.raises(ValueError):
            sched(injections_per_unit=0)
        with pytest.raises(ValueError):
            sched(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            WorkStealingScheduler([(0, "a"), (0, "b")])


class TestStealing:
    def test_steals_back_half_from_biggest_victim(self):
        s = sched(12, fixed_lease=6)
        s.grant("a")  # a: 0..5
        s.grant("b")  # b: 6..11
        s.complete(6)
        s.complete(7)  # b: 8..11 (4 left); a: 6 left
        victim, stolen = s.steal("c")
        assert victim == "a"
        assert [i for i, _ in stolen] == [3, 4, 5]  # back half by index
        assert s.outstanding["a"] == [0, 1, 2]

    def test_tie_breaks_lexicographically(self):
        s = sched(8, fixed_lease=4)
        s.grant("zeta")  # 0..3
        s.grant("alpha")  # 4..7
        victim, stolen = s.steal("thief")
        assert victim == "alpha"
        assert [i for i, _ in stolen] == [6, 7]

    def test_never_steals_a_lone_unit(self):
        s = sched(1, fixed_lease=1)
        s.grant("a")
        assert s.steal("b") == (None, [])

    def test_thief_is_never_its_own_victim(self):
        s = sched(4, fixed_lease=4)
        s.grant("a")
        assert s.steal("a") == (None, [])

    def test_steal_counts_in_stats(self):
        s = sched(4, fixed_lease=4)
        s.grant("a")
        s.steal("b")
        assert s.stats()["steals"] == 1


class TestCompletionAndLoss:
    def test_duplicate_results_first_wins(self):
        s = sched(4, fixed_lease=4)
        s.grant("a")
        assert s.complete(0) is True
        assert s.complete(0) is False

    def test_requeue_returns_only_incomplete_units(self):
        s = sched(6, fixed_lease=6)
        s.grant("a")
        s.complete(0)
        s.complete(1)
        lost = s.requeue_worker("a")
        assert lost == [2, 3, 4, 5]
        assert s.pending == [2, 3, 4, 5]
        assert "a" not in s.outstanding

    def test_requeued_units_regrant_in_index_order(self):
        s = sched(6, fixed_lease=3)
        s.grant("a")  # 0,1,2
        s.grant("b")  # 3,4,5
        s.requeue_worker("a")
        assert [i for i, _ in s.grant("b")] == [0, 1, 2]

    def test_done_only_when_every_unit_completed(self):
        s = sched(3, fixed_lease=3)
        s.grant("a")
        for i in range(3):
            assert not s.done
            s.complete(i)
        assert s.done

    def test_revoke_from_drops_without_requeue(self):
        s = sched(4, fixed_lease=4)
        s.grant("a")
        s.revoke_from("a", [2, 3])
        assert s.outstanding["a"] == [0, 1]
        assert s.pending == []


class TestScheduleInvariance:
    """Any schedule yields the same completed set -- the determinism core."""

    def test_chaotic_schedule_completes_every_unit_exactly_once(self):
        s = sched(50, fixed_lease=5)
        s.grant("a")
        s.grant("b")
        s.grant("c")
        s.requeue_worker("b")  # b dies
        s.steal("d")  # d steals from someone
        results = []
        # complete everything outstanding, plus duplicates
        for worker in list(s.outstanding):
            for index in list(s.outstanding[worker]):
                if s.complete(index):
                    results.append(index)
                s.complete(index)  # duplicate delivery
        while not s.done:
            for index, _ in s.grant("e") or s.steal("e")[1]:
                if s.complete(index):
                    results.append(index)
        assert sorted(results) == list(range(50))
