"""Wire-format tests: framing round-trips, torn frames, bounds."""

import asyncio
import struct

import pytest

from repro.fabric.frames import FrameError, MAX_FRAME, encode_frame, read_frame


def read_from(data: bytes):
    """Run read_frame against an in-memory stream fed ``data`` then EOF."""
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(main())


class TestRoundTrip:
    def test_encode_then_read(self):
        message = {"type": "result", "index": 3, "payload": [1, "two", None]}
        assert read_from(encode_frame(message)) == message

    def test_canonical_bytes(self):
        # Same message, any construction order -> same bytes.
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_two_frames_in_sequence(self):
        data = encode_frame({"n": 1}) + encode_frame({"n": 2})

        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(main())
        assert (first, second, third) == ({"n": 1}, {"n": 2}, None)

    def test_clean_eof_is_none(self):
        assert read_from(b"") is None


class TestTornFrames:
    def test_torn_prefix(self):
        with pytest.raises(FrameError, match="mid-prefix"):
            read_from(b"\x00\x00")

    def test_torn_body(self):
        whole = encode_frame({"type": "lease", "units": [[0, "x"]]})
        with pytest.raises(FrameError, match="mid-frame"):
            read_from(whole[:-3])

    def test_oversize_prefix(self):
        prefix = struct.pack("!I", MAX_FRAME + 1)
        with pytest.raises(FrameError, match="MAX_FRAME"):
            read_from(prefix)

    def test_body_not_json(self):
        body = b"not json at all"
        with pytest.raises(FrameError, match="not valid JSON"):
            read_from(struct.pack("!I", len(body)) + body)

    def test_body_not_object(self):
        body = b"[1,2,3]"
        with pytest.raises(FrameError, match="JSON object"):
            read_from(struct.pack("!I", len(body)) + body)

    def test_encode_rejects_oversize(self):
        with pytest.raises(FrameError, match="exceeds MAX_FRAME"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})
