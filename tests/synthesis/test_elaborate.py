"""Tests for the elasticization flow (behavioural and gate backends)."""

import random

import pytest

from repro.core.performance import fixed_latency
from repro.elastic.behavioral import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    Join,
    PassiveAntiToken,
    Pipe,
    Sink,
    Source,
    VariableLatency,
)
from repro.elastic.ee import MuxEE, ThresholdEE
from repro.rtl.area import constant_propagate, count_area, prune_dead
from repro.synthesis.elaborate import (
    control_layer_area,
    to_behavioral,
    to_gates,
)
from repro.synthesis.spec import SystemSpec
from repro.verif.ctl import AP
from repro.verif.properties import verify_netlist


def diamond_spec(early=False, passive=None, vl=False):
    spec = SystemSpec("dia")
    spec.add_source("P")
    spec.add_sink("C", p_stop=0.2)
    spec.add_block("FK", n_inputs=1, n_outputs=2)
    ee = ThresholdEE(1, 2) if early else None
    spec.add_block("JN", n_inputs=2, n_outputs=1, ee=ee,
                   gate_ee=(lambda nl, vps, datas: nl.OR(*vps)) if early else None)
    spec.add_register("RA")
    if vl:
        spec.add_block("VLU", latency=fixed_latency(2))
    spec.add_register("RB")
    spec.connect(spec.source("P"), spec.block_in("FK"))
    spec.connect(spec.block_out("FK", 0), spec.register_in("RA"))
    if vl:
        spec.connect(spec.block_out("FK", 1), spec.block_in("VLU"))
        spec.connect(spec.block_out("VLU"), spec.register_in("RB"))
    else:
        spec.connect(spec.block_out("FK", 1), spec.register_in("RB"))
    spec.connect(
        spec.register_out("RA"), spec.block_in("JN", 0),
        name="a", passive=(passive == "a"),
    )
    spec.connect(spec.register_out("RB"), spec.block_in("JN", 1), name="b")
    spec.connect(spec.block_out("JN"), spec.sink("C"), name="z")
    spec.validate()
    return spec


class TestBehavioralBackend:
    def test_controller_kinds(self):
        net = to_behavioral(diamond_spec(early=True, vl=True))
        kinds = {type(c) for c in net.controllers}
        assert {Source, Sink, EagerFork, EarlyJoin, ElasticBuffer,
                VariableLatency} <= kinds

    def test_lazy_join_used_without_ee(self):
        net = to_behavioral(diamond_spec(early=False))
        assert any(isinstance(c, Join) for c in net.controllers)
        assert not any(isinstance(c, EarlyJoin) for c in net.controllers)

    def test_passive_connection_splits_channel(self):
        net = to_behavioral(diamond_spec(passive="a"))
        assert "a.up" in net.channels and "a" in net.channels
        assert any(isinstance(c, PassiveAntiToken) for c in net.controllers)

    def test_simulation_runs_protocol_clean(self):
        net = to_behavioral(diamond_spec(early=True), seed=3)
        net.run(300)  # monitors raise on any protocol violation
        ths = [c.stats.throughput for c in net.channels.values()]
        assert max(ths) - min(ths) < 0.05

    def test_single_in_single_out_block_is_pipe(self):
        spec = SystemSpec("p")
        spec.add_source("P")
        spec.add_sink("C")
        spec.add_block("F", func=lambda x: x + 1)
        spec.connect(spec.source("P"), spec.block_in("F"))
        spec.connect(spec.block_out("F"), spec.sink("C"))
        net = to_behavioral(spec)
        assert any(isinstance(c, Pipe) for c in net.controllers)

    def test_multi_in_multi_out_block_gets_join_and_fork(self):
        spec = SystemSpec("jf")
        spec.add_source("P1")
        spec.add_source("P2")
        spec.add_sink("C1")
        spec.add_sink("C2")
        spec.add_block("B", n_inputs=2, n_outputs=2)
        spec.connect(spec.source("P1"), spec.block_in("B", 0))
        spec.connect(spec.source("P2"), spec.block_in("B", 1))
        spec.connect(spec.block_out("B", 0), spec.sink("C1"))
        spec.connect(spec.block_out("B", 1), spec.sink("C2"))
        net = to_behavioral(spec)
        assert "B.j2f" in net.channels
        net.run(50)
        assert net.throughput("B.j2f") > 0.8

    def test_deterministic_given_seed(self):
        n1 = to_behavioral(diamond_spec(vl=True), seed=7)
        n2 = to_behavioral(diamond_spec(vl=True), seed=7)
        n1.run(200)
        n2.run(200)
        for name in n1.channels:
            assert (
                n1.channels[name].stats.positive
                == n2.channels[name].stats.positive
            )


class TestGateBackend:
    def test_netlist_validates(self):
        elab = to_gates(diamond_spec(early=True, vl=True))
        elab.netlist.validate()
        assert elab.env_inputs  # sources, sinks, VL done

    def test_area_mode_has_no_env_state(self):
        elab = to_gates(diamond_spec(), include_env=False)
        names = list(elab.netlist.flops) + list(elab.netlist.latches)
        assert not any(n.startswith(("P.", "C.")) for n in names)

    def test_model_checking_diamond(self):
        elab = to_gates(diamond_spec(), as_latches=False)
        res = verify_netlist(
            elab.netlist,
            list(elab.channels.values()),
            fairness=[AP("C.stall", 0), AP("P.choice", 1)],
        )
        assert res.ok, res.failures()

    def test_model_checking_early_diamond_with_vl(self):
        elab = to_gates(diamond_spec(early=True, vl=True), as_latches=False)
        res = verify_netlist(
            elab.netlist,
            list(elab.channels.values()),
            fairness=[AP("C.stall", 0), AP("P.choice", 1), AP("VLU.done", 1)],
            max_states=800_000,
        )
        assert res.ok, res.failures()

    def test_passive_interface_emitted(self):
        elab = to_gates(diamond_spec(passive="a"))
        assert "a.up" in elab.channels

    def test_data_wires_created(self):
        spec = diamond_spec()
        spec.connection("z").data_bits = 2
        elab = to_gates(spec)
        assert elab.data_wires["z"] == ["z.d0", "z.d1"]


class TestAreaPipeline:
    def test_lazy_diamond_has_no_negative_logic(self):
        report = control_layer_area(diamond_spec(early=False))
        # 2 EBs x 4 latches (no antis anywhere: sink never kills)
        assert report.latches == 8
        assert report.flops == 2  # fork pends only; join apends pruned

    def test_early_diamond_keeps_negative_logic(self):
        report = control_layer_area(diamond_spec(early=True))
        assert report.latches == 16  # both EBs dual
        assert report.flops == 4  # fork pends + EJ apends

    def test_passive_prunes_one_side(self):
        report = control_layer_area(diamond_spec(early=True, passive="a"))
        assert report.latches == 12  # RA single, RB dual

    def test_literal_ordering(self):
        lazy = control_layer_area(diamond_spec(early=False)).literals
        passive = control_layer_area(diamond_spec(early=True, passive="a")).literals
        active = control_layer_area(diamond_spec(early=True)).literals
        assert lazy < passive < active
