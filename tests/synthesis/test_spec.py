"""Tests for the system specification DSL."""

import pytest

from repro.core.performance import fixed_latency
from repro.elastic.ee import AndEE
from repro.synthesis.spec import BlockSpec, SystemSpec


def minimal_spec():
    spec = SystemSpec("mini")
    spec.add_source("P")
    spec.add_sink("C")
    spec.add_register("R")
    spec.connect(spec.source("P"), spec.register_in("R"))
    spec.connect(spec.register_out("R"), spec.sink("C"))
    return spec


class TestDeclarations:
    def test_duplicate_names_rejected(self):
        spec = SystemSpec("s")
        spec.add_block("B")
        with pytest.raises(ValueError):
            spec.add_block("B")

    def test_vl_block_must_be_1in_1out(self):
        with pytest.raises(ValueError):
            BlockSpec("m", n_inputs=2, latency=fixed_latency(2))

    def test_ee_arity_must_match(self):
        with pytest.raises(ValueError):
            BlockSpec("j", n_inputs=3, ee=AndEE(2))

    def test_is_early(self):
        assert BlockSpec("j", n_inputs=2, ee=AndEE(2)).is_early
        assert not BlockSpec("j", n_inputs=2).is_early


class TestConnections:
    def test_default_names(self):
        spec = minimal_spec()
        names = [c.name for c in spec.connections]
        assert names == ["P->R", "R->C"]

    def test_name_collision_suffixed(self):
        spec = SystemSpec("s")
        spec.add_source("A")
        spec.add_block("B", n_inputs=2, n_outputs=1)
        spec.add_sink("C")
        spec.add_block("A2")  # decoy
        c1 = spec.connect(spec.source("A"), spec.block_in("B", 0))
        # same default name would clash:
        spec.connections.append(c1)  # simulate existing
        spec.connections.pop()
        c2 = spec.connect(spec.source("A"), spec.block_in("B", 1))
        assert c1.name != c2.name

    def test_explicit_duplicate_name_rejected(self):
        spec = SystemSpec("s")
        spec.add_source("A")
        spec.add_sink("B")
        spec.add_sink("B2")
        spec.connect(spec.source("A"), spec.sink("B"), name="x")
        with pytest.raises(ValueError):
            spec.connect(spec.source("A"), spec.sink("B2"), name="x")

    def test_connection_lookup(self):
        spec = minimal_spec()
        assert spec.connection("P->R").src == ("source", "P", "out")
        with pytest.raises(KeyError):
            spec.connection("nope")


class TestValidation:
    def test_minimal_spec_validates(self):
        minimal_spec().validate()

    def test_unconnected_port_caught(self):
        spec = SystemSpec("s")
        spec.add_source("P")
        spec.add_sink("C")
        spec.add_block("B", n_inputs=1, n_outputs=2)
        spec.connect(spec.source("P"), spec.block_in("B"))
        spec.connect(spec.block_out("B", 0), spec.sink("C"))
        with pytest.raises(ValueError, match="unconnected"):
            spec.validate()

    def test_double_connection_caught(self):
        spec = SystemSpec("s")
        spec.add_source("P")
        spec.add_sink("C")
        spec.add_sink("C2")
        spec.connect(spec.source("P"), spec.sink("C"))
        spec.connect(spec.source("P"), spec.sink("C2"))
        with pytest.raises(ValueError, match="multiply"):
            spec.validate()

    def test_wrong_role_caught(self):
        spec = SystemSpec("s")
        spec.add_source("P")
        spec.add_source("Q")
        with pytest.raises(ValueError, match="used as"):
            spec.connect(spec.source("P"), spec.source("Q"))
            spec.validate()

    def test_unknown_endpoint_caught(self):
        spec = SystemSpec("s")
        spec.add_source("P")
        spec.connect(spec.source("P"), ("sink", "ghost", "in"))
        with pytest.raises(ValueError, match="unknown endpoint"):
            spec.validate()
