"""Tests for buffer insertion, critical cycles and slack matching."""

from fractions import Fraction

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.core.performance import fixed_latency
from repro.synthesis.elaborate import to_behavioral
from repro.synthesis.sizing import (
    critical_cycles,
    insert_buffer,
    optimize_buffers,
    sweep_buffer_depth,
)
from repro.synthesis.spec import SystemSpec


def two_path_spec():
    """A join of a short path and a long (3-stage) path: unbalanced.

    The short path starves the join while the long path drains: classic
    slack mismatch that one buffer on the short path repairs.
    """
    spec = SystemSpec("twopath")
    spec.add_source("P")
    spec.add_sink("C")
    spec.add_block("FK", n_inputs=1, n_outputs=2)
    spec.add_block("JN", n_inputs=2, n_outputs=1)
    spec.add_register("A1")
    for r in ("B1", "B2", "B3"):
        spec.add_register(r)
    spec.connect(spec.source("P"), spec.block_in("FK"), name="in")
    spec.connect(spec.block_out("FK", 0), spec.register_in("A1"), name="short0")
    spec.connect(spec.register_out("A1"), spec.block_in("JN", 0), name="short1")
    spec.connect(spec.block_out("FK", 1), spec.register_in("B1"), name="long0")
    spec.connect(spec.register_out("B1"), spec.register_in("B2"), name="long1")
    spec.connect(spec.register_out("B2"), spec.register_in("B3"), name="long2")
    spec.connect(spec.register_out("B3"), spec.block_in("JN", 1), name="long3")
    spec.connect(spec.block_out("JN"), spec.sink("C"), name="out")
    spec.validate()
    return spec


class TestInsertBuffer:
    def test_splice_preserves_validity(self):
        spec = two_path_spec()
        reg = insert_buffer(spec, "short1")
        assert reg in spec.registers
        spec.validate()

    def test_spliced_network_simulates(self):
        spec = two_path_spec()
        insert_buffer(spec, "short1")
        net = to_behavioral(spec, seed=1)
        net.run(300)
        assert net.throughput("in") > 0.3

    def test_unique_names_on_repeat(self):
        spec = two_path_spec()
        r1 = insert_buffer(spec, "short1")
        r2 = insert_buffer(spec, f"{r1}->out")
        assert r1 != r2

    def test_data_bits_inherited(self):
        spec = build_fig9_spec(Config.ACTIVE)
        reg = insert_buffer(spec, "C->W")
        assert spec.connection(f"{reg}->out").data_bits == 2

    def test_functional_correctness_preserved(self):
        """Re-pipelining never breaks function: the join still pairs
        matching tokens after arbitrary buffer insertion."""
        spec = two_path_spec()
        spec.sources["P"].data_fn = lambda n: n
        insert_buffer(spec, "short1")
        insert_buffer(spec, "long2")
        net = to_behavioral(spec, seed=2)
        sink = next(c for c in net.controllers if c.name == "C")
        net.run(400)
        assert len(sink.received) > 50
        assert all(a == b for a, b in sink.received)


class TestCriticalCycles:
    def test_fig9_bottleneck_is_m_path(self):
        cycles = critical_cycles(
            build_fig9_spec(Config.LAZY), mean_latency={"M1": 3.6, "M2": 1.5}
        )
        ratio, arcs = cycles[0]
        assert ratio == Fraction(1, 4)
        assert any("M1->M2" in a for a in arcs)

    def test_sorted_ascending(self):
        cycles = critical_cycles(build_fig9_spec(Config.LAZY), top=5)
        ratios = [r for r, _ in cycles]
        assert ratios == sorted(ratios)

    def test_top_limits_output(self):
        assert len(critical_cycles(build_fig9_spec(Config.LAZY), top=2)) == 2


class TestSweep:
    def test_depth_zero_is_baseline(self):
        results = sweep_buffer_depth(
            two_path_spec, "short1", probe="in", depths=(0, 1), cycles=1500
        )
        assert set(results) == {0, 1}
        assert all(0 < v <= 1 for v in results.values())


class TestOptimize:
    def test_greedy_fixes_slack_mismatch(self):
        spec = two_path_spec()
        optimized, result = optimize_buffers(
            spec,
            candidates=["short0", "short1"],
            probe="in",
            budget=2,
            cycles=1500,
        )
        assert result.final_throughput > result.base_throughput + 0.02
        assert len(result.steps) >= 1
        assert all(step.register.startswith("EB@") for step in result.steps)
        assert "base Th" in str(result)

    def test_input_spec_untouched(self):
        spec = two_path_spec()
        n_regs = len(spec.registers)
        optimize_buffers(spec, ["short1"], probe="in", budget=1, cycles=800)
        assert len(spec.registers) == n_regs

    def test_budget_respected(self):
        spec = two_path_spec()
        _, result = optimize_buffers(
            spec, ["short0", "short1"], probe="in", budget=1, cycles=800
        )
        assert len(result.steps) <= 1

    def test_no_gain_stops_early(self):
        """A balanced pipeline gains nothing from more buffers."""
        spec = SystemSpec("bal")
        spec.add_source("P")
        spec.add_sink("C")
        spec.add_register("R")
        spec.connect(spec.source("P"), spec.register_in("R"), name="a")
        spec.connect(spec.register_out("R"), spec.sink("C"), name="b")
        _, result = optimize_buffers(spec, ["a", "b"], probe="a",
                                     budget=3, cycles=800)
        assert result.steps == []
