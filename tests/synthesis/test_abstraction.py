"""Tests for the DMG abstraction of system specs."""

from fractions import Fraction

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.core.analysis import max_throughput_arcs
from repro.core.mg import MarkedGraph
from repro.synthesis.abstraction import check_liveness, spec_to_dmg, throughput_bound
from repro.synthesis.elaborate import to_behavioral
from repro.synthesis.spec import SystemSpec


def ring_spec(initial_tokens=1):
    """source -> R1 -> B -> R2 -> sink, plus a feedback via R3."""
    spec = SystemSpec("ring")
    spec.add_source("P")
    spec.add_sink("C")
    spec.add_block("B", n_inputs=2, n_outputs=2)
    spec.add_register("R1")
    spec.add_register("R2")
    spec.add_register("R3", initial_tokens=initial_tokens)
    spec.connect(spec.source("P"), spec.register_in("R1"))
    spec.connect(spec.register_out("R1"), spec.block_in("B", 0))
    spec.connect(spec.register_out("R3"), spec.block_in("B", 1))
    spec.connect(spec.block_out("B", 0), spec.register_in("R2"))
    spec.connect(spec.block_out("B", 1), spec.register_in("R3"))
    spec.connect(spec.register_out("R2"), spec.sink("C"))
    spec.validate()
    return spec


class TestSpecToDmg:
    def test_nodes_cover_everything(self):
        g, lat = spec_to_dmg(ring_spec())
        assert set(g.nodes) == {"P", "C", "B", "R1", "R2", "R3"}

    def test_latencies(self):
        g, lat = spec_to_dmg(ring_spec())
        assert lat["R1"] == 1 and lat["B"] == 0 and lat["P"] == 0

    def test_vl_latency_from_mean(self):
        spec = build_fig9_spec(Config.ACTIVE)
        _, lat = spec_to_dmg(spec, mean_latency={"M1": 3.6, "M2": 1.5})
        assert lat["M1"] == 4 and lat["M2"] == 2

    def test_register_tokens_on_forward_arc(self):
        g, _ = spec_to_dmg(ring_spec())
        m0 = g.initial_marking
        assert m0["R3->B"] == 1
        assert m0["~R3->B"] == 1  # spare EB capacity

    def test_early_nodes_marked(self):
        g, _ = spec_to_dmg(build_fig9_spec(Config.ACTIVE))
        assert "W" in g.early_nodes
        g2, _ = spec_to_dmg(build_fig9_spec(Config.LAZY))
        assert not g2.early_nodes

    def test_environment_closure_makes_strongly_connected(self):
        g, _ = spec_to_dmg(ring_spec())
        assert g.is_strongly_connected()


class TestLiveness:
    def test_tokenised_ring_is_live(self):
        assert check_liveness(ring_spec(initial_tokens=1))

    def test_empty_ring_is_dead(self):
        assert not check_liveness(ring_spec(initial_tokens=0))

    def test_fig9_is_live(self):
        for config in Config:
            assert check_liveness(build_fig9_spec(config))


class TestThroughputBound:
    def test_bound_is_fraction(self):
        b = throughput_bound(ring_spec())
        assert isinstance(b, Fraction)
        assert 0 < b <= 1

    def test_fig9_bound_dominates_lazy_simulation(self):
        bound = float(
            throughput_bound(
                build_fig9_spec(Config.LAZY),
                mean_latency={"M1": 3.6, "M2": 1.5},
            )
        )
        net = to_behavioral(build_fig9_spec(Config.LAZY, seed=4), seed=4)
        net.run(4000)
        measured = net.throughput("Din->S")
        assert measured <= bound + 0.01
        assert measured >= 0.7 * bound  # the bound is tight, not vacuous

    def test_early_evaluation_beats_the_lazy_bound(self):
        """The point of the paper: E-enabled systems can exceed the
        conventional minimum-cycle-ratio bound."""
        bound = float(
            throughput_bound(
                build_fig9_spec(Config.ACTIVE),
                mean_latency={"M1": 3.6, "M2": 1.5},
            )
        )
        net = to_behavioral(build_fig9_spec(Config.ACTIVE, seed=4), seed=4)
        net.run(4000)
        assert net.throughput("Din->S") > bound


class TestMaxThroughputArcs:
    def test_arc_delay_model(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1, name="fwd")
        g.add_arc("b", "a", tokens=0, name="bwd")
        assert max_throughput_arcs(g, {"fwd": 3, "bwd": 0}) == Fraction(1, 3)

    def test_zero_delay_cycles_skipped(self):
        g = MarkedGraph()
        g.add_arc("a", "b", tokens=1, name="f")
        g.add_arc("b", "a", tokens=1, name="g")
        with pytest.raises(ValueError):
            max_throughput_arcs(g, {})
