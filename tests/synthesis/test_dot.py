"""Tests for the DOT exports (DMG diagrams and control-layer diagrams)."""

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.core.dmg import fig1_dmg
from repro.core.export import to_dot
from repro.synthesis.dot import spec_to_dot


class TestDmgDot:
    def test_valid_digraph(self):
        dot = to_dot(fig1_dmg())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_early_nodes_boxed(self):
        dot = to_dot(fig1_dmg())
        assert '"n1" [shape=box' in dot
        assert '"n2" [shape=ellipse' in dot

    def test_tokens_rendered(self):
        dot = to_dot(fig1_dmg())
        assert "●" in dot

    def test_antitokens_rendered_red(self):
        g = fig1_dmg()
        m = g.initial_marking
        for node in ("n2", "n1", "n7"):
            m = g.fire_any(node, m)
        dot = to_dot(g, m)
        assert "○" in dot and "color=red" in dot

    def test_large_counts_abbreviated(self):
        g = fig1_dmg()
        m = g.initial_marking
        m["n1->n2"] = 7
        dot = to_dot(g, m)
        assert "(7)" in dot


class TestSpecDot:
    def test_fig9_renders_all_components(self):
        dot = spec_to_dot(build_fig9_spec(Config.ACTIVE))
        assert '"EB_F1"' in dot
        assert "EJ W" in dot
        assert "VL M1" in dot
        assert "(src)" in dot and "(sink)" in dot

    def test_initial_tokens_shown(self):
        dot = spec_to_dot(build_fig9_spec(Config.ACTIVE))
        assert "EB EB_W1 ●" in dot

    def test_counterflow_arcs_optional(self):
        with_cf = spec_to_dot(build_fig9_spec(Config.ACTIVE), show_counterflow=True)
        without = spec_to_dot(build_fig9_spec(Config.ACTIVE), show_counterflow=False)
        assert with_cf.count("dashed") > 0
        assert without.count("dashed") == 0

    def test_passive_connection_styled(self):
        dot = spec_to_dot(build_fig9_spec(Config.PASSIVE_F3W))
        assert "style=bold" in dot
