"""The ``repro build`` verb and the cache-aware inject/lint flags."""

import json

from repro.cli import main


class TestBuild:
    def test_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["build", "dual_ehb", "--cache", cache]) == 0
        assert "built" in capsys.readouterr().out
        assert main(["build", "dual_ehb", "--cache", cache]) == 0
        assert "cached" in capsys.readouterr().out

    def test_default_builds_every_target(self, tmp_path, capsys):
        from repro.faults.targets import TARGETS

        cache = str(tmp_path / "cache")
        assert main(["build", "--cache", cache]) == 0
        out = capsys.readouterr().out
        for name in TARGETS:
            assert name in out
        assert main(["build", "--cache", cache, "--stats"]) == 0
        assert f"entries:    {len(TARGETS)}" in capsys.readouterr().out

    def test_stats_alone_builds_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["build", "--cache", cache, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out
        assert "built" not in out

    def test_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["build", "join", "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["build", "--cache", cache, "--clear", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 artifact(s)" in out
        assert "entries:    0" in out

    def test_unknown_target(self, tmp_path, capsys):
        import pytest

        with pytest.raises(SystemExit, match="unknown build target"):
            main(["build", "bogus", "--cache", str(tmp_path)])


class TestInjectBackend:
    ARGS = ["inject", "--netlist", "join", "--fault", "stuck0,stuck1,flip",
            "--cycles", "80", "--lanes", "16"]

    def test_compiled_report_matches_batch(self, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        compiled = tmp_path / "compiled.json"
        main(self.ARGS + ["--report", str(batch)])
        main(self.ARGS + ["--backend", "compiled",
                          "--cache", str(tmp_path / "cache"),
                          "--report", str(compiled)])
        assert batch.read_text() == compiled.read_text()

    def test_processor_rejects_compiled(self):
        import pytest

        with pytest.raises(SystemExit, match="RTL netlist"):
            main(["inject", "--netlist", "processor",
                  "--backend", "compiled"])


class TestLintCache:
    def test_cached_run_matches_uncached(self, tmp_path, capsys):
        target = "rtl:join"
        assert main(["lint", target, "--no-cache"]) == 0
        plain = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        assert main(["lint", target, "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert main(["lint", target, "--cache", cache]) == 0
        warm = capsys.readouterr().out
        assert plain == cold == warm

    def test_cached_json_findings_identical(self, tmp_path, capsys):
        target = "rtl:join"
        cache = str(tmp_path / "cache")
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["lint", target, "--no-cache", "--json", str(a)]) == 0
        assert main(["lint", target, "--cache", cache,
                     "--json", str(b)]) == 0
        assert json.loads(a.read_text()) == json.loads(b.read_text())
