"""The build cache: keys, tiers, counters, invalidation, maintenance."""

import json

import pytest

from repro.codegen.cache import (
    BuildCache,
    build_cache,
    process_stats,
    reset_process_stats,
)
from repro.codegen.fingerprint import (
    CODEGEN_VERSION,
    artifact_key,
    netlist_fingerprint,
)
from repro.obs import MetricsRegistry
from repro.rtl.netlist import Netlist


def _small_netlist(flavor=0):
    nl = Netlist(f"cachetest{flavor}")
    a = nl.add_input("a")
    b = nl.add_input("b")
    if flavor:
        nl.add_gate("OR", (a, b), out="y")
    else:
        nl.add_gate("AND", (a, b), out="y")
    nl.add_flop("y", q="q", init=0)
    nl.add_output("q")
    nl.validate()
    return nl


def test_fingerprint_and_key_stability():
    nl = _small_netlist()
    assert netlist_fingerprint(nl) == netlist_fingerprint(_small_netlist())
    assert netlist_fingerprint(nl) != netlist_fingerprint(_small_netlist(1))
    base = artifact_key(nl)
    assert base == artifact_key(_small_netlist())
    # hooks and observe restrictions each produce distinct artifacts
    assert artifact_key(nl, hooks=frozenset(["y"])) != base
    assert artifact_key(nl, observe=frozenset(["q"])) != base
    assert artifact_key(nl, hooks=frozenset(["y"])) != artifact_key(
        nl, observe=frozenset(["y"])
    )


def test_cache_tiers_and_counters(tmp_path):
    nl = _small_netlist()
    registry = MetricsRegistry()
    cache = BuildCache(tmp_path / "c", metrics=registry)
    reset_process_stats()

    m1 = cache.load_module(nl)  # cold: disk miss, emit, import
    assert process_stats() == {"hits": 0, "misses": 1}
    m2 = cache.load_module(nl)  # memory hit, same object
    assert m2 is m1
    assert process_stats() == {"hits": 1, "misses": 1}

    other = BuildCache(tmp_path / "c")  # fresh instance: disk hit
    m3 = other.load_module(nl)
    assert m3 is not m1 and m3.KEY == m1.KEY
    assert process_stats() == {"hits": 2, "misses": 1}

    hits = {
        c.labels: c.value
        for c in registry.series("codegen_cache_hits_total")
    }
    assert hits == {(("kind", "module"), ("tier", "memory")): 1}
    misses = {
        c.labels: c.value
        for c in registry.series("codegen_cache_misses_total")
    }
    assert misses == {(("kind", "module"), ("tier", "disk")): 1}


def test_meta_version_mismatch_invalidates(tmp_path):
    nl = _small_netlist()
    cache = BuildCache(tmp_path / "c")
    module = cache.load_module(nl)
    key = module.KEY
    meta_path = tmp_path / "c" / key / BuildCache.META
    meta = json.loads(meta_path.read_text())
    meta["codegen_version"] = CODEGEN_VERSION + 1
    meta_path.write_text(json.dumps(meta))

    fresh = BuildCache(tmp_path / "c")
    reset_process_stats()
    rebuilt = fresh.load_module(nl)  # stale version -> miss + rebuild
    assert process_stats()["misses"] == 1
    assert rebuilt.KEY == key
    assert (json.loads(meta_path.read_text())["codegen_version"]
            == CODEGEN_VERSION)


def test_torn_module_invalidates(tmp_path):
    nl = _small_netlist()
    cache = BuildCache(tmp_path / "c")
    key = cache.load_module(nl).KEY
    module_path = tmp_path / "c" / key / BuildCache.MODULE
    module_path.write_text("def broken(:\n")  # torn/hand-mangled source

    fresh = BuildCache(tmp_path / "c")
    reset_process_stats()
    module = fresh.load_module(nl)
    assert process_stats()["misses"] == 1
    assert module.KEY == key
    assert "def broken" not in module_path.read_text()


def test_json_artifacts_round_trip(tmp_path):
    cache = BuildCache(tmp_path / "c")
    assert cache.load_json("deadbeef") is None
    payload = [{"rule": "LNT001", "n": 3}]
    cache.store_json("deadbeef", payload, meta={"kind": "test"})
    assert cache.load_json("deadbeef") == payload
    assert BuildCache(tmp_path / "c").load_json("deadbeef") == payload


def test_stats_and_clear(tmp_path):
    cache = BuildCache(tmp_path / "c")
    cache.load_module(_small_netlist())
    cache.load_module(_small_netlist(1))
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["bytes"] > 0
    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0
    # cleared memory tier too: the next load rebuilds from nothing
    reset_process_stats()
    cache.load_module(_small_netlist())
    assert process_stats() == {"hits": 0, "misses": 1}


def test_build_cache_shares_instances(tmp_path):
    a = build_cache(tmp_path / "shared")
    b = build_cache(tmp_path / "shared")
    assert a is b
    registry = MetricsRegistry()
    c = build_cache(tmp_path / "shared", metrics=registry)
    assert c is a and a.metrics is registry


def test_lint_findings_cache(tmp_path):
    from repro.lint.targets import all_targets, run_lint

    cache = BuildCache(tmp_path / "c")
    plain = run_lint(["rtl:dual_ehb", "zoo:comb_cycle"])
    cold = run_lint(["rtl:dual_ehb", "zoo:comb_cycle"], cache=cache)
    reset_process_stats()
    warm = run_lint(["rtl:dual_ehb", "zoo:comb_cycle"],
                    cache=BuildCache(tmp_path / "c"))
    stats = process_stats()
    assert stats["hits"] == 2 and stats["misses"] == 0

    def key(report):
        return [(f.fingerprint, f.message, f.severity, f.path)
                for f in report.findings]

    assert key(plain) == key(cold) == key(warm)
    assert all_targets() == sorted(
        t for t in all_targets(include_zoo=True) if not t.startswith("zoo:")
    )


def test_compiled_simulator_accepts_cache_path(tmp_path):
    from repro.codegen.sim import CompiledSimulator

    nl = _small_netlist()
    sim = CompiledSimulator(nl, 4, cache=str(tmp_path / "c"))
    sim.cycle({"a": (0b1010, 0b1111), "b": (0b0110, 0b1111)})
    assert sim.planes("y") == (0b0010, 0b1111)
    assert (tmp_path / "c" / sim.key / "module.py").is_file()


def test_unknown_plane_kind_rejected():
    with pytest.raises(ValueError, match="plane_kind"):
        from repro.codegen.sim import CompiledSimulator

        CompiledSimulator(_small_netlist(), 4, plane_kind="torch")
