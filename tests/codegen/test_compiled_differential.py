"""Differential testing: CompiledSimulator vs batch vs scalar.

Hypothesis reuses the shared random-circuit strategies of
``tests/strategies.py`` (the same distribution the batch differential
suite drives) and adds the compiled backend to the comparison, in both
plane representations and past the 64-lane word boundary.  The
contract under test is byte-level: a compiled module's end-of-cycle
planes must equal the interpreted batch kernel's planes exactly, for
every signal, every cycle, with X stimulus and per-lane faults live.
"""

import random

import pytest
from hypothesis import given, settings

from repro.codegen.sim import CompiledSimulator
from repro.rtl.batchsim import BatchSimulator, pack_stimulus
from repro.rtl.simulator import TwoPhaseSimulator
from tests.strategies import (
    CYCLES,
    LANES,
    _batch_overrides,
    _scalar_overrides,
    differential_cases,
)


def _widen(per_lane, lanes):
    """Extend 64 per-lane sequences to ``lanes`` by cyclic repetition."""
    return [per_lane[i % len(per_lane)] for i in range(lanes)]


def _assert_planes_match(nl, batch, compiled, ctx):
    bv, bk = batch.value_planes, batch.known_planes
    for sig in sorted(nl.signals()):
        want = (bv[batch.slot(sig)], bk[batch.slot(sig)])
        assert compiled.planes(sig) == want, (
            f"{ctx} sig={sig} compiled={compiled.planes(sig)} batch={want}"
        )


@settings(max_examples=60, deadline=None)
@given(differential_cases())
def test_compiled_matches_batch_and_scalar(case):
    """64 lanes: compiled (int and numpy planes) == batch == scalar."""
    seed, nl, stimuli, injections = case
    sites = frozenset(nl.signals())

    batch = BatchSimulator(nl, lanes=LANES)
    sims = [
        CompiledSimulator(nl, LANES, hooks=sites, observe=sites),
        CompiledSimulator(nl, LANES, hooks=sites, observe=sites,
                          plane_kind="numpy"),
    ]
    scalar = TwoPhaseSimulator(nl)
    spot = 0  # scalar replays exactly one lane; batch vs scalar is
    # already covered exhaustively by the batch differential suite.

    for t, packed in enumerate(pack_stimulus(stimuli)):
        overrides = _batch_overrides(injections, t)
        batch.set_overrides(overrides)
        batch.cycle(packed)
        for sim in sims:
            sim.set_overrides(overrides)
            sim.cycle(packed)
            _assert_planes_match(nl, batch, sim,
                                 f"seed={seed} t={t} rep={sim.plane_kind}")
            assert sim.check_lane_integrity() == 0
        scalar.overrides = _scalar_overrides(injections[spot], t)
        values = scalar.cycle(stimuli[spot][t])
        for sig in sorted(nl.signals()):
            for sim in sims:
                assert sim.lane_value(sig, spot) == values[sig], (
                    f"seed={seed} t={t} sig={sig} rep={sim.plane_kind}"
                )
    for lane in (0, LANES // 2, LANES - 1):
        want = batch.lane_state(lane)
        for sim in sims:
            assert sim.lane_state(lane) == want


@settings(max_examples=25, deadline=None)
@given(differential_cases())
def test_wide_lanes_match_batch(case):
    """96 lanes (past one machine word): compiled == batch, both reps."""
    lanes = 96
    seed, nl, stimuli, injections = case
    stimuli = _widen(stimuli, lanes)
    injections = _widen(injections, lanes)
    sites = frozenset(nl.signals())

    batch = BatchSimulator(nl, lanes=lanes)
    sims = [
        CompiledSimulator(nl, lanes, hooks=sites, observe=sites),
        CompiledSimulator(nl, lanes, hooks=sites, observe=sites,
                          plane_kind="numpy"),
    ]
    for t, packed in enumerate(pack_stimulus(stimuli)):
        overrides = _batch_overrides(injections, t)
        batch.set_overrides(overrides)
        batch.cycle(packed)
        for sim in sims:
            sim.set_overrides(overrides)
            sim.cycle(packed)
            _assert_planes_match(nl, batch, sim,
                                 f"seed={seed} t={t} rep={sim.plane_kind}")
    # spot-check the high lanes against their own scalar replays
    for lane in (0, 64, 65, lanes - 1):
        scalar = TwoPhaseSimulator(nl)
        for t in range(CYCLES):
            scalar.overrides = _scalar_overrides(injections[lane], t)
            values = scalar.cycle(stimuli[lane][t])
        for sig in sorted(nl.signals()):
            for sim in sims:
                assert sim.lane_value(sig, lane) == values[sig], (
                    f"seed={seed} lane={lane} sig={sig}"
                )
        for sim in sims:
            assert sim.lane_state(lane) == scalar.state


def _all_known_stimulus(target, lanes, cycles):
    rngs = [random.Random(f"lane:{lane}") for lane in range(lanes)]
    return [
        [
            {name: rng.getrandbits(1) for name in target.free_inputs}
            for _ in range(cycles)
        ]
        for rng in rngs
    ]


def test_known_dialect_runs_and_matches():
    """All-known stimulus keeps the value-plane-only kernel active."""
    from repro.faults.targets import TARGETS

    target = TARGETS["dual_ehb"]()
    nl = target.netlist
    stimuli = _all_known_stimulus(target, LANES, 60)
    batch = BatchSimulator(nl, lanes=LANES)
    sites = frozenset(nl.signals())
    sim = CompiledSimulator(nl, LANES, hooks=sites, observe=sites)
    assert sim.module.KNOWN_OK
    for packed in pack_stimulus(stimuli):
        batch.cycle(packed)
        sim.cycle(packed)
        _assert_planes_match(nl, batch, sim, "known")
    assert sim._known_active, "known dialect should have stayed active"


def test_known_dialect_falls_back_on_x():
    """One X input permanently drops to the two-plane kernel."""
    from repro.faults.targets import TARGETS
    from repro.rtl.logic import X

    target = TARGETS["dual_ehb"]()
    nl = target.netlist
    stimuli = _all_known_stimulus(target, LANES, 30)
    first = next(iter(target.free_inputs))
    stimuli[7][10] = dict(stimuli[7][10], **{first: X})
    batch = BatchSimulator(nl, lanes=LANES)
    sites = frozenset(nl.signals())
    sim = CompiledSimulator(nl, LANES, hooks=sites, observe=sites)
    for packed in pack_stimulus(stimuli):
        batch.cycle(packed)
        sim.cycle(packed)
        _assert_planes_match(nl, batch, sim, "fallback")
    assert not sim._known_active
    sim.reset()
    assert sim._known_active, "reset() must re-arm the known dialect"


def test_non_hook_override_rejected():
    from repro.faults.targets import TARGETS
    from repro.rtl.batchsim import LaneOverride

    target = TARGETS["dual_ehb"]()
    sim = CompiledSimulator(
        target.netlist, 8,
        hooks=frozenset(), observe=frozenset(target.observe),
    )
    wire = target.fault_sites[0]
    with pytest.raises(ValueError, match="not a hook"):
        sim.set_overrides({wire: LaneOverride(set1=1)})
    with pytest.raises(ValueError, match="unknown net"):
        sim.set_overrides({"no.such.net": LaneOverride(set1=1)})


def test_unobserved_signal_rejected():
    from repro.faults.targets import TARGETS

    target = TARGETS["dual_ehb"]()
    observed = sorted(target.observe)[:2]
    sim = CompiledSimulator(
        target.netlist, 8,
        hooks=frozenset(), observe=frozenset(observed),
    )
    sim.cycle({})
    assert sim.planes(observed[0]) is not None
    hidden = next(
        s for s in sorted(target.observe) if s not in observed
    )
    with pytest.raises(ValueError, match="not observed"):
        sim.planes(hidden)
