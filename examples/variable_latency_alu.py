#!/usr/bin/env python3
"""Average-case ALU: variable latency + early evaluation together.

The paper motivates elasticity with "a wider use of variable latency
components targeting average case optimization".  This example builds a
small execution cluster:

* a fast path computing simple ops in 1 cycle,
* a variable-latency multiplier (2 cycles usually, 12 on a slow case),
* an early-evaluation multiplexer steering results by opcode.

With a lazy join, every operation pays for the multiplier's occupancy;
with the early join, ALU-only streams run at fast-path speed and
anti-tokens cancel (or preempt!) the unneeded multiplier work.  The
example sweeps the multiply ratio and prints both throughputs.
"""

import random

from repro.core.performance import distribution_latency
from repro.elastic.ee import MuxEE
from repro.synthesis import SystemSpec, to_behavioral


def build(mul_ratio: float, early: bool, seed: int) -> SystemSpec:
    spec = SystemSpec(f"alu[{'early' if early else 'lazy'}]")

    rng = random.Random(seed)

    def opcode(n: int) -> str:
        return "mul" if rng.random() < mul_ratio else "alu"

    spec.add_source("issue", data_fn=opcode)
    spec.add_sink("writeback")

    # dispatch: fork the operation to both units and the select channel
    spec.add_block("dispatch", n_inputs=1, n_outputs=3)
    spec.add_register("RS_alu")     # reservation buffer, fast path
    spec.add_block("alu")           # 1-cycle unit (control-transparent)
    spec.add_register("R_alu")
    spec.add_register("RS_mul")
    spec.add_block(
        "mul", latency=distribution_latency({2: 0.85, 12: 0.15})
    )
    spec.add_register("R_mul")
    spec.add_register("R_sel")

    chooser = {"alu": 1, "mul": 2}
    spec.add_block(
        "select",
        n_inputs=3,
        n_outputs=1,
        ee=MuxEE(select=0, chooser=lambda op: chooser[op], arity=3) if early else None,
        func=None if early else (lambda ops: ops[chooser[ops[0]]]),
    )

    spec.connect(spec.source("issue"), spec.block_in("dispatch"))
    spec.connect(spec.block_out("dispatch", 0), spec.register_in("R_sel"))
    spec.connect(spec.block_out("dispatch", 1), spec.register_in("RS_alu"))
    spec.connect(spec.block_out("dispatch", 2), spec.register_in("RS_mul"))
    spec.connect(spec.register_out("R_sel"), spec.block_in("select", 0))
    spec.connect(spec.register_out("RS_alu"), spec.block_in("alu"))
    spec.connect(spec.block_out("alu"), spec.register_in("R_alu"))
    spec.connect(spec.register_out("R_alu"), spec.block_in("select", 1))
    spec.connect(spec.register_out("RS_mul"), spec.block_in("mul"))
    spec.connect(spec.block_out("mul"), spec.register_in("R_mul"))
    spec.connect(spec.register_out("R_mul"), spec.block_in("select", 2))
    spec.connect(spec.block_out("select"), spec.sink("writeback"))
    spec.validate()
    return spec


def throughput(mul_ratio: float, early: bool) -> float:
    net = to_behavioral(build(mul_ratio, early, seed=3), seed=3)
    net.run(4000)
    return net.throughput("issue->dispatch")


def main() -> None:
    print(f"{'mul ratio':>9}  {'lazy':>6}  {'early':>6}  {'gain':>5}")
    for ratio in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        lazy = throughput(ratio, early=False)
        early = throughput(ratio, early=True)
        gain = early / lazy if lazy else float("inf")
        print(f"{ratio:9.2f}  {lazy:6.3f}  {early:6.3f}  {gain:5.2f}x")
    print(
        "\nEarly evaluation pays the most when multiplies are rare: the"
        "\nmux fires from the fast path and anti-tokens preempt the"
        "\nmultiplier's unneeded (slow) computations."
    )


if __name__ == "__main__":
    main()
