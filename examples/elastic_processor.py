#!/usr/bin/env python3
"""An elastic processor pipeline: all of the paper's machinery at once.

Builds a five-stage in-order pipeline from the library's controllers:
elastic buffers at every stage boundary, variable-latency multiplier
and memory units, an early-evaluation writeback mux selecting results
by opcode, and branch-misprediction recovery implemented purely with
anti-token counterflow (the Sect. 7 extension) -- no global flush wire
exists anywhere in the design.

The script sweeps the branch misprediction rate and compares the IPC of
the early-evaluation writeback against the lazy baseline.
"""

from repro.casestudy.processor import ProcessorConfig, run_processor


def main() -> None:
    print(f"{'p_mispredict':>12} {'early IPC':>9} {'lazy IPC':>8} "
          f"{'gain':>5} {'flushes':>7}")
    for p_mis in (0.0, 0.1, 0.25, 0.5):
        results = {}
        for early in (True, False):
            cfg = ProcessorConfig(
                early_writeback=early, p_mispredict=p_mis, seed=11
            )
            report, _ = run_processor(cfg, cycles=6000)
            results[early] = report
        e, l = results[True], results[False]
        print(f"{p_mis:12.2f} {e.ipc:9.3f} {l.ipc:8.3f} "
              f"{e.ipc / l.ipc:4.2f}x {e.flushes:7d}")

    print("\nDetails at the paper's operating point:")
    report, commit = run_processor(ProcessorConfig(seed=11), cycles=6000)
    print(" ", report)
    seqs = [i.seq for i in commit.committed]
    assert seqs == sorted(seqs), "commit order broken"
    print("  commit stream strictly in order across "
          f"{report.flushes} pipeline flushes")
    print("\nEvery flush is just a burst of anti-tokens: they counterflow")
    print("through the writeback mux (forking into all execution units),")
    print("preempt in-flight multiplies/loads, and annihilate exactly the")
    print("wrong-path instructions -- the commit unit asserts it.")


if __name__ == "__main__":
    main()
