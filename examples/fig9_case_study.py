#!/usr/bin/env python3
"""The paper's case study (Sect. 6): regenerate Table 1.

Runs the five configurations of the Fig. 9 system -- active
anti-tokens, no buffer on S->W, passive anti-tokens on F3->W or M2->W,
and the lazy (no early evaluation) baseline -- for 10 000 cycles each,
and prints the reproduced Table 1: system throughput, per-channel
positive/kill/negative rates, and the control-layer area (literals in
factored form, transparent latches, flip-flops) after constant
propagation and pruning.

Expected shape (the paper's Table 1, our RNG):

* active anti-tokens give the best throughput; the lazy baseline the
  worst (~40-90% slower);
* removing the C buffer hurts (long operations in the pipeline prevent
  S from producing new control values for W);
* passive anti-tokens trade throughput for control area, and the M-path
  placement hurts far more than the F-path one;
* kills (±) appear only at latch boundaries; channels into the early
  join see negative transfers instead.
"""

from repro.casestudy import format_table, run_table1


def main() -> None:
    print("Running the five Table 1 configurations (10K cycles each)...\n")
    rows = run_table1(cycles=10_000, seed=2007)
    print(format_table(rows))

    active = rows[0].throughput
    lazy = rows[-1].throughput
    print(
        f"\nearly evaluation speed-up: {active / lazy:.2f}x "
        f"({active:.3f} vs {lazy:.3f} transfers/cycle)"
    )
    print(
        "control-layer overhead of the anti-token network: "
        f"{rows[0].area.literals - rows[-1].area.literals} literals, "
        f"{rows[0].area.latches - rows[-1].area.latches} latches, "
        f"{rows[0].area.flops - rows[-1].area.flops} flip-flops"
    )


if __name__ == "__main__":
    main()
