"""Export -> re-parse -> re-lint every shipped design, and diff.

The re-parse front-end contract in one script:

1. export every shipped gate-level design to BLIF *and* structural
   Verilog (``repro.rtl.export``);
2. parse each file back (``repro.lint.frontends``) and check the
   reconstructed netlist is **fingerprint-identical** to the in-memory
   one -- names, cell order, ops, phases and reset values all survive;
3. lint the parsed netlist and diff the findings against the in-memory
   lint, locations aside: same rules, same subjects, same fingerprints,
   and every re-parsed finding additionally anchored to file/line/column;
4. write the located SARIF log for the whole sweep into ``artifacts/``
   when that directory exists (CI uploads it).

Run me:  PYTHONPATH=src python examples/lint_roundtrip.py [artifacts-dir]
"""

import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.codegen.fingerprint import netlist_fingerprint  # noqa: E402
from repro.lint import (  # noqa: E402
    LintReport,
    lint_file,
    lint_netlist,
    parse_design_file,
    sarif_json,
)
from repro.rtl.export import to_blif, to_verilog  # noqa: E402


def shipped_netlists():
    from repro.casestudy.fig9 import Config, build_fig9_spec
    from repro.faults.targets import TARGETS
    from repro.synthesis.elaborate import to_gates
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    for cfg in Config:
        netlist = to_gates(
            build_fig9_spec(cfg), include_env=True, as_latches=True
        ).netlist
        yield f"fig9_{cfg.name.lower()}", netlist
    for design in sorted(DESIGNS):
        nl, _, _ = diamond_with_feedback(**DESIGNS[design])
        yield f"verif_{design}", nl
    for name in sorted(TARGETS):
        yield f"rtl_{name}", TARGETS[name]().netlist


def finding_key(finding):
    """Everything that must survive the round-trip (location aside)."""
    return (finding.rule, finding.subject, finding.path, finding.fingerprint)


def main() -> int:
    artifacts = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts")
    workdir = Path(tempfile.mkdtemp(prefix="lint-roundtrip-"))
    located = []
    designs = 0

    for name, netlist in shipped_netlists():
        designs += 1
        fingerprint = netlist_fingerprint(netlist)
        reference = {finding_key(f) for f in lint_netlist(netlist)}
        for suffix, writer in ((".blif", to_blif), (".v", to_verilog)):
            path = workdir / f"{name}{suffix}"
            path.write_text(writer(netlist))
            findings = lint_file(str(path))
            parsed_fp = netlist_fingerprint(
                parse_design_file(str(path)).netlist
            )
            assert parsed_fp == fingerprint, (
                f"{path.name}: fingerprint drifted across the round-trip"
            )
            reparsed = {finding_key(f) for f in findings}
            assert reparsed == reference, (
                f"{path.name}: findings diverged\n"
                f"  only in-memory: {sorted(reference - reparsed)}\n"
                f"  only re-parsed: {sorted(reparsed - reference)}"
            )
            missing = [f for f in findings if f.location is None]
            assert not missing, f"{path.name}: unlocated findings {missing}"
            located.extend(findings)
        print(f"  {name}: {len(reference)} finding(s) stable "
              f"across BLIF and Verilog")

    print(f"round-trip held on {designs} design(s), "
          f"{len(located)} located finding(s)")
    if artifacts.is_dir():
        out = artifacts / "lint-roundtrip.sarif"
        out.write_text(sarif_json(LintReport(located)))
        print(f"wrote located SARIF log to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
