#!/usr/bin/env python3
"""Dual marked graphs: the behavioural model of Sect. 2.

Replays the paper's Fig. 1 example -- a DMG with one early-enabling
node -- firing under all three enabling rules (positive, early,
negative), and demonstrates the algebraic properties of Sect. 2.2:
token preservation on every cycle, liveness, and repetitive behaviour.
Then a timed simulation estimates the throughput gain of early
evaluation on the same graph shape.
"""

import random

from repro.core import (
    TimedDMGSimulator,
    cycle_token_sums,
    is_live,
    max_throughput,
    verify_repetitive_behavior,
)
from repro.core.dmg import DualMarkedGraph, fig1_dmg
from repro.core.performance import fixed_latency, select_guard


def render(g, marking) -> str:
    cells = []
    for arc in g.arcs:
        v = marking[arc.name]
        mark = "●" * v if v > 0 else "○" * (-v) if v < 0 else "·"
        cells.append(f"  {arc.name:10s} {v:+d} {mark}")
    return "\n".join(cells)


def main() -> None:
    g = fig1_dmg()
    print("Fig. 1 dual marked graph:", g)
    print("\ninitial marking (Fig. 1(a)):")
    print(render(g, g.initial_marking))

    # The paper's firing sequence: n2 positively, n1 early, n7 negatively.
    m = g.initial_marking
    for node in ("n2", "n1", "n7"):
        kinds = g.enabling_kinds(node, m)
        m = g.fire_any(node, m)
        print(f"\nfired {node} ({kinds[0].value}-enabled):")
        print(render(g, m))

    print("\ncycle token sums (invariant under any firing):")
    for cycle, total in cycle_token_sums(g).items():
        print(f"  {' -> '.join(cycle)}: {total}")

    print("\nliveness:", is_live(g))
    print("throughput bound (unit latencies):", max_throughput(g))
    verify_repetitive_behavior(g, steps=300, trials=20)
    print("repetitive behaviour verified on 20 random interleavings")

    # Timed comparison: early evaluation vs lazy on a mux diamond.
    def mux_diamond():
        d = DualMarkedGraph()
        d.add_arc("src", "fast", name="sf")
        d.add_arc("src", "slow", name="ss")
        d.add_arc("fast", "mux", name="fm")
        d.add_arc("slow", "mux", name="sm")
        d.add_arc("mux", "src", tokens=2, name="ms")
        d.mark_early("mux")
        return d

    lat = {"slow": fixed_latency(8)}
    lazy = TimedDMGSimulator(mux_diamond(), latencies=lat, seed=1)
    th_lazy = lazy.run(5000).throughput("mux")
    early = TimedDMGSimulator(
        mux_diamond(),
        latencies=lat,
        guards={"mux": select_guard({"fm": 0.85, "sm": 0.15})},
        seed=1,
    )
    est = early.run(5000)
    th_early = est.throughput("mux")
    print(
        f"\ntimed mux diamond (slow branch latency 8, selected 15%):"
        f"\n  lazy  throughput = {th_lazy:.3f}"
        f"\n  early throughput = {th_early:.3f}  "
        f"({th_early / th_lazy:.2f}x, {sum(est.early_firings.values())} early "
        f"firings, {sum(est.negative_firings.values())} counterflow firings)"
    )


if __name__ == "__main__":
    main()
