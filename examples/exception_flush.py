#!/usr/bin/env python3
"""Pipeline flush by anti-token injection (the Sect. 7 extension).

The paper's conclusion observes that the anti-token counterflow
mechanism "can also be used for handling exceptions inside elastic
pipelines -- for example, flushing a pipeline on branch mispredictions
can be done by injecting anti-tokens".

This example models a speculative front-end: a fetch unit streams
instructions into a 5-stage elastic pipeline; a 'commit' consumer
occasionally discovers a misprediction and must cancel everything in
flight.  Instead of a global flush wire, it simply emits one anti-token
per speculative instruction; the anti-tokens travel backwards,
annihilating wrong-path instructions wherever they are.
"""

import random

from repro.elastic import ElasticBuffer, ElasticNetwork, Sink, Source


class CommitUnit(Sink):
    """Accepts instructions; on a misprediction flushes the window."""

    def __init__(self, name, channel, window, p_mispredict, rng):
        super().__init__(name, channel, rng=rng)
        self.window = window
        self.p_mispredict = p_mispredict
        self.flush_budget = 0
        self.flushes = 0
        self.wrong_path_cancelled = 0
        self.committed = []

    def evaluate(self):
        ch = self.input
        if self._action is None:
            if self.pending_anti or self.flush_budget > 0:
                self._action = "kill"
            elif self.rng.random() < self.p_mispredict:
                # Mispredicted: cancel the next `window` instructions.
                self.flushes += 1
                self.flush_budget = self.window
                self._action = "kill"
            else:
                self._action = "accept"
        action = self._action
        changed = ch.drive_vn(1 if action == "kill" else 0)
        changed |= ch.drive_sp(0)
        return changed

    def commit(self):
        ch = self.input
        if ch.pos_transfer:
            self.committed.append(ch.data)
        if self._action == "kill" and (ch.kill or ch.neg_transfer):
            self.flush_budget -= 1
            self.wrong_path_cancelled += 1
        super().commit()


def main() -> None:
    net = ElasticNetwork("flush")
    stages = 5
    chans = [net.add_channel(f"s{i}") for i in range(stages + 1)]
    fetch = Source("fetch", chans[0], data_fn=lambda n: f"i{n}")
    net.add(fetch)
    for i in range(stages):
        net.add(ElasticBuffer(f"stage{i}", chans[i], chans[i + 1]))
    commit = CommitUnit("commit", chans[-1], window=4,
                        p_mispredict=0.05, rng=random.Random(11))
    net.add(commit)

    net.run(2000)
    print(net.report())
    print(f"\nmispredictions: {commit.flushes}")
    print(f"wrong-path instructions cancelled: {commit.wrong_path_cancelled}")
    print(f"instructions committed: {len(commit.committed)}")

    # Correctness: the committed stream is a strictly increasing
    # subsequence of the fetch stream -- no wrong-path instruction was
    # ever committed, and no instruction was duplicated.
    indices = [int(i[1:]) for i in commit.committed]
    assert indices == sorted(set(indices)), "commit stream corrupted"
    gaps = sum(b - a - 1 for a, b in zip(indices, indices[1:]))
    print(f"flushed gaps in the committed stream: {gaps} instructions")
    print("\nAnti-tokens flushed exactly the speculative window, without")
    print("any global flush signal: the counterflow IS the flush logic.")


if __name__ == "__main__":
    main()
