#!/usr/bin/env python3
"""Quickstart: build and simulate a small elastic pipeline.

Builds the linear pipeline of Fig. 3 (three elastic buffers between a
producer and a consumer), runs it with a stalling consumer, and prints
the per-channel SELF statistics.  Every channel carries a protocol
monitor, so the run doubles as a runtime verification of persistence
and of the invariants of equation (2).
"""

import random

from repro.elastic import ElasticBuffer, ElasticNetwork, Sink, Source


def main() -> None:
    net = ElasticNetwork("quickstart")

    # Channels are named point-to-point links carrying {V+, S+, V-, S-}.
    chans = [net.add_channel(f"c{i}") for i in range(4)]

    # A producer that always has data (payload = sequence number).
    net.add(Source("producer", chans[0], data_fn=lambda n: n))

    # Three elastic buffers; the first holds an initial token.
    net.add(ElasticBuffer("eb0", chans[0], chans[1],
                          initial_tokens=1, initial_data=["init"]))
    net.add(ElasticBuffer("eb1", chans[1], chans[2]))
    net.add(ElasticBuffer("eb2", chans[2], chans[3]))

    # A consumer that stalls 30% of the cycles (the Retry state of the
    # SELF protocol exercises the buffers' back-pressure).
    received = []
    net.add(Sink("consumer", chans[3], p_stop=0.3,
                 on_data=received.append, rng=random.Random(7)))

    net.run(1000)

    print(net.report())
    print(f"\nreceived {len(received)} payloads, first five: {received[:5]}")
    data = [v for v in received if v != "init"]
    print("in order:", data == sorted(data))
    print("\nElasticity in action: the consumer stalled ~30% of cycles,")
    print("yet no token was lost or duplicated and the protocol monitors")
    print("observed no violation of (I*R*T)* persistence.")


if __name__ == "__main__":
    main()
