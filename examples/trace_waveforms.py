#!/usr/bin/env python3
"""Observability tour: waveforms, event streams and the metrics registry.

Builds a small elastic pipeline whose consumer both stalls and sends
anti-tokens upstream, then attaches one :class:`TraceRecorder` with
three consumers of the same event stream:

* a VCD sink -- open the written file in GTKWave to see the four
  ``{V+, S+, V-, S-}`` wires of every channel as waveforms;
* a JSONL sink -- one JSON object per event, greppable and diffable;
* a metrics registry -- counters/gauges summarising the same run.

Finally it cross-checks the three views against each other: the
transfer events in the ring buffer, the lines in the JSONL file and the
``channel_transfers_total`` counters must all agree.
"""

import json
import random
import tempfile
from pathlib import Path

from repro.elastic import ElasticBuffer, ElasticNetwork, Sink, Source
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    TraceRecorder,
    VcdSink,
    collect_network_metrics,
)


def main() -> None:
    net = ElasticNetwork("traced")
    chans = [net.add_channel(f"c{i}") for i in range(3)]
    net.add(Source("producer", chans[0], data_fn=lambda n: n))
    net.add(ElasticBuffer("eb0", chans[0], chans[1],
                          initial_tokens=1, initial_data=["init"]))
    net.add(ElasticBuffer("eb1", chans[1], chans[2]))
    # A consumer that stalls 20% of cycles and kills 10% -- retries and
    # anti-token counterflow both show up in the trace.
    net.add(Sink("consumer", chans[2], p_stop=0.2, p_kill=0.1,
                 rng=random.Random(7)))

    outdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    vcd_path = outdir / "pipeline.vcd"
    jsonl_path = outdir / "pipeline.jsonl"

    registry = MetricsRegistry()
    recorder = TraceRecorder(
        sinks=[VcdSink(str(vcd_path)), JsonlSink(str(jsonl_path))],
        metrics=registry,
    ).attach_network(net)

    net.run(500)
    recorder.close()
    collect_network_metrics(net, registry)

    print(f"recorded {recorder.emitted} events over {net.cycle} cycles:")
    for kind, count in recorder.counts().items():
        print(f"  {kind:12s} {count}")

    # Three views, one truth: ring buffer vs JSONL file vs counters.
    counts = recorder.counts()
    traced = counts.get("transfer+", 0) + counts.get("transfer-", 0)
    jsonl_events = [
        json.loads(line) for line in jsonl_path.read_text().splitlines()
    ]
    streamed = sum(
        1 for e in jsonl_events if e["kind"] in ("transfer+", "transfer-")
    )
    counted = sum(
        c.value for c in registry.series("channel_transfers_total")
    )
    print(f"\ntransfers: ring={traced} jsonl={streamed} metrics={counted}")
    assert traced == streamed == counted, "the three views disagree"

    print("\nselected metrics:")
    for metric in registry.series("channel_throughput"):
        print(f"  {metric.key:40s} {metric.snapshot()['last']}")
    kills = sum(c.value for c in registry.series("channel_kills_total"))
    print(f"  annihilations (kills): {kills}")

    print(f"\nwaveforms: gtkwave {vcd_path}")
    print(f"events:    {jsonl_path}")
    print("counters reconcile across all three exports")


if __name__ == "__main__":
    main()
