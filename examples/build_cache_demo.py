"""Cold-then-warm compiled campaign: same bytes, cached build.

The compiled-backend contract in one script:

1. run the dual-EHB fault campaign twice with ``backend="compiled"``
   against an empty build cache -- the first run emits the generated
   module onto disk (cold), the second loads it back (warm);
2. both reports must be byte-identical to each other *and* to the
   interpreted ``BatchSimulator`` reference;
3. the warm run must perform **zero** codegen (cache misses stay flat,
   asserted via the process hit/miss counters) and build its simulator
   measurably faster than the cold run;
4. the generated ``module.py`` is left in ``artifacts/`` when that
   directory exists (CI uploads it), so the emitted code itself is
   reviewable.

Run me:  PYTHONPATH=src python examples/build_cache_demo.py
"""

import shutil
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.codegen.cache import BuildCache, process_stats  # noqa: E402
from repro.faults.campaign import CampaignConfig, run_campaign  # noqa: E402
from repro.faults.targets import TARGETS  # noqa: E402

CONFIG = CampaignConfig(
    cycles=300, seed=2007, kinds=("stuck0", "stuck1", "flip"),
    untestable_analysis=False,
)
LANES = 256


def _timed_build(cache: BuildCache) -> float:
    """Seconds to materialise the dual-EHB module through ``cache``."""
    target = TARGETS["dual_ehb"]()
    t0 = time.perf_counter()
    cache.load_module(
        target.netlist,
        hooks=frozenset(target.fault_sites),
        observe=frozenset(target.observe),
    )
    return time.perf_counter() - t0


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="build-cache-") as scratch:
        root = Path(scratch) / "codegen"

        cold_build_s = _timed_build(BuildCache(root))
        before = process_stats()
        cold = run_campaign(
            "dual_ehb", CONFIG, lanes=LANES,
            backend="compiled", cache=str(root),
        )

        # a fresh BuildCache sees only the disk tier, like a new process
        warm_build_s = _timed_build(BuildCache(root))
        mid = process_stats()
        warm = run_campaign(
            "dual_ehb", CONFIG, lanes=LANES,
            backend="compiled", cache=str(root),
        )
        after = process_stats()
        reference = run_campaign("dual_ehb", CONFIG, lanes=LANES)

        print(f"cold build: {cold_build_s * 1e3:6.1f} ms "
              f"(misses so far: {before['misses']})")
        print(f"warm build: {warm_build_s * 1e3:6.1f} ms "
              f"({cold_build_s / warm_build_s:.1f}x faster)")

        assert cold.to_json() == warm.to_json(), "cold != warm report"
        assert warm.to_json() == reference.to_json(), "compiled != batch"
        print(f"cold and warm compiled reports are byte-identical "
              f"({len(warm.outcomes)} faults), and both match the "
              f"interpreted batch reference byte-for-byte")

        assert after["misses"] == mid["misses"], (
            "the warm campaign re-emitted a module"
        )
        assert warm_build_s < cold_build_s, (
            "warm build not faster than cold"
        )
        print(f"warm-cache run performed zero codegen: misses flat at "
              f"{after['misses']}, hits {before['hits']} -> "
              f"{after['hits']}")

        artifacts = Path("artifacts")
        if artifacts.is_dir():
            entries = [p for p in root.iterdir() if p.is_dir()]
            shutil.copy(entries[0] / "module.py",
                        artifacts / "dual_ehb_module.py")
            print(f"copied generated module to "
                  f"{artifacts / 'dual_ehb_module.py'}")


if __name__ == "__main__":
    main()
