"""Kill a socket worker mid-campaign; the report must not flinch.

The distributed-fabric contract in one script:

1. start three ``repro worker`` subprocesses on loopback ports -- real
   CLI workers, each a separate process with its own event loop;
2. drive a fault campaign over them with the fabric coordinator and
   SIGKILL one worker as soon as the first chunk lands -- no cleanup
   handler runs, exactly like an OOM kill or a yanked machine;
3. the coordinator requeues the dead worker's leases onto the
   survivors and the merged JSON report is byte-for-byte what an
   uninterrupted single-process run produces.

Artifacts (for CI upload): the merged campaign report and a fabric
metrics snapshot -- health transitions, retry counters, lease/steal
counts -- are written to the output directory (default ``artifacts``).

Run me:  PYTHONPATH=src python examples/fabric_chaos_smoke.py [outdir]
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.fabric import FabricConfig  # noqa: E402
from repro.faults.campaign import CampaignConfig, run_campaign  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402

CONFIG = CampaignConfig(cycles=120, seed=2007)
FABRIC = FabricConfig(
    fixed_lease=6,  # every worker holds a real lease when chaos strikes
    heartbeat_interval=0.05,
    degraded_after=0.4,
    dead_after=1.0,
    backoff_base=0.05,
    backoff_cap=0.2,
    connect_timeout=5.0,
)


def start_worker(env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()  # "fabric worker listening on HOST:PORT"
    address = line.rsplit(" ", 1)[-1].strip()
    if ":" not in address:
        proc.kill()
        raise SystemExit(f"worker never announced an address: {line!r}")
    return proc, address


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
    outdir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    golden = run_campaign("dual_ehb", CONFIG, lanes=4).to_json()

    workers = [start_worker(env) for _ in range(3)]
    addresses = [address for _, address in workers]
    victim = workers[-1][0]
    print(f"3 fabric workers up: {', '.join(addresses)}")

    metrics = MetricsRegistry()
    killed = []

    def kill_on_first_chunk(done, total):
        # At the first completed chunk every worker still holds most of
        # its fixed 6-unit lease: killing one now guarantees leased
        # work dies with it and must be requeued onto the survivors.
        if not killed:
            killed.append(victim.pid)
            os.kill(victim.pid, signal.SIGKILL)
            print(f"SIGKILLed worker {addresses[-1]} "
                  f"(pid {victim.pid}) after {done}/{total} injections")

    try:
        report = run_campaign(
            "dual_ehb", CONFIG, lanes=4,
            workers=addresses, fabric=FABRIC,
            metrics=metrics, progress=kill_on_first_chunk,
        )
    finally:
        for proc, _ in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc, _ in workers:
            proc.wait(timeout=10)

    assert killed, "the chaos hook never fired"
    merged = report.to_json()
    (outdir / "fabric-campaign.json").write_text(merged)

    requeues = sum(
        m.value for m in metrics.series("campaign_shard_retries_total")
        if dict(m.labels)["reason"] == "crash"
    )
    deaths = sum(
        m.value for m in metrics.series("fabric_worker_transitions_total")
        if dict(m.labels)["to"] == "DEAD"
    )
    snapshot = {
        "workers": addresses,
        "killed": addresses[-1],
        "crash_requeues": requeues,
        "worker_deaths": deaths,
        "series": metrics.snapshot(),
    }
    (outdir / "fabric-metrics.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True)
    )

    assert requeues >= 1, "the dead worker's leases were never requeued"
    assert deaths >= 1, "the health machine never recorded the death"
    print(f"dead worker's leases requeued: {requeues} unit(s), "
          f"{deaths} DEAD transition(s)")

    assert merged == golden, "chaos changed the report bytes"
    print(f"merged report matches the uninterrupted jobs=1 run "
          f"byte-for-byte ({len(golden)} bytes)")
    print(f"artifacts in {outdir}/: fabric-campaign.json, "
          f"fabric-metrics.json")


if __name__ == "__main__":
    main()
