"""Kill a sharded fault campaign mid-flight, then resume it.

The resilience contract in one script:

1. run ``repro inject`` as a subprocess with ``--jobs 2`` and a
   ``--checkpoint`` directory;
2. wait until a few chunks have been persisted, then SIGKILL the whole
   process -- no cleanup handler runs, exactly like an OOM kill or a
   pulled plug;
3. rerun with ``--resume``: the completed chunks are skipped and the
   final report is byte-for-byte what an uninterrupted run produces.

Run me:  PYTHONPATH=src python examples/kill_and_resume.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.faults.campaign import CampaignConfig, run_campaign  # noqa: E402

CYCLES = 120
SEED = 2007


def main() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="kill-resume-") as scratch:
        store = Path(scratch) / "checkpoint"
        report = Path(scratch) / "campaign.json"
        argv = [
            sys.executable, "-m", "repro", "inject",
            "--netlist", "dual_ehb", "--cycles", str(CYCLES),
            "--seed", str(SEED), "--jobs", "2",
            "--checkpoint", str(store), "--report", str(report),
        ]

        proc = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        killed = False
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # too fast to kill -- the resume below still runs
            done = len(list(store.glob("chunk-*.json")))
            if done >= 2:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                killed = True
                break
            time.sleep(0.05)
        else:
            proc.kill()
            proc.wait(timeout=30)
            raise SystemExit("campaign never produced a chunk to kill over")

        survivors = len(list(store.glob("chunk-*.json")))
        print(f"killed mid-campaign: {killed} "
              f"(checkpointed chunks at kill time: {survivors})")

        resume = subprocess.run(
            [
                sys.executable, "-m", "repro", "inject",
                "--netlist", "dual_ehb", "--cycles", str(CYCLES),
                "--seed", str(SEED), "--jobs", "2",
                "--resume", str(store), "--report", str(report),
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert resume.returncode == 0, resume.stderr
        resumed_bytes = report.read_text()

    golden = run_campaign(
        "dual_ehb", CampaignConfig(cycles=CYCLES, seed=SEED)
    ).to_json()
    assert resumed_bytes == golden, "resumed report diverged from golden"
    print(f"resumed report matches the uninterrupted run byte-for-byte "
          f"({len(golden)} bytes)")


if __name__ == "__main__":
    main()
