"""Application bench: the elastic processor pipeline.

Sweeps the misprediction rate and the opcode mix, reporting IPC of the
early-evaluation writeback vs the lazy baseline -- the paper's
machinery (EJ + VL + anti-token flushing) on a realistic workload.
"""

import pytest

from repro.casestudy.processor import ProcessorConfig, run_processor


def test_reproduce_mispredict_sweep():
    print("\n=== elastic CPU: IPC vs misprediction rate ===")
    print(f"{'p_mis':>6} {'early':>6} {'lazy':>6} {'gain':>5}")
    gains = []
    for p in (0.0, 0.25, 0.5):
        early = run_processor(
            ProcessorConfig(early_writeback=True, p_mispredict=p, seed=11),
            cycles=4000,
        )[0]
        lazy = run_processor(
            ProcessorConfig(early_writeback=False, p_mispredict=p, seed=11),
            cycles=4000,
        )[0]
        gains.append(early.ipc / lazy.ipc)
        print(f"{p:6.2f} {early.ipc:6.3f} {lazy.ipc:6.3f} {gains[-1]:4.2f}x")
    assert all(g > 1.2 for g in gains)


def test_reproduce_opmix_sweep():
    print("\n=== elastic CPU: IPC vs opcode mix (early writeback) ===")
    print(f"{'P(alu)':>6} {'IPC':>6}")
    prev = 0.0
    for p_alu in (0.2, 0.5, 0.8, 1.0):
        rest = (1 - p_alu) / 2
        cfg = ProcessorConfig(
            op_mix={"alu": p_alu, "mul": rest, "mem": rest},
            p_branch=0.0,
            seed=13,
        )
        ipc = run_processor(cfg, cycles=4000)[0].ipc
        print(f"{p_alu:6.2f} {ipc:6.3f}")
        assert ipc >= prev - 0.02  # more fast ops never hurts
        prev = ipc


def test_bench_processor(benchmark):
    def run():
        return run_processor(ProcessorConfig(seed=17), cycles=1000)[0]

    report = benchmark(run)
    assert report.committed > 100
