"""Ablation (Sect. 7): multi-anti-token storage in the early join.

The paper: "it would be possible to extend the approach to store
multiple anti-tokens at every controller.  This might improve
performance in some corner cases, but we found little experimental
motivation for this feature."  We implement the extension
(`EarlyJoin(anti_capacity=k)`) and sweep k on the Fig. 9 system: the
sweep reproduces the authors' negative finding, and explains it -- the
negative sub-channel moves at most one anti-token per cycle, so extra
storage only buffers transients.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.elastic.behavioral import EarlyJoin
from repro.synthesis.elaborate import to_behavioral


def throughput_with_capacity(k: int, cycles=4000, seed=6) -> float:
    spec = build_fig9_spec(Config.ACTIVE, seed=seed)
    net = to_behavioral(spec, seed=seed)
    ej = next(c for c in net.controllers if isinstance(c, EarlyJoin))
    ej.anti_capacity = k
    net.run(cycles)
    return net.throughput("Din->S")


def test_reproduce_anticapacity_sweep():
    print("\n=== ablation: EJ anti-token storage depth ===")
    print(f"{'capacity':>8} {'Th':>6}")
    results = {}
    for k in (1, 2, 4, 8):
        results[k] = throughput_with_capacity(k)
        print(f"{k:8d} {results[k]:6.3f}")
    # the paper's finding: no meaningful gain beyond capacity 1
    assert results[8] < results[1] * 1.05
    assert results[8] >= results[1] * 0.95


def test_bench_capacity_four(benchmark):
    result = benchmark(throughput_with_capacity, 4, 1200)
    assert result > 0.3
