"""Ablation: control-layer overhead vs. datapath width.

The paper closes Table 1 by noting "the area overhead of the control
layer is small for wide (e.g. 32 or 64-bit) datapaths".  The control
layer's size is *independent* of the width; the datapath scales
linearly (one master/slave latch pair per bit per register, plus the
functional logic).  This bench computes the control/datapath area ratio
for widths 1..64 using the same literal/latch accounting as Table 1.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.synthesis.elaborate import control_layer_area

#: datapath cost model per bit: each register needs 2 transparent
#: latches; each functional unit input contributes ~4 literals of logic
#: (a conservative, paper-era factored-form estimate).
LATCH_LIT_EQUIV = 2  # one latch counted as ~2 literals of area
DATAPATH_LITERALS_PER_BIT = 12  # arithmetic logic (an adder bit ~10 lit)


def datapath_cost(spec, width):
    registers = len(spec.registers)
    unit_inputs = sum(b.n_inputs for b in spec.blocks.values())
    latches = 2 * registers * width
    literals = DATAPATH_LITERALS_PER_BIT * unit_inputs * width
    return literals + LATCH_LIT_EQUIV * latches


def control_cost(area):
    return area.literals + LATCH_LIT_EQUIV * (area.latches + 2 * area.flops)


def test_reproduce_width_sweep():
    print("\n=== ablation: control overhead vs datapath width ===")
    print(f"{'width':>5} {'control':>8} {'datapath':>9} {'overhead':>9}")
    spec = build_fig9_spec(Config.ACTIVE)
    ctrl = control_cost(control_layer_area(spec))
    overheads = {}
    for width in (1, 4, 8, 16, 32, 64):
        dp = datapath_cost(spec, width)
        overheads[width] = ctrl / (ctrl + dp)
        print(f"{width:5d} {ctrl:8d} {dp:9d} {overheads[width]:8.1%}")
    assert overheads[1] > 0.5       # control dominates a 1-bit datapath
    assert overheads[32] < 0.15     # "small for wide datapaths"
    assert overheads[64] < 0.08


def test_reproduce_overhead_by_configuration():
    print("\n=== control overhead at width 32, per configuration ===")
    for config in Config:
        spec = build_fig9_spec(config)
        ctrl = control_cost(control_layer_area(spec))
        dp = datapath_cost(spec, 32)
        print(f"{config.value:>22}: {ctrl / (ctrl + dp):6.1%}")


def test_bench_area_accounting(benchmark):
    spec = build_fig9_spec(Config.ACTIVE)
    area = benchmark(control_layer_area, spec)
    assert area.literals > 300
