"""Ablation: automatic buffer insertion (slack matching) on Fig. 9.

Elasticity's re-pipelining freedom, exercised by a tool: the greedy
optimiser of :mod:`repro.synthesis.sizing` decides where extra EBs pay
on the case-study system, guided only by simulation.  The critical-
cycle analysis names the structural bottleneck it cannot buy back
(the M1/M2 service loop -- only a faster multiplier fixes that).
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.synthesis.sizing import critical_cycles, optimize_buffers


def test_reproduce_critical_cycles():
    print("\n=== Fig. 9 critical cycles (lazy abstraction) ===")
    for ratio, arcs in critical_cycles(
        build_fig9_spec(Config.LAZY), mean_latency={"M1": 3.6, "M2": 1.5},
        top=3,
    ):
        core = [a for a in arcs if not a.startswith(("~", "env:"))]
        print(f"  ratio {ratio} ({float(ratio):.3f}): {' -> '.join(core)}")
    ratios = [r for r, _ in critical_cycles(build_fig9_spec(Config.LAZY),
                                            mean_latency={"M1": 3.6, "M2": 1.5})]
    assert float(ratios[0]) <= 0.26


def test_reproduce_greedy_sizing():
    candidates = ["C->W", "I->W", "F3->W", "S->I", "W->fb"]
    spec = build_fig9_spec(Config.ACTIVE, seed=5)
    optimized, result = optimize_buffers(
        spec, candidates, probe="Din->S", budget=3, cycles=2500, seed=5
    )
    print("\n=== greedy buffer insertion on the active configuration ===")
    print(result)
    # buffers never *reduce* the achievable throughput when chosen greedily
    assert result.final_throughput >= result.base_throughput - 1e-9
    # and the optimised spec still elaborates and validates
    optimized.validate()


def test_bench_one_sizing_round(benchmark):
    def run():
        spec = build_fig9_spec(Config.ACTIVE, seed=5)
        return optimize_buffers(
            spec, ["C->W", "I->W"], probe="Din->S", budget=1, cycles=800,
            seed=5,
        )[1]

    result = benchmark(run)
    assert result.base_throughput > 0.3
