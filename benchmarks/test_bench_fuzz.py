"""Fuzz harness scale: generation, repair and the differential oracle.

Times the three kernels the fuzzing campaign is built from -- the
seeded spec generator (with its validity-repair pass), the behavioural
cross-check oracle, and spec-level ddmin shrinking of a planted
broken-early-join counterexample -- and records throughput-style
numbers in ``extra_info`` so capacity regressions (specs/s, blocks per
generated model, shrink ratio) show up next to the timings.
"""

import random

import pytest

from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracle import OracleConfig, run_oracle
from repro.fuzz.runner import FuzzConfig, run_fuzz
from repro.fuzz.shrink import shrink_model

FAST = OracleConfig(cycles=48, lanes=4, check_gates=False,
                    check_verify=False)


def test_bench_generate_large_spec(benchmark):
    cfg = GeneratorConfig(max_blocks=400, min_blocks=400)

    def generate():
        return generate_model(random.Random("bench:gen"), cfg, name="big")

    model = benchmark(generate)
    assert len(model.blocks) == 400
    benchmark.extra_info["blocks"] = len(model.blocks)
    benchmark.extra_info["connections"] = len(model.connections)


def test_bench_elaborate_large_spec(benchmark):
    from repro.synthesis.elaborate import to_behavioral

    cfg = GeneratorConfig(max_blocks=400, min_blocks=400)
    model = generate_model(random.Random("bench:gen"), cfg, name="big")
    spec = model.build()

    def elaborate_and_step():
        net = to_behavioral(spec, seed=0, monitor=True, check_data=True)
        for _ in range(8):
            net.step()
        return net

    net = benchmark(elaborate_and_step)
    benchmark.extra_info["controllers"] = len(net.controllers)


def test_bench_oracle_campaign(benchmark):
    config = FuzzConfig(seed=11, specs=4, max_blocks=16, cycles=48,
                        lanes=4, check_gates=False, check_verify=False)

    report = benchmark(run_fuzz, config)
    assert report.examined == 4
    assert report.findings == []
    benchmark.extra_info["specs"] = report.examined


def test_bench_shrink_planted_bug(benchmark):
    mutate = MUTATIONS["broken-early-join"]
    cfg = GeneratorConfig(max_blocks=24, min_blocks=12, p_join=0.9,
                          p_early=1.0, p_fork=0.2, p_vl=0.0,
                          p_kill_sink=0.0, source_p_valid=(0.5, 0.75))

    def fails(candidate):
        finding = run_oracle(candidate, seed=0, config=FAST, mutate=mutate)
        return finding is not None and finding.stage == "behavioral"

    model = None
    for trial in range(40):
        candidate = generate_model(random.Random(f"bench:shrink:{trial}"),
                                   cfg, name=f"bs{trial}")
        if fails(candidate):
            model = candidate
            break
    assert model is not None, "planted bug never fired"

    shrunk = benchmark(shrink_model, model, fails)
    assert len(shrunk.blocks) <= 6
    benchmark.extra_info["blocks_before"] = len(model.blocks)
    benchmark.extra_info["blocks_after"] = len(shrunk.blocks)
