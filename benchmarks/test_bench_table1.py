"""Table 1: throughput and area of the five Fig. 9 configurations.

Paper reference (10K-cycle Verilog simulations + SIS synthesis)::

    Configuration        Th     ...   lit  lat  ff
    Active anti-tokens   0.400        253   56   9
    No buffer (S->W)     0.343        241   52   9
    Passive (F3->W)      0.387        213   44   9
    Passive (M2->W)      0.280        234   52   9
    No early evaluation  0.277        176   40   6

We reproduce the shape: the ordering of configurations, the placement
of kills (latch boundaries) vs negative transfers (channels into the
early join), and the area ordering; see EXPERIMENTS.md for the
side-by-side numbers.
"""

import pytest

from repro.casestudy import Config, format_table, run_config, run_table1

PAPER_THROUGHPUT = {
    Config.ACTIVE: 0.400,
    Config.NO_BUFFER: 0.343,
    Config.PASSIVE_F3W: 0.387,
    Config.PASSIVE_M2W: 0.280,
    Config.LAZY: 0.277,
}


@pytest.fixture(scope="module")
def table(repro_cycles):
    return run_table1(cycles=repro_cycles, seed=2007)


def test_reproduce_table1(table):
    print("\n=== Table 1 (reproduced) ===")
    print(format_table(table))
    print("\npaper throughputs:",
          {c.value: th for c, th in PAPER_THROUGHPUT.items()})
    ours = {row.config: row.throughput for row in table}
    # Shape assertions: same winner, same loser, same passive split.
    assert max(ours, key=ours.get) in (Config.ACTIVE, Config.PASSIVE_F3W)
    assert min(ours, key=ours.get) in (Config.LAZY, Config.PASSIVE_M2W)
    assert ours[Config.ACTIVE] > ours[Config.NO_BUFFER] > ours[Config.LAZY]
    assert ours[Config.PASSIVE_F3W] > ours[Config.PASSIVE_M2W]
    # Area ordering matches the paper.
    lits = {row.config: row.area.literals for row in table}
    assert lits[Config.ACTIVE] == max(lits.values())
    assert lits[Config.LAZY] == min(lits.values())


def test_bench_active_configuration(benchmark):
    """Time one 2 000-cycle simulation of the active configuration."""
    row = benchmark(run_config, Config.ACTIVE, cycles=2000, seed=1,
                    with_area=False)
    assert row.throughput > 0.3


def test_bench_area_pipeline(benchmark):
    """Time the gate-level elaboration + constant propagation + count."""
    from repro.casestudy.fig9 import build_fig9_spec
    from repro.synthesis.elaborate import control_layer_area

    spec = build_fig9_spec(Config.ACTIVE)
    report = benchmark(control_layer_area, spec)
    assert report.latches > 40
