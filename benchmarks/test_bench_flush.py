"""Extension bench (Sect. 7): pipeline flush by anti-token injection.

"The mechanism for anti-token counter-flow can also be used for
handling exceptions inside elastic pipelines.  For example, flushing a
pipeline on branch mispredictions can be done by injecting
anti-tokens."  This bench measures the cost of a flush: how many cycles
a window of anti-tokens needs to drain a deep pipeline, as a function
of pipeline depth.
"""

import random

import pytest

from repro.elastic import ElasticBuffer, ElasticNetwork, Sink, Source


class FlushingSink(Sink):
    """Accepts tokens, but injects a burst of anti-tokens on command."""

    def __init__(self, name, channel, rng):
        super().__init__(name, channel, rng=rng)
        self.burst = 0
        self.drained_at = None
        self.clock = 0

    def flush(self, count):
        self.burst = count

    def evaluate(self):
        ch = self.input
        if self._action is None:
            self._action = "kill" if (self.burst > 0 or self.pending_anti) else "accept"
        action = self._action
        changed = ch.drive_vn(1 if action == "kill" else 0)
        changed |= ch.drive_sp(0)
        return changed

    def commit(self):
        ch = self.input
        if self._action == "kill" and (ch.kill or ch.neg_transfer):
            self.burst -= 1
            if self.burst == 0:
                self.drained_at = self.clock
        self.clock += 1
        super().commit()


def flush_latency(depth: int, window: int, seed=0) -> int:
    """Cycles for `window` anti-tokens to be fully absorbed."""
    net = ElasticNetwork(f"flush{depth}")
    chans = [net.add_channel(f"c{i}") for i in range(depth + 1)]
    net.add(Source("fetch", chans[0], rng=random.Random(seed)))
    for i in range(depth):
        net.add(ElasticBuffer(f"s{i}", chans[i], chans[i + 1]))
    sink = FlushingSink("commit", chans[-1], rng=random.Random(seed + 1))
    net.add(sink)
    net.run(depth + 5)  # fill the pipeline
    start = sink.clock
    sink.flush(window)
    net.run(4 * (depth + window) + 20)
    assert sink.drained_at is not None, "flush never completed"
    return sink.drained_at - start


def test_reproduce_flush_latency_series():
    print("\n=== flush latency vs pipeline depth (window = depth) ===")
    print(f"{'depth':>5} {'cycles':>6}")
    prev = 0
    for depth in (2, 4, 8, 16):
        cycles = flush_latency(depth, window=depth)
        print(f"{depth:5d} {cycles:6d}")
        assert cycles >= prev  # deeper pipelines take longer to flush
        prev = cycles
    # the flush is pipelined: cost grows linearly, not quadratically
    assert flush_latency(16, 16) < 8 * flush_latency(2, 2) + 8


def test_flush_preserves_order_after_refill():
    net = ElasticNetwork("refill")
    chans = [net.add_channel(f"c{i}") for i in range(4)]
    net.add(Source("fetch", chans[0], data_fn=lambda n: n))
    for i in range(3):
        net.add(ElasticBuffer(f"s{i}", chans[i], chans[i + 1]))
    sink = FlushingSink("commit", chans[-1], rng=random.Random(3))
    net.add(sink)
    net.run(10)
    sink.flush(5)
    net.run(50)
    data = [v for v in sink.received if isinstance(v, int)]
    assert data == sorted(data)


def test_bench_flush(benchmark):
    result = benchmark(flush_latency, 8, 8)
    assert result > 0
