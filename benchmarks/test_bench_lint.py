"""Static-analysis cost: the dataflow engine vs the legacy sweep.

The ternary constant analysis (LNT006) was re-based onto the generic
worklist fixpoint engine of :mod:`repro.lint.dataflow`.  This bench
holds the engine to the bargain on the largest shipped design (the
Fig. 9 PASSIVE_F3W control layer, ~670 gates): same results as the
legacy reference sweep, at most 1.5x its wall time, and a full
``lint_netlist`` pass that stays interactive.
"""

import time

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.lint.netlist_rules import (
    _constant_fixpoint,
    constant_values,
    lint_netlist,
)
from repro.rtl.logic import X
from repro.synthesis.elaborate import to_gates

#: wall-time budget for the engine, relative to the legacy sweep
ENGINE_BUDGET = 1.5


@pytest.fixture(scope="module")
def largest_netlist():
    """The biggest gate-level design the repo ships."""
    return to_gates(
        build_fig9_spec(Config.PASSIVE_F3W), include_env=True,
        as_latches=True,
    ).netlist


def _best_of(fn, arg, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_matches_legacy_within_budget(largest_netlist):
    nl = largest_netlist
    engine_vals = constant_values(nl)
    legacy_vals = _constant_fixpoint(nl)
    # the legacy sweep omits never-known signals; compare .get-X-wise
    assert all(
        engine_vals[sig] == legacy_vals.get(sig, X) for sig in engine_vals
    )

    engine = _best_of(constant_values, nl)
    legacy = _best_of(_constant_fixpoint, nl)
    print(f"\n=== LNT006 on {nl.name} ({len(nl.gates)} gates) ===")
    print(f"engine {engine * 1e3:8.2f} ms")
    print(f"legacy {legacy * 1e3:8.2f} ms  (budget {ENGINE_BUDGET}x)")
    assert engine <= ENGINE_BUDGET * legacy, (
        f"dataflow LNT006 took {engine / legacy:.2f}x the legacy sweep "
        f"(budget {ENGINE_BUDGET}x)"
    )


def test_bench_constant_values(benchmark, largest_netlist):
    vals = benchmark(constant_values, largest_netlist)
    assert vals  # a total environment over the signal graph


def test_bench_full_lint(benchmark, largest_netlist):
    findings = benchmark(lint_netlist, largest_netlist)
    assert all(f.severity.name == "INFO" for f in findings)
