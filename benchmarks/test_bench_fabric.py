"""Distributed campaign fabric: scaling and tail-latency benchmarks.

Two claims are measured on a >=10k-injection stuck-at sweep of the
dual-EHB target:

* four local socket workers beat the single-process campaign's wall
  time (the fabric's framing/handshake overhead amortises once the
  compute per unit dominates a round trip).  Parallel speedup needs
  parallel hardware: on a single-core host the test degrades to an
  overhead bound -- the fabric must stay within 2x of the serial
  sweep even with zero usable parallelism;
* adaptive lease sizing shrinks the tail -- the grant-to-last-result
  latency of the final chunk -- versus static fixed-size chunks,
  because leases near the drain are small enough that no worker sits
  on a long run while the others idle.  Work stealing is disabled in
  *both* arms of that comparison so it measures the sizing policy
  alone (stealing would smooth the fixed baseline's drain too).

Workers are long-lived servers: the fixture warms each one's runner
cache with a one-unit run first, so the timed runs measure steady-state
sweep throughput rather than the once-per-config harness build.  Both
configurations produce byte-identical outcome sets (asserted), so the
comparison is purely about wall time.
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.fabric import FabricConfig, FabricCoordinator, serve
from repro.fabric.jobs import encode_campaign_config, encode_injection
from repro.faults.campaign import (
    CampaignConfig,
    _chunked,
    enumerate_injections,
    resolve_target,
    run_campaign,
)

LANES = 64
#: 46 fault sites x 2 stuck-at kinds x 109 injection cycles = 10,028
#: injections; untestable analysis off so both arms time the sweep only.
CONFIG = CampaignConfig(
    cycles=120,
    seed=2007,
    injection_cycles=tuple(range(109)),
    untestable_analysis=False,
)


def _serve(queue):
    serve("127.0.0.1", 0, on_ready=lambda host, port: queue.put(port))


def fabric_units():
    target = resolve_target("dual_ehb")
    injections = enumerate_injections(target, CONFIG)
    assert len(injections) >= 10_000
    return [
        (index, [encode_injection(i) for i in chunk])
        for index, chunk in enumerate(_chunked(injections, LANES))
    ]


def run_fabric(worker_addresses, units=None, **fabric_kwargs):
    coordinator = FabricCoordinator(
        "campaign",
        {
            "target": "dual_ehb",
            "config": encode_campaign_config(CONFIG),
            "lanes": LANES,
            "degrade": True,
            "backend": "batch",
            "cache": None,
        },
        fabric_units() if units is None else units,
        worker_addresses,
        config=FabricConfig(**fabric_kwargs),
        injections_per_unit=LANES,
    )
    started = time.perf_counter()
    results = coordinator.run()
    wall = time.perf_counter() - started
    return results, wall, coordinator


@pytest.fixture(scope="module")
def workers():
    queue = mp.Queue()
    processes = [
        mp.Process(target=_serve, args=(queue,), daemon=True)
        for _ in range(4)
    ]
    for process in processes:
        process.start()
    ports = [queue.get(timeout=60) for _ in processes]
    addresses = [("127.0.0.1", port) for port in ports]
    # Warm every worker's runner cache (one-unit run per worker) so the
    # timed sweeps below measure throughput, not harness builds.
    seed_unit = fabric_units()[:1]
    for address in addresses:
        run_fabric([address], units=seed_unit)
    yield addresses
    for process in processes:
        process.terminate()
        process.join(timeout=10)


def test_four_workers_beat_single_process(workers):
    t0 = time.perf_counter()
    serial = run_campaign("dual_ehb", CONFIG, lanes=LANES)
    serial_wall = time.perf_counter() - t0

    results, fabric_wall, coordinator = run_fabric(
        workers, lease_target_s=0.1,
    )
    merged = [o for index in sorted(results) for o in results[index]]
    assert [o["fault"] for o in merged] == [
        o.fault for o in serial.outcomes
    ]
    assert [o["status"] for o in merged] == [
        o.status for o in serial.outcomes
    ]
    stats = coordinator.stats()
    cores = os.cpu_count() or 1
    print(f"\n=== fabric scaling ({stats['units']} units x {LANES} "
          f"injections, {cores} core(s)) ===")
    print(f"jobs=1:    {serial_wall:6.2f}s")
    print(f"4 workers: {fabric_wall:6.2f}s "
          f"({serial_wall / fabric_wall:.2f}x, {stats['leases']} leases, "
          f"{stats['steals']} steals)")
    if cores >= 2:
        assert fabric_wall < serial_wall, (
            f"4 socket workers ({fabric_wall:.2f}s) must beat the "
            f"single-process sweep ({serial_wall:.2f}s) on {cores} cores"
        )
    else:
        # One core: four CPU-bound workers cannot beat one process, so
        # assert the fabric's framing/scheduling overhead is bounded.
        assert fabric_wall < serial_wall * 2.0, (
            f"single-core fabric overhead out of bounds: "
            f"{fabric_wall:.2f}s vs serial {serial_wall:.2f}s"
        )


def test_adaptive_leases_cut_tail_latency(workers):
    # Static baseline: classic fixed partitioning, a quarter of the
    # queue per worker and no stealing -- the final chunk keeps one
    # worker busy long after the others drain.
    units = len(fabric_units())
    fixed_size = max(1, (units + 3) // 4)
    _, fixed_wall, fixed = run_fabric(
        workers, fixed_lease=fixed_size, allow_steal=False,
    )
    fixed_tail = fixed.scheduler.tail_latency()

    _, adaptive_wall, adaptive = run_fabric(
        workers, lease_target_s=0.05, max_lease=fixed_size,
        allow_steal=False,
    )
    adaptive_tail = adaptive.scheduler.tail_latency()

    print(f"\n=== tail latency ({units} units) ===")
    print(f"fixed ({fixed_size}/lease): tail {fixed_tail * 1e3:7.1f}ms "
          f"wall {fixed_wall:.2f}s "
          f"(last lease {fixed.scheduler.stats()['last_lease']} units)")
    print(f"adaptive:          tail {adaptive_tail * 1e3:7.1f}ms "
          f"wall {adaptive_wall:.2f}s "
          f"(last lease {adaptive.scheduler.stats()['last_lease']} units)")
    assert adaptive_tail < fixed_tail, (
        f"adaptive lease sizing (tail {adaptive_tail:.3f}s) must cut the "
        f"last-chunk latency of fixed chunks (tail {fixed_tail:.3f}s)"
    )


def test_bench_fabric_four_workers(benchmark, workers):
    def sweep():
        results, _, coordinator = run_fabric(workers, lease_target_s=0.1)
        return results, coordinator

    results, coordinator = benchmark.pedantic(sweep, rounds=3, iterations=1)
    stats = coordinator.stats()
    benchmark.extra_info["units"] = stats["units"]
    benchmark.extra_info["injections"] = stats["units"] * LANES
    benchmark.extra_info["leases"] = stats["leases"]
    benchmark.extra_info["steals"] = stats["steals"]
    assert len(results) == stats["units"]
