"""Fig. 6: dual join, dual fork, and the early-evaluation join.

Reproduces the behaviours the figure's controllers implement -- lazy
synchronisation, eager forking with per-branch completion, anti-token
generation by the G gates -- by measuring event statistics on small
networks, and benchmarks each controller under a randomised
environment.
"""

import random

import pytest

from repro.elastic import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    MuxEE,
    Sink,
    Source,
)


def join_net(seed=0):
    net = ElasticNetwork("join")
    a, b = net.add_channel("a"), net.add_channel("b")
    am, bm = net.add_channel("am"), net.add_channel("bm")
    z = net.add_channel("z")
    net.add(Source("pa", a, p_valid=0.7, rng=random.Random(seed)))
    net.add(Source("pb", b, p_valid=0.4, rng=random.Random(seed + 1)))
    net.add(ElasticBuffer("eba", a, am))
    net.add(ElasticBuffer("ebb", b, bm))
    net.add(Join("J", [am, bm], z))
    net.add(Sink("c", z, rng=random.Random(seed + 2)))
    return net


def mux_net(p_a=0.8, early=True, seed=0):
    from repro.core.performance import fixed_latency
    from repro.elastic import VariableLatency

    net = ElasticNetwork("mux")
    s, a, b = net.add_channel("s"), net.add_channel("a"), net.add_channel("b")
    sm, am, bm = net.add_channel("sm"), net.add_channel("am"), net.add_channel("bm")
    bv = net.add_channel("bv")
    z = net.add_channel("z")
    rng = random.Random(seed)
    net.add(Source("ps", s, data_fn=lambda n: rng.random() < p_a))
    net.add(Source("pa", a, rng=random.Random(seed + 1)))
    net.add(Source("pb", b, rng=random.Random(seed + 2)))
    net.add(ElasticBuffer("ebs", s, sm))
    net.add(ElasticBuffer("eba", a, am))
    # The unselected operand comes through a slow unit: lazy joins pay
    # its latency on every operation, early joins only when selected.
    net.add(VariableLatency("slow", b, bv, latency=fixed_latency(5),
                            rng=random.Random(seed + 5)))
    net.add(ElasticBuffer("ebb", bv, bm))
    ee = MuxEE(select=0, chooser=lambda v: 1 if v else 2, arity=3)
    if early:
        net.add(EarlyJoin("W", [sm, am, bm], z, ee))
    else:
        net.add(Join("W", [sm, am, bm], z,
                     combine=lambda xs: xs[1] if xs[0] else xs[2]))
    net.add(Sink("c", z, rng=random.Random(seed + 3)))
    return net


def test_reproduce_fig6a_join_rate():
    net = join_net(seed=1)
    net.run(4000)
    th = net.throughput("z")
    print(f"\n=== Fig. 6(a) lazy join: output rate {th:.3f} "
          f"(slowest input offers 0.4) ===")
    assert th == pytest.approx(0.4, abs=0.05)


def test_reproduce_fig6b_fork_eagerness():
    net = ElasticNetwork("fork")
    i = net.add_channel("i")
    o1, o2 = net.add_channel("o1"), net.add_channel("o2")
    net.add(Source("p", i, rng=random.Random(5)))
    net.add(EagerFork("F", i, [o1, o2]))
    net.add(Sink("fast", o1, rng=random.Random(6)))
    net.add(Sink("slow", o2, p_stop=0.6, rng=random.Random(7)))
    net.run(4000)
    fast, slow = net.throughput("o1"), net.throughput("o2")
    print(f"\n=== Fig. 6(b) eager fork: fast branch {fast:.3f}, "
          f"slow branch {slow:.3f} ===")
    # both equalise to the slow branch rate (input consumed only when
    # all copies delivered), but the fast branch is never *behind*.
    assert abs(fast - slow) < 0.02


def test_reproduce_fig6c_early_join():
    early = mux_net(early=True, seed=2)
    early.run(6000)
    lazy = mux_net(early=False, seed=2)
    lazy.run(6000)
    th_e, th_l = early.throughput("z"), lazy.throughput("z")
    anti = early.channels["bm"].stats.negative / 6000
    print(f"\n=== Fig. 6(c) early join: Th {th_e:.3f} vs lazy {th_l:.3f}; "
          f"anti-token rate on unselected operand {anti:.3f} ===")
    assert th_e > th_l
    assert anti > 0.1


def test_bench_join(benchmark):
    def run():
        net = join_net(seed=9)
        net.run(1000)
        return net.throughput("z")

    assert benchmark(run) > 0.3


def test_bench_early_join(benchmark):
    def run():
        net = mux_net(seed=9)
        net.run(1000)
        return net.throughput("z")

    assert benchmark(run) > 0.3
