"""Figs. 3 and 5: linear pipelines of (dual) elastic half buffers.

Reproduces the structural behaviour the figures illustrate: forward
latency 1 and capacity 2 per EB, full throughput under free flow,
graceful degradation under back-pressure, and -- for the dual pipeline
of Fig. 5 -- token/anti-token cancellation at EHB boundaries.  The
benchmark times the behavioural network simulator on a 16-stage
pipeline and the two-phase gate simulator on its netlist twin.
"""

import random

import pytest

from repro.elastic import ElasticBuffer, ElasticNetwork, Sink, Source
from repro.elastic.gates import GateChannel, build_elastic_buffer, build_nd_sink, build_nd_source
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator


def pipeline(stages, p_stop=0.0, p_kill=0.0, seed=0):
    net = ElasticNetwork(f"pipe{stages}")
    chans = [net.add_channel(f"c{i}") for i in range(stages + 1)]
    net.add(Source("src", chans[0], rng=random.Random(seed)))
    for i in range(stages):
        net.add(ElasticBuffer(f"eb{i}", chans[i], chans[i + 1]))
    net.add(Sink("snk", chans[-1], p_stop=p_stop, p_kill=p_kill,
                 rng=random.Random(seed + 1)))
    return net


def test_reproduce_fig3_throughput_series():
    print("\n=== Fig. 3 pipeline: throughput vs consumer stall rate ===")
    print(f"{'p_stop':>6} {'Th':>6}")
    prev = 1.1
    for p_stop in (0.0, 0.2, 0.4, 0.6, 0.8):
        net = pipeline(6, p_stop=p_stop, seed=3)
        net.run(3000)
        th = net.throughput("c0")
        print(f"{p_stop:6.1f} {th:6.3f}")
        assert th <= prev + 0.02
        prev = th
    # free flow sustains full throughput; heavy stalling tracks 1-p.
    net = pipeline(6)
    net.run(500)
    assert net.throughput("c3") > 0.97


def test_reproduce_fig5_dual_pipeline():
    print("\n=== Fig. 5 dual pipeline: anti-token cancellation ===")
    net = pipeline(6, p_stop=0.1, p_kill=0.3, seed=4)
    net.run(4000)
    kills = {n: c.stats.kills for n, c in net.channels.items() if c.stats.kills}
    negs = {n: c.stats.negative for n, c in net.channels.items() if c.stats.negative}
    print("kill events per channel:", kills)
    print("negative transfers per channel:", negs)
    ths = [c.stats.throughput for c in net.channels.values()]
    print(f"throughput: {min(ths):.3f}..{max(ths):.3f}")
    assert sum(kills.values()) > 0
    assert max(ths) - min(ths) < 0.03  # repetitive behaviour


def test_bench_behavioral_pipeline(benchmark):
    def run():
        net = pipeline(16, p_stop=0.2, seed=5)
        net.run(500)
        return net

    net = benchmark(run)
    assert net.cycle == 500


def test_bench_gate_level_pipeline(benchmark):
    nl = Netlist("gatepipe")
    stages = 8
    chans = [GateChannel.declare(nl, f"c{i}") for i in range(stages + 1)]
    choice = nl.add_input("src.choice")
    build_nd_source(nl, chans[0], prefix="src", choice_input=choice)
    for i in range(stages):
        build_elastic_buffer(nl, chans[i], chans[i + 1], prefix=f"eb{i}")
    stall = nl.add_input("snk.stall")
    build_nd_sink(nl, chans[-1], prefix="snk", stall_input=stall)
    nl.add_output(chans[-1].vp)
    sim = TwoPhaseSimulator(nl)
    rng = random.Random(0)

    def run():
        sim.reset()
        transfers = 0
        for _ in range(200):
            vals = sim.cycle({"src.choice": 1, "snk.stall": rng.randint(0, 1)})
            transfers += vals[chans[-1].vp]
        return transfers

    transfers = benchmark(run)
    assert transfers > 50
