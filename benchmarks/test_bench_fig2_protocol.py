"""Fig. 2: the SELF protocol states and the (I*R*T)* language.

Generates random protocol-legal traces, classifies every cycle into
Transfer / Idle / Retry (and the dual anti-token events), checks the
language property, and times the monitor on long traces.
"""

import random

from repro.elastic.protocol import (
    ChannelState,
    ProtocolMonitor,
    classify,
)


def legal_trace(length, seed):
    """Random (V, S) trace obeying sender persistence."""
    rng = random.Random(seed)
    trace = []
    pending = False
    for _ in range(length):
        v = 1 if (pending or rng.random() < 0.6) else 0
        s = 1 if rng.random() < 0.3 else 0
        trace.append((v, s))
        pending = bool(v and s)
    return trace


def test_reproduce_fig2():
    trace = legal_trace(40, seed=1)
    states = [classify(v, s).value for v, s in trace]
    print("\n=== Fig. 2: channel trace ===")
    print("".join(states))
    # language (I*R*T)*: every R-run ends in T
    mon = ProtocolMonitor("demo")
    for v, s in trace:
        mon.observe(v, s, 0, 0, data="d" if v else None)
    assert mon.language_ok()
    counts = {st: states.count(st) for st in "TIR"}
    print("state counts:", counts)
    assert counts["T"] > 0


def test_bench_monitor(benchmark):
    trace = legal_trace(20_000, seed=2)

    def run():
        mon = ProtocolMonitor("bench", check_data=False)
        for v, s in trace:
            mon.observe(v, s, 0, 0)
        return mon

    mon = benchmark(run)
    assert mon.language_ok()
