"""The paper's framework outputs: Verilog, SMV and BLIF generation.

"A complete framework for elastic systems has been designed.  It can
generate Verilog models for simulation, SMV models for verification and
BLIF models for logic synthesis with SIS."  This bench regenerates all
three for the Fig. 9 control layer (with the paper's CTL properties
embedded as SMV SPEC clauses) and times the writers.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.rtl.export import channel_specs_smv, to_blif, to_smv, to_verilog
from repro.synthesis.elaborate import to_gates


@pytest.fixture(scope="module")
def elaborated():
    return to_gates(build_fig9_spec(Config.ACTIVE), include_env=True,
                    as_latches=True)


def test_reproduce_framework_outputs(elaborated, tmp_path):
    nl = elaborated.netlist
    verilog = to_verilog(nl, module="fig9_control")
    blif = to_blif(nl, model="fig9_control")
    specs = channel_specs_smv(elaborated.channels.values())
    fairness = [f"{sig} = TRUE" for sig in elaborated.env_inputs]
    smv = to_smv(nl, specs=specs, fairness=fairness)

    (tmp_path / "fig9_control.v").write_text(verilog)
    (tmp_path / "fig9_control.blif").write_text(blif)
    (tmp_path / "fig9_control.smv").write_text(smv)

    print("\n=== framework outputs for the Fig. 9 control layer ===")
    print(f"Verilog: {len(verilog.splitlines())} lines")
    print(f"BLIF:    {len(blif.splitlines())} lines "
          f"({blif.count('.latch')} .latch)")
    print(f"SMV:     {len(smv.splitlines())} lines "
          f"({smv.count('SPEC')} SPEC, {smv.count('FAIRNESS')} FAIRNESS)")

    assert verilog.count("endmodule") == 1
    assert blif.count(".latch") == nl.stats()["latches"] + nl.stats()["flops"]
    assert smv.count("SPEC") == 4 * len(elaborated.channels)


def test_bench_verilog_writer(benchmark, elaborated):
    text = benchmark(to_verilog, elaborated.netlist)
    assert "endmodule" in text


def test_bench_blif_writer(benchmark, elaborated):
    text = benchmark(to_blif, elaborated.netlist)
    assert ".end" in text


def test_bench_smv_writer(benchmark, elaborated):
    specs = channel_specs_smv(elaborated.channels.values())
    text = benchmark(to_smv, elaborated.netlist, specs)
    assert "MODULE main" in text
