"""Shared fixtures for the benchmark/reproduction harness.

Every ``test_bench_*`` module regenerates one table or figure of the
paper (printing the reproduced rows/series) and times a representative
kernel with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-cycles",
        action="store",
        type=int,
        default=10_000,
        help="simulation length for table/figure reproductions",
    )


@pytest.fixture(scope="session")
def repro_cycles(request):
    return request.config.getoption("--repro-cycles")
