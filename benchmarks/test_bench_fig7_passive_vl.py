"""Fig. 7: passive anti-tokens and the variable-latency controller.

Reproduces (a) the passive interface trade-off -- anti-tokens stop at
the boundary, upstream logic shrinks, throughput drops -- and (b) the
variable-latency controller's go/done/ack behaviour, including
preemption of in-flight computations by anti-tokens.
"""

import random

import pytest

from repro.core.performance import distribution_latency
from repro.elastic import (
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    MuxEE,
    PassiveAntiToken,
    Sink,
    Source,
    VariableLatency,
)


def mux_with_slow_branch(passive: bool, seed=0):
    """Select channel + fast operand + slow VL operand into an EJ."""
    net = ElasticNetwork("fig7")
    s, sm = net.add_channel("s"), net.add_channel("sm")
    a, am = net.add_channel("a"), net.add_channel("am")
    b, bv = net.add_channel("b"), net.add_channel("bv")
    bm = net.add_channel("bm")
    z = net.add_channel("z")
    rng = random.Random(seed)
    net.add(Source("ps", s, data_fn=lambda n: rng.random() < 0.85))
    net.add(Source("pa", a, rng=random.Random(seed + 1)))
    net.add(Source("pb", b, rng=random.Random(seed + 2)))
    net.add(ElasticBuffer("ebs", s, sm))
    net.add(ElasticBuffer("eba", a, am))
    vl = VariableLatency("vl", b, bv,
                         latency=distribution_latency({2: 0.7, 9: 0.3}),
                         rng=random.Random(seed + 3))
    net.add(vl)
    if passive:
        mid = net.add_channel("mid")
        net.add(PassiveAntiToken("pas", bv, mid))
        net.add(ElasticBuffer("ebb", mid, bm))
    else:
        net.add(ElasticBuffer("ebb", bv, bm))
    ee = MuxEE(select=0, chooser=lambda v: 1 if v else 2, arity=3)
    net.add(EarlyJoin("W", [sm, am, bm], z, ee))
    net.add(Sink("c", z, rng=random.Random(seed + 4)))
    return net, vl


def test_reproduce_fig7a_passive_tradeoff():
    active, vl_a = mux_with_slow_branch(passive=False, seed=1)
    active.run(6000)
    passive, vl_p = mux_with_slow_branch(passive=True, seed=1)
    passive.run(6000)
    th_a, th_p = active.throughput("z"), passive.throughput("z")
    print(f"\n=== Fig. 7(a) passive anti-tokens ===")
    print(f"active counterflow Th = {th_a:.3f}, preempted ops = {vl_a.aborted}")
    print(f"passive interface  Th = {th_p:.3f}, preempted ops = {vl_p.aborted}")
    assert th_a > th_p  # passive loses some throughput
    assert vl_p.aborted == 0  # anti-tokens never reach the unit
    assert vl_a.aborted > 0


def test_reproduce_fig7b_vl_handshake():
    net = ElasticNetwork("vl")
    l, r, z = net.add_channel("l"), net.add_channel("r"), net.add_channel("z")
    net.add(Source("p", l, rng=random.Random(2)))
    vl = VariableLatency("vl", l, r,
                         latency=distribution_latency({2: 0.8, 10: 0.2}),
                         rng=random.Random(3))
    net.add(vl)
    net.add(ElasticBuffer("eb", r, z))
    net.add(Sink("c", z, rng=random.Random(4)))
    net.run(5000)
    th = net.throughput("z")
    expected = 1 / (0.8 * 2 + 0.2 * 10)  # ideal rate at mean latency 3.6
    print(f"\n=== Fig. 7(b) VL unit: Th {th:.3f} "
          f"(ideal 1/mean-latency = {expected:.3f}); "
          f"go={vl.go_count} done={vl.done_count} ===")
    assert th == pytest.approx(expected, rel=0.15)
    assert vl.go_count == vl.done_count or vl.go_count == vl.done_count + 1


def test_bench_vl_network(benchmark):
    def run():
        net, _ = mux_with_slow_branch(passive=False, seed=5)
        net.run(800)
        return net.throughput("z")

    assert benchmark(run) > 0.3
