"""Fig. 9: the elasticization flow on the case-study datapath.

Regenerates the elastic control layer of Fig. 9(b) from the Fig. 9(a)
system description -- EB controllers for every register, a join+fork
around S, the early join at W, VL controllers for M1/M2 -- and prints
the structural inventory; also verifies the generated netlist's channel
properties on a reduced sub-netlist and times the two elaboration
backends.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.elastic.behavioral import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    Join,
    VariableLatency,
)
from repro.synthesis.elaborate import to_behavioral, to_gates


def test_reproduce_fig9b_structure():
    spec = build_fig9_spec(Config.ACTIVE)
    net = to_behavioral(spec)
    kinds = {}
    for ctrl in net.controllers:
        kinds.setdefault(type(ctrl).__name__, []).append(ctrl.name)
    print("\n=== Fig. 9(b) control layer (active configuration) ===")
    for kind, names in sorted(kinds.items()):
        print(f"  {kind:18s} x{len(names)}: {', '.join(sorted(names))}")
    ebs = [c for c in net.controllers if isinstance(c, ElasticBuffer)]
    assert len(ebs) == 10  # I, F1-3, M0, M, C, W1-3
    assert sum(isinstance(c, VariableLatency) for c in net.controllers) == 2
    assert sum(isinstance(c, EarlyJoin) for c in net.controllers) == 1
    assert sum(isinstance(c, EagerFork) for c in net.controllers) == 2
    # initial tokens: the three EBs at the output of W
    assert sum(eb.tokens for eb in ebs) == 3


def test_reproduce_fig9b_gate_layer():
    elab = to_gates(build_fig9_spec(Config.ACTIVE), include_env=False)
    stats = elab.netlist.stats()
    print(f"\n=== Fig. 9(b) gate-level control layer: {stats} ===")
    assert stats["latches"] == 80  # 10 EBs x 4 state bits x 2 latches
    assert stats["flops"] >= 13


def test_lazy_structure_uses_plain_join():
    net = to_behavioral(build_fig9_spec(Config.LAZY))
    joins = [c for c in net.controllers if type(c) is Join]
    assert any(c.name == "W.join" for c in joins)
    assert not any(isinstance(c, EarlyJoin) for c in net.controllers)


def test_bench_behavioral_elaboration(benchmark):
    spec = build_fig9_spec(Config.ACTIVE)
    net = benchmark(to_behavioral, spec)
    assert len(net.controllers) > 15


def test_bench_gate_elaboration(benchmark):
    spec = build_fig9_spec(Config.ACTIVE)
    elab = benchmark(to_gates, spec)
    assert elab.netlist.stats()["gates"] > 200
