"""Compiled-backend gates: generated modules vs the interpreted kernel.

Benches the :mod:`repro.codegen` backend against ``BatchSimulator`` on
the Fig. 5-7 controller netlists (dual-EHB, join, early join, fork,
passive buffer, variable latency) at 64 and 256 lanes, and gates the
headline claim: with a **warm build cache** (zero codegen during the
timed region, asserted via the cache hit/miss counters) the compiled
fault campaign must deliver >= 1.5x the throughput of the batch engine
at 256 lanes while producing a byte-identical JSON report.

The Sect. 7 processor campaign is included as reference timing only:
that pipeline is modelled behaviourally (controllers stepping Python
objects, no gate netlist exists to elaborate), so the compiled backend
structurally does not apply to it.
"""

import time

import pytest

from repro.codegen.cache import BuildCache, process_stats
from repro.codegen.sim import CompiledSimulator
from repro.faults.campaign import (
    CampaignConfig,
    ProcessorCampaignConfig,
    run_campaign,
    run_processor_campaign,
)
from repro.faults.targets import TARGETS
from repro.rtl.batchsim import BatchSimulator, pack_stimulus

# Fig. 5: dual_ehb; Fig. 6: join, early_join, fork; Fig. 7: passive, vl.
FIG_TARGETS = ["dual_ehb", "join", "early_join", "fork", "passive", "vl"]
KERNEL_CYCLES = 150
CONFIG = CampaignConfig(
    cycles=300, seed=2007, kinds=("stuck0", "stuck1", "flip"),
    untestable_analysis=False,
)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return BuildCache(tmp_path_factory.mktemp("codegen-cache"))


def _stimulus(target, cycles, lanes):
    import random

    return [
        [
            {name: rng.getrandbits(1) for name in target.free_inputs}
            for _ in range(cycles)
        ]
        for rng in (random.Random(f"bench:{lane}") for lane in range(lanes))
    ]


def _best(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.mark.parametrize("lanes", [64, 256])
@pytest.mark.parametrize("name", FIG_TARGETS)
def test_bench_compiled_kernel(benchmark, cache, name, lanes):
    """Raw cycle throughput, same stimulus, same observed planes."""
    target = TARGETS[name]()
    packed = pack_stimulus(_stimulus(target, KERNEL_CYCLES, lanes))
    batch = BatchSimulator(target.netlist, lanes=lanes)
    sim = CompiledSimulator(
        target.netlist, lanes,
        hooks=frozenset(target.fault_sites),
        observe=frozenset(target.observe),
        cache=cache,
    )

    def run_batch():
        batch.reset()
        for inputs in packed:
            batch.cycle(inputs)

    def run_compiled():
        sim.reset()
        for inputs in packed:
            sim.cycle(inputs)

    batch_s = _best(run_batch)
    benchmark(run_compiled)
    compiled_s = benchmark.stats.stats.mean
    speedup = batch_s / compiled_s

    # same end-of-cycle planes on every observed wire, both engines
    for sig in sorted(target.observe):
        want = (batch.value_planes[batch.slot(sig)],
                batch.known_planes[batch.slot(sig)])
        assert sim.planes(sig) == want, sig

    benchmark.extra_info["lanes"] = lanes
    benchmark.extra_info["batch_s"] = round(batch_s, 4)
    benchmark.extra_info["speedup_vs_batch"] = round(speedup, 2)
    print(f"\n{name}@{lanes}: batch {batch_s:.4f}s, "
          f"compiled {compiled_s:.4f}s, speedup {speedup:.1f}x")
    if name == "dual_ehb":
        assert speedup >= 1.5


@pytest.mark.parametrize("lanes", [64, 256])
def test_bench_campaign_compiled(benchmark, cache, lanes):
    """The acceptance gate: >= 1.5x campaign throughput at 256 lanes,
    warm cache, byte-identical report, zero rebuilds while timed."""
    warm = run_campaign(
        "dual_ehb", CONFIG, lanes=lanes, backend="compiled", cache=cache
    )
    batch_s = _best(lambda: run_campaign("dual_ehb", CONFIG, lanes=lanes))
    batch_report = run_campaign("dual_ehb", CONFIG, lanes=lanes)

    before = process_stats()
    compiled_report = benchmark(
        run_campaign, "dual_ehb", CONFIG,
        lanes=lanes, backend="compiled", cache=cache,
    )
    after = process_stats()
    compiled_s = benchmark.stats.stats.mean
    speedup = batch_s / compiled_s

    assert after["misses"] == before["misses"], (
        "the timed campaign rebuilt a module; the cache was not warm"
    )
    assert after["hits"] > before["hits"]
    assert compiled_report.to_json() == batch_report.to_json()
    assert compiled_report.to_json() == warm.to_json()

    benchmark.extra_info["faults"] = len(compiled_report.outcomes)
    benchmark.extra_info["batch_s"] = round(batch_s, 4)
    benchmark.extra_info["speedup_vs_batch"] = round(speedup, 2)
    print(f"\ncampaign dual_ehb@{lanes}: batch {batch_s:.3f}s, "
          f"compiled {compiled_s:.3f}s, speedup {speedup:.1f}x")
    if lanes >= 256:
        assert speedup >= 1.5


def test_bench_warm_cache_skips_codegen(benchmark, tmp_path):
    """Second build of the same artifact is a pure cache hit."""
    target = TARGETS["dual_ehb"]()
    hooks = frozenset(target.fault_sites)
    observe = frozenset(target.observe)

    t0 = time.perf_counter()
    cold_cache = BuildCache(tmp_path / "cold")
    cold_cache.load_module(target.netlist, hooks, observe)
    cold_s = time.perf_counter() - t0

    warm_cache = BuildCache(tmp_path / "cold")  # same root, empty memory

    def warm_load():
        # a fresh instance per call: disk tier only, no memory hits
        return BuildCache(tmp_path / "cold").load_module(
            target.netlist, hooks, observe
        )

    before = process_stats()
    benchmark(warm_load)
    assert process_stats()["misses"] == before["misses"]
    warm_s = benchmark.stats.stats.mean
    benchmark.extra_info["cold_build_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_vs_cold"] = round(cold_s / warm_s, 1)
    print(f"\nbuild dual_ehb: cold {cold_s*1e3:.1f} ms, "
          f"warm {warm_s*1e3:.1f} ms ({cold_s/warm_s:.0f}x faster)")
    assert warm_s < cold_s
    assert warm_cache.stats()["entries"] == 1


def test_bench_processor_reference(benchmark):
    """Sect. 7 processor campaign: behavioural-only reference timing.

    No gate netlist exists for this pipeline (the case study steps
    behavioural controllers), so there is nothing for the compiled
    backend to elaborate; this row documents the scalar baseline the
    RTL targets are compared against.
    """
    config = ProcessorCampaignConfig(cycles=120)
    report = benchmark(run_processor_campaign, config)
    benchmark.extra_info["faults"] = len(report.outcomes)
    benchmark.extra_info["compiled_backend"] = "n/a (behavioural model)"
    print(f"\nprocessor campaign (reference): "
          f"{len(report.outcomes)} faults, "
          f"{benchmark.stats.stats.mean:.3f}s "
          f"(compiled backend n/a: behavioural model, no netlist)")
