"""Extension bench: token latency distributions, active vs lazy.

Throughput (Table 1) is only half the story of early evaluation: the
tokens that *are* selected also arrive sooner, because the multiplexer
does not wait for the slowest operand.  This bench traces every token
through a mux system with a slow branch and reports the latency
distribution (mean / p50 / p95) and buffer occupancy for the early and
lazy controllers.
"""

import random

import pytest

from repro.core.performance import distribution_latency
from repro.elastic import (
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    MuxEE,
    VariableLatency,
)
from repro.elastic.instrumentation import (
    OccupancyProbe,
    StampedToken,
    TracingSink,
    TracingSource,
    latency_stats,
)


def traced_mux(early: bool, seed=0):
    net = ElasticNetwork("lat")
    s, sm = net.add_channel("s"), net.add_channel("sm")
    a, am = net.add_channel("a"), net.add_channel("am")
    b, bv, bm = net.add_channel("b"), net.add_channel("bv"), net.add_channel("bm")
    z = net.add_channel("z")
    rng = random.Random(seed)
    net.add(TracingSource("ps", s, data_fn=lambda n: rng.random() < 0.85))
    net.add(TracingSource("pa", a, rng=random.Random(seed + 1)))
    net.add(TracingSource("pb", b, rng=random.Random(seed + 2)))
    ebs = ElasticBuffer("ebs", s, sm)
    eba = ElasticBuffer("eba", a, am)
    ebb = ElasticBuffer("ebb", bv, bm)
    for eb in (ebs, eba, ebb):
        net.add(eb)
    net.add(VariableLatency("vl", b, bv,
                            latency=distribution_latency({2: 0.7, 9: 0.3}),
                            rng=random.Random(seed + 3)))

    def sel_of(tok):
        return tok.payload if isinstance(tok, StampedToken) else tok

    ee = MuxEE(select=0, chooser=lambda t: 1 if sel_of(t) else 2, arity=3)
    if early:
        net.add(EarlyJoin("W", [sm, am, bm], z, ee))
    else:
        net.add(Join("W", [sm, am, bm], z,
                     combine=lambda xs: xs[1] if sel_of(xs[0]) else xs[2]))
    sink = TracingSink("c", z, rng=random.Random(seed + 4))
    net.add(sink)
    probe = OccupancyProbe("probe", [ebs, eba, ebb])
    net.add(probe)
    return net, sink, probe


def test_reproduce_latency_distributions():
    print("\n=== token latency: early vs lazy mux (slow branch) ===")
    rows = {}
    for early in (True, False):
        net, sink, probe = traced_mux(early, seed=3)
        net.run(6000)
        stats = latency_stats(sink.latencies)
        rows[early] = (stats, probe.mean_tokens)
        kind = "early" if early else "lazy"
        print(f"{kind:>6}: {stats}  mean-occupancy={probe.mean_tokens:.2f}")
    early_stats, _ = rows[True]
    lazy_stats, _ = rows[False]
    assert early_stats.mean < lazy_stats.mean
    assert early_stats.p95 <= lazy_stats.p95
    assert early_stats.count > lazy_stats.count  # throughput gain too


def test_bench_traced_network(benchmark):
    def run():
        net, sink, _ = traced_mux(True, seed=9)
        net.run(1000)
        return sink

    sink = benchmark(run)
    assert len(sink.latencies) > 100
