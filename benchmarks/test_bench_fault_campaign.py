"""Fault-injection campaign: wall-time and detection coverage.

Reproduces the headline coverage table -- an exhaustive stuck-at sweep
over the Fig. 5 dual-EHB control nets with online SELF monitors -- and
times one full campaign.  Coverage numbers are attached to the
benchmark record via ``extra_info`` so regressions in detection (not
just speed) are visible.
"""

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign

CONFIG = CampaignConfig(cycles=250, seed=2007)


def test_reproduce_coverage_table():
    report = run_campaign("dual_ehb", CONFIG)
    print(f"\n=== dual-EHB stuck-at campaign ===\n{report.table()}")
    assert report.coverage == 1.0


def test_bench_dual_ehb_campaign(benchmark):
    report = benchmark(run_campaign, "dual_ehb", CONFIG)
    counts = report.counts()
    benchmark.extra_info["faults"] = len(report.outcomes)
    benchmark.extra_info["detected"] = counts["detected"]
    benchmark.extra_info["untestable"] = counts["untestable"]
    benchmark.extra_info["coverage"] = report.coverage
    assert report.coverage == 1.0
