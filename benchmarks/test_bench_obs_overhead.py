"""Observability overhead: disabled tracing must cost (almost) nothing.

The zero-cost claim of :mod:`repro.obs` -- a recorder constructed with
``enabled=False`` attaches nothing, leaving every simulator on the
untraced code path -- is locked here by timing the batchsim fault
campaign twice: bare, and with a disabled recorder "attached" to the
kernel.  Min-of-N with alternating order cancels warm-up and cache
drift; the gate is a 5% ceiling on the relative slowdown.

Enabled tracing is also timed (informationally, no gate): it buys the
full event stream, so it is allowed to cost real time.
"""

from time import perf_counter

from repro.faults.batch import BatchCampaignHarness
from repro.faults.campaign import (
    CampaignConfig,
    enumerate_injections,
    resolve_target,
)
from repro.obs import TraceRecorder

CONFIG = CampaignConfig(cycles=250, seed=2007, untestable_analysis=False)
LANES = 64
ROUNDS = 7


def _chunks(target, config, lanes):
    injections = enumerate_injections(target, config)
    return [injections[i:i + lanes] for i in range(0, len(injections), lanes)]


def _run(harness, chunks):
    outcomes = []
    for chunk in chunks:
        outcomes.extend(harness.run_chunk(chunk))
    return outcomes


def test_disabled_tracing_overhead_under_5_percent():
    target = resolve_target("dual_ehb")
    chunks = _chunks(target, CONFIG, LANES)

    bare = BatchCampaignHarness(target, CONFIG, LANES)
    traced = BatchCampaignHarness(target, CONFIG, LANES)
    recorder = TraceRecorder(enabled=False)
    recorder.attach_batch(traced.sim, target.observe)
    assert not traced.sim.observers  # nothing was attached

    # Both harnesses classify identically before any timing.
    assert _run(bare, chunks) == _run(traced, chunks)

    base_times, off_times = [], []
    for round_index in range(ROUNDS):
        pairs = [(bare, base_times), (traced, off_times)]
        if round_index % 2:
            pairs.reverse()
        for harness, times in pairs:
            t0 = perf_counter()
            _run(harness, chunks)
            times.append(perf_counter() - t0)

    base, off = min(base_times), min(off_times)
    overhead = off / base - 1.0
    print(f"\n=== disabled-tracing overhead ===\n"
          f"bare     : {base * 1e3:8.2f} ms\n"
          f"disabled : {off * 1e3:8.2f} ms\n"
          f"overhead : {100.0 * overhead:+.2f}% (gate: +5%)")
    assert overhead < 0.05, (
        f"disabled tracing costs {100.0 * overhead:.1f}% (>5%)"
    )


def test_disabled_profilers_attach_nothing():
    """The profile layer honours the same zero-cost no-op contract.

    A disabled :class:`RtlChannelProfiler` must leave scalar and batch
    simulators observer-free, and a disabled :class:`NetworkProfiler`
    must add neither probes nor channel observers -- so a run that does
    not ask for a performance report stays on the untouched code path
    the timing gate above locks.
    """
    from repro.obs import NetworkProfiler, RtlChannelProfiler
    from repro.obs.analyze import _pipeline_network
    from repro.rtl.batchsim import BatchSimulator
    from repro.rtl.simulator import TwoPhaseSimulator

    target = resolve_target("dual_ehb")
    profiler = RtlChannelProfiler(target, enabled=False)
    scalar = TwoPhaseSimulator(target.netlist)
    batch = BatchSimulator(target.netlist, 4)
    profiler.attach_scalar(scalar)
    profiler.attach_lane(batch, 0)
    assert not scalar.observers and not batch.observers

    net = _pipeline_network(seed=2007)
    probes = len(net.probes)
    observers = sum(len(c.observers) for c in net.channels.values())
    NetworkProfiler(enabled=False).attach(net)
    assert len(net.probes) == probes
    assert sum(len(c.observers) for c in net.channels.values()) == observers


def test_enabled_tracing_cost_is_reported():
    target = resolve_target("dual_ehb")
    chunks = _chunks(target, CONFIG, LANES)

    bare = BatchCampaignHarness(target, CONFIG, LANES)
    traced = BatchCampaignHarness(target, CONFIG, LANES)
    recorder = TraceRecorder(capacity=1 << 16)
    recorder.attach_batch(traced.sim, target.observe)

    t0 = perf_counter()
    _run(bare, chunks)
    base = perf_counter() - t0
    t0 = perf_counter()
    _run(traced, chunks)
    on = perf_counter() - t0
    print(f"\n=== enabled-tracing cost (informational) ===\n"
          f"bare    : {base * 1e3:8.2f} ms\n"
          f"enabled : {on * 1e3:8.2f} ms "
          f"({recorder.emitted} events recorded)")
    assert recorder.emitted > 0
