"""Fig. 1: the dual marked graph example and its invariants.

Regenerates the reachable marking of Fig. 1(b) from the initial marking
of Fig. 1(a) by the paper's firing sequence (n2 positive, n1 early,
n7 negative), prints both markings, and verifies the cycle-sum
invariant; the benchmark times random DMG exploration.
"""

import random

from repro.core.analysis import cycle_token_sums
from repro.core.dmg import fig1_dmg


def test_reproduce_fig1():
    g = fig1_dmg()
    m = g.initial_marking
    print("\n=== Fig. 1(a) initial marking ===")
    print({a: v for a, v in sorted(m.items()) if v})
    for node in ("n2", "n1", "n7"):
        kinds = [k.value for k in g.enabling_kinds(node, m)]
        m = g.fire_any(node, m)
        print(f"fired {node} ({'/'.join(kinds)})")
    print("=== Fig. 1(b) reachable marking ===")
    print({a: v for a, v in sorted(m.items()) if v})
    # The paper: anti-tokens on n4->n7 and n5->n7; C1 sums to one.
    assert m["n4->n7"] == -1 and m["n5->n7"] == -1
    sums = cycle_token_sums(g, m)
    assert set(sums.values()) == {1}
    print("cycle sums at Fig. 1(b):", dict(sums))


def test_bench_random_dmg_walk(benchmark):
    g = fig1_dmg()

    def walk():
        _, m = g.random_firing_sequence(500, rng=random.Random(42))
        return m

    m = benchmark(walk)
    sums = cycle_token_sums(g, m)
    assert set(sums.values()) == {1}  # every cycle still holds one token
