"""Ablation: throughput vs. opcode selection probabilities.

The paper fixes the I/F/M selection probabilities at 0.6/0.3/0.1.  This
sweep shifts probability mass from the fast unit (I, latency 1) to the
slow variable-latency unit (M) and reports the throughput of the active
and lazy configurations: early evaluation pays the most when slow
results are rarely selected, and the two converge as M dominates.
"""

import pytest

from repro.casestudy.fig9 import Config, OPCODE_PROBABILITIES, build_fig9_spec
from repro.synthesis.elaborate import to_behavioral

SWEEP = [
    {"I": 0.9, "F": 0.08, "M": 0.02},
    {"I": 0.6, "F": 0.3, "M": 0.1},     # the paper's point
    {"I": 0.4, "F": 0.3, "M": 0.3},
    {"I": 0.2, "F": 0.2, "M": 0.6},
    {"I": 0.05, "F": 0.05, "M": 0.9},
]


def throughput(config, probs, cycles=4000, seed=5):
    saved = dict(OPCODE_PROBABILITIES)
    OPCODE_PROBABILITIES.update(probs)
    try:
        net = to_behavioral(build_fig9_spec(config, seed=seed), seed=seed)
        net.run(cycles)
        return net.throughput("Din->S")
    finally:
        OPCODE_PROBABILITIES.update(saved)


def test_reproduce_probability_sweep():
    print("\n=== ablation: throughput vs selection probabilities ===")
    print(f"{'P(I)':>5} {'P(F)':>5} {'P(M)':>5} {'active':>7} {'lazy':>6} {'gain':>5}")
    gains = []
    for probs in SWEEP:
        active = throughput(Config.ACTIVE, probs)
        lazy = throughput(Config.LAZY, probs)
        gain = active / lazy
        gains.append(gain)
        print(f"{probs['I']:5.2f} {probs['F']:5.2f} {probs['M']:5.2f} "
              f"{active:7.3f} {lazy:6.3f} {gain:5.2f}x")
    # early evaluation monotonically loses value as M dominates
    assert gains[0] > gains[-1]
    assert gains[0] > 1.5
    assert gains[-1] < 1.2


def test_bench_one_sweep_point(benchmark):
    result = benchmark(throughput, Config.ACTIVE, SWEEP[1], 1500)
    assert result > 0.3
