"""Ablation: buffering the S->W control channel.

The paper's second configuration removes the C buffer and loses 14% of
throughput: "long operations in the pipeline prevent S from producing
new values for channel S->W ... the buffer C mitigates this".  This
sweep varies the *depth* of the control buffer (0 = the paper's
no-buffer row, 1 = the paper's active row, then deeper), demonstrating
the correct-by-construction re-pipelining elasticity enables: adding
buffers never breaks the system, and returns diminish quickly.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.synthesis.elaborate import to_behavioral
from repro.synthesis.spec import SystemSpec


def with_control_depth(depth: int, seed=3) -> SystemSpec:
    """The active configuration with `depth` EBs on the S->W channel."""
    config = Config.NO_BUFFER if depth == 0 else Config.ACTIVE
    spec = build_fig9_spec(config, seed=seed)
    for extra in range(1, depth):
        name = f"EB_C{extra}"
        spec.add_register(name)
        # splice: EB_C -> ... -> W input 0
        tail = spec.connection("C->W")
        tail.dst, old_dst = (("register", name, "in"), tail.dst)
        spec.connect(spec.register_out(name), old_dst,
                     name=f"C{extra}->W", data_bits=2)
    spec.validate()
    return spec


def throughput(depth, cycles=4000, seed=3):
    net = to_behavioral(with_control_depth(depth, seed=seed), seed=seed)
    net.run(cycles)
    return net.throughput("Din->S")


def test_reproduce_buffer_sweep():
    print("\n=== ablation: throughput vs S->W control buffer depth ===")
    print(f"{'depth':>5} {'Th':>6}")
    results = {}
    for depth in (0, 1, 2, 3):
        results[depth] = throughput(depth)
        print(f"{depth:5d} {results[depth]:6.3f}")
    # the paper's observation: no buffer hurts
    assert results[1] > results[0] * 1.05
    # re-pipelining is always *functionally* legal (the runs above are
    # protocol-monitored); performance-wise the C channel sits on the
    # token ring, so past the knee extra latency slowly costs
    # throughput again -- the marked-graph cycle-ratio bound in action.
    assert results[2] >= results[1] - 0.05
    assert results[3] >= results[1] - 0.10


def test_bench_depth_two(benchmark):
    result = benchmark(throughput, 2, 1500)
    assert result > 0.3
