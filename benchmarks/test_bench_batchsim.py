"""Bit-parallel kernel throughput and campaign speedup.

Times the 64-lane batch kernel against the scalar two-phase simulator
(cycles/sec, all 64 lanes counted) and the full fault campaign in
sequential vs lane-parallel mode.  The lane-parallel campaign must be
at least 10x faster on the Fig. 5 dual-EHB target *and* produce a
byte-identical JSON report -- speed never buys a different answer.
"""

import time

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.targets import TARGETS
from repro.rtl.batchsim import BatchSimulator, pack_stimulus
from repro.rtl.simulator import TwoPhaseSimulator

LANES = 64
# untestable analysis is a shared scalar post-pass (symbolic
# reachability, identical in both modes); excluding it isolates the
# simulation work the lanes actually parallelise.  Transient flips are
# included: faults that stay undetected make the sequential harness run
# to the horizon, which is exactly the load lanes amortise.
CONFIG = CampaignConfig(
    cycles=300, seed=2007, kinds=("stuck0", "stuck1", "flip"),
    untestable_analysis=False,
)


def _stimulus(target, cycles, lanes):
    import random

    return [
        [
            {name: rng.getrandbits(1) for name in target.free_inputs}
            for _ in range(cycles)
        ]
        for rng in (random.Random(f"bench:{lane}") for lane in range(lanes))
    ]


def test_bench_scalar_kernel(benchmark):
    target = TARGETS["dual_ehb"]()
    stim = _stimulus(target, 200, 1)[0]
    sim = TwoPhaseSimulator(target.netlist)

    def run():
        sim.reset()
        for inputs in stim:
            sim.cycle(inputs)

    benchmark(run)
    benchmark.extra_info["lane_cycles_per_call"] = len(stim)


def test_bench_batch_kernel_64_lanes(benchmark):
    target = TARGETS["dual_ehb"]()
    packed = pack_stimulus(_stimulus(target, 200, LANES))
    sim = BatchSimulator(target.netlist, lanes=LANES)

    def run():
        sim.reset()
        for inputs in packed:
            sim.cycle(inputs)

    benchmark(run)
    benchmark.extra_info["lane_cycles_per_call"] = len(packed) * LANES


@pytest.mark.parametrize("name", ["dual_ehb", "early_join"])
def test_bench_campaign_speedup(benchmark, name):
    """Sequential vs 64-lane campaign: >=10x on dual-EHB, same bytes."""
    start = time.perf_counter()
    sequential = run_campaign(name, CONFIG)
    sequential_s = time.perf_counter() - start

    batched = benchmark(run_campaign, name, CONFIG, lanes=LANES)
    batched_s = benchmark.stats.stats.mean
    speedup = sequential_s / batched_s

    assert batched.to_json() == sequential.to_json()
    benchmark.extra_info["faults"] = len(batched.outcomes)
    benchmark.extra_info["sequential_s"] = round(sequential_s, 4)
    benchmark.extra_info["speedup_vs_sequential"] = round(speedup, 2)
    print(f"\n{name}: sequential {sequential_s:.3f}s, "
          f"batched {batched_s:.3f}s, speedup {speedup:.1f}x")
    if name == "dual_ehb":
        assert speedup >= 10.0
