"""Fig. 8(a): model checking the controller netlists.

Builds netlists that exercise different combinations of controllers
(buffer chains, join+fork diamonds with feedback, early joins, variable
latency units with non-deterministic delays) and checks the paper's
four CTL properties on every channel::

    AG ((V+ & S+) -> AX V+)                (Retry+)
    AG ((V- & S-) -> AX V-)                (Retry-)
    AG (!(V- & S+) & !(V+ & S-))           (Invariant (2))
    AG AF ((V+ & !S+) | (V- & !S-))        (Liveness, under fairness)

The benchmark times Kripke construction + checking of one diamond.
"""

import pytest

from repro.verif.properties import verify_netlist
from repro.verif.testbenches import DESIGNS, diamond_with_feedback

NETLISTS = {
    "lazy diamond + feedback": DESIGNS["diamond"],
    "early diamond + feedback": DESIGNS["early"],
    "diamond + VL unit": DESIGNS["vl"],
}


@pytest.mark.parametrize("name", list(NETLISTS))
def test_reproduce_fig8a(name):
    nl, chans, fairness = diamond_with_feedback(**NETLISTS[name])
    result = verify_netlist(nl, chans, fairness=fairness, max_states=2_000_000)
    print(f"\n=== Fig. 8(a) [{name}]: {result} ===")
    assert result.ok, result.failures()


def test_bench_model_checking(benchmark):
    nl, chans, fairness = diamond_with_feedback(early=True)

    def run():
        return verify_netlist(nl, chans, fairness=fairness)

    result = benchmark(run)
    assert result.ok
