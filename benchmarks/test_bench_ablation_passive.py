"""Ablation: passive-interface placement over every dual channel.

The paper evaluates two placements (F3->W and M2->W).  This sweep
places the Fig. 7(a) passive interface on each anti-token-carrying
channel in turn and reports throughput and control area: the
throughput/area Pareto the designer navigates when deciding how far
anti-tokens should counterflow.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.synthesis.elaborate import control_layer_area, to_behavioral

#: channels on the anti-token paths of the active configuration
CANDIDATES = ["I->W", "F3->W", "F2->F3", "M->W", "M2->W", "S->M1"]


def run_with_passive(channel, cycles=4000, seed=4):
    spec = build_fig9_spec(Config.ACTIVE, seed=seed)
    if channel is not None:
        spec.connection(channel).passive = True
    net = to_behavioral(spec, seed=seed)
    net.run(cycles)
    return net.throughput("Din->S"), control_layer_area(spec)


def test_reproduce_passive_placement_sweep():
    print("\n=== ablation: passive anti-token interface placement ===")
    print(f"{'channel':>10} {'Th':>6} {'lit':>5} {'lat':>4} {'ff':>3}")
    base_th, base_area = run_with_passive(None)
    print(f"{'(none)':>10} {base_th:6.3f} {base_area.literals:5d} "
          f"{base_area.latches:4d} {base_area.flops:3d}")
    results = {}
    for ch in CANDIDATES:
        th, area = run_with_passive(ch)
        results[ch] = (th, area)
        print(f"{ch:>10} {th:6.3f} {area.literals:5d} "
              f"{area.latches:4d} {area.flops:3d}")
    # every placement saves area relative to full counterflow
    for ch, (th, area) in results.items():
        assert area.literals <= base_area.literals
        assert th <= base_th + 0.02
    # the paper's qualitative claim: cutting the M path hurts more than
    # cutting the F path (slow results benefit most from preemption)
    assert results["F3->W"][0] > results["M2->W"][0]


def test_bench_passive_point(benchmark):
    def run():
        return run_with_passive("F3->W", cycles=1200)

    th, area = benchmark(run)
    assert th > 0.3
