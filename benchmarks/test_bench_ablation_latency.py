"""Ablation: throughput vs. the slow-path latency distribution.

The paper's M1 takes 2 cycles w.p. 0.8 and 10 w.p. 0.2.  This sweep
varies the slow-case latency and its probability: with active
anti-tokens, unselected M operations are preempted, so the system is
nearly insensitive to the tail; the lazy baseline degrades with the
*mean* latency.
"""

import pytest

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.core.performance import distribution_latency
from repro.synthesis.elaborate import to_behavioral


def throughput(config, slow_latency, p_slow, cycles=4000, seed=3):
    spec = build_fig9_spec(config, seed=seed)
    spec.blocks["M1"].latency = distribution_latency(
        {2: 1 - p_slow, slow_latency: p_slow}
    )
    net = to_behavioral(spec, seed=seed)
    net.run(cycles)
    return net.throughput("Din->S")


def test_reproduce_latency_sweep():
    print("\n=== ablation: throughput vs M1 slow-case latency ===")
    print(f"{'slow lat':>8} {'p_slow':>6} {'mean':>5} {'active':>7} {'lazy':>6}")
    actives, lazies = [], []
    for slow, p in [(4, 0.2), (10, 0.2), (20, 0.2), (40, 0.2)]:
        mean = 2 * (1 - p) + slow * p
        a = throughput(Config.ACTIVE, slow, p)
        l = throughput(Config.LAZY, slow, p)
        actives.append(a)
        lazies.append(l)
        print(f"{slow:8d} {p:6.1f} {mean:5.1f} {a:7.3f} {l:6.3f}")
    # lazy degrades strongly with the tail; active only mildly
    assert lazies[0] > 2.0 * lazies[-1]
    assert actives[-1] > 0.65 * actives[0]
    assert actives[-1] > 2.0 * lazies[-1]


def test_reproduce_probability_of_slow_case():
    print("\n=== ablation: throughput vs P(slow M1) at latency 10 ===")
    print(f"{'p_slow':>6} {'active':>7} {'lazy':>6}")
    for p in (0.0, 0.2, 0.5, 1.0):
        a = throughput(Config.ACTIVE, 10, p)
        l = throughput(Config.LAZY, 10, p)
        print(f"{p:6.1f} {a:7.3f} {l:6.3f}")
        assert a >= l - 0.02


def test_bench_latency_point(benchmark):
    result = benchmark(throughput, Config.ACTIVE, 10, 0.2, 1500)
    assert result > 0.3
