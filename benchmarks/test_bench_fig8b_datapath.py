"""Fig. 8(b): data correctness with killing consumers.

Random acyclic netlists of elastic controllers between alternating-bit
producers and non-deterministic consumers that either accept, stall, or
emit anti-tokens to cancel data inside the netlist.  A failure is
flagged when a consumer's consumption sequence (transfers, kills and
emitted anti-tokens, in order) is inconsistent with the alternating
0/1 trace -- exactly the paper's check, run over many random netlists
and seeds instead of an exhaustive model-checking pass (the exhaustive
protocol checks are in test_bench_fig8a_verification.py).
"""

import pytest

from repro.verif.datapath import DataCorrectnessHarness, random_acyclic_network

SEEDS = list(range(20))


def test_reproduce_fig8b():
    print("\n=== Fig. 8(b): data correctness over random netlists ===")
    total_events = 0
    total_kills = 0
    for seed in SEEDS:
        net = random_acyclic_network(
            seed, n_sources=2 + seed % 3, n_layers=3 + seed % 4,
            p_stop=0.25, p_kill=0.3,
        )
        report = DataCorrectnessHarness(net).run(600)
        total_events += report.consumed
        total_kills += report.kills
    print(f"{len(SEEDS)} netlists, {total_events} consumption events, "
          f"{total_kills} anti-tokens injected: all alternating traces OK")
    assert total_kills > 100


def test_reproduce_fig8b_exhaustive_gate_level():
    """The paper's actual methodology: model check a 1-bit datapath.

    Producer (alternating 0/1) -> two data buffers -> killing consumer,
    all non-deterministic; ``AG !error`` over the full state space.
    """
    from repro.verif.gatedata import alternating_pipeline, verify_data_correctness

    nl, errors = alternating_pipeline(n_buffers=2, with_kill=True)
    ok, kripke = verify_data_correctness(nl, errors)
    print(f"\n=== Fig. 8(b) gate level: AG !error over {len(kripke)} "
          f"states: {'PASS' if ok else 'FAIL'} ===")
    assert ok


def test_bench_fig8b_one_netlist(benchmark):
    def run():
        net = random_acyclic_network(3, n_sources=3, n_layers=5,
                                     p_stop=0.2, p_kill=0.3)
        return DataCorrectnessHarness(net).run(400)

    report = benchmark(run)
    assert report.consumed > 0


def test_bench_fig8b_exhaustive(benchmark):
    from repro.verif.gatedata import alternating_pipeline, verify_data_correctness

    nl, errors = alternating_pipeline(n_buffers=1, with_kill=True)

    def run():
        return verify_data_correctness(nl, errors)

    ok, _ = benchmark(run)
    assert ok
