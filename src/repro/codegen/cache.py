"""Content-addressed on-disk cache of generated simulator modules.

Layout (one directory per artifact, named by its SHA-256 key)::

    <root>/
      <key>/module.py    generated source (importable, diffable)
      <key>/meta.json    {"key", "codegen_version", "netlist", ...}
      <key>/data.json    JSON payload artifacts (lint findings, ...)

Every write goes through the :mod:`repro.resilience.checkpoint`
hygiene -- serialise to a tmp file in the same directory, ``fsync``,
``os.replace`` -- so a SIGKILL mid-build leaves either a complete
artifact or ignorable debris, and concurrent builders (campaign worker
processes warming the same cache) race benignly: last rename wins with
byte-identical content.

Loads verify before trusting: the meta fingerprint and codegen version
must match the requested key, and the imported module must carry the
same ``KEY``.  Any mismatch -- a hand-edited artifact, a cache written
by a different codegen version, a torn file -- is treated as absent
and rebuilt (invalidation is just a key change or a failed check).

Three tiers: an in-process module dict (same :class:`BuildCache`
instance), the disk artifact, then a fresh build.  Hits and misses are
tallied both into process-global counters (``repro build --stats``)
and, when a :class:`~repro.obs.metrics.MetricsRegistry` is attached,
into ``codegen_cache_{hits,misses}_total{tier,kind}`` series.
"""

from __future__ import annotations

import importlib.util
import json
import os
import shutil
from pathlib import Path
from types import ModuleType
from typing import Dict, FrozenSet, Optional, Union

from repro.codegen.emit import emit_module
from repro.codegen.fingerprint import (
    CODEGEN_VERSION,
    artifact_key,
    netlist_fingerprint,
)
from repro.resilience.checkpoint import atomic_write_json, atomic_write_text
from repro.rtl.netlist import Netlist

__all__ = [
    "BuildCache",
    "build_cache",
    "default_cache_dir",
    "process_stats",
    "reset_process_stats",
]

#: Process-lifetime hit/miss tallies across every BuildCache instance.
_PROCESS_STATS = {"hits": 0, "misses": 0}


def process_stats() -> Dict[str, int]:
    """Hits/misses since process start (all caches, all tiers)."""
    return dict(_PROCESS_STATS)


def reset_process_stats() -> None:
    _PROCESS_STATS["hits"] = 0
    _PROCESS_STATS["misses"] = 0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else the XDG cache, else ``~/.cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "codegen"


class BuildCache:
    """One cache root: load-or-build generated modules and JSON blobs."""

    MODULE = "module.py"
    META = "meta.json"
    DATA = "data.json"

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        metrics=None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.metrics = metrics
        self._modules: Dict[str, ModuleType] = {}
        self._json: Dict[str, object] = {}

    # -- bookkeeping ---------------------------------------------------
    def _count(self, hit: bool, tier: str, kind: str) -> None:
        _PROCESS_STATS["hits" if hit else "misses"] += 1
        if self.metrics is not None:
            name = ("codegen_cache_hits_total" if hit
                    else "codegen_cache_misses_total")
            self.metrics.counter(name, tier=tier, kind=kind).inc()

    def _dir(self, key: str) -> Path:
        return self.root / key

    # -- generated modules ---------------------------------------------
    def load_module(
        self,
        netlist: Netlist,
        hooks: Optional[FrozenSet[str]] = None,
        observe: Optional[FrozenSet[str]] = None,
    ) -> ModuleType:
        """The generated module for ``netlist`` + options, building at
        most once per key (memory tier, then disk, then emit)."""
        key = artifact_key(netlist, hooks, observe)
        module = self._modules.get(key)
        if module is not None:
            self._count(True, "memory", "module")
            return module
        module = self._import_verified(key)
        if module is not None:
            self._count(True, "disk", "module")
            self._modules[key] = module
            return module
        self._count(False, "disk", "module")
        source = emit_module(netlist, hooks, observe)
        directory = self._dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(directory / self.MODULE, source)
        atomic_write_json(directory / self.META, {
            "kind": "compiled-simulator",
            "key": key,
            "codegen_version": CODEGEN_VERSION,
            "netlist": netlist.name,
            "fingerprint": netlist_fingerprint(netlist),
            "hooks": sorted(hooks) if hooks is not None else None,
            "observe": sorted(observe) if observe is not None else None,
        })
        module = self._import_verified(key)
        if module is None:  # pragma: no cover - emit/write just succeeded
            raise RuntimeError(f"cache artifact {key} unreadable after build")
        self._modules[key] = module
        return module

    def _import_verified(self, key: str) -> Optional[ModuleType]:
        """Import one disk artifact, or None when absent/invalid."""
        directory = self._dir(key)
        meta_path = directory / self.META
        module_path = directory / self.MODULE
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict):
            return None
        if meta.get("key") != key:
            return None
        if meta.get("codegen_version") != CODEGEN_VERSION:
            return None
        if not module_path.is_file():
            return None
        name = f"repro_codegen_{key[:24]}"
        try:
            spec = importlib.util.spec_from_file_location(
                name, module_path
            )
            if spec is None or spec.loader is None:  # pragma: no cover
                return None
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        except (OSError, SyntaxError):  # torn or hand-mangled artifact
            return None
        if getattr(module, "KEY", None) != key:
            return None
        return module

    # -- JSON payload artifacts (lint findings, ...) -------------------
    def load_json(self, key: str) -> Optional[object]:
        """A cached JSON payload, or None on miss (counted)."""
        payload = self._json.get(key)
        if payload is not None:
            self._count(True, "memory", "json")
            return payload
        path = self._dir(key) / self.DATA
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self._count(False, "disk", "json")
            return None
        self._count(True, "disk", "json")
        self._json[key] = payload
        return payload

    def store_json(self, key: str, payload: object, meta: Dict) -> None:
        """Persist one JSON payload artifact under ``key``."""
        directory = self._dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(directory / self.DATA, payload)
        atomic_write_json(directory / self.META, {"key": key, **meta})
        self._json[key] = payload

    # -- maintenance ---------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entries and bytes on disk plus process hit/miss tallies."""
        entries = 0
        size = 0
        if self.root.is_dir():
            for entry in self.root.iterdir():
                if not entry.is_dir() or not (entry / self.META).is_file():
                    continue
                entries += 1
                for item in entry.iterdir():
                    try:
                        size += item.stat().st_size
                    except OSError:  # pragma: no cover - racing delete
                        pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": size,
            **process_stats(),
        }

    def clear(self) -> int:
        """Delete every artifact directory; returns how many."""
        removed = 0
        if self.root.is_dir():
            for entry in list(self.root.iterdir()):
                if entry.is_dir() and (entry / self.META).is_file():
                    shutil.rmtree(entry, ignore_errors=True)
                    removed += 1
        self._modules.clear()
        self._json.clear()
        return removed


#: Shared instances keyed by resolved root, so every loader against the
#: same directory also shares the in-memory module tier.
_CACHES: Dict[str, BuildCache] = {}


def build_cache(
    root: Union[str, Path, None] = None, metrics=None
) -> BuildCache:
    """The shared :class:`BuildCache` for ``root`` (default dir if None).

    Reuses one instance per resolved root path; a ``metrics`` registry
    passed later is attached to the existing instance.
    """
    resolved = str(Path(root) if root is not None else default_cache_dir())
    cache = _CACHES.get(resolved)
    if cache is None:
        cache = BuildCache(resolved, metrics=metrics)
        _CACHES[resolved] = cache
    elif metrics is not None:
        cache.metrics = metrics
    return cache
