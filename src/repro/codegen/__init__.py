"""Compiled-simulator backend: codegen, build cache, drop-in harness.

Lowers a :class:`~repro.rtl.netlist.Netlist` into a standalone
generated Python module (source on disk, content-addressed, reloadable
across processes) and wraps it in simulators and campaign harnesses
interchangeable with the :mod:`repro.rtl.batchsim` batch kernel.

Submodules are imported lazily so that ``import repro.codegen`` stays
cheap for callers that only need, say, the fingerprint helpers.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.codegen.cache import (
        BuildCache,
        build_cache,
        default_cache_dir,
        process_stats,
    )
    from repro.codegen.emit import Layout, build_layout, emit_module
    from repro.codegen.fingerprint import (
        CODEGEN_VERSION,
        artifact_key,
        netlist_fingerprint,
    )
    from repro.codegen.harness import CompiledCampaignHarness
    from repro.codegen.sim import CompiledSimulator

_EXPORTS = {
    "BuildCache": "repro.codegen.cache",
    "build_cache": "repro.codegen.cache",
    "default_cache_dir": "repro.codegen.cache",
    "process_stats": "repro.codegen.cache",
    "Layout": "repro.codegen.emit",
    "build_layout": "repro.codegen.emit",
    "emit_module": "repro.codegen.emit",
    "CODEGEN_VERSION": "repro.codegen.fingerprint",
    "artifact_key": "repro.codegen.fingerprint",
    "netlist_fingerprint": "repro.codegen.fingerprint",
    "CompiledCampaignHarness": "repro.codegen.harness",
    "CompiledSimulator": "repro.codegen.sim",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
