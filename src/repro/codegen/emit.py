"""Elaborate a netlist into a standalone generated Python module.

The emitted module is plain source on disk -- importable, diffable,
inspectable -- with no imports of its own.  It carries the netlist's
slot layout as module constants plus up to four **fused cycle
functions**, each one whole clock cycle as straight-line code:

====================  ================================================
``cycle``             two-plane ternary semantics, override guards at
                      the hook slots (fault-injection runs)
``cycle_clean``       two-plane, no override code at all (golden runs)
``kcycle``            value-plane-only "known" dialect (guarded)
``kcycle_clean``      known dialect, no override code
====================  ================================================

A fused function folds input loading, both phase programs, latch
captures, state reloads and the flip-flop update into one body whose
intermediate values live in Python locals -- the plane arrays are only
touched twice per cycle: sources never (state lives in the ``state``
dict), results once per *observed* slot at the end.  Restricting both
the override guards (``hooks``) and the final writeback (``observe``)
to what a caller actually uses is where the compiled backend's speed
comes from; passing ``None`` for either keeps the fully general
surface of :class:`~repro.rtl.batchsim.BatchSimulator`.

The known dialect is only emitted when every latch/flop init is a
known 0/1 (``KNOWN_OK``); its per-cycle eligibility (all inputs driven
known) is the caller's contract, checked by
:class:`~repro.codegen.sim.CompiledSimulator` each cycle.

Generated code is representation-generic: every operation is a pure
expression (no augmented assignment, which would mutate aliased array
operands in place), the all-X word is the ``zero`` parameter and the
lane mask the ``mask`` parameter, so the same module source runs int
bignum planes and numpy word arrays alike.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.codegen import kernel
from repro.codegen.fingerprint import (
    CODEGEN_VERSION,
    artifact_key,
    netlist_fingerprint,
)
from repro.rtl.logic import is_known
from repro.rtl.netlist import Netlist, Phase

__all__ = ["Layout", "build_layout", "emit_module"]


class Layout:
    """The slot assignment and phase programs of one netlist.

    Mirrors :class:`~repro.rtl.batchsim.BatchSimulator`'s internal
    layout exactly (same insertion-order slot numbering, same load and
    capture sets), so a compiled module and a batch simulator built
    from the same netlist agree slot for slot.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        nl = netlist
        self.slot: Dict[str, int] = {}
        for sig in (*nl.inputs, *nl.gates, *nl.latches, *nl.flops):
            self.slot[sig] = len(self.slot)
        self.n_named = len(self.slot)
        self.inputs = [(name, self.slot[name]) for name in nl.inputs]
        self.flops = [
            (self.slot[q], self.slot[f.d]) for q, f in nl.flops.items()
        ]
        self.state_slots = [
            (q, self.slot[q]) for q in nl.latches
        ] + [(q, self.slot[q]) for q in nl.flops]
        self.init = {
            self.slot[q]: latch.init for q, latch in nl.latches.items()
        }
        self.init.update(
            {self.slot[q]: flop.init for q, flop in nl.flops.items()}
        )
        high = [q for q, l in nl.latches.items() if l.phase == Phase.HIGH]
        low = [q for q, l in nl.latches.items() if l.phase == Phase.LOW]
        self.load_high = [self.slot[q] for q in list(nl.flops) + low]
        self.load_low = [self.slot[q] for q in list(nl.flops) + high]
        self.capture_high = [self.slot[q] for q in high]
        self.capture_low = [self.slot[q] for q in low]
        self.templates, self.n_slots = kernel.decompose_gates(
            nl, self.slot, self.n_named
        )
        self.prog_high = kernel.phase_program(
            nl, self.slot, self.templates, Phase.HIGH
        )
        self.prog_low = kernel.phase_program(
            nl, self.slot, self.templates, Phase.LOW
        )
        self.known_ok = all(is_known(i) for i in self.init.values())


def build_layout(netlist: Netlist) -> Layout:
    """Compute the slot layout and phase programs (raises on cycles)."""
    return Layout(netlist)


def _resolve(
    layout: Layout, names: Optional[FrozenSet[str]], what: str
) -> List[int]:
    """Named signals to sorted slots; ``None`` means every named slot."""
    if names is None:
        return list(range(layout.n_named))
    slots = []
    for name in sorted(names):
        slot = layout.slot.get(name)
        if slot is None:
            raise ValueError(f"unknown {what} signal {name!r}")
        slots.append(slot)
    return sorted(slots)


class _Body:
    """Indentation-aware statement accumulator."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def w(self, stmt: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + stmt)


def _emit_cycle(
    layout: Layout,
    name: str,
    hook_slots: frozenset,
    observed: List[int],
    known: bool,
    guarded: bool,
) -> List[str]:
    """One fused cycle function as source lines."""
    b = _Body()
    if known:
        params = "inputs, state, v, ov, mask, zero" if guarded else \
                 "inputs, state, v, mask, zero"
    else:
        params = "inputs, state, v, k, ov, mask, zero" if guarded else \
                 "inputs, state, v, k, mask, zero"
    b.lines.append(f"def {name}({params}):")

    def guard(slot: int) -> None:
        """Override guard for one hook slot, mirroring the batch
        kernel's application points (inputs re-mask after apply, state
        loads and gate outputs do not).  The known dialect receives
        pre-masked ``(~set0, set1, flip)`` triples instead of override
        objects: with every lane known, ``apply`` reduces to three bit
        ops, inlined here to skip the call frame per hook per cycle."""
        if not (guarded and slot in hook_slots):
            return
        b.w(f"_o=ov[{slot}]")
        if known:
            b.w(
                f"if _o is not None: "
                f"v{slot}=((v{slot}&_o[0])|_o[1])^_o[2]"
            )
        else:
            b.w(
                f"if _o is not None: "
                f"v{slot},k{slot}=_o.apply(v{slot},k{slot})"
            )

    # 1. primary inputs
    for iname, slot in layout.inputs:
        if known:
            b.w(f"v{slot}=inputs[{iname!r}][0]&mask")
        else:
            b.w(f"_t=inputs.get({iname!r})")
            b.w("if _t is None:")
            b.w(f"v{slot}=zero; k{slot}=zero", indent=2)
            b.w("else:")
            b.w(f"v{slot}=_t[0]&mask; k{slot}=_t[1]&mask", indent=2)
        if guarded and slot in hook_slots:
            b.w(f"_o=ov[{slot}]")
            b.w("if _o is not None:")
            if known:
                # triple elements are pre-masked, so no re-mask needed
                b.w(
                    f"v{slot}=((v{slot}&_o[0])|_o[1])^_o[2]",
                    indent=2,
                )
            else:
                b.w(
                    f"v{slot},k{slot}=_o.apply(v{slot},k{slot}); "
                    f"v{slot}=v{slot}&mask; k{slot}=k{slot}&mask",
                    indent=2,
                )

    def load(slots: List[int]) -> None:
        for slot in slots:
            if known:
                b.w(f"v{slot}=state[{slot}][0]")
            else:
                b.w(f"_t=state[{slot}]")
                b.w(f"v{slot}=_t[0]; k{slot}=_t[1]")
            guard(slot)

    def run(program) -> None:
        lines_of = kernel.known_lines if known else kernel.two_plane_lines
        for op, out, a, bb, c in program:
            for stmt in lines_of(op, out, a, bb, c, zero="zero"):
                b.w(stmt)
            if out < layout.n_named:
                guard(out)

    def capture(slots: List[int]) -> None:
        for slot in slots:
            if known:
                b.w(f"state[{slot}]=(v{slot},mask)")
            else:
                b.w(f"state[{slot}]=(v{slot},k{slot})")

    # 2..8: the two phases around the state dict, then the flop edge
    load(layout.load_high)
    run(layout.prog_high)
    capture(layout.capture_high)
    load(layout.load_low)
    run(layout.prog_low)
    capture(layout.capture_low)
    for qslot, dslot in layout.flops:
        if known:
            b.w(f"state[{qslot}]=(v{dslot},mask)")
        else:
            b.w(f"state[{qslot}]=(v{dslot},k{dslot})")

    # 9: write the observed end-of-cycle values back to the arrays
    for slot in observed:
        if known:
            b.w(f"v[{slot}]=v{slot}")
        else:
            b.w(f"v[{slot}]=v{slot}; k[{slot}]=k{slot}")

    if len(b.lines) == 1:
        b.w("pass")
    return b.lines


def emit_module(
    netlist: Netlist,
    hooks: Optional[FrozenSet[str]] = None,
    observe: Optional[FrozenSet[str]] = None,
) -> str:
    """The full generated module source for one netlist.

    ``hooks`` restricts which named signals get override guards
    (``set_overrides`` on anything else must be rejected by the
    caller); ``observe`` restricts which named slots are written back
    to the plane arrays each cycle.  ``None`` means all named signals
    for either.
    """
    layout = build_layout(netlist)
    hook_slots = frozenset(_resolve(layout, hooks, "hook"))
    observed = _resolve(layout, observe, "observe")

    head: List[str] = [
        '"""Generated by repro.codegen -- do not edit.',
        "",
        f"Netlist: {netlist.name}",
        "Regenerate by deleting this artifact directory; the build",
        "cache re-emits it from the netlist on the next load.",
        '"""',
        "",
        f"CODEGEN_VERSION = {CODEGEN_VERSION}",
        f"FINGERPRINT = {netlist_fingerprint(netlist)!r}",
        f"KEY = {artifact_key(netlist, hooks, observe)!r}",
        f"NAME = {netlist.name!r}",
        f"N_NAMED = {layout.n_named}",
        f"N_SLOTS = {layout.n_slots}",
        f"KNOWN_OK = {layout.known_ok}",
        f"SLOT = {layout.slot!r}",
        f"INPUTS = {tuple(layout.inputs)!r}",
        f"STATE = {tuple(layout.state_slots)!r}",
        "# init values: 0/1, or None for an X (unknown) reset",
        "INIT = %r" % (
            {s: (int(i) if is_known(i) else None)
             for s, i in layout.init.items()},
        ),
        f"HOOKS = frozenset({sorted(hook_slots)!r})",
        f"OBSERVED = {tuple(observed)!r}",
        "",
        "",
    ]
    parts: List[str] = list(head)
    parts.extend(_emit_cycle(
        layout, "cycle", hook_slots, observed, known=False, guarded=True
    ))
    parts.append("")
    parts.append("")
    parts.extend(_emit_cycle(
        layout, "cycle_clean", hook_slots, observed,
        known=False, guarded=False,
    ))
    if layout.known_ok:
        parts.append("")
        parts.append("")
        parts.extend(_emit_cycle(
            layout, "kcycle", hook_slots, observed,
            known=True, guarded=True,
        ))
        parts.append("")
        parts.append("")
        parts.extend(_emit_cycle(
            layout, "kcycle_clean", hook_slots, observed,
            known=True, guarded=False,
        ))
    parts.append("")
    return "\n".join(parts)
