"""The shared gate-level instruction kernel of both compiled engines.

:class:`~repro.rtl.batchsim.BatchSimulator` (compiling per-phase
functions at construction time) and :mod:`repro.codegen.emit` (emitting
a standalone module onto disk) lower a netlist through the same
pipeline:

1. :func:`decompose_gates` -- variadic ``AND/OR/NAND/NOR`` become
   binary chains through fresh temporary slots; every template's final
   instruction writes the gate's *named* slot, the only slot override
   hooks ever apply to;
2. :func:`phase_program` -- one clock phase as a flat topologically
   sorted instruction list (gates plus the latches transparent in that
   phase, lowered to ``BUF``);
3. :func:`two_plane_lines` / :func:`known_lines` -- each instruction as
   straight-line Python statements over ``v<slot>``/``k<slot>`` locals.

Keeping the statement generators here -- rather than in either engine
-- is what makes "the compiled backend agrees with ``BatchSimulator``
bit for bit" a structural property instead of a test-enforced one: the
gate formulas exist exactly once.

Two statement dialects share one instruction stream:

* **two-plane** -- the full ternary semantics over ``(v, k)`` word
  pairs, exactly the formulas documented in :mod:`repro.rtl.batchsim`;
* **known** -- value-plane only.  When every latch/flop initialises to
  a known 0/1 and every primary input is driven known each cycle, the
  known plane is ``mask`` everywhere *by induction* (each two-plane
  formula yields ``rk == mask`` when its inputs are fully known, and
  every override preserves known-ness: stuck forces a known value,
  flip of a known lane stays known).  Eliding ``k`` halves the work
  per gate and is the compiled backend's headline speedup; eligibility
  is checked dynamically per cycle and falls back to the two-plane
  dialect on the first X.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - the import would be circular:
    # repro.rtl.__init__ pulls in batchsim, which imports this module.
    from repro.rtl.netlist import Netlist

__all__ = [
    "AND",
    "OR",
    "NOT",
    "XOR",
    "MUX",
    "BUF",
    "C0",
    "C1",
    "DECOMPOSED",
    "decompose_gates",
    "phase_program",
    "instr_reads",
    "two_plane_lines",
    "known_lines",
]

# Instruction opcodes (binary ops only; variadic gates are decomposed).
AND, OR, NOT, XOR, MUX, BUF, C0, C1 = range(8)

#: An instruction: ``(op, dst_slot, a_slot, b_slot, c_slot)``.
Instr = Tuple[int, int, int, int, int]

DECOMPOSED = {
    "AND": (AND, False),
    "OR": (OR, False),
    "NAND": (AND, True),
    "NOR": (OR, True),
}


def decompose_gates(
    netlist: Netlist, slot: Dict[str, int], n_named: int
) -> Tuple[Dict[str, Tuple[Instr, ...]], int]:
    """Binary instruction templates, one tuple per gate output.

    Variadic AND/OR/NAND/NOR become chains through fresh temporary
    slots starting at ``n_named``; the final instruction of each
    template writes the gate's named slot.  Returns ``(templates,
    n_slots)`` where ``n_slots`` counts named slots plus temporaries.
    """
    ntemp = n_named
    templates: Dict[str, Tuple[Instr, ...]] = {}
    for out, gate in netlist.gates.items():
        dst = slot[out]
        ins = [slot[i] for i in gate.ins]
        op = gate.op
        instrs: List[Instr] = []
        if op in DECOMPOSED:
            code, invert = DECOMPOSED[op]
            if not ins:
                # Zero-input AND()/OR() reduce to their identity
                # element, exactly like land()/lor() with no args.
                const = C1 if code == AND else C0
                if invert:
                    const = C0 if const == C1 else C1
                instrs.append((const, dst, 0, 0, 0))
            else:
                acc = ins[0]
                for nxt in ins[1:]:
                    tmp = ntemp
                    ntemp += 1
                    instrs.append((code, tmp, acc, nxt, 0))
                    acc = tmp
                if invert:
                    instrs.append((NOT, dst, acc, 0, 0))
                elif acc == dst:  # pragma: no cover - ins never empty
                    pass
                else:
                    instrs.append((BUF, dst, acc, 0, 0))
        elif op == "NOT":
            instrs.append((NOT, dst, ins[0], 0, 0))
        elif op == "BUF":
            instrs.append((BUF, dst, ins[0], 0, 0))
        elif op == "XOR":
            instrs.append((XOR, dst, ins[0], ins[1], 0))
        elif op == "MUX":
            instrs.append((MUX, dst, ins[0], ins[1], ins[2]))
        elif op == "CONST0":
            instrs.append((C0, dst, 0, 0, 0))
        elif op == "CONST1":
            instrs.append((C1, dst, 0, 0, 0))
        else:  # pragma: no cover - netlist validates ops
            raise AssertionError(f"unhandled op {op}")
        templates[out] = tuple(instrs)
    return templates, ntemp


def phase_program(
    netlist: Netlist,
    slot: Dict[str, int],
    templates: Dict[str, Tuple[Instr, ...]],
    phase: Phase,
) -> Tuple[Instr, ...]:
    """One phase as a flat topologically-sorted instruction list.

    Raises :class:`~repro.rtl.toposort.CombinationalCycleError` (with
    the canonical cycle path) when the phase cannot be ordered.
    """
    from repro.rtl.toposort import topo_order

    program: List[Instr] = []
    latches = netlist.latches
    for node in topo_order(netlist, phase):
        template = templates.get(node)
        if template is not None:
            program.extend(template)
        else:
            latch = latches[node]
            program.append((BUF, slot[node], slot[latch.d], 0, 0))
    return tuple(program)


def instr_reads(op: int, a: int, b: int, c: int) -> Tuple[int, ...]:
    """The source slots one instruction reads."""
    if op in (NOT, BUF):
        return (a,)
    if op == MUX:
        return (a, b, c)
    if op in (C0, C1):
        return ()
    return (a, b)


def two_plane_lines(
    op: int, out: int, a: int, b: int, c: int, zero: str = "0"
) -> List[str]:
    """One instruction as two-plane Python statements.

    Statements read/write ``v<slot>``/``k<slot>`` locals and may use
    the free variables ``mask`` (the lane mask) and the temporaries
    ``_s0``/``_sx``/``_g1``/``_g0``.  ``zero`` is the spelling of the
    all-X plane word (``"0"`` for int planes, a named variable for
    array planes -- array code must never alias a literal).
    """
    if op == AND:
        return [
            f"v{out}=v{a}&v{b}",
            f"k{out}=v{out}|(k{a}&~v{a})|(k{b}&~v{b})",
        ]
    if op == OR:
        return [
            f"v{out}=v{a}|v{b}",
            f"k{out}=v{out}|(k{a}&~v{a})&(k{b}&~v{b})",
        ]
    if op == NOT:
        return [f"k{out}=k{a}", f"v{out}=k{a}&~v{a}"]
    if op == BUF:
        return [f"v{out}=v{a}", f"k{out}=k{a}"]
    if op == XOR:
        return [f"k{out}=k{a}&k{b}", f"v{out}=(v{a}^v{b})&k{out}"]
    if op == MUX:
        return [
            f"_s0=k{a}&~v{a}",
            f"_sx=mask^k{a}",
            f"_g1=v{b}&v{c}",
            f"_g0=(k{b}&~v{b})&(k{c}&~v{c})",
            f"v{out}=(v{a}&v{b})|(_s0&v{c})|(_sx&_g1)",
            f"k{out}=(v{a}&k{b})|(_s0&k{c})|(_sx&(_g1|_g0))",
        ]
    if op == C0:
        return [f"v{out}={zero}", f"k{out}=mask"]
    # C1
    return [f"v{out}=mask", f"k{out}=mask"]


def known_lines(
    op: int, out: int, a: int, b: int, c: int, zero: str = "0"
) -> List[str]:
    """One instruction as value-plane-only statements (all lanes known).

    Exact under the all-known precondition: substituting ``k == mask``
    into every two-plane formula above collapses it to one boolean
    word operation (MUX's X-reduction terms vanish because ``_sx`` is
    zero), and the result's known plane is again ``mask``.
    """
    if op == AND:
        return [f"v{out}=v{a}&v{b}"]
    if op == OR:
        return [f"v{out}=v{a}|v{b}"]
    if op == NOT:
        return [f"v{out}=mask^v{a}"]
    if op == BUF:
        return [f"v{out}=v{a}"]
    if op == XOR:
        return [f"v{out}=v{a}^v{b}"]
    if op == MUX:
        return [f"v{out}=(v{a}&v{b})|((mask^v{a})&v{c})"]
    if op == C0:
        return [f"v{out}={zero}"]
    # C1
    return [f"v{out}=mask"]
