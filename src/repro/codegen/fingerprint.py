"""Stable content fingerprints for netlists and codegen artifacts.

The build cache (:mod:`repro.codegen.cache`) is content-addressed: an
artifact's directory name is the SHA-256 over a canonical JSON document
describing *exactly* what the generated code depends on --

* the netlist structure **in insertion order** (slot assignment, and
  therefore every generated statement, follows the order cells were
  added, so two netlists with the same cells in a different order are
  different artifacts);
* the codegen options (override-hook set, observed-signal set);
* the codegen version (:data:`CODEGEN_VERSION` bumps invalidate every
  cached module).

Lane count deliberately does **not** participate: generated modules
are lane-agnostic (the lane mask is a runtime parameter), so one
artifact serves 1, 64 and 1024 lanes alike.

X init values serialise as the string ``"X"`` (JSON has no ternary),
known inits as 0/1 ints -- unambiguous because the two sets are
disjoint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, FrozenSet, Optional

from repro.rtl.logic import Value, is_known
from repro.rtl.netlist import Netlist

__all__ = [
    "CODEGEN_VERSION",
    "netlist_to_dict",
    "netlist_fingerprint",
    "artifact_key",
]

#: Bump whenever the emitted module's shape or semantics change; every
#: previously cached artifact is invalidated (its key changes).
CODEGEN_VERSION = 2


def _init(value: Value) -> object:
    return int(value) if is_known(value) else "X"


def netlist_to_dict(netlist: Netlist) -> Dict[str, object]:
    """The canonical structural document of one netlist.

    Cell lists preserve insertion order on purpose -- see the module
    docstring.  ``outputs`` ride along for completeness even though
    they do not influence generated code.
    """
    return {
        "name": netlist.name,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "gates": [
            [g.out, g.op, list(g.ins)] for g in netlist.gates.values()
        ],
        "latches": [
            [l.q, l.d, l.phase.value, _init(l.init)]
            for l in netlist.latches.values()
        ],
        "flops": [
            [f.q, f.d, _init(f.init)] for f in netlist.flops.values()
        ],
    }


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def netlist_fingerprint(netlist: Netlist) -> str:
    """SHA-256 hex digest of the canonical netlist document."""
    return _digest(netlist_to_dict(netlist))


def artifact_key(
    netlist: Netlist,
    hooks: Optional[FrozenSet[str]] = None,
    observe: Optional[FrozenSet[str]] = None,
) -> str:
    """The cache key of one generated module.

    ``hooks``/``observe`` of ``None`` mean "every named signal" (the
    fully general module) and hash differently from an explicit full
    set -- harmless: both keys name byte-identical artifacts, they are
    just built once each.
    """
    return _digest({
        "kind": "compiled-simulator",
        "codegen_version": CODEGEN_VERSION,
        "netlist": netlist_to_dict(netlist),
        "hooks": sorted(hooks) if hooks is not None else None,
        "observe": sorted(observe) if observe is not None else None,
    })
