"""Drop-in compiled simulator driving cached generated modules.

:class:`CompiledSimulator` mirrors the public surface of
:class:`~repro.rtl.batchsim.BatchSimulator` -- ``reset()``, ``cycle()``
with packed two-plane inputs, ``planes``/``lane_value``/``lane_state``,
``set_overrides`` with :class:`~repro.rtl.batchsim.LaneOverride` masks,
``observers``/``profile``/``check_lane_integrity`` -- but the per-cycle
work is one call into a generated module loaded from the
:class:`~repro.codegen.cache.BuildCache` (built on first use, then
served from disk or memory).

Two things make it faster than the batch kernel:

* **restriction** -- ``hooks`` limits override guards to the nets a
  fault campaign actually injects at and ``observe`` limits end-of-cycle
  array writeback to the nets monitors actually read; everything else
  lives purely in locals of the fused cycle function;
* **the known dialect** -- when the module reports ``KNOWN_OK`` (all
  state inits known) and every primary input arrives fully known, the
  value-plane-only ``kcycle`` runs instead, halving the bit-ops.
  Eligibility is re-checked every cycle and the first X permanently
  drops this instance back to the two-plane kernel (until ``reset``).

Two plane representations share the same generated source:

* ``plane_kind="int"`` (default) -- Python bignum planes, one int per
  slot, arbitrary lane counts.  This is what campaigns use; it is
  interchangeable with ``BatchSimulator`` planes bit for bit.
* ``plane_kind="numpy"`` -- each plane is a little-endian array of
  64-bit words, giving word-wide vector ops for lane counts well past
  64.  The *public* API still speaks ints (inputs, ``planes``,
  ``lane_value``); conversion happens at the boundary.  Requires numpy;
  construction raises :class:`RuntimeError` when it is missing.
"""

from __future__ import annotations

from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.codegen.cache import BuildCache, build_cache
from repro.rtl.batchsim import LaneOverride, Planes, unpack_lane
from repro.rtl.netlist import Netlist

__all__ = ["CompiledSimulator"]

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


class _IntRep:
    """Bignum planes: the generated words *are* Python ints."""

    kind = "int"

    def __init__(self, lanes: int) -> None:
        self.mask = (1 << lanes) - 1
        self.zero = 0

    def from_int(self, word: int):
        return word

    def to_int(self, word) -> int:
        return word

    def pack_inputs(self, inputs: Mapping[str, Planes]):
        return inputs

    def wrap_override(self, override: LaneOverride):
        return override


class _ArrayOverride:
    """A :class:`LaneOverride` lifted to word arrays, applied purely.

    The int override's ``apply`` uses an augmented ``^=``; on arrays
    that would mutate a plane another local still aliases, so this
    wrapper rebuilds the same semantics from pure expressions.
    """

    __slots__ = ("set0", "set1", "flip", "has_set", "has_flip")

    def __init__(self, rep: "_NumpyRep", override: LaneOverride) -> None:
        self.set0 = rep.from_int(override.set0)
        self.set1 = rep.from_int(override.set1)
        self.flip = rep.from_int(override.flip)
        self.has_set = bool(override.set0 or override.set1)
        self.has_flip = bool(override.flip)

    def apply(self, v, k):
        if self.has_set:
            v = (v & ~self.set0) | self.set1
            k = k | self.set0 | self.set1
        if self.has_flip:
            v = v ^ (self.flip & k)
        return v, k


class _NumpyRep:
    """Word-array planes: little-endian uint64 vectors per slot."""

    kind = "numpy"

    def __init__(self, lanes: int) -> None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise RuntimeError(
                "plane_kind='numpy' needs numpy; use plane_kind='int'"
            ) from exc
        self.np = numpy
        self.words = (lanes + _WORD - 1) // _WORD
        self.mask = self.from_int((1 << lanes) - 1)
        self.zero = numpy.zeros(self.words, dtype=numpy.uint64)

    def from_int(self, word: int):
        return self.np.array(
            [(word >> (_WORD * i)) & _WORD_MASK for i in range(self.words)],
            dtype=self.np.uint64,
        )

    def to_int(self, word) -> int:
        out = 0
        for i, chunk in enumerate(word.tolist()):
            out |= chunk << (_WORD * i)
        return out

    def pack_inputs(self, inputs: Mapping[str, Planes]):
        return {
            name: (self.from_int(v), self.from_int(k))
            for name, (v, k) in inputs.items()
        }

    def wrap_override(self, override: LaneOverride):
        return _ArrayOverride(self, override)


class CompiledSimulator:
    """Lane-parallel simulator backed by a cached generated module."""

    def __init__(
        self,
        netlist: Netlist,
        lanes: int = 64,
        *,
        hooks: Optional[Iterable[str]] = None,
        observe: Optional[Iterable[str]] = None,
        cache: Union[BuildCache, str, None] = None,
        plane_kind: str = "int",
        metrics=None,
    ) -> None:
        if lanes < 1:
            raise ValueError("need at least one lane")
        if plane_kind not in ("int", "numpy"):
            raise ValueError(f"unknown plane_kind {plane_kind!r}")
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        hooks = frozenset(hooks) if hooks is not None else None
        observe = frozenset(observe) if observe is not None else None
        if not isinstance(cache, BuildCache):
            cache = build_cache(cache, metrics=metrics)
        self.cache = cache
        self.module = cache.load_module(netlist, hooks, observe)
        mod = self.module
        self.key = mod.KEY
        self.fingerprint = mod.FINGERPRINT
        self._slot: Dict[str, int] = mod.SLOT
        self._inputs: Tuple[Tuple[str, int], ...] = mod.INPUTS
        self._state_slots: Tuple[Tuple[str, int], ...] = mod.STATE
        self._init: Dict[int, Optional[int]] = mod.INIT
        self._hooks = mod.HOOKS
        self._observed: Tuple[int, ...] = mod.OBSERVED
        self._observed_set = frozenset(self._observed)
        self._n_named: int = mod.N_NAMED
        self._known_ok: bool = mod.KNOWN_OK

        self._rep = _IntRep(lanes) if plane_kind == "int" else _NumpyRep(lanes)
        self.plane_kind = plane_kind
        n = self._n_named
        self._v = [self._rep.zero] * n
        self._k = [self._rep.zero] * n
        self._ov: List[object] = [None] * n
        self._kov: List[object] = [None] * n
        self._any_ov = False
        self.state: Dict[int, tuple] = {}
        self.time = 0
        #: end-of-cycle observers ``fn(time, sim)``, as in the batch sim.
        self.observers: List[Callable[[int, "CompiledSimulator"], None]] = []
        #: optional PhaseProfiler; the fused function is one phase,
        #: timed under the name ``"cycle"``.
        self.profile = None
        self.reset()

    # -- state ---------------------------------------------------------
    def reset(self) -> None:
        """All lanes back to the declared latch/flop init values."""
        rep = self._rep
        mask, zero = rep.mask, rep.zero
        state: Dict[int, tuple] = {}
        for slot, init in self._init.items():
            if init is None:
                state[slot] = (zero, zero)
            else:
                state[slot] = (mask if init else zero, mask)
        self.state = state
        # In-place so observers holding the plane arrays stay attached.
        n = self._n_named
        self._v[:] = [zero] * n
        self._k[:] = [zero] * n
        self.time = 0
        self._known_active = self._known_ok
        self._k_primed = False

    def set_overrides(self, overrides: Mapping[str, LaneOverride]) -> None:
        """Install per-lane net overrides (replacing any previous set).

        Only nets in the module's hook set are accepted: the generated
        code carries guards nowhere else, so an override on any other
        net would be silently ignored -- rejected loudly instead.
        """
        rep = self._rep
        mask = self.mask
        ov: List[object] = [None] * self._n_named
        kov: List[object] = [None] * self._n_named
        any_ov = False
        for name, override in overrides.items():
            slot = self._slot.get(name)
            if slot is None:
                raise ValueError(f"unknown net {name!r}")
            if slot not in self._hooks:
                raise ValueError(
                    f"net {name!r} is not a hook of this compiled module; "
                    "rebuild with it in hooks= to inject there"
                )
            ov[slot] = rep.wrap_override(override)
            # The known dialect inlines apply() as three bit ops over
            # pre-masked words: v' = ((v & ~set0) | set1) ^ flip.
            kov[slot] = (
                rep.from_int(mask & ~override.set0),
                rep.from_int(override.set1 & mask),
                rep.from_int(override.flip & mask),
            )
            any_ov = True
        self._ov = ov
        self._kov = kov
        self._any_ov = any_ov

    # -- execution -----------------------------------------------------
    def _known_eligible(self, inputs: Mapping[str, Planes]) -> bool:
        mask = self.mask
        for name, _slot in self._inputs:
            planes = inputs.get(name)
            if planes is None or (planes[1] & mask) != mask:
                return False
        return True

    def cycle(self, inputs: Optional[Mapping[str, Planes]] = None) -> None:
        """Advance every lane by one clock cycle.

        ``inputs`` maps input names to canonical *int* plane pairs for
        either representation; missing inputs are all-X (which also
        vetoes the known dialect for this and all later cycles).
        """
        inputs = inputs or {}
        mod, rep = self.module, self._rep
        profile = self.profile
        t0 = perf_counter() if profile is not None else 0.0
        if self._known_active and self._known_eligible(inputs):
            if not self._k_primed:
                # The known dialect never touches the k array; monitors
                # still read it, so pin the observed slots to all-known
                # once per reset.
                kmask = rep.mask
                for slot in self._observed:
                    self._k[slot] = kmask
                self._k_primed = True
            packed = rep.pack_inputs(inputs)
            if self._any_ov:
                mod.kcycle(
                    packed, self.state, self._v, self._kov, rep.mask, rep.zero
                )
            else:
                mod.kcycle_clean(
                    packed, self.state, self._v, rep.mask, rep.zero
                )
        else:
            self._known_active = False
            packed = rep.pack_inputs(inputs)
            if self._any_ov:
                mod.cycle(
                    packed, self.state, self._v, self._k, self._ov,
                    rep.mask, rep.zero,
                )
            else:
                mod.cycle_clean(
                    packed, self.state, self._v, self._k, rep.mask, rep.zero
                )
        if profile is not None:
            profile.add("cycle", perf_counter() - t0)
        if self.observers:
            t = self.time
            for observer in self.observers:
                observer(t, self)
        self.time += 1

    # -- observation ---------------------------------------------------
    def slot(self, sig: str) -> int:
        """The plane-array index of ``sig`` (for hot-loop observers)."""
        return self._slot[sig]

    @property
    def observed_names(self):
        """The signal names carrying end-of-cycle values, sorted.

        The module only writes observed slots back, so attachments that
        read planes directly (trace recorders, profilers, watchdogs)
        must keep their watch lists inside this set.
        """
        observed = self._observed_set
        return sorted(n for n, s in self._slot.items() if s in observed)

    @property
    def value_planes(self):
        """The live value-plane array, indexed by :meth:`slot`.

        Only *observed* slots carry end-of-cycle values; with the int
        representation entries are plain ints, interchangeable with the
        batch simulator's array.
        """
        return self._v

    @property
    def known_planes(self):
        """The live known-plane array, indexed by :meth:`slot`."""
        return self._k

    def _check_observed(self, sig: str) -> int:
        slot = self._slot[sig]
        if slot not in self._observed_set:
            raise ValueError(
                f"signal {sig!r} is not observed by this compiled module; "
                "rebuild with it in observe= (or observe=None for all)"
            )
        return slot

    def planes(self, sig: str) -> Planes:
        """The end-of-cycle plane pair of one signal, as ints."""
        slot = self._check_observed(sig)
        rep = self._rep
        return rep.to_int(self._v[slot]), rep.to_int(self._k[slot])

    def lane_value(self, sig: str, lane: int):
        """One lane's ternary value of ``sig`` after the last cycle."""
        return unpack_lane(self.planes(sig), lane)

    def lane_values(self, lane: int, sigs: Optional[Iterable[str]] = None):
        """One lane's view of the last cycle over the observed signals."""
        if sigs is None:
            observed = self._observed_set
            sigs = [n for n, s in self._slot.items() if s in observed]
        return {name: self.lane_value(name, lane) for name in sigs}

    def lane_state(self, lane: int):
        """One lane's latch/flop state, matching the scalar ``state``."""
        rep = self._rep
        out = {}
        for name, slot in self._state_slots:
            vw, kw = self.state[slot]
            out[name] = unpack_lane((rep.to_int(vw), rep.to_int(kw)), lane)
        return out

    def check_lane_integrity(self) -> int:
        """Bitmask of lanes whose plane encoding is corrupt.

        Same contract as the batch simulator's check, over the observed
        slots (the only ones written back) plus all state words.
        """
        bad = 0
        mask = self.mask
        rep = self._rep
        for slot in self._observed:
            v = rep.to_int(self._v[slot])
            k = rep.to_int(self._k[slot])
            if (v | k) & ~mask:
                return mask
            bad |= v & ~k & mask
        for vw, kw in self.state.values():
            v, k = rep.to_int(vw), rep.to_int(kw)
            if (v | k) & ~mask:
                return mask
            bad |= v & ~k & mask
        return bad
