"""The compiled-backend fault-campaign harness.

:class:`CompiledCampaignHarness` is
:class:`~repro.faults.batch.BatchCampaignHarness` with its simulator
swapped for a :class:`~repro.codegen.sim.CompiledSimulator` restricted
to exactly what a campaign touches: override hooks at the target's
fault sites, end-of-cycle writeback at the target's observed wires
(the union of every monitor's read set).  Everything else -- stimulus,
golden recording, the word-wide monitor bank, chunk classification --
is inherited unchanged, which is why the two backends produce
byte-identical campaign reports: they share all classification code
and the generated kernel reproduces the batch kernel's per-cycle plane
values at every observed slot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

from repro.codegen.cache import BuildCache
from repro.codegen.sim import CompiledSimulator
from repro.faults.batch import BatchCampaignHarness
from repro.faults.campaign import CampaignConfig
from repro.faults.targets import RtlTarget

__all__ = ["CompiledCampaignHarness"]


class CompiledCampaignHarness(BatchCampaignHarness):
    """Lane-parallel campaign harness on the compiled backend.

    ``cache`` is a :class:`~repro.codegen.cache.BuildCache`, a cache
    directory path, or ``None`` for the default cache dir.
    """

    def __init__(
        self,
        target: RtlTarget,
        config: CampaignConfig,
        lanes: int = 64,
        metrics: Optional["MetricsRegistry"] = None,
        cache: Union[BuildCache, str, None] = None,
    ) -> None:
        self._cache = cache
        super().__init__(target, config, lanes, metrics)

    def _make_sim(self) -> CompiledSimulator:
        return CompiledSimulator(
            self.target.netlist,
            self.lanes,
            hooks=frozenset(self.target.fault_sites),
            observe=frozenset(self.target.observe),
            cache=self._cache,
            metrics=self.metrics,
        )
