"""The paper's CTL channel properties (Sect. 5).

For every channel with wires ``{V+, S+, V−, S−}`` the paper checks::

    AG ((V+ & S+) -> AX V+)                  (Retry+)
    AG ((V- & S-) -> AX V-)                  (Retry-)
    AG (!(V- & S+) & !(V+ & S-))             (Invariant (2))
    AG AF ((V+ & !S+) | (V- & !S-))          (Liveness)

The first two enforce persistence -- any violation would allow a trace
outside ``(I* R* T)*``; the third is the dual-channel invariant; the
fourth states that every channel eventually sees a token or anti-token
move.  Liveness is checked under fairness constraints on the
environment (stalling consumers must eventually accept), mirroring
NuSMV ``FAIRNESS`` declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.elastic.gates import GateChannel
from repro.rtl.netlist import Netlist
from repro.verif.ctl import AF, AG, AP, AX, And, Formula, Implies, ModelChecker, Not, Or
from repro.verif.kripke import KripkeStructure, build_kripke


def channel_properties(ch: GateChannel) -> Dict[str, Formula]:
    """The four CTL properties for one channel."""
    vp, sp, vn, sn = AP(ch.vp), AP(ch.sp), AP(ch.vn), AP(ch.sn)
    return {
        "retry_pos": AG(Implies(And(vp, sp), AX(vp))),
        "retry_neg": AG(Implies(And(vn, sn), AX(vn))),
        "invariant": AG(And(Not(And(vn, sp)), Not(And(vp, sn)))),
        "liveness": AG(AF(Or(And(vp, Not(sp)), And(vn, Not(sn))))),
    }


@dataclass
class VerificationResult:
    """Outcome of checking the four properties on every channel."""

    states: int
    results: Dict[Tuple[str, str], bool]

    @property
    def ok(self) -> bool:
        return all(self.results.values())

    def failures(self) -> List[Tuple[str, str]]:
        return [key for key, holds in self.results.items() if not holds]

    def __str__(self) -> str:
        status = "PASS" if self.ok else f"FAIL {self.failures()}"
        return f"{len(self.results)} properties over {self.states} states: {status}"


def verify_channel_properties(
    kripke: KripkeStructure,
    channels: Sequence[GateChannel],
    fairness: Sequence[Formula] = (),
    include_liveness: bool = True,
) -> VerificationResult:
    """Check the four paper properties on each channel of ``kripke``."""
    checker = ModelChecker(kripke, fairness)
    results: Dict[Tuple[str, str], bool] = {}
    for ch in channels:
        for prop_name, formula in channel_properties(ch).items():
            if prop_name == "liveness" and not include_liveness:
                continue
            results[(ch.name, prop_name)] = checker.holds(formula)
    return VerificationResult(states=len(kripke), results=results)


def verify_netlist(
    netlist: Netlist,
    channels: Sequence[GateChannel],
    fairness: Sequence[Formula] = (),
    include_liveness: bool = True,
    max_states: int = 500_000,
    checkpoint: Optional[str] = None,
    cache=None,
) -> VerificationResult:
    """Build the Kripke structure of ``netlist`` and verify its channels.

    All channel wires (plus the netlist inputs, needed for fairness
    constraints over environment choices) are observed.  ``checkpoint``
    and ``cache`` are forwarded to
    :func:`~repro.verif.kripke.build_kripke`: the former makes an
    interrupted state-space build resumable, the latter serves repeat
    explorations from the content-addressed build cache.
    """
    observe: List[str] = []
    for ch in channels:
        observe.extend(ch.wires())
    observe.extend(netlist.inputs)
    # Keep declared outputs observable as well (deduplicated).
    seen = set()
    unique = []
    for sig in observe + list(netlist.outputs):
        if sig not in seen:
            seen.add(sig)
            unique.append(sig)
    kripke = build_kripke(
        netlist, observe=unique, max_states=max_states,
        checkpoint=checkpoint, cache=cache,
    )
    return verify_channel_properties(
        kripke, channels, fairness=fairness, include_liveness=include_liveness
    )
