"""Reusable verification netlists (the Fig. 8(a) designs).

These are the "netlists explicitly designed to exercise different
combinations of controllers" of Sect. 5 -- join/fork diamonds with
feedback, with or without early evaluation and variable-latency units.
They feed both the benchmark suite and the ``repro verify`` CLI.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_fork,
    build_join,
    build_nd_sink,
    build_nd_source,
    build_variable_latency,
)
from repro.rtl.netlist import Netlist
from repro.verif.ctl import AP, Formula


def diamond_with_feedback(
    early: bool = False, with_vl: bool = False
) -> Tuple[Netlist, List[GateChannel], List[Formula]]:
    """source -> join(in, fb) -> fork -> (out, feedback EB).

    The feedback arc carries the initial token, so the ring is live;
    care is taken (per the paper) to include feedback to verify that it
    does not introduce deadlocks.  Returns the netlist, its channels
    and the fairness constraints for the liveness property.
    """
    nl = Netlist("fig8a")
    i = GateChannel.declare(nl, "i")
    z = GateChannel.declare(nl, "z")
    out = GateChannel.declare(nl, "out")
    fb = GateChannel.declare(nl, "fb")
    fbq = GateChannel.declare(nl, "fbq")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, i, prefix="src", choice_input=choice)
    ee = (lambda n, vps, datas: n.OR(*vps)) if early else None
    build_join(nl, [i, fbq], z, prefix="j", ee=ee,
               datas=[(), ()] if early else None)
    build_fork(nl, z, [out, fb], prefix="f")
    build_elastic_buffer(nl, fb, fbq, prefix="eb", initial_tokens=1,
                         as_latches=False)
    chans = [i, z, out, fb, fbq]
    if with_vl:
        done = nl.add_input("vl.done")
        mid = GateChannel.declare(nl, "mid")
        build_variable_latency(nl, out, mid, prefix="vl", done_input=done)
        sink_ch = mid
        chans.append(mid)
    else:
        sink_ch = out
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, sink_ch, prefix="snk", stall_input=stall,
                  kill_input=kill)
    for ch in chans:
        for w in ch.wires():
            nl.add_output(w)
    fairness: List[Formula] = [
        AP("snk.stall", 0), AP("snk.kill", 0), AP("src.choice", 1),
    ]
    if with_vl:
        fairness.append(AP("vl.done", 1))
    return nl, chans, fairness


#: named design variants, used by the CLI and the benchmark suite
DESIGNS: Dict[str, Dict[str, bool]] = {
    "diamond": dict(early=False, with_vl=False),
    "early": dict(early=True, with_vl=False),
    "vl": dict(early=False, with_vl=True),
}
