"""Gate-level data correctness: the Fig. 8(b) set-up, exhaustively.

The behavioural harness in :mod:`repro.verif.datapath` explores random
traces; this module builds the *gate-level* version the paper model
checked: controller netlists with a 1-bit datapath, producers emitting
an alternating 0/1 trace, and consumers that non-deterministically
accept, stall, or kill.  The consumer carries an expected-parity bit
and raises an ``error`` wire whenever a visible value (a transfer or a
kill at its interface) disagrees -- so data correctness becomes the CTL
property ``AG !error`` over the exhaustive (state x input) space.

Components:

* :func:`build_data_buffer` -- a dual EB with two 1-bit data slots
  (head/tail) shifting with the token flow and annihilating with
  kills;
* :func:`build_alternating_source` -- protocol-obeying producer whose
  payload is a parity bit advancing on every consumption (transfer or
  kill) of its token;
* :func:`build_checking_sink` -- non-deterministic consumer with the
  parity checker;
* :func:`build_data_fork` -- an eager fork whose branches carry copies
  of the payload;
* :func:`verify_data_correctness` -- builds the Kripke structure and
  checks ``AG !error`` (plus the four channel properties if asked);
* :func:`batched_error_sweep` -- the simulation-side complement: seeded
  random stimulus, one seed per lane of a bit-parallel
  :class:`~repro.rtl.batchsim.BatchSimulator`, hunting for a cycle that
  raises any error wire (:func:`error_sweep` replays one seed scalar).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_fork,
    build_nd_sink,
    build_nd_source,
)
from repro.rtl.batchsim import BatchSimulator, pack_stimulus
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator
from repro.verif.ctl import AG, AP, ModelChecker, Not
from repro.verif.kripke import KripkeStructure, build_kripke


def build_data_buffer(
    nl: Netlist,
    left: GateChannel,
    right: GateChannel,
    din: str,
    prefix: str,
    initial_tokens: int = 0,
    as_latches: bool = False,
) -> str:
    """A dual elastic buffer with a two-slot 1-bit data FIFO.

    ``din`` is the payload wire bundled with the left channel; the
    returned wire is the payload offered with ``right.V+``.  Data slots
    ``d0`` (head) and ``d1`` shift when the head token leaves (transfer
    or kill); an arriving token writes the tail slot.
    """
    build_elastic_buffer(
        nl, left, right, prefix=prefix,
        initial_tokens=initial_tokens, as_latches=as_latches,
    )
    t0 = f"{prefix}.t0"
    t1 = f"{prefix}.t1"
    in_pos = f"{prefix}.in_pos"
    shift = nl.OR(f"{prefix}.out_pos", f"{prefix}.kill_right",
                  out=f"{prefix}.shift")

    d0 = f"{prefix}.d0"
    d1 = f"{prefix}.d1"
    # head slot: on shift take d1 (two tokens) or the incoming payload
    # (back-to-back); otherwise hold, or capture into an empty buffer.
    no_shift_val = nl.MUX(t0, d0, nl.MUX(in_pos, din, d0))
    shift_val = nl.MUX(t1, d1, din)
    d0_d = nl.MUX(shift, shift_val, no_shift_val, out=f"{prefix}.d0_d")
    # tail slot: capture when a token arrives while one stays resident.
    load1 = nl.AND(in_pos, nl.OR(t1, nl.AND(t0, nl.NOT(shift))),
                   out=f"{prefix}.load1")
    d1_d = nl.MUX(load1, din, d1, out=f"{prefix}.d1_d")
    if as_latches:
        from repro.elastic.gates import ms_flop

        ms_flop(nl, d0_d, q=d0, init=0)
        ms_flop(nl, d1_d, q=d1, init=0)
    else:
        nl.add_flop(d0_d, q=d0, init=0)
        nl.add_flop(d1_d, q=d1, init=0)
    return d0


def build_alternating_source(
    nl: Netlist, output: GateChannel, prefix: str, choice_input: str
) -> str:
    """A non-deterministic producer emitting the 0,1,0,1,... trace.

    Returns the payload wire.  The parity advances whenever the offered
    token is consumed -- by a transfer *or* by a kill on the channel.
    """
    build_nd_source(nl, output, prefix=prefix, choice_input=choice_input)
    parity = f"{prefix}.parity"
    consumed = nl.AND(
        output.vp, nl.OR(nl.NOT(output.sp), output.vn),
        out=f"{prefix}.consumed",
    )
    nl.add_flop(nl.XOR(parity, consumed, out=f"{prefix}.parity_d"),
                q=parity, init=0)
    return parity


def build_checking_sink(
    nl: Netlist,
    input: GateChannel,
    data: str,
    prefix: str,
    stall_input: str,
    kill_input: Optional[str] = None,
) -> str:
    """A non-deterministic consumer with the alternating-parity checker.

    Returns the ``error`` wire: asserted when a visible consumed value
    (transfer or kill at this interface) differs from the expected
    parity.  Anti-tokens sent into the netlist advance the parity
    blindly (they will annihilate exactly the next in-flight token).
    """
    build_nd_sink(nl, input, prefix=prefix, stall_input=stall_input,
                  kill_input=kill_input)
    expected = f"{prefix}.expected"
    visible = nl.OR(
        nl.AND(input.vp, nl.NOT(input.sp), nl.NOT(input.vn)),
        nl.AND(input.vp, input.vn),
        out=f"{prefix}.visible",
    )
    anti_sent = nl.AND(input.vn, nl.NOT(input.sn), nl.NOT(input.vp),
                       out=f"{prefix}.anti_sent")
    consume = nl.OR(visible, anti_sent, out=f"{prefix}.consume")
    nl.add_flop(nl.XOR(expected, consume, out=f"{prefix}.expected_d"),
                q=expected, init=0)
    error = nl.AND(visible, nl.XOR(data, expected), out=f"{prefix}.error")
    return error


def build_data_fork(
    nl: Netlist,
    input: GateChannel,
    outputs: Sequence[GateChannel],
    din: str,
    prefix: str,
) -> List[str]:
    """An eager fork; every branch carries a copy of the payload."""
    build_fork(nl, input, outputs, prefix=prefix)
    return [din for _ in outputs]


def verify_data_correctness(
    netlist: Netlist,
    error_wires: Sequence[str],
    max_states: int = 500_000,
) -> Tuple[bool, KripkeStructure]:
    """Exhaustively check ``AG !error`` for every checker.

    Returns ``(ok, kripke)``; ``ok`` is True iff no reachable
    (state, input) pair raises any error wire.
    """
    observe = list(error_wires) + list(netlist.inputs)
    kripke = build_kripke(netlist, observe=observe, max_states=max_states)
    checker = ModelChecker(kripke)
    ok = all(checker.holds(AG(Not(AP(w)))) for w in error_wires)
    return ok, kripke


def _sweep_stimulus(
    netlist: Netlist, seed: int, cycles: int
) -> List[dict]:
    """The deterministic random input trace of one sweep seed."""
    rng = random.Random(f"sweep:{seed}")
    names = list(netlist.inputs)
    return [
        {name: rng.getrandbits(1) for name in names} for _ in range(cycles)
    ]


def error_sweep(
    netlist: Netlist,
    error_wires: Sequence[str],
    seed: int,
    cycles: int = 256,
) -> Optional[Tuple[int, int, str]]:
    """One seed of the random sweep, on the scalar simulator.

    Returns ``(seed, cycle, wire)`` for the first raised error wire, or
    ``None``.  Replays exactly one lane of :func:`batched_error_sweep`.
    """
    sim = TwoPhaseSimulator(netlist)
    for t, inputs in enumerate(_sweep_stimulus(netlist, seed, cycles)):
        values = sim.cycle(inputs)
        for wire in error_wires:
            if values.get(wire) == 1:
                return (seed, t, wire)
    return None


def batched_error_sweep(
    netlist: Netlist,
    error_wires: Sequence[str],
    seeds: Sequence[int],
    cycles: int = 256,
    backend: str = "batch",
    cache=None,
) -> Optional[Tuple[int, int, str]]:
    """Random-stimulus hunt for ``error``, all seeds word-parallel.

    Each seed drives every primary input with its own deterministic
    random 0/1 trace (one lane per seed, 64 seeds per batch).  Returns
    the first failure ordered by (cycle, wire order, seed order) -- the
    same failure every run regardless of batching -- or ``None`` if no
    seed raises any error wire within ``cycles``.

    ``backend="compiled"`` runs the codegen backend restricted to the
    error wires (``cache`` names its build-cache directory); results
    are identical, and repeated sweeps of the same netlist skip the
    per-batch kernel compile entirely.
    """
    if backend not in ("batch", "compiled"):
        raise ValueError(
            f"unknown backend {backend!r}; pick 'batch' or 'compiled'"
        )
    seeds = list(seeds)
    error_wires = list(error_wires)
    best: Optional[Tuple[int, int, int]] = None
    for base in range(0, len(seeds), 64):
        chunk = seeds[base:base + 64]
        if backend == "compiled":
            from repro.codegen.sim import CompiledSimulator

            sim = CompiledSimulator(
                netlist, lanes=len(chunk),
                hooks=frozenset(), observe=frozenset(error_wires),
                cache=cache,
            )
        else:
            sim = BatchSimulator(netlist, lanes=len(chunk))
        packed = pack_stimulus(
            [_sweep_stimulus(netlist, s, cycles) for s in chunk]
        )
        slots = [sim.slot(w) for w in error_wires]
        v, k = sim.value_planes, sim.known_planes
        for t, inputs in enumerate(packed):
            if best is not None and t > best[0]:
                break
            sim.cycle(inputs)
            hit = None
            for wi, slot in enumerate(slots):
                strict = v[slot] & k[slot]
                if strict:
                    lane = (strict & -strict).bit_length() - 1
                    hit = (t, wi, base + lane)
                    break
            if hit is not None:
                if best is None or hit < best:
                    best = hit
                break
    if best is None:
        return None
    t, wi, idx = best
    return (seeds[idx], t, error_wires[wi])


def alternating_pipeline(
    n_buffers: int = 2,
    with_kill: bool = True,
    sabotage: bool = False,
) -> Tuple[Netlist, List[str]]:
    """The canonical Fig. 8(b) pipeline at gate level.

    producer -> n data buffers -> checking consumer.  With ``sabotage``
    the first buffer's head slot is fed from the wrong place (the data
    equivalent of a stuck-at fault), which the checker must expose.
    """
    nl = Netlist("fig8b-gate")
    chans = [GateChannel.declare(nl, f"c{i}") for i in range(n_buffers + 1)]
    choice = nl.add_input("src.choice")
    data = build_alternating_source(nl, chans[0], prefix="src",
                                    choice_input=choice)
    for i in range(n_buffers):
        if sabotage and i == 0:
            data = _sabotaged_buffer(nl, chans[i], chans[i + 1], data, f"eb{i}")
        else:
            data = build_data_buffer(nl, chans[i], chans[i + 1], data,
                                     prefix=f"eb{i}")
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill") if with_kill else None
    error = build_checking_sink(nl, chans[-1], data, prefix="snk",
                                stall_input=stall, kill_input=kill)
    nl.add_output(error)
    nl.validate()
    return nl, [error]


def _sabotaged_buffer(
    nl: Netlist, left: GateChannel, right: GateChannel, din: str, prefix: str
) -> str:
    """A data buffer whose head slot ignores shifts (a real data bug)."""
    build_elastic_buffer(nl, left, right, prefix=prefix, as_latches=False)
    d0 = f"{prefix}.d0"
    in_pos = f"{prefix}.in_pos"
    # Broken: only ever captures a new head when empty; never shifts.
    t0 = f"{prefix}.t0"
    d0_d = nl.MUX(nl.AND(in_pos, nl.NOT(t0)), din, d0, out=f"{prefix}.d0_d")
    nl.add_flop(d0_d, q=d0, init=0)
    return d0
