"""Explicit-state Kripke structures from gate netlists.

A netlist with ``k`` primary inputs and sequential state ``s`` defines a
transition system: given (s, i) the two-phase simulator computes the
observable signal values and the successor state s'.  Signal values
depend on the *input* as well as the state, so Kripke states are
(state, input) pairs: every (s', i') with arbitrary i' is a successor
of (s, i).  Atomic propositions are then simple signal-value lookups.

State spaces of elastic controllers are small (the paper: "the size of
the controllers is small, state-of-the-art model checking techniques
readily apply"); explicit enumeration with a few thousand states checks
the same CTL properties NuSMV did.  For designs that are *not* small
the builder is bounded -- :class:`StateSpaceLimitError` names the last
controller state under expansion instead of exhausting memory -- and
resumable: a ``checkpoint`` directory receives periodic atomic
snapshots of the frontier, and a rerun pointed at the same directory
continues the exploration and produces the identical structure.

Completed explorations are additionally cacheable: pass a
:class:`~repro.codegen.cache.BuildCache` and the (sequential-state,
transition) tables are stored as a content-addressed JSON artifact
keyed on the netlist fingerprint and the observed signals -- the same
mechanism that already caches compiled simulator modules and lint
findings.  A cache hit skips the exploration entirely and folds the
stored tables into the identical :class:`KripkeStructure`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.resilience.checkpoint import CheckpointStore
from repro.rtl.logic import X, is_known
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator

StateKey = Tuple[int, ...]

#: Bump when the exploration semantics or the cached-table encoding
#: changes; every cached Kripke artifact is invalidated (key change).
KRIPKE_VERSION = 1


def _kripke_key(netlist: Netlist, observed: Sequence[str]) -> str:
    """The state-space cache key of one netlist + observation set."""
    from repro.codegen.fingerprint import netlist_fingerprint

    blob = json.dumps({
        "kind": "kripke-structure",
        "version": KRIPKE_VERSION,
        "netlist": netlist_fingerprint(netlist),
        "observe": list(observed),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _pack_label(label: Tuple[int, ...]) -> int:
    packed = 0
    for j, bit in enumerate(label):
        if bit:
            packed |= 1 << j
    return packed


def _unpack_label(packed: int, width: int) -> Tuple[int, ...]:
    return tuple((packed >> j) & 1 for j in range(width))


class StateSpaceLimitError(RuntimeError):
    """The exploration hit ``max_states`` before the frontier drained.

    ``last_state`` is the sequential state whose expansion discovered
    one state too many -- the natural place to start understanding why
    the space blew up.
    """

    def __init__(self, max_states: int, last_state: Mapping[str, object]) -> None:
        bits = ", ".join(
            f"{name}={_encode_value(value)}"
            for name, value in sorted(last_state.items())
        )
        super().__init__(
            f"state bound {max_states} exceeded while expanding controller "
            f"state {{{bits}}}; raise max_states, or pass a checkpoint "
            "directory to keep the partial exploration"
        )
        self.max_states = max_states
        self.last_state = dict(last_state)


def _encode_value(value: object) -> object:
    """A latch/flop value as JSON: 0, 1 or the string ``"x"``."""
    return "x" if not is_known(value) else int(value)  # type: ignore[arg-type]


def _decode_value(value: object) -> object:
    return X if value == "x" else value


@dataclass
class KripkeStructure:
    """An explicit Kripke structure over (state, input) pairs."""

    #: names of the labelled signals, in label-vector order
    signals: List[str]
    #: per Kripke-state signal values (0/1), aligned with ``signals``
    labels: List[Tuple[int, ...]]
    #: successor indices per state
    successors: List[List[int]]
    #: initial state indices
    initial: List[int]
    #: primary-input names, aligned with the input part of each state
    input_names: List[str] = field(default_factory=list)
    #: the raw (sequential-state, input) pair per Kripke state
    raw_states: List[Tuple[StateKey, Tuple[int, ...]]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    _index: Optional[Dict[str, int]] = None

    def signal_index(self, name: str) -> int:
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.signals)}
        return self._index[name]

    def value(self, state: int, signal: str) -> int:
        """Value of ``signal`` in Kripke state ``state``."""
        return self.labels[state][self.signal_index(signal)]

    def states_where(self, predicate: Callable[[Mapping[str, int]], bool]) -> FrozenSet[int]:
        """All states whose label valuation satisfies ``predicate``."""
        result = set()
        for idx, label in enumerate(self.labels):
            valuation = dict(zip(self.signals, label))
            if predicate(valuation):
                result.add(idx)
        return frozenset(result)

    def predecessors(self) -> List[List[int]]:
        """Reverse transition relation (computed on demand)."""
        preds: List[List[int]] = [[] for _ in self.labels]
        for src, succs in enumerate(self.successors):
            for dst in succs:
                preds[dst].append(src)
        return preds


def build_kripke(
    netlist: Netlist,
    observe: Optional[Sequence[str]] = None,
    max_states: int = 500_000,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_every: int = 1024,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 2048,
    cache=None,
) -> KripkeStructure:
    """Enumerate the reachable Kripke structure of ``netlist``.

    Args:
        netlist: the controller netlist; its primary inputs are treated
            as fully non-deterministic (all 2^k combinations each
            cycle).
        observe: signal names to expose as atomic propositions
            (defaults to the netlist's declared outputs plus inputs).
        max_states: safety bound on the exploration; exceeding it
            raises :class:`StateSpaceLimitError` (after snapshotting,
            when a checkpoint directory is set, so the partial
            exploration survives).
        progress: optional ``fn(explored_states, frontier_size)`` hook
            (e.g. a :class:`~repro.obs.profile.ProgressReporter`),
            called every ``progress_every`` newly discovered sequential
            states and once more when the frontier drains.
        progress_every: how many new states between progress calls.
        checkpoint: optional directory for periodic atomic snapshots of
            the exploration (frontier + discovered states +
            transitions).  A rerun with the same directory validates
            the workload fingerprint, restores the snapshot and builds
            the identical structure an uninterrupted run would.  The
            bound is *not* part of the fingerprint, so a resume may
            raise (or lift) ``max_states``.
        checkpoint_every: snapshot cadence in newly discovered states.
        cache: optional :class:`~repro.codegen.cache.BuildCache`.  A
            completed exploration of the same netlist fingerprint and
            observation set is loaded instead of re-explored (provided
            it fits ``max_states``); fresh explorations are stored on
            completion.

    Returns:
        The reachable :class:`KripkeStructure`.
    """
    sim = TwoPhaseSimulator(netlist)
    inputs = list(netlist.inputs)
    observed = list(observe) if observe is not None else (
        list(netlist.outputs) + inputs
    )
    state_names = sorted(sim.initial_state())
    input_combos = [
        dict(zip(inputs, combo))
        for combo in itertools.product((0, 1), repeat=len(inputs))
    ]

    cache_key = _kripke_key(netlist, observed) if cache is not None else None
    if cache is not None:
        payload = cache.load_json(cache_key)
        if (isinstance(payload, dict)
                and len(payload.get("seq_states", ())) <= max_states):
            seq_states = [
                {n: _decode_value(v) for n, v in zip(state_names, values)}
                for values in payload["seq_states"]
            ]
            transition = {
                (int(si), int(ii)): (
                    int(next_si), _unpack_label(int(packed), len(observed))
                )
                for si, ii, next_si, packed in payload["transition"]
            }
            return _fold_structure(
                seq_states, transition, observed, inputs, input_combos,
                state_names,
            )

    def state_key(state: Mapping[str, int]) -> StateKey:
        return tuple(state[n] for n in state_names)

    # First pass: explore reachable sequential states and memoise the
    # transition/observation of every (state, input) pair.
    seq_index: Dict[StateKey, int] = {}
    seq_states: List[Dict[str, int]] = []
    transition: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
    frontier: List[int] = []

    store: Optional[CheckpointStore] = None
    if checkpoint is not None:
        store = CheckpointStore(checkpoint)
        store.ensure_manifest({
            "kind": "kripke",
            "netlist": netlist.name,
            "inputs": inputs,
            "state_names": state_names,
            "observe": observed,
        })

    def encode_tables() -> Dict[str, object]:
        return {
            "seq_states": [
                [_encode_value(state[n]) for n in state_names]
                for state in seq_states
            ],
            "transition": sorted(
                [si, ii, next_si, _pack_label(label)]
                for (si, ii), (next_si, label) in transition.items()
            ),
        }

    def save_snapshot() -> None:
        if store is None:
            return
        store.save_snapshot({"frontier": list(frontier), **encode_tables()})

    snapshot = store.load_snapshot() if store is not None else None
    if isinstance(snapshot, dict):
        for values in snapshot["seq_states"]:
            state = {
                n: _decode_value(v) for n, v in zip(state_names, values)
            }
            seq_index[state_key(state)] = len(seq_states)
            seq_states.append(state)
        frontier = [int(si) for si in snapshot["frontier"]]
        for si, ii, next_si, packed in snapshot["transition"]:
            transition[(int(si), int(ii))] = (
                int(next_si), _unpack_label(int(packed), len(observed))
            )
    else:
        initial_state = sim.initial_state()
        seq_index[state_key(initial_state)] = 0
        seq_states.append(dict(initial_state))
        frontier = [0]

    unsaved = 0
    while frontier:
        si = frontier.pop()
        state = seq_states[si]
        for ii, input_map in enumerate(input_combos):
            values, next_state = sim.step_function(state, input_map)
            label = tuple(1 if values.get(s) == 1 else 0 for s in observed)
            nk = state_key(next_state)
            if nk not in seq_index:
                if len(seq_index) >= max_states:
                    # Re-queue the half-expanded state: its transition
                    # entries are recomputed (identically) on resume.
                    frontier.append(si)
                    save_snapshot()
                    raise StateSpaceLimitError(max_states, state)
                seq_index[nk] = len(seq_states)
                seq_states.append({n: next_state[n] for n in state_names})
                frontier.append(seq_index[nk])
                unsaved += 1
                if progress is not None and len(seq_states) % progress_every == 0:
                    progress(len(seq_states), len(frontier))
            transition[(si, ii)] = (seq_index[nk], label)
        if unsaved >= checkpoint_every:
            save_snapshot()
            unsaved = 0
    save_snapshot()
    if progress is not None:
        progress(len(seq_states), 0)
    if cache is not None:
        cache.store_json(cache_key, encode_tables(), meta={
            "kind": "kripke-structure",
            "version": KRIPKE_VERSION,
            "netlist": netlist.name,
            "states": len(seq_states),
        })

    return _fold_structure(
        seq_states, transition, observed, inputs, input_combos, state_names
    )


def _fold_structure(
    seq_states: List[Dict[str, object]],
    transition: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]],
    observed: List[str],
    inputs: List[str],
    input_combos: List[Dict[str, int]],
    state_names: List[str],
) -> KripkeStructure:
    """Second pass: fold inputs into Kripke (state, input) pairs."""
    n_inputs = len(input_combos)
    n_kripke = len(seq_states) * n_inputs

    def k_index(si: int, ii: int) -> int:
        return si * n_inputs + ii

    labels: List[Tuple[int, ...]] = [()] * n_kripke
    successors: List[List[int]] = [[] for _ in range(n_kripke)]
    raw: List[Tuple[StateKey, Tuple[int, ...]]] = [((), ())] * n_kripke
    for (si, ii), (next_si, label) in transition.items():
        idx = k_index(si, ii)
        labels[idx] = label
        successors[idx] = [k_index(next_si, jj) for jj in range(n_inputs)]
        raw[idx] = (
            tuple(seq_states[si][n] for n in state_names),
            tuple(input_combos[ii][name] for name in inputs),
        )
    initial = [k_index(0, ii) for ii in range(n_inputs)]
    return KripkeStructure(
        signals=observed,
        labels=labels,
        successors=successors,
        initial=initial,
        input_names=inputs,
        raw_states=raw,
    )
