"""Formal verification of elastic controllers (Sect. 5 of the paper).

Replaces the paper's NuSMV flow with an in-repo explicit-state model
checker:

* :mod:`repro.verif.kripke` -- builds a Kripke structure from a gate
  netlist by enumerating reachable (state, input) pairs; primary inputs
  are non-deterministic, which models the paper's "units with
  non-deterministic delays" and free environments.
* :mod:`repro.verif.ctl` -- CTL formulas and a fair-CTL model checker
  (fairness constraints are needed for the ``AG AF`` liveness property
  under environments that may stall forever).
* :mod:`repro.verif.properties` -- the four channel properties checked
  in the paper (Retry+, Retry−, invariant (2), liveness) plus helpers
  to run them on every channel of a netlist.
* :mod:`repro.verif.datapath` -- the Fig. 8(b) data-correctness set-up:
  alternating-bit producers, non-deterministic killing consumers, and
  random acyclic control netlists.
"""

from repro.verif.kripke import (
    KripkeStructure,
    StateSpaceLimitError,
    build_kripke,
)
from repro.verif.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    AP,
    And,
    Formula,
    Implies,
    Not,
    Or,
    TrueF,
    check,
)
from repro.verif.properties import (
    channel_properties,
    verify_channel_properties,
    verify_netlist,
)
from repro.verif.datapath import (
    AlternatingChecker,
    DataCorrectnessHarness,
    random_acyclic_network,
)

__all__ = [
    "KripkeStructure",
    "StateSpaceLimitError",
    "build_kripke",
    "AF",
    "AG",
    "AU",
    "AX",
    "EF",
    "EG",
    "EU",
    "EX",
    "AP",
    "And",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "TrueF",
    "check",
    "channel_properties",
    "verify_channel_properties",
    "verify_netlist",
    "AlternatingChecker",
    "DataCorrectnessHarness",
    "random_acyclic_network",
]
