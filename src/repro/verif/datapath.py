"""Data-correctness verification: the Fig. 8(b) set-up.

Producers inject an alternating trace of 0's and 1's into an acyclic
netlist of elastic controllers; consumers non-deterministically accept
the incoming data or emit anti-tokens that cancel data inside the
netlist.  Because every node of a (D)MG fires the same number of times
over a repetitive run, the k-th token on *every* channel carries the
value ``k mod 2``; a consumer therefore checks that its k-th
consumption event -- a transfer, a kill at its interface, or an
anti-token it sent into the netlist -- is consistent with that parity.

Joins additionally act as the paper's non-deterministic merges: they
verify that all simultaneously consumed operands carry equal values
(the behavioural analogue of "the merge produces a non-deterministic
value on mismatch", which the alternating check would then catch).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.elastic.behavioral import (
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    Sink,
    Source,
)
from repro.elastic.channel import Channel
from repro.elastic.ee import ThresholdEE
from repro.elastic.protocol import ProtocolViolation


class DataMismatch(AssertionError):
    """A consumer observed a value inconsistent with the alternating trace."""


def merge_equal(values: Sequence[object]) -> object:
    """Join combine function: all operands must agree (Fig. 8(b) merge)."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    first = present[0]
    for v in present[1:]:
        if v != first:
            raise DataMismatch(f"merge saw disagreeing operands {present}")
    return first


class _MergeEE(ThresholdEE):
    """Threshold EE whose output data is the (checked) merged value."""

    def output_data(self, valids, datas):  # noqa: D102 - see base class
        return merge_equal([d for v, d in zip(valids, datas) if v == 1])


class AlternatingChecker(Sink):
    """A killing consumer that verifies the alternating 0/1 invariant.

    Each consumption event advances the expected parity:

    * positive transfer -- the received value must equal the parity;
    * kill at the interface -- the annihilated value is visible and
      checked too;
    * negative transfer (anti-token sent into the netlist) -- it will
      annihilate exactly the next in-flight token, whose value is not
      observable; the parity still advances.
    """

    def __init__(
        self,
        name: str,
        input: Channel,
        p_stop: float = 0.2,
        p_kill: float = 0.2,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(name, input, p_stop=p_stop, p_kill=p_kill, rng=rng)
        self.events = 0
        self.checked = 0

    def commit(self) -> None:
        ch = self.input
        expected = self.events % 2
        if ch.pos_transfer or ch.kill:
            value = ch.data
            if value is not None and value != expected:
                raise DataMismatch(
                    f"{self.name}: event {self.events} saw {value}, "
                    f"expected {expected}"
                )
            self.checked += 1
            self.events += 1
        elif ch.neg_transfer:
            self.events += 1
        super().commit()


def alternating_source(name: str, output: Channel, **kwargs) -> Source:
    """A producer emitting 0, 1, 0, 1, ..."""
    return Source(name, output, data_fn=lambda n: n % 2, **kwargs)


@dataclass
class HarnessReport:
    """Outcome of a data-correctness run."""

    cycles: int
    consumed: int
    checked: int
    kills: int

    def __str__(self) -> str:
        return (
            f"{self.cycles} cycles, {self.consumed} consumption events "
            f"({self.checked} value-checked), {self.kills} anti-tokens sent"
        )


class DataCorrectnessHarness:
    """Run a network with alternating producers and checking consumers."""

    def __init__(self, network: ElasticNetwork):
        self.network = network
        self.checkers = [
            c for c in network.controllers if isinstance(c, AlternatingChecker)
        ]
        if not self.checkers:
            raise ValueError("network has no AlternatingChecker consumers")

    def run(self, cycles: int) -> HarnessReport:
        """Simulate; raises :class:`DataMismatch` on any violation."""
        self.network.run(cycles)
        return HarnessReport(
            cycles=cycles,
            consumed=sum(c.events for c in self.checkers),
            checked=sum(c.checked for c in self.checkers),
            kills=sum(c.kills_sent for c in self.checkers),
        )


def random_acyclic_network(
    seed: int,
    n_sources: int = 2,
    n_layers: int = 3,
    p_stop: float = 0.2,
    p_kill: float = 0.25,
    early_joins: bool = True,
) -> ElasticNetwork:
    """Generate a random acyclic netlist in the style of Fig. 8(b).

    Starting from ``n_sources`` alternating producers, each layer
    randomly buffers channels, forks one channel, or joins two channels
    (with a lazy join or, when ``early_joins``, an early join acting as
    a merge).  Every surviving channel ends in an
    :class:`AlternatingChecker` consumer.  The netlist is acyclic and
    initially holds no valid data, as in the paper's set-up.
    """
    rng = random.Random(seed)
    net = ElasticNetwork(f"fig8b[{seed}]")
    counter = [0]

    def fresh(kind: str) -> Channel:
        counter[0] += 1
        return net.add_channel(f"{kind}{counter[0]}")

    live: List[Channel] = []
    for i in range(n_sources):
        ch = fresh("src")
        net.add(alternating_source(f"P{i}", ch, rng=random.Random(seed * 31 + i)))
        live.append(ch)

    for layer in range(n_layers):
        action = rng.choice(["buffer", "fork", "join", "buffer"])
        if action == "join" and len(live) >= 2:
            a = live.pop(rng.randrange(len(live)))
            b = live.pop(rng.randrange(len(live)))
            out = fresh("j")
            if early_joins and rng.random() < 0.5:
                ee = _MergeEE(k=1, arity=2)
                net.add(EarlyJoin(f"EJ{layer}", [a, b], out, ee))
            else:
                net.add(Join(f"J{layer}", [a, b], out, combine=merge_equal))
            live.append(out)
        elif action == "fork":
            src = live.pop(rng.randrange(len(live)))
            outs = [fresh("f"), fresh("f")]
            net.add(EagerFork(f"F{layer}", src, outs))
            live.extend(outs)
        else:
            idx = rng.randrange(len(live))
            src = live[idx]
            out = fresh("b")
            net.add(ElasticBuffer(f"B{layer}", src, out))
            live[idx] = out

    for i, ch in enumerate(live):
        # A buffer in front of each consumer decouples its kills.
        out = fresh("sink")
        net.add(ElasticBuffer(f"BS{i}", ch, out))
        net.add(
            AlternatingChecker(
                f"C{i}",
                out,
                p_stop=p_stop,
                p_kill=p_kill,
                rng=random.Random(seed * 77 + i),
            )
        )
    return net
