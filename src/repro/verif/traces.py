"""Counterexample traces for failed model-checking runs.

When a safety property ``AG p`` fails, the practical question is *how*
the controller gets into the bad state.  :func:`counterexample_trace`
extracts a shortest path from an initial Kripke state to a violating
one and renders each step's signal values and primary-input choices --
the explicit-state analogue of NuSMV's counterexample output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.verif.ctl import AG, AP, Formula, ModelChecker, Not
from repro.verif.kripke import KripkeStructure


@dataclass
class TraceStep:
    """One cycle of a counterexample."""

    state: int
    inputs: Dict[str, int]
    signals: Dict[str, int]

    def __str__(self) -> str:
        ins = " ".join(f"{k}={v}" for k, v in sorted(self.inputs.items()))
        hot = " ".join(k for k, v in sorted(self.signals.items()) if v)
        return f"[{self.state}] in({ins}) hot: {hot or '-'}"


def shortest_path_to(
    kripke: KripkeStructure, targets: FrozenSet[int]
) -> Optional[List[int]]:
    """BFS from the initial states to any state in ``targets``."""
    parent: Dict[int, Optional[int]] = {}
    queue: deque[int] = deque()
    for s in kripke.initial:
        parent[s] = None
        queue.append(s)
    goal: Optional[int] = None
    while queue:
        s = queue.popleft()
        if s in targets:
            goal = s
            break
        for t in kripke.successors[s]:
            if t not in parent:
                parent[t] = s
                queue.append(t)
    if goal is None:
        return None
    path = [goal]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])  # type: ignore[index]
    path.reverse()
    return path


def _step(kripke: KripkeStructure, state: int) -> TraceStep:
    raw_state, raw_inputs = kripke.raw_states[state]
    inputs = dict(zip(kripke.input_names, raw_inputs))
    signals = dict(zip(kripke.signals, kripke.labels[state]))
    return TraceStep(state=state, inputs=inputs, signals=signals)


def counterexample_trace(
    kripke: KripkeStructure,
    invariant: Formula,
    fairness: Sequence[Formula] = (),
) -> Optional[List[TraceStep]]:
    """Witness for the violation of ``AG invariant``.

    Returns the shortest initial path to a state violating the
    invariant, or ``None`` if ``AG invariant`` holds.  (Liveness
    counterexamples are lassos, which explicit enumeration could also
    produce; safety covers the paper's Retry/invariant properties.)
    """
    checker = ModelChecker(kripke, fairness)
    bad = frozenset(range(len(kripke))) - checker.sat(invariant)
    if not bad:
        return None
    path = shortest_path_to(kripke, bad)
    if path is None:  # violating states exist but are unreachable
        return None
    return [_step(kripke, s) for s in path]


def format_trace(steps: Sequence[TraceStep]) -> str:
    """Render a counterexample, one cycle per line."""
    lines = [f"counterexample ({len(steps)} cycles):"]
    for i, step in enumerate(steps):
        lines.append(f"  cycle {i}: {step}")
    return "\n".join(lines)
