"""CTL model checking with fairness over explicit Kripke structures.

Implements the classical labelling algorithm [Clarke-Emerson-Sistla,
the paper's reference [5]]: the set of states satisfying a formula is
computed bottom-up using the primitives ``EX``, ``EU`` and ``EG``;
the universal operators are derived by duality.

Fairness constraints (sets of states that must occur infinitely often
on a path) use the Emerson-Lei iteration for fair ``EG``; ``EX``/``EU``
are relativised to states admitting a fair path.  Fairness is needed
for the paper's liveness property ``AG AF (transfer)``: with a fully
non-deterministic environment the consumer may stall forever, so the
check is run under the constraint that the environment makes progress
infinitely often -- the explicit-state analogue of NuSMV ``FAIRNESS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.verif.kripke import KripkeStructure

StateSet = FrozenSet[int]


class Formula:
    """Base class of CTL formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class AP(Formula):
    """Atomic proposition: ``signal == value`` (value defaults to 1)."""

    signal: str
    value: int = 1

    def __str__(self) -> str:
        return self.signal if self.value else f"!{self.signal}"


@dataclass(frozen=True)
class Not(Formula):
    child: Formula

    def __str__(self) -> str:
        return f"!({self.child})"


class _NAry(Formula):
    def __init__(self, *children: Formula):
        self.children = tuple(children)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class And(_NAry):
    def __str__(self) -> str:
        return "(" + " & ".join(str(c) for c in self.children) + ")"


class Or(_NAry):
    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"({self.lhs} -> {self.rhs})"


@dataclass(frozen=True)
class EX(Formula):
    child: Formula

    def __str__(self) -> str:
        return f"EX {self.child}"


@dataclass(frozen=True)
class EU(Formula):
    lhs: Formula
    rhs: Formula

    def __str__(self) -> str:
        return f"E[{self.lhs} U {self.rhs}]"


@dataclass(frozen=True)
class EG(Formula):
    child: Formula

    def __str__(self) -> str:
        return f"EG {self.child}"


# Derived operators -----------------------------------------------------
def EF(f: Formula) -> Formula:
    """EF f == E[true U f]."""
    return EU(TrueF(), f)


def AX(f: Formula) -> Formula:
    """AX f == not EX not f."""
    return Not(EX(Not(f)))


def AG(f: Formula) -> Formula:
    """AG f == not EF not f."""
    return Not(EF(Not(f)))


def AF(f: Formula) -> Formula:
    """AF f == not EG not f."""
    return Not(EG(Not(f)))


def AU(f: Formula, g: Formula) -> Formula:
    """A[f U g] == not(E[not g U (not f & not g)]) & not EG not g."""
    return And(Not(EU(Not(g), And(Not(f), Not(g)))), Not(EG(Not(g))))


class ModelChecker:
    """Labelling-based CTL checker over one Kripke structure."""

    def __init__(
        self,
        kripke: KripkeStructure,
        fairness: Sequence[Formula] = (),
    ):
        self.k = kripke
        self.n = len(kripke)
        self.all_states: StateSet = frozenset(range(self.n))
        self.preds = kripke.predecessors()
        self._cache: Dict[object, StateSet] = {}
        # Fairness sets are plain formulas evaluated without fairness.
        self.fair_sets: List[StateSet] = [self._sat(f) for f in fairness]
        if self.fair_sets:
            self.fair_states = self._fair_eg(self.all_states)
        else:
            self.fair_states = self.all_states

    # -- basic set operations ------------------------------------------
    def _pre_exists(self, target: StateSet) -> StateSet:
        """States with at least one successor in ``target``."""
        result = set()
        for t in target:
            result.update(self.preds[t])
        return frozenset(result)

    def _eu(self, p: StateSet, q: StateSet) -> StateSet:
        """E[p U q]: backward reachability of q through p-states."""
        result = set(q)
        frontier = list(q)
        while frontier:
            t = frontier.pop()
            for s in self.preds[t]:
                if s not in result and s in p:
                    result.add(s)
                    frontier.append(s)
        return frozenset(result)

    def _eg(self, p: StateSet) -> StateSet:
        """EG p: largest subset of p closed under 'has successor inside'."""
        current = set(p)
        changed = True
        while changed:
            changed = False
            drop = [s for s in current if not any(t in current for t in self.k.successors[s])]
            if drop:
                current.difference_update(drop)
                changed = True
        return frozenset(current)

    def _fair_eg(self, p: StateSet) -> StateSet:
        """Emerson-Lei fair EG: infinite p-paths hitting every fair set."""
        if not self.fair_sets:
            return self._eg(p)
        z = frozenset(p)
        while True:
            new_z = z
            for fair in self.fair_sets:
                target = new_z & fair
                reach = self._eu(p, target)
                new_z = new_z & self._pre_exists(reach) & p
            if new_z == z:
                return z
            z = new_z

    # -- formula evaluation ----------------------------------------------
    def _sat(self, f: Formula) -> StateSet:
        key = f
        if key in self._cache:
            return self._cache[key]
        result = self._compute(f)
        self._cache[key] = result
        return result

    def _compute(self, f: Formula) -> StateSet:
        if isinstance(f, TrueF):
            return self.all_states
        if isinstance(f, AP):
            idx = self.k.signal_index(f.signal)
            return frozenset(
                s for s in range(self.n) if self.k.labels[s][idx] == f.value
            )
        if isinstance(f, Not):
            return self.all_states - self._sat(f.child)
        if isinstance(f, And):
            sets = [self._sat(c) for c in f.children]
            return frozenset.intersection(*sets) if sets else self.all_states
        if isinstance(f, Or):
            sets = [self._sat(c) for c in f.children]
            return frozenset.union(*sets) if sets else frozenset()
        if isinstance(f, Implies):
            return (self.all_states - self._sat(f.lhs)) | self._sat(f.rhs)
        if isinstance(f, EX):
            return self._pre_exists(self._sat(f.child) & self.fair_states)
        if isinstance(f, EU):
            return self._eu(self._sat(f.lhs), self._sat(f.rhs) & self.fair_states)
        if isinstance(f, EG):
            return self._fair_eg(self._sat(f.child))
        raise TypeError(f"unknown formula {f!r}")

    def sat(self, f: Formula) -> StateSet:
        """States satisfying ``f`` (under the fairness constraints)."""
        return self._sat(f)

    def holds(self, f: Formula) -> bool:
        """Whether every initial state satisfies ``f``."""
        return all(s in self._sat(f) for s in self.k.initial)

    def counterexample_state(self, f: Formula) -> Optional[int]:
        """An initial state violating ``f`` (or None)."""
        satisfying = self._sat(f)
        for s in self.k.initial:
            if s not in satisfying:
                return s
        return None


def check(
    kripke: KripkeStructure,
    formula: Formula,
    fairness: Sequence[Formula] = (),
) -> bool:
    """Convenience wrapper: does ``formula`` hold in all initial states?"""
    return ModelChecker(kripke, fairness).holds(formula)
