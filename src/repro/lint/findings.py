"""The reporting spine of the static analyzer.

Both lint front-ends -- the netlist rules of
:mod:`repro.lint.netlist_rules` and the elastic-protocol rules of
:mod:`repro.lint.elastic_rules` -- emit :class:`Finding` objects against
the stable rule catalog below and collect them into a
:class:`LintReport`.

Rule codes are part of the tool's contract: ``LNT0xx`` rules check the
gate/latch netlist level, ``ELX0xx`` rules check the elastic protocol
level (specs, behavioural networks, DMG abstractions).  Codes are never
renumbered; retired rules keep their slot.

Determinism is load-bearing: findings sort on a total key and the JSON
serialisation is byte-stable, so two runs over the same design produce
identical reports, and the baseline mechanism (:mod:`repro.lint.baseline`)
can key suppressions on content fingerprints that survive message
rewording.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """Finding severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {"INFO": "note", "WARNING": "warning", "ERROR": "error"}[self.name]


@dataclass(frozen=True)
class Rule:
    """One catalog entry: a stable code, a default severity, and the
    paper discipline the rule encodes."""

    code: str
    title: str
    severity: Severity
    clause: str


#: The rule catalog.  ``LNT0xx`` = netlist front-end, ``ELX0xx`` =
#: elastic front-end.  DESIGN.md carries the full prose catalog.
RULES: Dict[str, Rule] = {
    r.code: r
    for r in [
        Rule("LNT001", "multiply-driven signal", Severity.ERROR,
             "single-driver netlist discipline"),
        Rule("LNT002", "floating signal", Severity.ERROR,
             "every referenced signal needs a driver"),
        Rule("LNT003", "dead cell", Severity.WARNING,
             "logic outside the output cone is unobservable"),
        Rule("LNT004", "same-phase transparent latch path", Severity.WARNING,
             "two-phase clocking: H latches must feed L latches (Fig. 3)"),
        Rule("LNT005", "combinational cycle", Severity.ERROR,
             "token-cancellation gates sit at EHB boundaries precisely so "
             "no combinational cycle arises (Sect. 5)"),
        Rule("LNT006", "constant net", Severity.INFO,
             "anti-token logic of channels that never see anti-tokens "
             "reduces to constants (Sect. 6 simplification)"),
        Rule("LNT007", "uninitialised state element", Severity.WARNING,
             "X-valued reset state is a structural X source"),
        Rule("LNT008", "state bit can never leave X", Severity.WARNING,
             "a state bit whose reachable-value set stays {X} after "
             "reset is permanently unknown: no input assignment ever "
             "resolves it (dataflow: value-set fixpoint over the "
             "sequential abstraction)"),
        Rule("LNT009", "uncovered reset is observable", Severity.WARNING,
             "an X-initialised register that reaches a primary output "
             "through combinational logic only is observable before "
             "its first load: the environment sees X in cycle 0 "
             "(dataflow: backward observability fixpoint)"),
        Rule("ELX001", "spec connectivity", Severity.ERROR,
             "every port connects exactly once with the declared role"),
        Rule("ELX002", "channel polarity", Severity.ERROR,
             "each channel has one {V+, S-} producer and one {S+, V-} "
             "consumer (Sect. 3 dual protocol)"),
        Rule("ELX003", "controller shape", Severity.ERROR,
             "join/fork arity, G-gate masks and buffer occupancy must "
             "match their declarations (Sect. 5/6)"),
        Rule("ELX004", "token-free channel cycle", Severity.ERROR,
             "liveness: every cycle must carry at least one token "
             "(Theorem, Sect. 2.2)"),
        Rule("ELX005", "bubble-free channel cycle", Severity.ERROR,
             "every cycle needs spare EB capacity for tokens to advance; "
             "a full capacity-1 loop deadlocks below the DMG abstraction"),
        Rule("ELX006", "annihilator-free counterflow cycle", Severity.ERROR,
             "an early join's anti-tokens must terminate in an "
             "annihilating buffer or passive interface (Sect. 4)"),
        Rule("ELX007", "inert passive interface", Severity.INFO,
             "a passive anti-token interface without any early-evaluation "
             "join can never see an anti-token (Fig. 7(a))"),
        Rule("ELX008", "dead early-evaluation arm", Severity.WARNING,
             "a threshold guard met every cycle by the other, "
             "persistently valid arms never depends on this arm: its "
             "G-gate and pending logic are statically irrelevant "
             "(Sect. 6 simplification, dataflow: token-availability "
             "fixpoint)"),
        Rule("ELX009", "counterflow never annihilates", Severity.WARNING,
             "anti-tokens emitted into a channel where no token can "
             "ever arrive never meet one and accumulate forever "
             "(Sect. 4 counterflow; refines ELX006 beyond cycles, "
             "dataflow: token-availability fixpoint)"),
    ]
}


@dataclass(frozen=True)
class SourceLocation:
    """A file/line/column anchor for findings on re-parsed designs.

    Produced by the :mod:`repro.lint.frontends` parsers' source maps;
    1-based line and column, SARIF-style.
    """

    file: str
    line: int
    column: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line, "column": self.column}

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Finding:
    """One rule violation against one subject of one lint target.

    ``path`` carries the cycle or latch-to-latch path in flow order when
    the rule reports one; it participates in the fingerprint (a cycle
    through different nodes is a different finding) while ``message``
    does not (rewording a diagnostic must not invalidate baselines).

    ``witness`` is an optional machine-checkable explanation produced
    by the dataflow rules -- a JSON-native mapping (strings, ints,
    lists, dicts only) that the test suite replays against the design.
    ``location`` is an optional file anchor attached when the finding
    came from a parsed BLIF/Verilog file.  Neither participates in the
    fingerprint: a witness is derived evidence and a location is
    presentation, so baselines survive both.
    """

    rule: str
    target: str
    subject: str
    message: str
    path: Tuple[str, ...] = ()
    witness: Optional[Dict[str, object]] = None
    location: Optional[SourceLocation] = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown lint rule {self.rule!r}")

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def fingerprint(self) -> str:
        blob = "|".join((self.rule, self.target, self.subject, *self.path))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> Tuple:
        return (self.target, self.rule, self.subject, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.name,
            "target": self.target,
            "subject": self.subject,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.path:
            d["path"] = list(self.path)
        if self.witness is not None:
            d["witness"] = self.witness
        if self.location is not None:
            d["location"] = self.location.to_dict()
        return d

    def __str__(self) -> str:
        where = f" ({self.location})" if self.location else ""
        return (f"{self.severity.name:7s} {self.rule} "
                f"[{self.target}] {self.subject}{where}: {self.message}")


class LintReport:
    """A sorted, deduplicated collection of findings."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = []
        self._seen: set = set()
        self.extend(findings)

    # -- collection ----------------------------------------------------
    def add(self, finding: Finding) -> None:
        key = (finding.fingerprint, finding.message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)
            self.findings.sort(key=Finding.sort_key)

    def extend(self, findings: Iterable[Finding]) -> None:
        for f in findings:
            self.add(f)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    # -- queries -------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    def counts(self) -> Dict[str, int]:
        counts = {s.name: 0 for s in Severity}
        for f in self.findings:
            counts[f.severity.name] += 1
        return counts

    @property
    def clean(self) -> bool:
        """No WARNING or ERROR findings (INFO notes are allowed --
        elaborated netlists intentionally contain constant anti-token
        logic that synthesis sweeps away)."""
        return not any(f.severity >= Severity.WARNING for f in self.findings)

    def targets(self) -> List[str]:
        return sorted({f.target for f in self.findings})

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": "repro.lint",
            "counts": self.counts(),
            "targets": self.targets(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        """Deterministic JSON: same designs => identical bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """The human-facing table printed by ``repro lint``."""
        lines = [str(f) for f in self.findings]
        c = self.counts()
        lines.append(
            f"{len(self.findings)} finding(s): {c['ERROR']} error(s), "
            f"{c['WARNING']} warning(s), {c['INFO']} note(s)"
        )
        return "\n".join(lines)

    # -- observability -------------------------------------------------
    def emit(self, recorder, cycle: int = 0) -> int:
        """Emit every finding as a structured ``finding`` trace event.

        ``recorder`` is a :class:`~repro.obs.recorder.TraceRecorder`;
        static findings are stamped with ``cycle`` (they precede the
        simulation, so 0 by convention).  Returns the number emitted.
        """
        for f in self.findings:
            recorder.emit(
                cycle, "finding", f.subject, value=f.rule,
                extra={
                    "severity": f.severity.name,
                    "target": f.target,
                    "message": f.message,
                    **({"path": list(f.path)} if f.path else {}),
                },
            )
        return len(self.findings)


def render_witness(witness: Dict[str, object]) -> List[str]:
    """Human-readable lines for one finding's witness.

    Renders the shared witness vocabulary of the dataflow rules:
    ``path``/``chain`` keys become arrow chains, ``chains`` one chain
    per line, ``inputs`` a value assignment; remaining scalar keys
    print as ``key: value``.  The CLI's ``--explain`` and the tests
    share this one renderer.
    """
    kind = witness.get("kind")
    lines: List[str] = [f"witness ({kind}):" if kind else "witness:"]
    for key in sorted(witness):
        if key == "kind":
            continue
        value = witness[key]
        if key in ("path", "chain") and isinstance(value, list):
            lines.append(f"  {key}: " + " -> ".join(map(str, value)))
        elif key == "chains" and isinstance(value, list):
            for item in value:
                lines.append("  chain: " + " -> ".join(map(str, item)))
        elif key == "inputs" and isinstance(value, dict):
            assign = ", ".join(f"{n}={value[n]}" for n in sorted(value))
            lines.append(f"  inputs: {assign}")
        else:
            lines.append(f"  {key}: {value}")
    return lines
