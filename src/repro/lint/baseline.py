"""Baseline (suppression) files for intentional findings.

A baseline is a JSON file of finding fingerprints.  ``repro lint
--baseline FILE`` subtracts the recorded fingerprints before deciding
the exit code, so a design with known, accepted findings stays green
until a *new* finding appears.  Fingerprints hash the rule, target,
subject and path -- not the message -- so diagnostics can be reworded
without invalidating a baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set, Union

from repro.lint.findings import Finding, LintReport

__all__ = ["load_baseline", "new_findings", "write_baseline"]


def write_baseline(report: LintReport, path: Union[str, Path]) -> int:
    """Record every finding of ``report``; returns the count written."""
    fingerprints = sorted({f.fingerprint for f in report.findings})
    payload = {"tool": "repro.lint", "fingerprints": fingerprints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return len(fingerprints)


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """The suppressed fingerprints of one baseline file."""
    payload = json.loads(Path(path).read_text())
    fingerprints = payload.get("fingerprints", [])
    if not isinstance(fingerprints, list):
        raise ValueError(f"{path}: malformed baseline (fingerprints "
                         "must be a list)")
    return set(fingerprints)


def new_findings(report: LintReport, baseline: Set[str]) -> List[Finding]:
    """Findings of ``report`` not suppressed by ``baseline``."""
    return [f for f in report.findings if f.fingerprint not in baseline]
