"""repro.lint -- rule-based static analysis of elastic designs.

Two front-ends feed one reporting spine:

* the **netlist front-end** (:mod:`repro.lint.netlist_rules`, rules
  ``LNT0xx``) checks gate/latch netlists: driver discipline, dead and
  floating logic, two-phase clocking, combinational cycles (the one
  producer of the diagnostic both simulators raise), ternary constant
  propagation and structural X sources;
* the **elastic front-end** (:mod:`repro.lint.elastic_rules`, rules
  ``ELX0xx``) checks specs, behavioural networks and DMG abstractions:
  connectivity and channel polarity, controller shape, static deadlock
  analysis (token-free and bubble-free cycles) and anti-token balance
  behind early-evaluation joins.

Findings serialise to deterministic JSON and SARIF 2.1.0
(:mod:`repro.lint.sarif`), suppress against baseline files
(:mod:`repro.lint.baseline`), and emit as ``finding`` trace events.
``repro lint`` drives the built-in target registry
(:mod:`repro.lint.targets`); :func:`repro.synthesis.elasticize` runs
the spec rules at build time and fails fast on errors.
"""

from repro.lint.baseline import load_baseline, new_findings, write_baseline
from repro.lint.elastic_rules import lint_dmg, lint_network, lint_spec
from repro.lint.findings import RULES, Finding, LintReport, Rule, Severity
from repro.lint.netlist_rules import combinational_cycle_finding, lint_netlist
from repro.lint.sarif import sarif_json, to_sarif
from repro.lint.targets import LINT_TARGETS, all_targets, run_lint

__all__ = [
    "RULES",
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "LINT_TARGETS",
    "all_targets",
    "combinational_cycle_finding",
    "lint_dmg",
    "lint_netlist",
    "lint_network",
    "lint_spec",
    "load_baseline",
    "new_findings",
    "run_lint",
    "sarif_json",
    "to_sarif",
    "write_baseline",
]
