"""repro.lint -- rule-based static analysis of elastic designs.

Three front-ends feed one reporting spine:

* the **netlist front-end** (:mod:`repro.lint.netlist_rules`, rules
  ``LNT0xx``) checks gate/latch netlists: driver discipline, dead and
  floating logic, two-phase clocking, combinational cycles (the one
  producer of the diagnostic both simulators raise), ternary constant
  propagation and structural X sources, plus the dataflow rules --
  LNT008 (state stuck at X) and LNT009 (uncovered reset observable) --
  built on the fixpoint engine of :mod:`repro.lint.dataflow`;
* the **elastic front-end** (:mod:`repro.lint.elastic_rules`, rules
  ``ELX0xx``) checks specs, behavioural networks and DMG abstractions:
  connectivity and channel polarity, controller shape, static deadlock
  analysis (token-free and bubble-free cycles), anti-token balance
  behind early-evaluation joins, and the token-availability rules
  ELX008 (dead EE arm) and ELX009 (starved counterflow);
* the **re-parse front-end** (:mod:`repro.lint.frontends`) reads
  exported BLIF/structural Verilog back into netlists with a source
  map, so ``repro lint --file design.blif`` anchors findings to
  file/line/column.

Dataflow findings carry machine-checkable witnesses
(:func:`replay_witness` / :func:`replay_spec_witness` re-derive them;
:func:`render_witness` pretty-prints them for ``--explain``).
Findings serialise to deterministic JSON and SARIF 2.1.0
(:mod:`repro.lint.sarif`), suppress against baseline files
(:mod:`repro.lint.baseline`), and emit as ``finding`` trace events.
``repro lint`` drives the built-in target registry
(:mod:`repro.lint.targets`); :func:`repro.synthesis.elasticize` runs
the spec rules at build time and fails fast on errors.
"""

from repro.lint.baseline import load_baseline, new_findings, write_baseline
from repro.lint.dataflow import (
    FixpointDivergence,
    FixpointResult,
    dmg_graph,
    fixpoint,
    netlist_graph,
    spec_graph,
)
from repro.lint.elastic_rules import (
    lint_dmg,
    lint_network,
    lint_spec,
    replay_spec_witness,
    token_availability,
)
from repro.lint.findings import (
    RULES,
    Finding,
    LintReport,
    Rule,
    Severity,
    SourceLocation,
    render_witness,
)
from repro.lint.frontends import (
    FrontendParseError,
    ParsedDesign,
    SourceMap,
    attach_locations,
    parse_blif,
    parse_design_file,
    parse_verilog,
)
from repro.lint.netlist_rules import (
    combinational_cycle_finding,
    constant_values,
    lint_netlist,
    replay_witness,
    value_sets,
)
from repro.lint.sarif import sarif_json, to_sarif
from repro.lint.targets import LINT_TARGETS, all_targets, lint_file, run_lint

__all__ = [
    "RULES",
    "Finding",
    "FixpointDivergence",
    "FixpointResult",
    "FrontendParseError",
    "LintReport",
    "ParsedDesign",
    "Rule",
    "Severity",
    "SourceLocation",
    "SourceMap",
    "LINT_TARGETS",
    "all_targets",
    "attach_locations",
    "combinational_cycle_finding",
    "constant_values",
    "dmg_graph",
    "fixpoint",
    "lint_dmg",
    "lint_file",
    "lint_netlist",
    "lint_network",
    "lint_spec",
    "load_baseline",
    "netlist_graph",
    "new_findings",
    "parse_blif",
    "parse_design_file",
    "parse_verilog",
    "render_witness",
    "replay_spec_witness",
    "replay_witness",
    "run_lint",
    "sarif_json",
    "spec_graph",
    "to_sarif",
    "token_availability",
    "value_sets",
    "write_baseline",
]
