"""SARIF 2.1.0 serialisation of a :class:`~repro.lint.findings.LintReport`.

One run, one driver (``repro.lint``), the full rule catalog in the
driver's ``rules`` array (stable indices), one result per finding.
Subjects are logical locations (nets, channels, controllers) rather
than files -- the analyzer works on in-memory designs -- and each
result carries the baseline fingerprint under ``partialFingerprints``
so SARIF consumers dedupe across runs exactly like the native
baseline file does.  Findings that came through a re-parse front-end
(``repro lint --file design.blif``) additionally carry a
``physicalLocation`` with the file/line/column the source map
anchored their subject to, so SARIF viewers jump straight to the
defining line of the exported HDL.

The output is deterministic: rules and findings are sorted, and the
JSON dump is key-sorted with a trailing newline, byte-identical across
runs over the same designs.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import LintReport, RULES

__all__ = ["to_sarif", "sarif_json"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")


def to_sarif(report: LintReport) -> Dict[str, object]:
    """The SARIF 2.1.0 log object for one lint report."""
    codes = sorted(RULES)
    index = {code: i for i, code in enumerate(codes)}
    rules: List[Dict[str, object]] = [
        {
            "id": code,
            "shortDescription": {"text": RULES[code].title},
            "fullDescription": {"text": RULES[code].clause},
            "defaultConfiguration": {
                "level": RULES[code].severity.sarif_level
            },
        }
        for code in codes
    ]
    results: List[Dict[str, object]] = []
    for f in report.findings:
        location: Dict[str, object] = {
            "logicalLocations": [
                {
                    "name": f.subject,
                    "fullyQualifiedName": f"{f.target}::{f.subject}",
                }
            ]
        }
        if f.location is not None:
            location["physicalLocation"] = {
                "artifactLocation": {"uri": f.location.file},
                "region": {
                    "startLine": f.location.line,
                    "startColumn": f.location.column,
                },
            }
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "locations": [location],
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
        }
        if f.path:
            result["properties"] = {"path": list(f.path)}
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri":
                            "https://example.invalid/repro/lint",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def sarif_json(report: LintReport) -> str:
    """Deterministic SARIF bytes (same designs => identical output)."""
    return json.dumps(to_sarif(report), indent=2, sort_keys=True) + "\n"
