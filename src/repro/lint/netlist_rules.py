"""Netlist front-end of the static analyzer (the ``LNT0xx`` rules).

Checks a :class:`~repro.rtl.netlist.Netlist` *before* any simulator is
built:

========  ==========================================================
LNT001    multiply-driven signal (a name owned by two cell tables)
LNT002    floating signal (referenced as fan-in, never driven)
LNT003    dead cell (outside the declared output cone)
LNT004    two-phase discipline: a transparent latch fed combinationally
          by a latch of the *same* phase races through both in one
          phase (H must feed L and vice versa, Fig. 3)
LNT005    combinational cycle, with the full canonical path -- the
          single producer of the cycle diagnostic shared with both
          simulators via ``CombinationalCycleError.from_finding``
LNT006    constant net, by a ternary constant-propagation fixpoint
          over the sequential abstraction (INFO: elaborated control
          layers intentionally contain constants that synthesis sweeps)
LNT007    state element initialised to X (a structural X source)
LNT008    state bit that can never leave X after reset (value-set
          fixpoint; witness: a shortest X-propagation path)
LNT009    X-initialised register observable at a primary output before
          its first load (backward observability fixpoint; witness:
          the combinational observation path)
========  ==========================================================

LNT006/LNT008/LNT009 run on the generic worklist engine of
:mod:`repro.lint.dataflow` and attach machine-checkable witnesses;
:func:`replay_witness` re-derives each witness against the netlist (the
test suite replays every one).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.dataflow import fixpoint, netlist_graph
from repro.lint.findings import Finding
from repro.rtl.logic import Value, X, is_known, land, lnot, lor, lxor, lmux
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.toposort import (
    canonical_cycle,
    canonical_nodes,
    order_or_cycle,
    phase_nodes,
)

__all__ = [
    "combinational_cycle_finding",
    "constant_values",
    "lint_netlist",
    "replay_witness",
    "value_sets",
]


def combinational_cycle_finding(
    cycle: Sequence[str], target: str = "", phase: Optional[Phase] = None
) -> Finding:
    """The one place the combinational-cycle diagnostic is produced.

    Both simulators raise their
    :class:`~repro.rtl.toposort.CombinationalCycleError` from this
    finding (via ``from_finding``), so the scalar and batch engines can
    never drift apart on the message format.
    """
    loop = canonical_cycle(list(cycle))
    message = "combinational cycle: " + " -> ".join(loop + [loop[0]])
    if phase is not None:
        message += f" (phase {phase.value})"
    return Finding(
        rule="LNT005",
        target=target,
        subject=loop[0],
        message=message,
        path=tuple(loop),
    )


# ----------------------------------------------------------------------
# Structural rules
# ----------------------------------------------------------------------
def _drivers(nl: Netlist) -> List[Finding]:
    tables = (
        ("input", set(nl.inputs)),
        ("gate", set(nl.gates)),
        ("latch", set(nl.latches)),
        ("flop", set(nl.flops)),
    )
    findings = []
    every: Set[str] = set()
    for _, sigs in tables:
        every |= sigs
    for sig in sorted(every):
        owners = [kind for kind, sigs in tables if sig in sigs]
        if sig in nl.inputs and nl.inputs.count(sig) > 1:
            owners.append("input")
        if len(owners) > 1:
            findings.append(Finding(
                "LNT001", nl.name, sig,
                f"driven {len(owners)} times (as {', '.join(owners)})",
            ))
    return findings


def _floating(nl: Netlist) -> List[Finding]:
    driven = nl.signals()
    findings = [
        Finding("LNT002", nl.name, sig, "referenced as fan-in but never driven")
        for sig in sorted(nl.undriven())
    ]
    findings.extend(
        Finding("LNT002", nl.name, sig, "declared as output but never driven")
        for sig in sorted(set(nl.outputs) - driven)
    )
    return findings


def _dead_cells(nl: Netlist) -> List[Finding]:
    """Cells outside the output cone.  Skipped entirely when the
    netlist declares no outputs (nothing is observable by definition)."""
    if not nl.outputs:
        return []
    live: Set[str] = set()
    stack = [o for o in nl.outputs]
    while stack:
        sig = stack.pop()
        if sig in live:
            continue
        live.add(sig)
        stack.extend(nl.fanin(sig))
    findings = []
    for kind, table in (("gate", nl.gates), ("latch", nl.latches),
                        ("flop", nl.flops)):
        for sig in sorted(set(table) - live):
            findings.append(Finding(
                "LNT003", nl.name, sig,
                f"{kind} is outside the cone of every declared output",
            ))
    return findings


def _same_phase_paths(nl: Netlist) -> List[Finding]:
    """LNT004: latch fed by a same-phase latch through gates only."""
    findings = []
    for q in sorted(nl.latches):
        latch = nl.latches[q]
        # DFS backward from the latch data pin through combinational
        # gates; the first storage element on each path is the driver
        # whose phase must differ.
        stack: List[Tuple[str, Tuple[str, ...]]] = [(latch.d, ())]
        visited: Set[str] = set()
        while stack:
            sig, rev_path = stack.pop()
            if sig in visited:
                continue
            visited.add(sig)
            if sig in nl.latches:
                src = nl.latches[sig]
                if src.phase == latch.phase:
                    path = (sig, *reversed(rev_path), q)
                    findings.append(Finding(
                        "LNT004", nl.name, q,
                        f"transparent in phase {latch.phase.value} but fed "
                        f"by same-phase latch {sig!r} "
                        f"({' -> '.join(path)}): data races through both "
                        "latches in one phase",
                        path=path,
                    ))
                continue  # any latch ends the combinational path
            if sig in nl.gates:
                for i in nl.gates[sig].ins:
                    stack.append((i, rev_path + (sig,)))
            # inputs / flops / undriven end the path
    return findings


def _cycles(nl: Netlist) -> List[Finding]:
    """LNT005: one finding per distinct combinational cycle, both phases.

    The hunt runs over the *canonical* graph (sorted keys, sorted
    fan-in), so which cycles are found -- and in which order -- is a
    function of the netlist's structure, not of its construction order.
    """
    findings = []
    seen: Set[Tuple[str, ...]] = set()
    for phase in (Phase.HIGH, Phase.LOW):
        nodes = canonical_nodes(phase_nodes(nl, phase))
        for _ in range(8):  # cap the per-phase cycle hunt
            _, cycle = order_or_cycle(nodes)
            if cycle is None:
                break
            key = tuple(canonical_cycle(list(cycle)))
            if key not in seen:
                seen.add(key)
                findings.append(combinational_cycle_finding(cycle, nl.name, phase))
            # break the cycle (drop the closing dependency) and rescan
            first, last = key[0], key[-1]
            nodes[first] = tuple(i for i in nodes[first] if i != last)
    return findings


# ----------------------------------------------------------------------
# Ternary constant propagation (LNT006, on the dataflow engine)
# ----------------------------------------------------------------------
def _join(a: Value, b: Value) -> Value:
    if is_known(a) and is_known(b) and a == b:
        return a
    return X


def _eval_op(op: str, ins: Sequence[Value]) -> Value:
    """Ternary evaluation of one gate op over resolved input values.

    Mirrors the scalar simulator's ``_eval_gate`` dispatch exactly (one
    semantics, two drivers); the witness replay below re-runs findings
    through this same table.
    """
    if op == "AND":
        return land(*ins)
    if op == "OR":
        return lor(*ins)
    if op == "NOT":
        return lnot(ins[0])
    if op == "NAND":
        return lnot(land(*ins))
    if op == "NOR":
        return lnot(lor(*ins))
    if op == "XOR":
        return lxor(ins[0], ins[1])
    if op == "MUX":
        return lmux(ins[0], ins[1], ins[2])
    if op == "BUF":
        return ins[0]
    if op == "CONST0":
        return 0
    if op == "CONST1":
        return 1
    raise ValueError(f"unknown gate op {op!r}")


def _state_table(nl: Netlist) -> Dict[str, Value]:
    state: Dict[str, Value] = {q: latch.init for q, latch in nl.latches.items()}
    state.update((q, flop.init) for q, flop in nl.flops.items())
    return state


def _state_d(nl: Netlist, q: str) -> str:
    return nl.latches[q].d if q in nl.latches else nl.flops[q].d


def constant_values(nl: Netlist) -> Dict[str, Value]:
    """Abstract values holding in *every* reachable cycle.

    The engine-based LNT006 analysis: primary inputs are unconstrained
    (X), latches and flops start at their declared init value, and each
    outer round widens the state by joining it with the value its data
    pin can take.  The combinational surface of each round is a Kleene
    descent from top (X) run by :func:`repro.lint.dataflow.fixpoint` --
    the ternary operators are monotone, so the descent reaches the
    greatest fixpoint regardless of evaluation order and the result
    matches the legacy sweep (:func:`_constant_fixpoint`) exactly.
    Latch transparency is abstracted away (the stored value stands in
    for the output in both phases), which only loses precision, never
    soundness.
    """
    graph = netlist_graph(nl, state_edges=False)
    gates = nl.gates
    state = _state_table(nl)
    pinned: Dict[str, Value] = {}

    def transfer(node: str, get) -> Value:
        gate = gates.get(node)
        if gate is None:
            return pinned[node]
        return _eval_op(gate.op, [get(i) if i in graph else X for i in gate.ins])

    vals: Dict[str, Value] = dict(state)
    for _ in range(len(state) + 2):  # state only widens; bounded
        pinned = {s: X for s in nl.inputs}
        pinned.update(state)
        vals = fixpoint(graph, transfer, init=lambda n: pinned.get(n, X)).values
        widened = False
        for q in state:
            new = _join(state[q], vals.get(_state_d(nl, q), X))
            if new is not state[q] and new != state[q]:
                state[q] = new
                widened = True
        if not widened:
            break
    vals.update(state)
    return vals


def _constant_fixpoint(nl: Netlist) -> Dict[str, Value]:
    """Legacy reference implementation of :func:`constant_values`.

    Kept verbatim as the baseline the benchmark suite compares the
    engine-based re-implementation against (and the tests assert both
    agree on every design).
    """
    from repro.rtl.simulator import _eval_gate

    state: Dict[str, Value] = {}
    for q, latch in nl.latches.items():
        state[q] = latch.init
    for q, flop in nl.flops.items():
        state[q] = flop.init

    vals: Dict[str, Value] = {}
    for _ in range(len(state) + 2):  # state only widens; bounded
        vals = {s: X for s in nl.inputs}
        vals.update(state)
        for _ in range(len(nl.gates) + 2):  # combinational fixpoint
            changed = False
            for out, gate in nl.gates.items():
                new = _eval_gate(gate, vals)
                old = vals.get(out, X)
                if new is not old and new != old:
                    vals[out] = new
                    changed = True
            if not changed:
                break
        widened = False
        for q in state:
            d = nl.latches[q].d if q in nl.latches else nl.flops[q].d
            new = _join(state[q], vals.get(d, X))
            if new is not state[q] and new != state[q]:
                state[q] = new
                widened = True
        if not widened:
            break
    vals.update(state)
    return vals


def _wvalue(v: Value) -> object:
    """A ternary value as its JSON-native witness spelling (0, 1, "X")."""
    return int(v) if is_known(v) else "X"


def _rvalue(v: object) -> Value:
    """Inverse of :func:`_wvalue` for witness replay."""
    return X if v == "X" else int(v)  # type: ignore[arg-type]


def _constants(nl: Netlist) -> List[Finding]:
    vals = constant_values(nl)
    findings = []
    for out in sorted(nl.gates):
        gate = nl.gates[out]
        if gate.op in ("CONST0", "CONST1"):
            continue  # constant by declaration, not a finding
        v = vals.get(out, X)
        if is_known(v):
            findings.append(Finding(
                "LNT006", nl.name, out,
                f"{gate.op} gate is constant {v} in every reachable cycle",
                witness={
                    "kind": "constant-cone",
                    "value": int(v),
                    "inputs": {i: _wvalue(vals.get(i, X)) for i in gate.ins},
                },
            ))
    return findings


def _x_state(nl: Netlist) -> List[Finding]:
    findings = []
    for kind, table in (("latch", nl.latches), ("flop", nl.flops)):
        for q in sorted(table):
            if not is_known(table[q].init):
                findings.append(Finding(
                    "LNT007", nl.name, q,
                    f"{kind} initialised to X: a structural X source "
                    "poisoning every cone it feeds",
                ))
    return findings


# ----------------------------------------------------------------------
# Value-set reachability (LNT008) and reset observability (LNT009)
# ----------------------------------------------------------------------
_BOTTOM: FrozenSet[Value] = frozenset()
_ONLY_X: FrozenSet[Value] = frozenset((X,))
_BOTH: FrozenSet[Value] = frozenset((0, 1))


def _set_not(s: FrozenSet[Value]) -> FrozenSet[Value]:
    return frozenset(lnot(v) for v in s)


def _set_op(op: str, ins: Sequence[FrozenSet[Value]]) -> FrozenSet[Value]:
    """Exact value-set transfer of one gate op.

    Equivalent to evaluating :func:`_eval_op` over the full input
    product, but the variadic ops are computed set-wise so wide gates
    stay linear.  Empty (bottom) input sets propagate: a gate fed by an
    unreached signal is itself unreached.
    """
    if op == "CONST0":
        return frozenset((0,))
    if op == "CONST1":
        return frozenset((1,))
    if any(not s for s in ins):
        return _BOTTOM
    if op in ("AND", "NAND"):
        out = set()
        if any(0 in s for s in ins):
            out.add(0)
        if all(1 in s for s in ins):
            out.add(1)
        if any(X in s for s in ins) and all(s & {1, X} for s in ins):
            out.add(X)
        result = frozenset(out)
        return _set_not(result) if op == "NAND" else result
    if op in ("OR", "NOR"):
        out = set()
        if any(1 in s for s in ins):
            out.add(1)
        if all(0 in s for s in ins):
            out.add(0)
        if any(X in s for s in ins) and all(s & {0, X} for s in ins):
            out.add(X)
        result = frozenset(out)
        return _set_not(result) if op == "NOR" else result
    if op == "NOT":
        return _set_not(ins[0])
    if op == "BUF":
        return ins[0]
    if op == "XOR":
        return frozenset(lxor(a, b) for a in ins[0] for b in ins[1])
    if op == "MUX":
        return frozenset(
            lmux(s, a, b) for s in ins[0] for a in ins[1] for b in ins[2]
        )
    raise ValueError(f"unknown gate op {op!r}")


def value_sets(nl: Netlist) -> Dict[str, FrozenSet[Value]]:
    """Every value each signal can take in *some* reachable cycle.

    An ascending fixpoint over the powerset of {0, 1, X} (join: union)
    on the sequential closure of the signal graph: inputs contribute
    {0, 1}, a state bit accumulates its init value plus everything its
    data pin can carry, gates apply the exact set transfer.  A state
    bit whose set stays ``{X}`` can never leave X -- LNT008's predicate.
    """
    graph = netlist_graph(nl)
    gates = nl.gates
    seeds: Dict[str, FrozenSet[Value]] = {s: _BOTH for s in nl.inputs}
    for q, init in _state_table(nl).items():
        seeds[q] = frozenset((init if is_known(init) else X,))

    def transfer(node: str, get) -> FrozenSet[Value]:
        gate = gates.get(node)
        if gate is not None:
            return _set_op(
                gate.op,
                [get(i) if i in graph else _ONLY_X for i in gate.ins],
            )
        seed = seeds[node]
        if node not in nl.latches and node not in nl.flops:
            return seed  # primary input
        d = _state_d(nl, node)
        return seed | (get(d) if d in graph else _ONLY_X)

    result = fixpoint(
        graph, transfer,
        init=lambda n: seeds.get(n, _BOTTOM),
        join=lambda old, new: old | new,  # type: ignore[operator]
    )
    return result.values  # type: ignore[return-value]


def _x_init_state(nl: Netlist) -> List[str]:
    return sorted(q for q, init in _state_table(nl).items() if not is_known(init))


def _x_path_witness(
    nl: Netlist, stuck: Set[str], q: str
) -> Dict[str, object]:
    """A shortest X-propagation chain ending at ``q``'s data pin.

    BFS over the stuck-at-{X} region from the X-initialised sources to
    the data pin, in sorted neighbour order (deterministic), then close
    the chain with ``q`` itself.  Every stuck gate has at least one
    stuck fan-in (the set transfer only emits a pure-X output when some
    input is pure X), so the walk always reaches a source.
    """
    from collections import deque

    d = _state_d(nl, q)
    sources = set(_x_init_state(nl)) & stuck
    if d in sources:
        path = [d]
    else:
        graph = netlist_graph(nl)
        succs: Dict[str, List[str]] = {}
        for node, ins in graph.items():
            if node not in stuck:
                continue
            for i in ins:
                if i in stuck:
                    succs.setdefault(i, []).append(node)
        parent: Dict[str, Optional[str]] = {s: None for s in sorted(sources)}
        queue = deque(sorted(sources))
        path = []
        while queue:
            u = queue.popleft()
            if u == d:
                node: Optional[str] = u
                while node is not None:
                    path.append(node)
                    node = parent[node]
                path.reverse()
                break
            for v in sorted(succs.get(u, ())):
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        if not path:
            path = [d] if d in stuck else []
    path = path + [q]
    return {"kind": "x-propagation", "source": path[0], "path": path}


def _x_stuck(nl: Netlist) -> List[Finding]:
    """LNT008: X-initialised state whose reachable-value set is {X}."""
    x_init = _x_init_state(nl)
    if not x_init:
        return []
    sets = value_sets(nl)
    stuck = {n for n, s in sets.items() if s == _ONLY_X}
    findings = []
    for q in x_init:
        if q in stuck:
            witness = _x_path_witness(nl, stuck, q)
            findings.append(Finding(
                "LNT008", nl.name, q,
                "can never leave X: its reachable-value set after reset "
                "is {X} under every input sequence",
                path=tuple(witness["path"]),
                witness=witness,
            ))
    return findings


def _gate_successors(nl: Netlist) -> Dict[str, List[str]]:
    """Sorted gate-output successors of every signal."""
    succs: Dict[str, List[str]] = {s: [] for s in nl.signals() | set(nl.undriven())}
    for out, gate in nl.gates.items():
        for i in set(gate.ins):
            succs.setdefault(i, []).append(out)
    for lst in succs.values():
        lst.sort()
    return succs


def _observable_path(
    succ_gates: Dict[str, List[str]], outputs: Set[str], q: str
) -> List[str]:
    """Shortest combinational path from ``q`` to a primary output."""
    from collections import deque

    if q in outputs:
        return [q]
    parent: Dict[str, Optional[str]] = {q: None}
    queue = deque([q])
    while queue:
        u = queue.popleft()
        for v in succ_gates.get(u, ()):
            if v in parent:
                continue
            parent[v] = u
            if v in outputs:
                chain: List[str] = []
                node: Optional[str] = v
                while node is not None:
                    chain.append(node)
                    node = parent[node]
                chain.reverse()
                return chain
            queue.append(v)
    return [q]  # unreachable when called on an observable bit; defensive


def _reset_observable(nl: Netlist) -> List[Finding]:
    """LNT009: X-initialised state observable before its first load.

    A backward observability fixpoint on the engine: a signal is
    observable when it is a primary output or feeds a gate whose output
    is observable.  State elements do *not* propagate observability
    backward (a value crossing a register is no longer the reset
    value), so an observable X-init bit reaches an output through
    combinational gates only -- the environment sees X in cycle 0.
    """
    x_init = _x_init_state(nl)
    if not x_init:
        return []
    outputs = set(nl.outputs)
    graph = netlist_graph(nl)
    succ_gates = _gate_successors(nl)

    def transfer(node: str, get) -> bool:
        if node in outputs:
            return True
        return any(get(s) for s in succ_gates.get(node, ()) if s in graph)

    observable = fixpoint(
        graph, transfer,
        init=lambda n: n in outputs,
        direction="backward",
        join=lambda a, b: a or b,
    )
    findings = []
    for q in x_init:
        if observable[q]:
            path = _observable_path(succ_gates, outputs, q)
            findings.append(Finding(
                "LNT009", nl.name, q,
                f"initialised to X and observable at output {path[-1]!r} "
                "through combinational logic: the environment sees X "
                "before the first load",
                path=tuple(path),
                witness={
                    "kind": "observable-before-load",
                    "path": path,
                    "output": path[-1],
                },
            ))
    return findings


# ----------------------------------------------------------------------
# Witness replay
# ----------------------------------------------------------------------
def replay_witness(nl: Netlist, finding: Finding) -> bool:
    """Re-derive one dataflow finding's witness against the netlist.

    Machine-checks the witness vocabulary of the LNT rules:

    * ``constant-cone`` -- re-evaluating the gate op over the recorded
      input values must reproduce the recorded constant;
    * ``x-propagation`` -- the path must start at an X-initialised
      state bit, follow fan-in edges, and end at the subject;
    * ``observable-before-load`` -- the path must start at the subject,
      step through gate outputs only, and end at a primary output.

    Returns False for a missing, foreign or inconsistent witness; the
    test suite replays every witness the rules emit.
    """
    w = finding.witness
    if not w:
        return False
    kind = w.get("kind")
    state = _state_table(nl)
    if kind == "constant-cone":
        gate = nl.gates.get(finding.subject)
        inputs = w.get("inputs")
        if gate is None or not isinstance(inputs, dict):
            return False
        if set(inputs) != set(gate.ins):
            return False
        got = _eval_op(gate.op, [_rvalue(inputs[i]) for i in gate.ins])
        return is_known(got) and got == w.get("value")
    if kind == "x-propagation":
        path = w.get("path")
        if not isinstance(path, list) or not path:
            return False
        if path[-1] != finding.subject or w.get("source") != path[0]:
            return False
        src = path[0]
        if src not in state or is_known(state[src]):
            return False
        return all(u in nl.fanin(v) for u, v in zip(path, path[1:]))
    if kind == "observable-before-load":
        path = w.get("path")
        if not isinstance(path, list) or not path:
            return False
        if path[0] != finding.subject or w.get("output") != path[-1]:
            return False
        if path[-1] not in nl.outputs:
            return False
        if any(v not in nl.gates for v in path[1:]):
            return False
        return all(u in nl.fanin(v) for u, v in zip(path, path[1:]))
    return False


def lint_netlist(nl: Netlist, constants: bool = True) -> List[Finding]:
    """Run every netlist rule; returns the findings unsorted.

    ``constants=False`` skips the LNT006 fixpoint (the only rule with
    super-linear cost) for latency-sensitive callers.  The LNT008/009
    X analyses short-circuit unless the netlist has X-initialised state,
    so they stay on in every mode.
    """
    findings = _drivers(nl)
    findings += _floating(nl)
    findings += _dead_cells(nl)
    findings += _same_phase_paths(nl)
    findings += _cycles(nl)
    if constants:
        findings += _constants(nl)
    findings += _x_state(nl)
    findings += _x_stuck(nl)
    findings += _reset_observable(nl)
    return findings
