"""Netlist front-end of the static analyzer (the ``LNT0xx`` rules).

Checks a :class:`~repro.rtl.netlist.Netlist` *before* any simulator is
built:

========  ==========================================================
LNT001    multiply-driven signal (a name owned by two cell tables)
LNT002    floating signal (referenced as fan-in, never driven)
LNT003    dead cell (outside the declared output cone)
LNT004    two-phase discipline: a transparent latch fed combinationally
          by a latch of the *same* phase races through both in one
          phase (H must feed L and vice versa, Fig. 3)
LNT005    combinational cycle, with the full canonical path -- the
          single producer of the cycle diagnostic shared with both
          simulators via ``CombinationalCycleError.from_finding``
LNT006    constant net, by a ternary constant-propagation fixpoint
          over the sequential abstraction (INFO: elaborated control
          layers intentionally contain constants that synthesis sweeps)
LNT007    state element initialised to X (a structural X source)
========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.rtl.logic import Value, X, is_known
from repro.rtl.netlist import Netlist, Phase
from repro.rtl.toposort import canonical_cycle, order_or_cycle, phase_nodes

__all__ = ["combinational_cycle_finding", "lint_netlist"]


def combinational_cycle_finding(
    cycle: Sequence[str], target: str = "", phase: Optional[Phase] = None
) -> Finding:
    """The one place the combinational-cycle diagnostic is produced.

    Both simulators raise their
    :class:`~repro.rtl.toposort.CombinationalCycleError` from this
    finding (via ``from_finding``), so the scalar and batch engines can
    never drift apart on the message format.
    """
    loop = canonical_cycle(list(cycle))
    message = "combinational cycle: " + " -> ".join(loop + [loop[0]])
    if phase is not None:
        message += f" (phase {phase.value})"
    return Finding(
        rule="LNT005",
        target=target,
        subject=loop[0],
        message=message,
        path=tuple(loop),
    )


# ----------------------------------------------------------------------
# Structural rules
# ----------------------------------------------------------------------
def _drivers(nl: Netlist) -> List[Finding]:
    tables = (
        ("input", set(nl.inputs)),
        ("gate", set(nl.gates)),
        ("latch", set(nl.latches)),
        ("flop", set(nl.flops)),
    )
    findings = []
    every: Set[str] = set()
    for _, sigs in tables:
        every |= sigs
    for sig in sorted(every):
        owners = [kind for kind, sigs in tables if sig in sigs]
        if sig in nl.inputs and nl.inputs.count(sig) > 1:
            owners.append("input")
        if len(owners) > 1:
            findings.append(Finding(
                "LNT001", nl.name, sig,
                f"driven {len(owners)} times (as {', '.join(owners)})",
            ))
    return findings


def _floating(nl: Netlist) -> List[Finding]:
    driven = nl.signals()
    findings = [
        Finding("LNT002", nl.name, sig, "referenced as fan-in but never driven")
        for sig in sorted(nl.undriven())
    ]
    findings.extend(
        Finding("LNT002", nl.name, sig, "declared as output but never driven")
        for sig in sorted(set(nl.outputs) - driven)
    )
    return findings


def _dead_cells(nl: Netlist) -> List[Finding]:
    """Cells outside the output cone.  Skipped entirely when the
    netlist declares no outputs (nothing is observable by definition)."""
    if not nl.outputs:
        return []
    live: Set[str] = set()
    stack = [o for o in nl.outputs]
    while stack:
        sig = stack.pop()
        if sig in live:
            continue
        live.add(sig)
        stack.extend(nl.fanin(sig))
    findings = []
    for kind, table in (("gate", nl.gates), ("latch", nl.latches),
                        ("flop", nl.flops)):
        for sig in sorted(set(table) - live):
            findings.append(Finding(
                "LNT003", nl.name, sig,
                f"{kind} is outside the cone of every declared output",
            ))
    return findings


def _same_phase_paths(nl: Netlist) -> List[Finding]:
    """LNT004: latch fed by a same-phase latch through gates only."""
    findings = []
    for q in sorted(nl.latches):
        latch = nl.latches[q]
        # DFS backward from the latch data pin through combinational
        # gates; the first storage element on each path is the driver
        # whose phase must differ.
        stack: List[Tuple[str, Tuple[str, ...]]] = [(latch.d, ())]
        visited: Set[str] = set()
        while stack:
            sig, rev_path = stack.pop()
            if sig in visited:
                continue
            visited.add(sig)
            if sig in nl.latches:
                src = nl.latches[sig]
                if src.phase == latch.phase:
                    path = (sig, *reversed(rev_path), q)
                    findings.append(Finding(
                        "LNT004", nl.name, q,
                        f"transparent in phase {latch.phase.value} but fed "
                        f"by same-phase latch {sig!r} "
                        f"({' -> '.join(path)}): data races through both "
                        "latches in one phase",
                        path=path,
                    ))
                continue  # any latch ends the combinational path
            if sig in nl.gates:
                for i in nl.gates[sig].ins:
                    stack.append((i, rev_path + (sig,)))
            # inputs / flops / undriven end the path
    return findings


def _cycles(nl: Netlist) -> List[Finding]:
    """LNT005: one finding per distinct combinational cycle, both phases."""
    findings = []
    seen: Set[Tuple[str, ...]] = set()
    for phase in (Phase.HIGH, Phase.LOW):
        nodes = {sig: tuple(ins) for sig, ins in phase_nodes(nl, phase).items()}
        for _ in range(8):  # cap the per-phase cycle hunt
            _, cycle = order_or_cycle(nodes)
            if cycle is None:
                break
            key = tuple(canonical_cycle(list(cycle)))
            if key not in seen:
                seen.add(key)
                findings.append(combinational_cycle_finding(cycle, nl.name, phase))
            # break the cycle (drop the closing dependency) and rescan
            first, last = key[0], key[-1]
            nodes[first] = tuple(i for i in nodes[first] if i != last)
    return findings


# ----------------------------------------------------------------------
# Ternary constant propagation
# ----------------------------------------------------------------------
def _join(a: Value, b: Value) -> Value:
    if is_known(a) and is_known(b) and a == b:
        return a
    return X


def _constant_fixpoint(nl: Netlist) -> Dict[str, Value]:
    """Abstract values holding in *every* reachable cycle.

    Primary inputs are unconstrained (X); latches and flops start at
    their declared init value, and each iteration widens the state by
    joining it with the value its data pin can take.  Latch transparency
    is abstracted away (the stored value stands in for the output in
    both phases), which only loses precision, never soundness.
    """
    from repro.rtl.simulator import _eval_gate

    state: Dict[str, Value] = {}
    for q, latch in nl.latches.items():
        state[q] = latch.init
    for q, flop in nl.flops.items():
        state[q] = flop.init

    vals: Dict[str, Value] = {}
    for _ in range(len(state) + 2):  # state only widens; bounded
        vals = {s: X for s in nl.inputs}
        vals.update(state)
        for _ in range(len(nl.gates) + 2):  # combinational fixpoint
            changed = False
            for out, gate in nl.gates.items():
                new = _eval_gate(gate, vals)
                old = vals.get(out, X)
                if new is not old and new != old:
                    vals[out] = new
                    changed = True
            if not changed:
                break
        widened = False
        for q in state:
            d = nl.latches[q].d if q in nl.latches else nl.flops[q].d
            new = _join(state[q], vals.get(d, X))
            if new is not state[q] and new != state[q]:
                state[q] = new
                widened = True
        if not widened:
            break
    vals.update(state)
    return vals


def _constants(nl: Netlist) -> List[Finding]:
    vals = _constant_fixpoint(nl)
    findings = []
    for out in sorted(nl.gates):
        gate = nl.gates[out]
        if gate.op in ("CONST0", "CONST1"):
            continue  # constant by declaration, not a finding
        v = vals.get(out, X)
        if is_known(v):
            findings.append(Finding(
                "LNT006", nl.name, out,
                f"{gate.op} gate is constant {v} in every reachable cycle",
            ))
    return findings


def _x_state(nl: Netlist) -> List[Finding]:
    findings = []
    for kind, table in (("latch", nl.latches), ("flop", nl.flops)):
        for q in sorted(table):
            if not is_known(table[q].init):
                findings.append(Finding(
                    "LNT007", nl.name, q,
                    f"{kind} initialised to X: a structural X source "
                    "poisoning every cone it feeds",
                ))
    return findings


def lint_netlist(nl: Netlist, constants: bool = True) -> List[Finding]:
    """Run every netlist rule; returns the findings unsorted.

    ``constants=False`` skips the LNT006 fixpoint (the only rule with
    super-linear cost) for latency-sensitive callers.
    """
    findings = _drivers(nl)
    findings += _floating(nl)
    findings += _dead_cells(nl)
    findings += _same_phase_paths(nl)
    findings += _cycles(nl)
    if constants:
        findings += _constants(nl)
    findings += _x_state(nl)
    return findings
