"""The ``repro lint`` target registry: every shipped design, lintable.

A lint target is a zero-argument builder returning findings.  The
registry spans all three front-ends:

* ``fig9:<config>`` -- each Table 1 configuration, checked at all
  levels: the spec, the elaborated behavioural network, and the
  gate/latch control netlist (with environment stubs);
* ``verif:<design>`` -- the model-checking testbench netlists;
* ``rtl:<name>`` -- the fault-campaign controller netlists
  (Fig. 5-7 + the variable-latency interface);
* ``processor`` -- the hand-built Sect. 7 elastic processor network;
* ``zoo:<defect>`` -- intentionally broken designs kept as negative
  smoke targets (CI asserts the expected rule fires on each: exit codes
  for the ERROR-severity defects, JSON report checks for the
  WARNING-severity dataflow ones).

:func:`lint_file` is the fourth entry point: it re-parses an exported
``.blif``/``.v`` file (:mod:`repro.lint.frontends`) and lints the
reconstructed netlist with findings anchored to file/line/column.

Builders are lazy: nothing is elaborated until a target is linted.

Every builder accepts an optional
:class:`~repro.codegen.cache.BuildCache`: netlist-level findings are
cached as JSON artifacts keyed by the netlist's content fingerprint
plus :data:`LINT_RULES_VERSION`, so a repeated ``repro lint`` run skips
re-evaluating the ``LNT0xx`` rules for unchanged designs.  Honest
limitation: elaboration itself (building the netlist from the spec or
target registry) still runs -- the fingerprint that keys the cache
*is* the elaborated netlist, so there is nothing sound to key an
elaboration skip on.  Spec- and network-level rules
(``lint_spec``/``lint_network``) are not netlist-keyed and are always
evaluated.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence

from repro.lint.elastic_rules import lint_network, lint_spec
from repro.lint.findings import Finding, LintReport
from repro.lint.netlist_rules import lint_netlist

__all__ = [
    "LINT_RULES_VERSION",
    "LINT_TARGETS",
    "all_targets",
    "lint_file",
    "run_lint",
]

#: Bump when any ``LNT0xx`` rule changes behaviour; cached findings for
#: every netlist are invalidated (their cache key changes).
#: 2: dataflow engine, LNT008/LNT009, witnesses on LNT006 findings.
LINT_RULES_VERSION = 2


def _lint_key(netlist) -> str:
    """The findings-cache key of one netlist at the current rules."""
    from repro.codegen.fingerprint import netlist_fingerprint

    blob = json.dumps({
        "kind": "lint-findings",
        "rules_version": LINT_RULES_VERSION,
        "netlist": netlist_fingerprint(netlist),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _finding_from_dict(d: Dict[str, object]) -> Finding:
    # Locations are deliberately NOT restored: cached findings describe
    # the in-memory netlist; file anchors are re-attached per parsed
    # file by ``lint_file`` after the cache round-trip.
    return Finding(
        rule=d["rule"],
        target=d["target"],
        subject=d["subject"],
        message=d["message"],
        path=tuple(d.get("path", ())),
        witness=d.get("witness"),
    )


def _cached_lint_netlist(netlist, cache) -> List[Finding]:
    """``lint_netlist`` through the findings cache (when one is given)."""
    if cache is None:
        return lint_netlist(netlist)
    key = _lint_key(netlist)
    payload = cache.load_json(key)
    if isinstance(payload, list):
        return [_finding_from_dict(d) for d in payload]
    findings = lint_netlist(netlist)
    cache.store_json(
        key,
        [f.to_dict() for f in findings],
        meta={
            "kind": "lint-findings",
            "rules_version": LINT_RULES_VERSION,
            "netlist": netlist.name,
        },
    )
    return findings


def _fig9(config_name: str) -> Callable[..., List[Finding]]:
    def build(cache=None) -> List[Finding]:
        from repro.casestudy.fig9 import Config, build_fig9_spec
        from repro.synthesis.elaborate import to_behavioral, to_gates

        spec = build_fig9_spec(Config[config_name])
        findings = lint_spec(spec)
        if not any(f.severity.name == "ERROR" for f in findings):
            findings += lint_network(to_behavioral(spec))
            findings += _cached_lint_netlist(
                to_gates(spec, include_env=True, as_latches=True).netlist,
                cache,
            )
        return findings

    return build


def _verif(design: str) -> Callable[..., List[Finding]]:
    def build(cache=None) -> List[Finding]:
        from repro.verif.testbenches import DESIGNS, diamond_with_feedback

        nl, _, _ = diamond_with_feedback(**DESIGNS[design])
        return _cached_lint_netlist(nl, cache)

    return build


def _rtl(name: str) -> Callable[..., List[Finding]]:
    def build(cache=None) -> List[Finding]:
        from repro.faults.targets import TARGETS

        return _cached_lint_netlist(TARGETS[name]().netlist, cache)

    return build


def _processor(cache=None) -> List[Finding]:
    from repro.casestudy.processor import ProcessorConfig, build_processor

    net, _, _ = build_processor(ProcessorConfig())
    return lint_network(net)


def _zoo_capacity1(cache=None) -> List[Finding]:
    """A capacity-1 register loop holding one token: full, bubble-free."""
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec("zoo[capacity1]")
    spec.add_source("Din")
    spec.add_sink("Dout")
    spec.add_block("A", n_inputs=2, n_outputs=2)
    spec.add_register("R", capacity=1, initial_tokens=1)
    spec.connect(spec.source("Din"), spec.block_in("A", 0))
    spec.connect(spec.register_out("R"), spec.block_in("A", 1))
    spec.connect(spec.block_out("A", 0), spec.sink("Dout"))
    spec.connect(spec.block_out("A", 1), spec.register_in("R"))
    return lint_spec(spec)


def _zoo_comb_cycle(cache=None) -> List[Finding]:
    """A two-gate combinational loop (the classic LNT005 defect)."""
    from repro.rtl.netlist import Netlist

    nl = Netlist("zoo[comb_cycle]")
    a = nl.add_input("a")
    nl.add_gate("AND", (a, "y"), out="x")
    nl.add_gate("BUF", ("x",), out="y")
    nl.add_output("y")
    return _cached_lint_netlist(nl, cache)


def _zoo_x_stuck(cache=None) -> List[Finding]:
    """An X-initialised flop recirculating itself: stuck at X (LNT008)."""
    from repro.rtl.logic import X
    from repro.rtl.netlist import Netlist

    nl = Netlist("zoo[x_stuck]")
    a = nl.add_input("a")
    nl.BUF("q", out="d")  # hold loop: the reset X recirculates forever
    nl.add_flop("d", q="q", init=X)
    nl.AND(a, "q", out="o")
    nl.add_output("o")
    return _cached_lint_netlist(nl, cache)


def _zoo_x_observable(cache=None) -> List[Finding]:
    """An X-initialised flop visible at an output before any load (LNT009)."""
    from repro.rtl.logic import X
    from repro.rtl.netlist import Netlist

    nl = Netlist("zoo[x_observable]")
    a = nl.add_input("a")
    nl.add_flop(a, q="q", init=X)  # leaves X after one load...
    nl.BUF("q", out="o")  # ...but the environment sees the X first
    nl.add_output("o")
    return _cached_lint_netlist(nl, cache)


def _zoo_dead_ee_arm(cache=None) -> List[Finding]:
    """A 1-of-2 threshold join where either arm alone is enough (ELX008)."""
    from repro.elastic.ee import ThresholdEE
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec("zoo[dead_ee_arm]")
    spec.add_source("A")
    spec.add_source("B")
    spec.add_sink("Z")
    spec.add_block("OR1", n_inputs=2, ee=ThresholdEE(1, 2))
    spec.connect(spec.source("A"), spec.block_in("OR1", 0))
    spec.connect(spec.source("B"), spec.block_in("OR1", 1))
    spec.connect(spec.block_out("OR1", 0), spec.sink("Z"))
    return lint_spec(spec)


def _zoo_starved_counterflow(cache=None) -> List[Finding]:
    """Anti-tokens into a channel no token can ever reach (ELX009)."""
    from repro.elastic.ee import ThresholdEE
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec("zoo[starved_counterflow]")
    spec.add_source("A")
    spec.add_source("DEAD", p_valid=0.0)
    spec.add_sink("Z")
    spec.add_block("EJ", n_inputs=2, ee=ThresholdEE(1, 2))
    spec.connect(spec.source("A"), spec.block_in("EJ", 0))
    spec.connect(spec.source("DEAD"), spec.block_in("EJ", 1))
    spec.connect(spec.block_out("EJ", 0), spec.sink("Z"))
    return lint_spec(spec)


LINT_TARGETS: Dict[str, Callable[..., List[Finding]]] = {
    "fig9:active": _fig9("ACTIVE"),
    "fig9:no_buffer": _fig9("NO_BUFFER"),
    "fig9:passive_f3w": _fig9("PASSIVE_F3W"),
    "fig9:passive_m2w": _fig9("PASSIVE_M2W"),
    "fig9:lazy": _fig9("LAZY"),
    "verif:diamond": _verif("diamond"),
    "verif:early": _verif("early"),
    "verif:vl": _verif("vl"),
    "rtl:dual_ehb": _rtl("dual_ehb"),
    "rtl:dual_ehb_latches": _rtl("dual_ehb_latches"),
    "rtl:join": _rtl("join"),
    "rtl:early_join": _rtl("early_join"),
    "rtl:fork": _rtl("fork"),
    "rtl:passive": _rtl("passive"),
    "rtl:vl": _rtl("vl"),
    "processor": _processor,
    "zoo:capacity1": _zoo_capacity1,
    "zoo:comb_cycle": _zoo_comb_cycle,
    "zoo:x_stuck": _zoo_x_stuck,
    "zoo:x_observable": _zoo_x_observable,
    "zoo:dead_ee_arm": _zoo_dead_ee_arm,
    "zoo:starved_counterflow": _zoo_starved_counterflow,
}


def all_targets(include_zoo: bool = False) -> List[str]:
    """The default target set (the zoo is opt-in: it is meant to fail)."""
    return [
        name for name in sorted(LINT_TARGETS)
        if include_zoo or not name.startswith("zoo:")
    ]


def lint_file(path: str, cache=None) -> List[Finding]:
    """Parse one BLIF/Verilog file and lint the reconstructed netlist.

    The ``LNT0xx`` rules run through the same fingerprint-keyed findings
    cache as the registry targets (a re-parsed export of an unchanged
    design hits the same artifact), then every finding is anchored to
    the parsed file via the source map, so SARIF output carries
    ``physicalLocation`` entries.  Raises
    :class:`~repro.lint.frontends.FrontendParseError` on malformed
    input.
    """
    from repro.lint.frontends import attach_locations, parse_design_file

    design = parse_design_file(path)
    findings = _cached_lint_netlist(design.netlist, cache)
    return attach_locations(findings, design.source_map)


def run_lint(targets: Sequence[str], cache=None) -> LintReport:
    """Lint the named targets into one report.

    ``cache`` is an optional :class:`~repro.codegen.cache.BuildCache`;
    netlist-level findings for unchanged designs are then served from
    their fingerprint-keyed artifacts instead of re-running the rules.
    ``None`` (the default) keeps the fully uncached library behaviour.
    """
    report = LintReport()
    for name in targets:
        try:
            builder = LINT_TARGETS[name]
        except KeyError:
            raise KeyError(
                f"unknown lint target {name!r}; pick from "
                f"{', '.join(sorted(LINT_TARGETS))}"
            ) from None
        report.extend(builder(cache))
    return report
