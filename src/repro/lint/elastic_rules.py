"""Elastic front-end of the static analyzer (the ``ELX0xx`` rules).

Three entry points, one per abstraction level:

* :func:`lint_spec` -- a :class:`~repro.synthesis.spec.SystemSpec`
  before elaboration: connectivity (ELX001), controller shape (ELX003),
  static deadlock analysis (ELX004/ELX005), anti-token balance
  (ELX006) and inert passive interfaces (ELX007);
* :func:`lint_network` -- a hand-built or elaborated
  :class:`~repro.elastic.behavioral.ElasticNetwork`: channel polarity
  (ELX002) plus the same deadlock/counterflow cycle rules over the
  live controller graph;
* :func:`lint_dmg` -- a :class:`~repro.core.dmg.DualMarkedGraph`:
  token-free cycles (ELX004) straight off the marking.

The deadlock rules encode the two-level liveness story of the paper:
ELX004 is the classical Sect. 2.2 criterion (every cycle positively
marked); ELX005 is the refinement the DMG abstraction misses -- its
simultaneous-firing semantics lets a full capacity-1 loop rotate, but
the EB handshake needs a bubble somewhere on the cycle for any token to
advance, so such loops deadlock in the implementation.  ELX006
attributes a deadlock cycle to the counterflow discipline when it runs
behind an early join with no annihilating buffer or passive interface
on it (the anti-tokens the join emits can then never die).

ELX008/ELX009 run a *token-availability* fixpoint on the shared
dataflow engine (:mod:`repro.lint.dataflow`): every element and channel
gets a value from the three-level lattice NEVER < SOMETIMES < ALWAYS
("can a valid token ever / persistently appear here").  ELX008 flags a
threshold-EE arm whose guard is met every cycle by the other,
persistently valid arms alone; ELX009 flags an early-join arm that
receives anti-tokens but whose channel can never carry a token to
annihilate them (refining ELX006 beyond structural cycles).  Both
attach witness chains replayed by :func:`replay_spec_witness`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.elastic.behavioral import (
    Controller,
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    LazyFork,
    PassiveAntiToken,
    Pipe,
    Sink,
    Source,
    VariableLatency,
)
from repro.elastic.ee import MuxEE, ThresholdEE
from repro.lint.dataflow import fixpoint, spec_graph, spec_in_channels
from repro.lint.findings import Finding
from repro.rtl.toposort import canonical_cycle, order_or_cycle
from repro.synthesis.spec import Connection, SystemSpec

__all__ = [
    "lint_spec",
    "lint_network",
    "lint_dmg",
    "replay_spec_witness",
    "token_availability",
]

#: The token-availability lattice: NEVER < SOMETIMES < ALWAYS.
NEVER, SOMETIMES, ALWAYS = 0, 1, 2


# ----------------------------------------------------------------------
# Cycle hunting over a generic arc list
# ----------------------------------------------------------------------
def _find_cycles(
    arcs: Sequence[Tuple[str, str]], max_cycles: int = 8
) -> List[List[str]]:
    """Up to ``max_cycles`` distinct simple cycles of a digraph.

    Reuses the shared :func:`~repro.rtl.toposort.order_or_cycle` walker:
    find one cycle, cut its closing arc, rescan.  Node order is the
    canonical rotation, in flow order; the hunt runs over the graph
    with sorted keys and predecessors, so *which* cycles are found is
    independent of arc declaration order.
    """
    preds: Dict[str, List[str]] = {}
    for src, dst in arcs:
        preds.setdefault(src, [])
        preds.setdefault(dst, []).append(src)
    graph = {n: tuple(sorted(preds[n])) for n in sorted(preds)}
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()
    for _ in range(max_cycles):
        _, cycle = order_or_cycle(graph)
        if cycle is None:
            break
        key = tuple(canonical_cycle(list(cycle)))
        if key not in seen:
            seen.add(key)
            cycles.append(list(key))
        first, last = key[0], key[-1]
        graph[first] = tuple(p for p in graph[first] if p != last)
    return cycles


def _loop_text(names: Sequence[str]) -> str:
    return " -> ".join(list(names) + [names[0]])


# ----------------------------------------------------------------------
# Spec-level rules
# ----------------------------------------------------------------------
def _spec_connectivity(spec: SystemSpec) -> List[Finding]:
    """ELX001: the non-raising mirror of ``SystemSpec.validate``."""
    target = spec.name
    ports = spec._expected_ports()
    used: Dict[Tuple[str, str, str], int] = {p: 0 for p in ports}
    findings = []
    for conn in spec.connections:
        for endpoint, role in ((conn.src, "src"), (conn.dst, "dst")):
            if endpoint not in ports:
                findings.append(Finding(
                    "ELX001", target, conn.name,
                    f"unknown endpoint {endpoint}",
                ))
            elif ports[endpoint] != role:
                want = "producer" if role == "src" else "consumer"
                have = "producer" if ports[endpoint] == "src" else "consumer"
                findings.append(Finding(
                    "ELX001", target, conn.name,
                    f"endpoint {endpoint} wired as {want} but declared "
                    f"as {have}: {{V+, S-}} flow forward, {{S+, V-}} "
                    "flow backward",
                ))
            else:
                used[endpoint] += 1
    for endpoint in sorted(p for p, n in used.items() if n == 0):
        findings.append(Finding(
            "ELX001", target, ":".join(endpoint),
            f"port {endpoint} is never connected",
        ))
    for endpoint in sorted(p for p, n in used.items() if n > 1):
        findings.append(Finding(
            "ELX001", target, ":".join(endpoint),
            f"port {endpoint} is connected {used[endpoint]} times",
        ))
    return findings


def _spec_shapes(spec: SystemSpec) -> List[Finding]:
    """ELX003: arity masks and buffer occupancy declarations."""
    target = spec.name
    findings = []
    for b in spec.blocks.values():
        if b.g_inputs is not None and len(b.g_inputs) != b.n_inputs:
            findings.append(Finding(
                "ELX003", target, b.name,
                f"g_inputs mask has {len(b.g_inputs)} entries for "
                f"{b.n_inputs} inputs",
            ))
    for r in spec.registers.values():
        capacity = getattr(r, "capacity", 2)
        if capacity < 1:
            findings.append(Finding(
                "ELX003", target, r.name,
                f"capacity {capacity} < 1: an EB needs at least one EHB",
            ))
        if not 0 <= r.initial_tokens <= max(capacity, 1):
            findings.append(Finding(
                "ELX003", target, r.name,
                f"initial_tokens {r.initial_tokens} does not fit "
                f"capacity {capacity}",
            ))
        if (r.initial_data is not None
                and len(r.initial_data) != r.initial_tokens):
            findings.append(Finding(
                "ELX003", target, r.name,
                f"initial_data has {len(r.initial_data)} payloads for "
                f"{r.initial_tokens} initial tokens",
            ))
    return findings


def _spec_node(endpoint: Tuple[str, str, str]) -> str:
    return f"{endpoint[0]}:{endpoint[1]}"


def _display(nodes: Sequence[str]) -> Tuple[str, ...]:
    return tuple(n.split(":", 1)[1] for n in nodes)


def _spec_deadlocks(spec: SystemSpec) -> List[Finding]:
    """ELX004 / ELX005 / ELX006 over the connection graph."""
    target = spec.name
    findings = []

    def tokens_of(conn: Connection) -> int:
        if conn.src[0] == "register":
            return spec.registers[conn.src[1]].initial_tokens
        return 0

    def spare_of(conn: Connection) -> int:
        if conn.src[0] == "register":
            r = spec.registers[conn.src[1]]
            return max(getattr(r, "capacity", 2) - r.initial_tokens, 0)
        return 0  # a direct channel holds no token between cycles

    early = {b.name for b in spec.blocks.values() if b.is_early}
    registers = set(spec.registers)
    passive_pairs = {
        (_spec_node(c.src), _spec_node(c.dst))
        for c in spec.connections if c.passive
    }

    def classify(cycle: List[str]) -> Tuple[str, str]:
        names = _display(cycle)
        on_register = any(
            node.startswith("register:") for node in cycle
        )
        arcs = list(zip(cycle, cycle[1:] + cycle[:1]))
        on_passive = any(a in passive_pairs for a in arcs)
        if not on_register and not on_passive and early & set(names):
            join = sorted(early & set(names))[0]
            return "ELX006", (
                f"anti-tokens from early join {join!r} circulate the "
                f"cycle {_loop_text(names)} with no annihilating buffer "
                "or passive interface to die in"
            )
        return "ELX004", (
            f"channel cycle {_loop_text(names)} carries no token: "
            "no transfer can ever fire on it"
        )

    zero_token = [
        (_spec_node(c.src), _spec_node(c.dst))
        for c in spec.connections if tokens_of(c) == 0
    ]
    token_free: Set[Tuple[str, ...]] = set()
    for cycle in _find_cycles(zero_token):
        token_free.add(tuple(cycle))
        rule, message = classify(cycle)
        names = _display(cycle)
        findings.append(Finding(rule, target, names[0], message, path=names))

    zero_spare = [
        (_spec_node(c.src), _spec_node(c.dst))
        for c in spec.connections if spare_of(c) == 0
    ]
    for cycle in _find_cycles(zero_spare):
        has_token = any(
            node.startswith("register:")
            and spec.registers[node.split(":", 1)[1]].initial_tokens > 0
            for node in cycle
        )
        if not has_token or tuple(cycle) in token_free:
            continue  # token-free cycles are ELX004's
        names = _display(cycle)
        findings.append(Finding(
            "ELX005", target, names[0],
            f"cycle {_loop_text(names)} has no spare EB capacity: every "
            "buffer is full, so no token can advance (undersized loop; "
            "give one register more capacity or fewer initial tokens)",
            path=names,
        ))
    return findings


def _spec_passive_use(spec: SystemSpec) -> List[Finding]:
    """ELX007: passive interfaces in a system with no early join."""
    if any(b.is_early for b in spec.blocks.values()):
        return []
    return [
        Finding(
            "ELX007", spec.name, conn.name,
            "passive anti-token interface, but no block evaluates "
            "early: no anti-token can ever reach it",
        )
        for conn in spec.connections if conn.passive
    ]


# ----------------------------------------------------------------------
# Token availability (ELX008 / ELX009, on the dataflow engine)
# ----------------------------------------------------------------------
def token_availability(spec: SystemSpec) -> Dict[str, int]:
    """Token availability of every spec node: NEVER/SOMETIMES/ALWAYS.

    An ascending fixpoint (join: max) over :func:`spec_graph`.  A
    source emits ALWAYS when ``p_valid >= 1``, NEVER when ``<= 0``,
    SOMETIMES in between; a register adds SOMETIMES for its initial
    tokens and otherwise forwards its input; a channel carries its
    producer's value.  A lazy join takes the min of its arms, a
    variable-latency block caps at SOMETIMES, a k-of-n threshold join
    takes the k-th largest arm, and a mux join is ALWAYS only when the
    select and every data arm are, NEVER when the select -- or every
    data arm -- is.  All transfers are monotone on the 3-level chain,
    so the fixpoint is the least one and order-independent.
    """
    graph = spec_graph(spec)
    arms = spec_in_channels(spec)

    def arm_values(name: str, get) -> List[int]:
        vals = []
        for ch in arms.get(name, []):
            node = f"channel:{ch}" if ch is not None else None
            vals.append(get(node) if node in graph else NEVER)
        return vals

    def block_avail(name: str, get) -> int:
        b = spec.blocks[name]
        vals = arm_values(name, get)
        if not vals:
            return NEVER
        ee = b.ee
        if isinstance(ee, ThresholdEE):
            ranked = sorted(vals, reverse=True)
            out = ranked[ee.k - 1] if ee.k <= len(ranked) else NEVER
        elif isinstance(ee, MuxEE) and 0 <= ee.select < len(vals):
            sel = vals[ee.select]
            data = [v for i, v in enumerate(vals) if i != ee.select]
            if not data:
                out = sel
            elif sel == ALWAYS and min(data) == ALWAYS:
                out = ALWAYS
            elif sel == NEVER or max(data) == NEVER:
                out = NEVER
            else:
                out = SOMETIMES
        else:
            out = min(vals)  # lazy join / AndEE / single input
        if b.latency is not None:
            out = min(out, SOMETIMES)  # a VL unit answers, but not every cycle
        return out

    def transfer(node: str, get) -> int:
        kind, _, name = node.partition(":")
        if kind == "channel":
            deps = graph[node]
            return get(deps[0]) if deps else NEVER
        if kind == "source":
            p = spec.sources[name].p_valid
            return ALWAYS if p >= 1 else (NEVER if p <= 0 else SOMETIMES)
        if kind == "register":
            r = spec.registers[name]
            ins = [get(c) for c in graph[node]]
            seeded = SOMETIMES if r.initial_tokens > 0 else NEVER
            return max([seeded] + ins)
        if kind == "block":
            return block_avail(name, get)
        return NEVER  # sinks produce nothing

    result = fixpoint(graph, transfer, init=lambda n: NEVER, join=max)
    return result.values  # type: ignore[return-value]


def _avail_chain(
    graph: Dict[str, Tuple[str, ...]],
    avail: Dict[str, int],
    node: str,
    level: int,
) -> List[str]:
    """A witness chain justifying ``node``'s availability ``level``.

    Walks dependency edges backward, always into the sorted-first
    dependency at the same level (every transfer guarantees one exists:
    an ALWAYS block has an ALWAYS arm, a NEVER join a NEVER arm, ...),
    until it reaches a source or closes on itself.  Deterministic by
    construction.
    """
    chain = [node]
    seen = {node}
    cur = node
    while not cur.startswith("source:"):
        nxt = None
        for dep in graph.get(cur, ()):
            if dep not in seen and avail.get(dep, NEVER) == level:
                nxt = dep
                break
        if nxt is None:
            break  # a self-sustaining loop (or a register's own tokens)
        chain.append(nxt)
        seen.add(nxt)
        cur = nxt
    return chain


def _dead_ee_arms(spec: SystemSpec) -> List[Finding]:
    """ELX008: threshold-EE arms that never decide the guard."""
    thresholds = sorted(
        name for name, b in spec.blocks.items() if isinstance(b.ee, ThresholdEE)
    )
    if not thresholds:
        return []
    graph = spec_graph(spec)
    avail = token_availability(spec)
    arms = spec_in_channels(spec)
    findings = []
    for name in thresholds:
        b = spec.blocks[name]
        k = b.ee.k
        chans = arms.get(name, [])
        always = [
            i for i, ch in enumerate(chans)
            if ch is not None and avail.get(f"channel:{ch}", NEVER) == ALWAYS
        ]
        for i, ch in enumerate(chans):
            if ch is None:
                continue
            supporting = [j for j in always if j != i]
            if len(supporting) < k:
                continue
            findings.append(Finding(
                "ELX008", spec.name, f"{name}.in{i}",
                f"threshold {k}-of-{b.ee.arity} at early join {name!r} "
                f"is met every cycle by "
                f"{', '.join(f'in{j}' for j in supporting)} alone: "
                f"arm in{i} ({ch!r}) never decides the guard, so its "
                "G-gate and pending logic are statically irrelevant",
                witness={
                    "kind": "dead-ee-arm",
                    "block": name,
                    "arm": i,
                    "channel": ch,
                    "threshold": k,
                    "supporting_arms": [f"in{j}" for j in supporting],
                    "chains": [
                        _avail_chain(graph, avail, f"channel:{chans[j]}", ALWAYS)
                        for j in supporting
                    ],
                },
            ))
    return findings


def _starved_counterflow(spec: SystemSpec) -> List[Finding]:
    """ELX009: anti-tokens sent into a channel no token ever reaches."""
    early = sorted(name for name, b in spec.blocks.items() if b.is_early)
    if not early:
        return []
    graph = spec_graph(spec)
    avail = token_availability(spec)
    arms = spec_in_channels(spec)
    findings = []
    for name in early:
        b = spec.blocks[name]
        if avail.get(f"block:{name}", NEVER) == NEVER:
            continue  # the join never fires, so it emits no anti-tokens
        for i, ch in enumerate(arms.get(name, [])):
            if ch is None:
                continue
            if b.g_inputs is not None and not b.g_inputs[i]:
                continue  # no G gate: the arm never sees anti-tokens
            if avail.get(f"channel:{ch}", NEVER) != NEVER:
                continue
            findings.append(Finding(
                "ELX009", spec.name, f"{name}.in{i}",
                f"early join {name!r} can fire without arm in{i} and "
                f"emits anti-tokens into {ch!r}, but no token can ever "
                "arrive there: the anti-tokens never annihilate and "
                "accumulate forever",
                witness={
                    "kind": "starved-counterflow",
                    "block": name,
                    "arm": i,
                    "channel": ch,
                    "chain": _avail_chain(graph, avail, f"channel:{ch}", NEVER),
                },
            ))
    return findings


def replay_spec_witness(spec: SystemSpec, finding: Finding) -> bool:
    """Re-derive one availability finding's witness against the spec.

    Machine-checks the ELX008/ELX009 witness vocabulary: the arm and
    channel must match the spec's wiring, the claimed availability
    levels must re-derive from :func:`token_availability`, and every
    chain must walk real dependency edges at the claimed level.
    Returns False for a missing, foreign or inconsistent witness.
    """
    w = finding.witness
    if not w:
        return False
    kind = w.get("kind")
    if kind not in ("dead-ee-arm", "starved-counterflow"):
        return False
    block = spec.blocks.get(w.get("block"))
    if block is None:
        return False
    graph = spec_graph(spec)
    avail = token_availability(spec)
    chans = spec_in_channels(spec).get(block.name, [])
    arm = w.get("arm")
    if not isinstance(arm, int) or not 0 <= arm < len(chans):
        return False
    if chans[arm] != w.get("channel"):
        return False

    def chain_ok(chain: object, level: int) -> bool:
        if not isinstance(chain, list) or not chain:
            return False
        if any(avail.get(n, NEVER) != level for n in chain):
            return False
        return all(b in graph.get(a, ()) for a, b in zip(chain, chain[1:]))

    if kind == "dead-ee-arm":
        if not isinstance(block.ee, ThresholdEE) or w.get("threshold") != block.ee.k:
            return False
        supporting = w.get("supporting_arms")
        chains = w.get("chains")
        if not isinstance(supporting, list) or not isinstance(chains, list):
            return False
        if len(supporting) < block.ee.k or len(chains) != len(supporting):
            return False
        idxs = [int(s[2:]) for s in supporting]
        if arm in idxs or len(set(idxs)) != len(idxs):
            return False
        for j, chain in zip(idxs, chains):
            if not 0 <= j < len(chans) or chans[j] is None:
                return False
            node = f"channel:{chans[j]}"
            if not chain_ok(chain, ALWAYS) or chain[0] != node:
                return False
        return True
    # starved-counterflow
    if not block.is_early:
        return False
    if block.g_inputs is not None and not block.g_inputs[arm]:
        return False
    if avail.get(f"block:{block.name}", NEVER) == NEVER:
        return False
    if avail.get(f"channel:{chans[arm]}", NEVER) != NEVER:
        return False
    chain = w.get("chain")
    return chain_ok(chain, NEVER) and chain[0] == f"channel:{chans[arm]}"


def lint_spec(spec: SystemSpec) -> List[Finding]:
    """Run every spec-level rule.  Connectivity errors suppress the
    graph rules (a mis-wired graph produces nonsense cycles)."""
    findings = _spec_connectivity(spec)
    findings += _spec_shapes(spec)
    if not any(f.rule == "ELX001" for f in findings):
        findings += _spec_deadlocks(spec)
        findings += _spec_passive_use(spec)
        findings += _dead_ee_arms(spec)
        findings += _starved_counterflow(spec)
    return findings


# ----------------------------------------------------------------------
# Network-level rules
# ----------------------------------------------------------------------
def _roles(ctrl: Controller) -> Tuple[List, List]:
    """``(consumed, produced)`` channels of one controller.

    Consumed channels are those the controller reads tokens from (it
    drives their ``{S+, V-}`` wires); produced channels are those it
    emits tokens into (it drives ``{V+, S-}``).  Custom controllers
    (e.g. the Sect. 7 processor's fetch/commit units) are covered by
    the isinstance checks on their base class, with an attribute-shape
    fallback for anything else.
    """
    if isinstance(ctrl, (ElasticBuffer, Pipe, VariableLatency)):
        return [ctrl.left], [ctrl.right]
    if isinstance(ctrl, (Join, EarlyJoin)):
        return list(ctrl.inputs), [ctrl.output]
    if isinstance(ctrl, (EagerFork, LazyFork)):
        return [ctrl.input], list(ctrl.outputs)
    if isinstance(ctrl, PassiveAntiToken):
        return [ctrl.up], [ctrl.down]
    if isinstance(ctrl, Source):
        return [], [ctrl.output]
    if isinstance(ctrl, Sink):
        return [ctrl.input], []
    consumed, produced = [], []
    if hasattr(ctrl, "left") and hasattr(ctrl, "right"):
        return [ctrl.left], [ctrl.right]
    if hasattr(ctrl, "inputs"):
        consumed += list(ctrl.inputs)
    elif hasattr(ctrl, "input"):
        consumed.append(ctrl.input)
    if hasattr(ctrl, "outputs"):
        produced += list(ctrl.outputs)
    elif hasattr(ctrl, "output"):
        produced.append(ctrl.output)
    return consumed, produced


def _network_polarity(net: ElasticNetwork) -> List[Finding]:
    """ELX002: one producer and one consumer per channel."""
    target = net.name
    producers: Dict[str, List[str]] = {name: [] for name in net.channels}
    consumers: Dict[str, List[str]] = {name: [] for name in net.channels}
    findings = []
    for ctrl in net.controllers:
        consumed, produced = _roles(ctrl)
        for ch in consumed:
            consumers.setdefault(ch.name, []).append(ctrl.name)
        for ch in produced:
            producers.setdefault(ch.name, []).append(ctrl.name)
    for name in sorted(net.channels):
        prods, cons = producers[name], consumers[name]
        if len(prods) == 1 and len(cons) == 1:
            continue
        if not prods and not cons:
            findings.append(Finding(
                "ELX002", target, name,
                "channel is registered but no controller drives it",
            ))
            continue
        if len(prods) != 1:
            what = "no controller" if not prods else ", ".join(sorted(prods))
            findings.append(Finding(
                "ELX002", target, name,
                f"needs exactly one {{V+, S-}} producer, has "
                f"{len(prods)} ({what})",
            ))
        if len(cons) != 1:
            what = "no controller" if not cons else ", ".join(sorted(cons))
            findings.append(Finding(
                "ELX002", target, name,
                f"needs exactly one {{S+, V-}} consumer, has "
                f"{len(cons)} ({what})",
            ))
    return findings


def _network_deadlocks(net: ElasticNetwork) -> List[Finding]:
    """ELX004 / ELX005 / ELX006 over the controller graph."""
    target = net.name
    findings = []
    producers: Dict[str, str] = {}
    consumers: Dict[str, str] = {}
    by_name: Dict[str, Controller] = {}
    for ctrl in net.controllers:
        by_name[ctrl.name] = ctrl
        consumed, produced = _roles(ctrl)
        for ch in consumed:
            consumers[ch.name] = ctrl.name
        for ch in produced:
            producers[ch.name] = ctrl.name
    arcs = [
        (producers[name], consumers[name])
        for name in sorted(net.channels)
        if name in producers and name in consumers
    ]

    def is_annihilator(name: str) -> bool:
        return isinstance(by_name[name], (ElasticBuffer, PassiveAntiToken))

    def tokens(name: str) -> int:
        ctrl = by_name[name]
        if isinstance(ctrl, ElasticBuffer):
            return max(ctrl.count, 0)
        return 0

    def spare(name: str) -> int:
        ctrl = by_name[name]
        if isinstance(ctrl, ElasticBuffer):
            return max(ctrl.capacity - max(ctrl.count, 0), 0)
        return 0

    zero_token = [a for a in arcs if tokens(a[0]) == 0]
    token_free: Set[Tuple[str, ...]] = set()
    for cycle in _find_cycles(zero_token):
        token_free.add(tuple(cycle))
        ee = sorted(
            n for n in cycle if isinstance(by_name[n], EarlyJoin)
        )
        if ee and not any(is_annihilator(n) for n in cycle):
            findings.append(Finding(
                "ELX006", target, cycle[0],
                f"anti-tokens from early join {ee[0]!r} circulate the "
                f"cycle {_loop_text(cycle)} with no annihilating buffer "
                "or passive interface to die in",
                path=tuple(cycle),
            ))
        else:
            findings.append(Finding(
                "ELX004", target, cycle[0],
                f"controller cycle {_loop_text(cycle)} holds no token: "
                "no transfer can ever fire on it",
                path=tuple(cycle),
            ))

    zero_spare = [a for a in arcs if spare(a[0]) == 0]
    for cycle in _find_cycles(zero_spare):
        if tuple(cycle) in token_free:
            continue
        if not any(tokens(n) > 0 for n in cycle):
            continue  # token-free variants belong to ELX004
        findings.append(Finding(
            "ELX005", target, cycle[0],
            f"cycle {_loop_text(cycle)} has no spare EB capacity: every "
            "buffer on it is full, so no token can advance",
            path=tuple(cycle),
        ))
    return findings


def lint_network(net: ElasticNetwork) -> List[Finding]:
    """Run every network-level rule.  Polarity errors suppress the
    cycle rules (the controller graph is not well defined then)."""
    findings = _network_polarity(net)
    if not any(f.rule == "ELX002" for f in findings):
        findings += _network_deadlocks(net)
    return findings


# ----------------------------------------------------------------------
# DMG-level rule
# ----------------------------------------------------------------------
def lint_dmg(graph, target: str = "dmg") -> List[Finding]:
    """ELX004 over a (dual) marked graph: non-positive cycle sums.

    Accepts any :class:`~repro.core.mg.MarkedGraph`; by token
    preservation the verdict holds for every reachable marking.
    """
    findings = []
    m0 = graph.initial_marking
    for cycle in graph.simple_cycles():
        total = graph.marking_of(m0, cycle)
        if total <= 0:
            names = tuple(cycle)
            findings.append(Finding(
                "ELX004", target, names[0],
                f"cycle [{', '.join(names)}] sums to {total} tokens: "
                "a non-positive cycle can never fire around",
                path=names,
            ))
    return findings
