"""Generic worklist fixpoint engine for the lint rules.

One solver, many analyses.  A dataflow problem is a directed graph (in
*flow* direction: an edge ``u -> v`` means information at ``u`` feeds
``v``), a per-node initial value, and a transfer function recomputing a
node's value from its neighbours.  :func:`fixpoint` iterates transfers
with a worklist until nothing changes and returns the final environment.

Direction
    ``forward`` transfers read a node's *predecessors* and propagate
    changes to its successors; ``backward`` reads successors and
    propagates to predecessors.  The graph is always given in flow
    direction -- the engine inverts it internally for backward runs.

Lattice / termination contract
    The engine is lattice-agnostic: values are opaque and compared with
    ``!=``.  Pass ``join`` (any associative, commutative, idempotent
    least-upper-bound) to make every update ascend the caller's lattice
    -- with a monotone transfer over a finite-height lattice the run
    then terminates in at most ``height * |nodes|`` evaluations.
    Without ``join`` the transfer output replaces the old value
    directly; this is how *descending* chains (Kleene iteration from a
    top element, e.g. the ternary constant analysis) are run, and
    termination then relies on the transfer being monotone in the
    caller's order.  Either way :data:`max_visits` bounds the updates
    per node and a genuinely diverging transfer raises
    :class:`FixpointDivergence` instead of looping forever.

Determinism
    Nodes are processed in sorted-name order via an index heap, so the
    evaluation sequence -- and therefore every value and every witness
    derived from one -- is a function of the *graph*, independent of
    dict insertion order in the netlist or spec that produced it.

Adapters at the bottom of the module project the three design layers
onto plain graphs: :func:`netlist_graph` (signals, fan-in edges),
:func:`spec_graph` (spec elements and channels), :func:`dmg_graph`
(marked-graph nodes).  The rule modules build their analyses on these.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "FixpointDivergence",
    "FixpointResult",
    "fixpoint",
    "netlist_graph",
    "spec_graph",
    "dmg_graph",
]


class FixpointDivergence(RuntimeError):
    """A transfer function kept changing a node's value past the bound."""


@dataclass
class FixpointResult:
    """Outcome of one :func:`fixpoint` run.

    ``values`` is the final environment; ``evaluations`` counts transfer
    applications (the work done); ``order`` is the canonical node order
    the worklist used (sorted names -- exposed so callers can assert
    determinism and tests can replay witnesses in engine order).
    """

    values: Dict[str, object]
    evaluations: int
    order: Tuple[str, ...]

    def __getitem__(self, node: str) -> object:
        return self.values[node]


def fixpoint(
    graph: Mapping[str, Sequence[str]],
    transfer: Callable[[str, Callable[[str], object]], object],
    init: Callable[[str], object],
    direction: str = "forward",
    join: Optional[Callable[[object, object], object]] = None,
    max_visits: int = 64,
) -> FixpointResult:
    """Solve one dataflow problem to fixpoint.

    ``graph`` maps every node to the nodes feeding it (its dependencies
    in *flow* direction -- fan-in for a netlist, producers for a spec).
    ``transfer(node, get)`` recomputes one node's value, reading
    neighbours through ``get`` (which returns the current value of any
    node, or raises ``KeyError`` for unknown names).  ``init`` seeds
    every node.  ``join`` (optional) is the lattice least-upper-bound
    applied as ``join(old, new)`` on every update; see the module
    docstring for the termination contract.  ``max_visits`` bounds how
    often one node's value may change before
    :class:`FixpointDivergence` is raised.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"direction must be forward/backward, not {direction!r}")
    order = tuple(sorted(graph))
    index = {n: i for i, n in enumerate(order)}
    # deps = what transfer reads; outs = who to re-enqueue on change.
    deps: Dict[str, Tuple[str, ...]] = {}
    outs: Dict[str, List[str]] = {n: [] for n in order}
    for node in order:
        ins = tuple(i for i in graph[node] if i in index)
        deps[node] = ins
        for i in ins:
            outs[i].append(node)
    if direction == "backward":
        deps, outs = (
            {n: tuple(outs[n]) for n in order},
            {n: list(deps[n]) for n in order},
        )

    values: Dict[str, object] = {n: init(n) for n in order}
    get = values.__getitem__
    visits: Dict[str, int] = {}
    queued = [True] * len(order)
    heap = list(range(len(order)))  # already sorted => already a heap
    evaluations = 0
    while heap:
        node = order[heapq.heappop(heap)]
        queued[index[node]] = False
        evaluations += 1
        new = transfer(node, get)
        old = values[node]
        if join is not None:
            new = join(old, new)
        if new is old or new == old:
            continue
        count = visits.get(node, 0) + 1
        if count > max_visits:
            raise FixpointDivergence(
                f"value of {node!r} changed more than {max_visits} times; "
                "transfer is not monotone or the lattice has unbounded height"
            )
        visits[node] = count
        values[node] = new
        for dep in outs[node]:
            i = index[dep]
            if not queued[i]:
                queued[i] = True
                heapq.heappush(heap, i)
    return FixpointResult(values=values, evaluations=evaluations, order=order)


# ----------------------------------------------------------------------
# Layer adapters
# ----------------------------------------------------------------------
def netlist_graph(nl, state_edges: bool = True) -> Dict[str, Tuple[str, ...]]:
    """The signal graph of a netlist, in flow direction.

    Every signal is a node; a gate output depends on its fan-in, and --
    when ``state_edges`` is set -- a latch/flop output depends on its
    data pin (the sequential closure; drop it to analyse one
    combinational surface only).  Undriven references are skipped (they
    are LNT002's business, not the engine's).
    """
    graph: Dict[str, Tuple[str, ...]] = {s: () for s in nl.inputs}
    for out, gate in nl.gates.items():
        graph[out] = tuple(gate.ins)
    for q, latch in nl.latches.items():
        graph[q] = (latch.d,) if state_edges else ()
    for q, flop in nl.flops.items():
        graph[q] = (flop.d,) if state_edges else ()
    return graph


def spec_graph(spec) -> Dict[str, Tuple[str, ...]]:
    """The element/channel graph of a :class:`SystemSpec`.

    Two node families: ``kind:name`` for sources, sinks, blocks and
    registers, and ``channel:name`` for every connection.  A channel
    depends on its producing element; an element depends on the
    channels feeding its input ports (sorted by port, so multi-arm
    blocks read their arms in declaration order via
    :func:`spec_in_channels`).
    """
    graph: Dict[str, Tuple[str, ...]] = {}
    for kind, table in (
        ("source", spec.sources),
        ("sink", spec.sinks),
        ("block", spec.blocks),
        ("register", spec.registers),
    ):
        for name in table:
            graph[f"{kind}:{name}"] = ()
    feeds: Dict[str, List[str]] = {n: [] for n in graph}
    for conn in spec.connections:
        src = f"{conn.src[0]}:{conn.src[1]}"
        dst = f"{conn.dst[0]}:{conn.dst[1]}"
        graph[f"channel:{conn.name}"] = (src,)
        if dst in feeds:
            feeds[dst].append(f"channel:{conn.name}")
    for node, ins in feeds.items():
        graph[node] = tuple(sorted(ins))
    return graph


def spec_in_channels(spec) -> Dict[str, List[Optional[str]]]:
    """Per-block input channels by port index (None = unconnected)."""
    arms: Dict[str, List[Optional[str]]] = {
        name: [None] * block.n_inputs for name, block in spec.blocks.items()
    }
    for conn in spec.connections:
        kind, name, port = conn.dst
        if kind == "block" and port.startswith("in"):
            idx = int(port[2:])
            if name in arms and 0 <= idx < len(arms[name]):
                arms[name][idx] = conn.name
    return arms


def dmg_graph(graph) -> Dict[str, Tuple[str, ...]]:
    """A (dual) marked graph as a plain node graph (arcs in flow order)."""
    deps: Dict[str, List[str]] = {n: [] for n in graph.nodes}
    for arc in graph.arcs:
        deps[arc.dst].append(arc.src)
    return {n: tuple(sorted(ins)) for n, ins in deps.items()}
