"""Structural-Verilog re-parse front-end.

Parses the subset :func:`repro.rtl.export.to_verilog` emits back into a
:class:`~repro.rtl.netlist.Netlist`:

* one ``module`` with ``clk``/``rst`` plus one declaration per port;
* ``assign`` statements over the gate library's expression shapes
  (``a & b``, ``a | b``, ``~(...)``, ``~a``, ``a ^ b``, ``s ? a : b``,
  ``1'b0``/``1'b1``, bare buffers);
* level-sensitive latch processes (``always @* begin / if (rst) ... /
  else if (clk|~clk) ... / end``) and the single rising-edge flop
  process (``q <= rst ? 1'b0 : d;`` rows).

Anything outside this subset (behavioural code, instances, vectors)
raises :class:`~repro.lint.frontends.source_map.FrontendParseError`
with a ``file:line`` anchor.

The exporter's ``repro.sourcemap 1`` comment block restores raw names,
cell order, the exact ops behind ambiguous spellings (``a`` is a BUF or
a 1-input AND; ``~(a)`` a 1-input NAND or NOR; ``1'b1`` a CONST1 or an
empty AND), the full output list (the port list cannot re-declare an
input as an output) and X reset values (Verilog spells them ``1'b0``).
With the block present, round-tripping our own export reproduces the
original fingerprint bit-for-bit.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.lint.frontends.blif import _Cell, _build, _token_col
from repro.lint.frontends.source_map import (
    FrontendParseError,
    ParsedDesign,
    parse_sourcemap_comments,
)
from repro.rtl.netlist import Phase

__all__ = ["parse_verilog"]

_ID = r"[A-Za-z_][A-Za-z0-9_$]*"
_MODULE = re.compile(rf"\bmodule\s+({_ID})\b")
_DECL = re.compile(rf"^(input|output|wire|reg)\s+(.+?)\s*;$")
_ASSIGN = re.compile(rf"^assign\s+({_ID})\s*=\s*(.+?)\s*;$")
_LATCH_RST = re.compile(rf"^if\s*\(rst\)\s*({_ID})\s*=\s*1'b([01])\s*;$")
_LATCH_UPD = re.compile(rf"^else\s+if\s*\((~?clk)\)\s*({_ID})\s*=\s*({_ID})\s*;$")
_FLOP_ROW = re.compile(
    rf"^({_ID})\s*<=\s*rst\s*\?\s*1'b([01])\s*:\s*({_ID})\s*;$"
)
_CONST = re.compile(r"^1'b([01])$")
_INV_GROUP = re.compile(r"^~\((.+)\)$")
_INV = re.compile(rf"^~({_ID})$")
_MUX = re.compile(rf"^({_ID})\s*\?\s*({_ID})\s*:\s*({_ID})$")
_XOR = re.compile(rf"^({_ID})\s*\^\s*({_ID})$")
_IDENT = re.compile(rf"^{_ID}$")


def _split_idents(expr: str, sep: str) -> Optional[List[str]]:
    parts = [p.strip() for p in expr.split(sep)]
    if all(_IDENT.fullmatch(p) for p in parts):
        return parts
    return None


def _parse_expr(expr: str, file: str, line: int) -> Tuple[str, Tuple[str, ...]]:
    """``(op, ins)`` of one assign right-hand side.

    Shared spellings resolve to their canonical op (BUF, NOT, NAND,
    CONST); the source map restores the exact one afterwards.
    """
    expr = expr.strip()
    m = _CONST.fullmatch(expr)
    if m:
        return ("CONST1" if m.group(1) == "1" else "CONST0"), ()
    m = _INV_GROUP.fullmatch(expr)
    if m:
        inner = m.group(1).strip()
        for sep, op in ((" & ", "NAND"), (" | ", "NOR")):
            if sep in inner:
                ids = _split_idents(inner, sep)
                if ids:
                    return op, tuple(ids)
        if _IDENT.fullmatch(inner):
            return "NAND", (inner,)  # canonical 1-input inverting form
    m = _INV.fullmatch(expr)
    if m:
        return "NOT", (m.group(1),)
    m = _MUX.fullmatch(expr)
    if m:
        return "MUX", m.groups()
    m = _XOR.fullmatch(expr)
    if m:
        return "XOR", m.groups()
    for sep, op in ((" & ", "AND"), (" | ", "OR")):
        if sep in expr:
            ids = _split_idents(expr, sep)
            if ids:
                return op, tuple(ids)
    if _IDENT.fullmatch(expr):
        return "BUF", (expr,)
    raise FrontendParseError(
        f"unsupported expression {expr!r} (structural subset only)",
        file=file, line=line,
    )


def parse_verilog(text: str, file: str = "<verilog>") -> ParsedDesign:
    """Parse structural Verilog text into a netlist plus source map."""
    # -- split comments, decode the source-map block -------------------
    body: List[Tuple[int, str]] = []
    comments: List[Tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        code, _, comment = raw.partition("//")
        if comment:
            comments.append((lineno, comment.strip()))
        if code.strip():
            body.append((lineno, code))
    info = parse_sourcemap_comments(comments, "//", file)

    module: Optional[str] = None
    inputs: List[Tuple[str, int, int]] = []
    outputs: List[Tuple[str, int, int]] = []
    cells: List[_Cell] = []

    i = 0
    n = len(body)
    in_header = False
    while i < n:
        lineno, raw = body[i]
        line = raw.strip()
        i += 1
        if module is None:
            m = _MODULE.search(line)
            if m:
                module = m.group(1)
                in_header = ");" not in line
            continue  # skip everything before the header
        if in_header:
            # port-list lines; the declarations are authoritative
            in_header = ");" not in line
            continue
        if line == "endmodule":
            break
        m = _DECL.fullmatch(line)
        if m:
            kind, names = m.group(1), m.group(2)
            if kind in ("wire", "reg"):
                continue  # positions come from the driving statements
            for name in (s.strip() for s in names.split(",")):
                if name in ("clk", "rst") or not name:
                    continue
                col = raw.find(name) + 1
                if kind == "input":
                    inputs.append((name, lineno, col))
                else:
                    outputs.append((name, lineno, col))
            continue
        m = _ASSIGN.fullmatch(line)
        if m:
            out, expr = m.groups()
            op, ins = _parse_expr(expr, file, lineno)
            cells.append(_Cell(
                "gate", out, op, ins, None, None,
                lineno, raw.find(out) + 1,
            ))
            continue
        if re.fullmatch(r"always\s*@\*\s*begin", line):
            if i + 1 >= n:
                raise FrontendParseError(
                    "truncated latch process", file=file, line=lineno
                )
            rst_no, rst_line = body[i]
            upd_no, upd_line = body[i + 1]
            m_rst = _LATCH_RST.fullmatch(rst_line.strip())
            m_upd = _LATCH_UPD.fullmatch(upd_line.strip())
            if not m_rst or not m_upd:
                raise FrontendParseError(
                    "latch process must be 'if (rst) q = 1'bN; "
                    "else if (clk|~clk) q = d;'",
                    file=file, line=rst_no,
                )
            q, init = m_rst.group(1), int(m_rst.group(2))
            cond, q2, d = m_upd.groups()
            if q2 != q:
                raise FrontendParseError(
                    f"latch process drives {q!r} and {q2!r}",
                    file=file, line=upd_no,
                )
            phase = Phase.HIGH if cond == "clk" else Phase.LOW
            cells.append(_Cell(
                "latch", q, None, (d,), phase, init,
                rst_no, rst_line.find(q) + 1,
            ))
            i += 2
            if i < n and body[i][1].strip() == "end":
                i += 1
            continue
        if re.fullmatch(r"always\s*@\(\s*posedge\s+clk\s*\)\s*begin", line):
            while i < n and body[i][1].strip() != "end":
                row_no, row = body[i]
                m_row = _FLOP_ROW.fullmatch(row.strip())
                if not m_row:
                    raise FrontendParseError(
                        f"unsupported flop row {row.strip()!r}",
                        file=file, line=row_no,
                    )
                q, init, d = m_row.groups()
                cells.append(_Cell(
                    "flop", q, None, (d,), None, int(init),
                    row_no, row.find(q) + 1,
                ))
                i += 1
            if i < n:
                i += 1  # consume the 'end'
            continue
        if line == "end":
            continue
        raise FrontendParseError(
            f"unsupported statement {line!r} (structural subset only)",
            file=file, line=lineno,
        )
    if module is None:
        raise FrontendParseError("missing module header", file=file, line=1)

    return _build(
        module, inputs, outputs, cells, info, file,
        default_state_init=0,
    )
