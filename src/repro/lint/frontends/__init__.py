"""Re-parse front-ends: exported BLIF/Verilog back into lintable netlists.

The exporters of :mod:`repro.rtl.export` write deterministic BLIF and
structural Verilog with a ``repro.sourcemap 1`` comment trailer; the
parsers here reconstruct the :class:`~repro.rtl.netlist.Netlist` --
fingerprint-identical for our own exports -- together with a
:class:`SourceMap` anchoring every signal to file/line/column, which is
what lets ``repro lint --file design.blif`` report findings with SARIF
``physicalLocation`` entries.

:func:`parse_design_file` dispatches on the file extension:
``.blif`` -> :func:`parse_blif`, ``.v``/``.sv``/``.verilog`` ->
:func:`parse_verilog`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.lint.frontends.blif import cover_rows, parse_blif
from repro.lint.frontends.source_map import (
    FrontendParseError,
    ParsedDesign,
    SourceMap,
    SourceMapInfo,
    attach_locations,
)
from repro.lint.frontends.verilog import parse_verilog

__all__ = [
    "FrontendParseError",
    "ParsedDesign",
    "SourceMap",
    "SourceMapInfo",
    "attach_locations",
    "cover_rows",
    "parse_blif",
    "parse_design_file",
    "parse_verilog",
]

_PARSERS = {
    ".blif": parse_blif,
    ".v": parse_verilog,
    ".sv": parse_verilog,
    ".verilog": parse_verilog,
}


def parse_design_file(path: str, text: Optional[str] = None) -> ParsedDesign:
    """Parse one design file, choosing the parser by extension.

    ``text`` overrides reading from disk (handy for tests and for
    callers that already hold the bytes).  Raises
    :class:`FrontendParseError` for unknown extensions and malformed
    content alike.
    """
    ext = os.path.splitext(path)[1].lower()
    parser = _PARSERS.get(ext)
    if parser is None:
        known = ", ".join(sorted(_PARSERS))
        raise FrontendParseError(
            f"no parser for {path!r} (recognised extensions: {known})",
            file=path, line=1,
        )
    if text is None:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    return parser(text, file=path)
