"""Shared plumbing of the re-parse front-ends.

Both parsers (:mod:`repro.lint.frontends.blif`,
:mod:`repro.lint.frontends.verilog`) produce a :class:`ParsedDesign`:
the reconstructed :class:`~repro.rtl.netlist.Netlist` plus a
:class:`SourceMap` anchoring every signal to the file/line/column that
defines it.  ``run_lint``-style callers attach those anchors to their
findings with :func:`attach_locations`, which is what puts
``physicalLocation`` entries into the SARIF output.

:class:`SourceMapInfo` is the decoded ``repro.sourcemap 1`` comment
block our exporters append (see
:func:`repro.rtl.export._sourcemap_lines`): the original netlist name,
the ident-to-raw-name table, the cell insertion order with exact gate
ops, and the Verilog-only output-list/X-init repairs.  Files without
the block (foreign BLIF/Verilog) still parse; they just keep their
emitted identifiers and file order, so fingerprint equality with the
in-memory netlist is only guaranteed for our own exports.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding, SourceLocation

__all__ = [
    "FrontendParseError",
    "ParsedDesign",
    "SourceMap",
    "SourceMapInfo",
    "attach_locations",
    "parse_sourcemap_comments",
]


class FrontendParseError(ValueError):
    """A malformed input file, with a file/line anchor in the message."""

    def __init__(self, message: str, file: str = "", line: int = 0) -> None:
        where = f"{file}:{line}: " if file else ""
        super().__init__(where + message)
        self.file = file
        self.line = line


@dataclass(frozen=True)
class SourceMap:
    """Signal-name to file/line/column anchors for one parsed file."""

    file: str
    anchors: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def location(self, signal: str) -> Optional[SourceLocation]:
        anchor = self.anchors.get(signal)
        if anchor is None:
            return None
        return SourceLocation(file=self.file, line=anchor[0], column=anchor[1])

    def __len__(self) -> int:
        return len(self.anchors)


@dataclass
class ParsedDesign:
    """A reconstructed netlist plus its source map."""

    netlist: object  # repro.rtl.netlist.Netlist (kept loose for docs tools)
    source_map: SourceMap

    @property
    def name(self) -> str:
        return self.netlist.name


@dataclass
class SourceMapInfo:
    """The decoded ``repro.sourcemap 1`` comment block (or an empty one)."""

    present: bool = False
    netlist_name: Optional[str] = None
    #: emitted identifier -> raw signal name (identity entries omitted)
    raw_names: Dict[str, str] = field(default_factory=dict)
    #: (kind, raw_name, op-or-None) per cell, in netlist insertion order
    cells: List[Tuple[str, str, Optional[str]]] = field(default_factory=list)
    #: raw output list (Verilog repair; None = use the parsed decls)
    outputs: Optional[List[str]] = None
    #: raw names of X-initialised state bits (Verilog repair)
    x_inits: List[str] = field(default_factory=list)

    def gate_op(self, raw_name: str) -> Optional[str]:
        for kind, name, op in self.cells:
            if kind == "gate" and name == raw_name:
                return op
        return None


def parse_sourcemap_comments(
    lines: Iterable[Tuple[int, str]], prefix: str, file: str
) -> SourceMapInfo:
    """Decode the source-map directives from comment payloads.

    ``lines`` yields ``(line_number, text)`` for every comment line with
    ``prefix`` (``#`` or ``//``) already stripped.  Unknown directives
    are ignored (forward compatibility); malformed known ones raise
    :class:`FrontendParseError`.
    """
    info = SourceMapInfo()
    for lineno, text in lines:
        parts = text.split(None, 1)
        if not parts:
            continue
        head, rest = parts[0], (parts[1] if len(parts) > 1 else "")
        try:
            if head == "repro.sourcemap":
                info.present = True
            elif head == ".netlist":
                info.netlist_name = json.loads(rest)
            elif head == ".sig":
                ident, raw_json = rest.split(None, 1)
                info.raw_names[ident] = json.loads(raw_json)
            elif head == ".cell":
                fields = rest.split(None, 2)
                kind = fields[0]
                if kind == "gate":
                    op, raw_json = fields[1], fields[2]
                    info.cells.append(("gate", json.loads(raw_json), op))
                elif kind in ("latch", "flop"):
                    raw_json = rest.split(None, 1)[1]
                    info.cells.append((kind, json.loads(raw_json), None))
                else:
                    raise ValueError(f"unknown cell kind {kind!r}")
            elif head == ".outputs":
                info.outputs = list(json.loads(rest))
            elif head == ".xinit":
                info.x_inits.append(json.loads(rest))
        except (ValueError, IndexError) as exc:
            raise FrontendParseError(
                f"malformed source-map directive {text!r}: {exc}",
                file=file, line=lineno,
            ) from None
    return info


def attach_locations(
    findings: Iterable[Finding], source_map: SourceMap
) -> List[Finding]:
    """Findings with their subjects anchored to the parsed file.

    Every finding gets the subject's anchor when the source map has
    one; findings on unmapped subjects (e.g. rule-level notes) fall
    back to line 1 of the file, so *every* finding on a parsed target
    carries a ``physicalLocation``.  Locations sit outside the
    fingerprint, so cached/baselined findings are unaffected.
    """
    out: List[Finding] = []
    fallback = SourceLocation(file=source_map.file, line=1, column=1)
    for f in findings:
        loc = source_map.location(f.subject) or fallback
        out.append(dataclasses.replace(f, location=loc))
    return out
