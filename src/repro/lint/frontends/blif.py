"""BLIF re-parse front-end.

Parses the subset of BLIF our :func:`repro.rtl.export.to_blif` writer
emits -- and any foreign file built from the same vocabulary --
back into a :class:`~repro.rtl.netlist.Netlist`:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.clock`` / ``.end``;
* ``.latch d q [ah|al|re [control]] [init]`` -- ``ah``/``al`` become
  transparent H/L latches, ``re`` (or no type) a flip-flop; init 2/3
  map to X;
* ``.names`` with the fixed single-output covers of the gate library
  (AND/OR/NAND/NOR/NOT/BUF/XOR/MUX/CONST0/CONST1).  Arbitrary
  sum-of-products covers are rejected, not approximated.

When the file carries the exporter's ``repro.sourcemap 1`` comment
block, the parser restores the original netlist name, raw signal
names, cell insertion order, and the exact op of covers that several
ops share (a 1-input AND and a BUF have the same ``1 1`` cover); the
reconstructed netlist is then fingerprint-identical to the exported
one.  A recorded op is only trusted when regenerating its cover
matches the parsed rows (stale comments lose, the file wins).

Malformed input raises
:class:`~repro.lint.frontends.source_map.FrontendParseError` with a
``file:line`` anchor: duplicate ``.model``, truncated ``.names``
covers, undeclared wires, bad latch/init syntax, unsupported covers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.frontends.source_map import (
    FrontendParseError,
    ParsedDesign,
    SourceMap,
    SourceMapInfo,
    parse_sourcemap_comments,
)
from repro.rtl.logic import X
from repro.rtl.netlist import Netlist, Phase

__all__ = ["parse_blif"]


def _token_col(line: str, index: int) -> int:
    """1-based column of the ``index``-th whitespace-separated token."""
    col = 0
    seen = -1
    in_token = False
    for pos, ch in enumerate(line):
        if ch.isspace():
            in_token = False
        elif not in_token:
            in_token = True
            seen += 1
            if seen == index:
                col = pos + 1
                break
    return col or 1


def cover_rows(op: str, n: int) -> List[Tuple[str, str]]:
    """The canonical ``(plane, output)`` cover of one gate op.

    Mirrors :func:`repro.rtl.export._blif_cover` exactly; both the
    parser's op recovery and its stale-source-map defence compare
    against these rows.
    """
    if op == "AND":
        return [("1" * n, "1")]
    if op == "NAND":
        return [("-" * i + "0" + "-" * (n - i - 1), "1") for i in range(n)]
    if op == "OR":
        return [("-" * i + "1" + "-" * (n - i - 1), "1") for i in range(n)]
    if op == "NOR":
        return [("0" * n, "1")]
    if op == "NOT":
        return [("0", "1")]
    if op == "BUF":
        return [("1", "1")]
    if op == "XOR":
        return [("10", "1"), ("01", "1")]
    if op == "MUX":
        return [("11-", "1"), ("0-1", "1")]
    if op == "CONST1":
        return [("", "1")]
    if op == "CONST0":
        return []
    raise ValueError(f"unknown gate op {op!r}")


#: Op recovery order: the canonical spelling of each shared cover comes
#: first (BUF before 1-input AND/OR, NOT before 1-input NAND/NOR,
#: CONST before 0-input variadics), so recovery is deterministic.
_RECOVERY_ORDER = (
    "CONST0", "CONST1", "BUF", "NOT", "XOR", "MUX", "AND", "OR", "NAND", "NOR",
)


def _op_from_cover(n: int, rows: Sequence[Tuple[str, str]]) -> Optional[str]:
    key = sorted(rows)
    for op in _RECOVERY_ORDER:
        arity_ok = (
            (op in ("CONST0", "CONST1") and n == 0)
            or (op in ("BUF", "NOT") and n == 1)
            or (op == "XOR" and n == 2)
            or (op == "MUX" and n == 3)
            or (op in ("AND", "OR", "NAND", "NOR"))
        )
        if arity_ok and sorted(cover_rows(op, n)) == key:
            return op
    return None


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """``(first_line_number, joined_text)`` with ``\\`` continuations."""
    out: List[Tuple[int, str]] = []
    pending: Optional[Tuple[int, str]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if pending is not None:
            start, acc = pending
            raw = acc + " " + raw
            lineno = start
            pending = None
        if raw.rstrip().endswith("\\"):
            pending = (lineno, raw.rstrip()[:-1])
            continue
        out.append((lineno, raw))
    if pending is not None:
        out.append(pending)
    return out


class _Cell:
    __slots__ = ("kind", "name", "op", "ins", "phase", "init", "line", "col")

    def __init__(self, kind, name, op, ins, phase, init, line, col):
        self.kind = kind    # "gate" | "latch" | "flop"
        self.name = name
        self.op = op        # gate op (gates only)
        self.ins = ins      # gate fan-in / (d,) for state
        self.phase = phase  # latch phase
        self.init = init    # state init value
        self.line = line
        self.col = col


def parse_blif(text: str, file: str = "<blif>") -> ParsedDesign:
    """Parse BLIF text into a netlist plus source map.

    ``file`` names the origin in source-map anchors and error messages.
    """
    lines = _logical_lines(text)

    # -- split comments from body, decode the source-map block ---------
    body: List[Tuple[int, str]] = []
    comments: List[Tuple[int, str]] = []
    for lineno, raw in lines:
        code, _, comment = raw.partition("#")
        if comment:
            comments.append((lineno, comment.strip()))
        if code.strip():
            body.append((lineno, code))
    info = parse_sourcemap_comments(comments, "#", file)

    model: Optional[str] = None
    inputs: List[Tuple[str, int, int]] = []
    outputs: List[Tuple[str, int, int]] = []
    cells: List[_Cell] = []
    ended = False

    i = 0
    while i < len(body):
        lineno, line = body[i]
        tokens = line.split()
        head = tokens[0]
        i += 1
        if ended and head != ".model":
            continue  # ignore trailing junk after .end (matches SIS)
        if head == ".model":
            if model is not None:
                raise FrontendParseError(
                    f"duplicate .model {tokens[1] if len(tokens) > 1 else ''!r} "
                    f"(model {model!r} already open)",
                    file=file, line=lineno,
                )
            model = tokens[1] if len(tokens) > 1 else ""
            ended = False
        elif head == ".inputs":
            for k, tok in enumerate(tokens[1:], start=1):
                inputs.append((tok, lineno, _token_col(line, k)))
        elif head == ".outputs":
            for k, tok in enumerate(tokens[1:], start=1):
                outputs.append((tok, lineno, _token_col(line, k)))
        elif head == ".clock":
            pass
        elif head == ".latch":
            args = tokens[1:]
            if len(args) < 2:
                raise FrontendParseError(
                    ".latch needs at least an input and an output",
                    file=file, line=lineno,
                )
            d, q, rest = args[0], args[1], args[2:]
            kind, phase = "flop", None
            if rest and rest[0] in ("ah", "al", "re", "fe", "as"):
                lt = rest[0]
                rest = rest[1:]
                if rest and rest[0] not in ("0", "1", "2", "3"):
                    rest = rest[1:]  # skip the control (clock) token
                if lt == "ah":
                    kind, phase = "latch", Phase.HIGH
                elif lt == "al":
                    kind, phase = "latch", Phase.LOW
                elif lt in ("fe", "as"):
                    raise FrontendParseError(
                        f"unsupported latch type {lt!r} (only ah/al/re)",
                        file=file, line=lineno,
                    )
            if len(rest) > 1:
                raise FrontendParseError(
                    f"trailing .latch tokens {rest[1:]}", file=file, line=lineno
                )
            init: object = X
            if rest:
                if rest[0] not in ("0", "1", "2", "3"):
                    raise FrontendParseError(
                        f"bad latch init {rest[0]!r}", file=file, line=lineno
                    )
                init = {"0": 0, "1": 1, "2": X, "3": X}[rest[0]]
            cells.append(_Cell(
                kind, q, None, (d,), phase, init,
                lineno, _token_col(line, 2),
            ))
        elif head == ".names":
            sigs = tokens[1:]
            if not sigs:
                raise FrontendParseError(
                    ".names needs an output", file=file, line=lineno
                )
            ins, out = tuple(sigs[:-1]), sigs[-1]
            rows: List[Tuple[str, str]] = []
            while i < len(body) and not body[i][1].split()[0].startswith("."):
                row_line, row = body[i]
                parts = row.split()
                plane, val = ("", parts[0]) if len(parts) == 1 else (parts[0], parts[1])
                if len(parts) > 2 or val not in ("0", "1"):
                    raise FrontendParseError(
                        f"bad cover row {row.strip()!r}", file=file, line=row_line
                    )
                if len(plane) != len(ins) or any(c not in "01-" for c in plane):
                    raise FrontendParseError(
                        f"cover row {row.strip()!r} does not match the "
                        f"{len(ins)} input(s) of {out!r} (truncated or "
                        "malformed .names cover)",
                        file=file, line=row_line,
                    )
                if val != "1":
                    raise FrontendParseError(
                        "off-set covers are not supported",
                        file=file, line=row_line,
                    )
                rows.append((plane, val))
                i += 1
            if ins and not rows:
                raise FrontendParseError(
                    f"truncated .names cover: {out!r} lists "
                    f"{len(ins)} input(s) but no rows",
                    file=file, line=lineno,
                )
            op = _op_from_cover(len(ins), rows)
            if op is None:
                raise FrontendParseError(
                    f"unsupported .names cover for {out!r}: only the "
                    "fixed gate-library covers are recognised",
                    file=file, line=lineno,
                )
            cells.append(_Cell(
                "gate", out, op, ins, None, None,
                lineno, _token_col(line, len(sigs)),
            ))
        elif head == ".end":
            ended = True
        elif head.startswith("."):
            raise FrontendParseError(
                f"unsupported BLIF directive {head!r}", file=file, line=lineno
            )
        else:
            raise FrontendParseError(
                f"cover row {line.strip()!r} outside any .names block",
                file=file, line=lineno,
            )
    if model is None:
        raise FrontendParseError("missing .model", file=file, line=1)

    return _build(
        model, inputs, outputs, cells, info, file,
        default_state_init=None,
    )


def _build(
    model: str,
    inputs: List[Tuple[str, int, int]],
    outputs: List[Tuple[str, int, int]],
    cells: List[_Cell],
    info: SourceMapInfo,
    file: str,
    default_state_init: Optional[object],
) -> ParsedDesign:
    """Shared back half of both parsers: validate, rename, reorder."""
    raw = {ident: raw_name for ident, raw_name in info.raw_names.items()}

    def rename(ident: str) -> str:
        return raw.get(ident, ident)

    # -- undeclared-wire check (on emitted identifiers) ----------------
    driven: Set[str] = {name for name, _, _ in inputs}
    driven.update(c.name for c in cells)
    for c in cells:
        for dep in c.ins:
            if dep not in driven:
                raise FrontendParseError(
                    f"undeclared wire {dep!r} (referenced by {c.name!r} "
                    "but never driven or declared as an input)",
                    file=file, line=c.line,
                )

    # -- duplicate-driver check ----------------------------------------
    seen_names: Set[str] = set(name for name, _, _ in inputs)
    for c in cells:
        if c.name in seen_names:
            raise FrontendParseError(
                f"signal {c.name!r} is driven more than once",
                file=file, line=c.line,
            )
        seen_names.add(c.name)

    # -- apply the source map: names, order, exact ops -----------------
    by_raw: Dict[str, _Cell] = {rename(c.name): c for c in cells}
    order = [rename(c.name) for c in cells]
    if info.cells:
        recorded = [name for _, name, _ in info.cells]
        if sorted(recorded) == sorted(order) and all(
            by_raw[name].kind == kind for kind, name, _ in info.cells
        ):
            order = recorded
            for kind, name, op in info.cells:
                cell = by_raw[name]
                if kind == "gate" and op is not None and op != cell.op:
                    # trust the recorded op only when it generates the
                    # very cover that was parsed (stale comments lose)
                    try:
                        same = sorted(cover_rows(op, len(cell.ins))) == sorted(
                            cover_rows(cell.op, len(cell.ins))
                        )
                    except ValueError:
                        same = False
                    if same:
                        cell.op = op
        # else: the block does not describe this file any more; ignore it

    nl = Netlist(info.netlist_name if info.netlist_name is not None else model)
    anchors: Dict[str, Tuple[int, int]] = {}
    for ident, line, col in inputs:
        nl.add_input(rename(ident))
        anchors[rename(ident)] = (line, col)
    x_inits = set(info.x_inits)
    for name in order:
        c = by_raw[name]
        try:
            if c.kind == "gate":
                nl.add_gate(c.op, tuple(rename(s) for s in c.ins), out=name)
            else:
                init = c.init
                if name in x_inits:
                    init = X  # the HDL spelled 1'b0; the source map wins
                elif init is None:
                    init = default_state_init
                if c.kind == "latch":
                    nl.add_latch(rename(c.ins[0]), c.phase, q=name, init=init)
                else:
                    nl.add_flop(rename(c.ins[0]), q=name, init=init)
        except ValueError as exc:
            raise FrontendParseError(str(exc), file=file, line=c.line) from None
        anchors[name] = (c.line, c.col)
    out_list = (
        list(info.outputs) if info.outputs is not None
        else [rename(ident) for ident, _, _ in outputs]
    )
    for o in out_list:
        nl.add_output(o)
    for ident, line, col in outputs:
        anchors.setdefault(rename(ident), (line, col))
    return ParsedDesign(
        netlist=nl, source_map=SourceMap(file=file, anchors=anchors)
    )
