"""The fabric's job registry: what a worker can compute, and its codec.

A fabric worker is generic: it serves whatever *job kinds* are
registered in its process.  A job kind names three things --

* ``build(params)`` -- construct the per-worker runner once from the
  JSON-safe ``params`` the coordinator ships in the handshake (the
  analogue of :class:`~repro.resilience.supervisor.ShardSupervisor`'s
  ``worker_init``); the runner maps one JSON-safe unit payload to one
  JSON-safe result;
* ``fingerprint(params)`` -- a deterministic JSON document describing
  everything the results depend on.  Coordinator and worker each
  compute it *from their own code*; the handshake compares the two and
  rejects the worker on any difference
  (:class:`~repro.fabric.coordinator.FabricMismatch`, in the mold of
  :class:`~repro.resilience.checkpoint.CheckpointMismatch`).  For
  campaigns this embeds the netlist fingerprint, so a worker running
  skewed controller code can never contribute to a merged report.

Two kinds ship built in: ``campaign`` (RTL fault-injection chunks --
the unit payload is a list of encoded injections, the result the list
of outcome dicts) and ``verify`` (one Kripke build + CTL check per
design name).  Tests register throwaway kinds of their own; the
registry is process-global on purpose so forked test workers inherit
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "JobKind",
    "get_job",
    "register_job",
    "decode_campaign_config",
    "encode_campaign_config",
    "encode_injection",
    "decode_injection",
]


@dataclass(frozen=True)
class JobKind:
    """One kind of distributable work."""

    name: str
    #: params -> runner; the runner maps unit payload -> unit result.
    build: Callable[[Dict[str, object]], Callable[[object], object]]
    #: params -> the JSON document both sides must agree on.
    fingerprint: Callable[[Dict[str, object]], Dict[str, object]]


_REGISTRY: Dict[str, JobKind] = {}


def register_job(kind: JobKind) -> JobKind:
    """Register (or replace) a job kind process-wide."""
    _REGISTRY[kind.name] = kind
    return kind


def get_job(name: str) -> JobKind:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric job {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# campaign: RTL fault-injection chunks
# ----------------------------------------------------------------------
def encode_campaign_config(config) -> Dict[str, object]:
    """A :class:`~repro.faults.campaign.CampaignConfig` as plain JSON."""
    return {
        "cycles": config.cycles,
        "seed": config.seed,
        "kinds": list(config.kinds),
        "injection_cycles": list(config.injection_cycles),
        "flip_duration": config.flip_duration,
        "untestable_analysis": config.untestable_analysis,
    }


def decode_campaign_config(doc: Dict[str, object]):
    from repro.faults.campaign import CampaignConfig

    return CampaignConfig(
        cycles=doc["cycles"],
        seed=doc["seed"],
        kinds=tuple(doc["kinds"]),
        injection_cycles=tuple(doc["injection_cycles"]),
        flip_duration=doc["flip_duration"],
        untestable_analysis=doc["untestable_analysis"],
    )


def encode_injection(injection) -> List[object]:
    return [injection.net, injection.kind, injection.cycle,
            injection.duration]


def decode_injection(doc: List[object]):
    from repro.faults.models import Injection

    net, kind, cycle, duration = doc
    return Injection(net, kind, cycle, duration)


def _campaign_build(params: Dict[str, object]):
    from repro.faults.campaign import _make_harness, resolve_target

    target = resolve_target(params["target"])
    config = decode_campaign_config(params["config"])
    harness = _make_harness(
        target, config, params["lanes"], params["degrade"], None,
        params.get("backend", "batch"), params.get("cache"),
    )

    def run(payload: object) -> object:
        injections = [decode_injection(doc) for doc in payload]
        return [o.to_dict() for o in harness.run_chunk(injections)]

    return run


def _campaign_fingerprint(params: Dict[str, object]) -> Dict[str, object]:
    """What both sides must agree on before merging campaign chunks.

    Embeds the *netlist fingerprint* computed from each side's own
    code: a worker with a skewed controller netlist (different repo
    revision, different elaboration) fingerprints differently and is
    rejected at the handshake, never silently merged.  The backend and
    cache directory are deliberately excluded -- they cannot change
    outcomes (the differential suites prove it), so a heterogeneous
    pool may mix them.
    """
    from repro.codegen.fingerprint import netlist_fingerprint
    from repro.faults.campaign import resolve_target

    target = resolve_target(params["target"])
    return {
        "kind": "fabric-campaign",
        "target": target.name,
        "netlist": netlist_fingerprint(target.netlist),
        "config": dict(params["config"]),
        "lanes": params["lanes"],
    }


register_job(JobKind(
    name="campaign",
    build=_campaign_build,
    fingerprint=_campaign_fingerprint,
))


# ----------------------------------------------------------------------
# verify: one Kripke build + CTL check per design
# ----------------------------------------------------------------------
def _verify_build(params: Dict[str, object]):
    from repro.verif.properties import verify_netlist
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    max_states = params.get("max_states", 2_000_000)
    cache_dir: Optional[str] = params.get("cache")
    cache = None
    if cache_dir is not None:
        from repro.codegen import build_cache

        cache = build_cache(cache_dir)

    def run(payload: object) -> object:
        design = str(payload)
        nl, chans, fairness = diamond_with_feedback(**DESIGNS[design])
        result = verify_netlist(
            nl, chans, fairness=fairness, max_states=max_states, cache=cache,
        )
        return {
            "design": design,
            "states": result.states,
            "ok": result.ok,
            "failures": sorted(
                f"{ch}.{prop}" for ch, prop in result.failures()
            ),
            "properties": len(result.results),
        }

    return run


def _verify_fingerprint(params: Dict[str, object]) -> Dict[str, object]:
    from repro.codegen.fingerprint import netlist_fingerprint
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    designs = sorted(params.get("designs", sorted(DESIGNS)))
    prints = {}
    for design in designs:
        nl, _, _ = diamond_with_feedback(**DESIGNS[design])
        prints[design] = netlist_fingerprint(nl)
    return {
        "kind": "fabric-verify",
        "designs": prints,
        "max_states": params.get("max_states", 2_000_000),
    }


register_job(JobKind(
    name="verify",
    build=_verify_build,
    fingerprint=_verify_fingerprint,
))
