"""The fabric worker: an asyncio socket daemon serving job units.

``repro worker --listen HOST:PORT`` runs one of these.  The worker is
stateless between coordinator connections (re-adoption after a
coordinator crash is just a reconnect plus a matching handshake) and
keeps a runner cache keyed by fingerprint digest, so rebinding to the
same campaign skips the harness rebuild and its golden run.

Layout per connection:

* the **read loop** stays on the event loop and answers ``ping``
  frames immediately -- heartbeats flow even while a chunk crunches;
* **compute** runs in a single worker thread (one unit at a time, in
  lease order) so the socket never starves; results stream back as
  ``result`` frames carrying the measured compute seconds the
  coordinator's EWMA feeds on;
* a ``revoke`` frame (work stealing) drops not-yet-started units from
  the local queue; the unit already in flight finishes and its result
  is deduplicated coordinator-side;
* ``--shard-timeout`` arms the **hung-compute watchdog**: a unit that
  exceeds the deadline means the simulator itself is wedged (the
  in-process stall watchdogs should have fired first), and the only
  honest recovery is ``os._exit`` -- die loudly, let the process
  supervisor restart the daemon, let the coordinator requeue the
  chunk.  A quiet zombie would hold its lease forever.

The worker serves one coordinator at a time; a second connection gets
a ``busy`` rejection.  It never touches the checkpoint store -- only
the coordinator writes checkpoints, so worker crashes cannot tear the
store.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.fabric.frames import FrameError, encode_frame, read_frame
from repro.fabric.jobs import get_job

__all__ = ["PROTOCOL_VERSION", "WorkerServer", "fingerprint_digest"]

#: Bump on any incompatible frame-sequence change; the handshake
#: rejects version skew before any work is exchanged.
PROTOCOL_VERSION = 1


def fingerprint_digest(fingerprint: Dict[str, object]) -> str:
    """Stable digest of a job fingerprint document (runner-cache key)."""
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_diff(
    ours: Dict[str, object], theirs: Dict[str, object]
) -> List[str]:
    """The keys on which two fingerprint documents disagree."""
    return sorted(
        key for key in set(ours) | set(theirs)
        if ours.get(key) != theirs.get(key)
    )


class WorkerServer:
    """One listening fabric worker."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_timeout: Optional[float] = None,
        once: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.shard_timeout = shard_timeout
        self.once = once
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self._runners: Dict[str, object] = {}
        self._busy = False
        self._server: Optional[asyncio.AbstractServer] = None
        self.served_connections = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass

    def stop(self) -> None:
        if self._server is not None:
            self._server.close()

    # -- one coordinator connection -------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()

        async def send(message: Dict[str, object]) -> None:
            async with write_lock:
                writer.write(encode_frame(message))
                await writer.drain()

        try:
            if self._busy:
                await send({"type": "reject", "reason": "worker busy"})
                return
            self._busy = True
            try:
                await self._session(reader, send)
            finally:
                self._busy = False
                self.served_connections += 1
        except (FrameError, ConnectionError, OSError):
            pass  # coordinator died; drop the connection, keep listening
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if self.once and self._server is not None:
                self._server.close()

    async def _session(self, reader, send) -> None:
        # Handshake: hello/welcome, then init/bound (or reject).
        hello = await read_frame(reader)
        if hello is None or hello.get("type") != "hello":
            return
        if hello.get("version") != PROTOCOL_VERSION:
            await send({
                "type": "reject",
                "reason": (
                    f"protocol version mismatch: coordinator "
                    f"{hello.get('version')}, worker {PROTOCOL_VERSION}"
                ),
            })
            return
        await send({
            "type": "welcome", "version": PROTOCOL_VERSION,
            "worker": self.name, "pid": os.getpid(),
        })
        init = await read_frame(reader)
        if init is None or init.get("type") != "init":
            return
        runner = await self._bind(init, send)
        if runner is None:
            return
        await self._serve_units(reader, send, runner)

    async def _bind(self, init: Dict[str, object], send):
        """Validate the fingerprint and build (or reuse) the runner."""
        loop = asyncio.get_running_loop()
        try:
            job = get_job(str(init.get("job")))
            params = init.get("params") or {}
            ours = await loop.run_in_executor(
                None, lambda: job.fingerprint(params)
            )
        except Exception as exc:  # unknown job, malformed params
            await send({
                "type": "reject",
                "reason": f"cannot bind job: {type(exc).__name__}: {exc}",
            })
            return None
        theirs = init.get("fingerprint") or {}
        diff = fingerprint_diff(ours, theirs)
        if diff:
            await send({
                "type": "reject",
                "reason": (
                    f"fingerprint mismatch on {', '.join(diff)}: this "
                    f"worker computes different {job.name!r} results "
                    "(version skew?) and must not contribute to the report"
                ),
                "mismatch": diff,
                "fingerprint": ours,
            })
            return None
        digest = fingerprint_digest(ours)
        runner = self._runners.get(digest)
        if runner is None:
            try:
                runner = await loop.run_in_executor(
                    None, lambda: job.build(params)
                )
            except Exception as exc:
                await send({
                    "type": "reject",
                    "reason": f"runner build failed: "
                              f"{type(exc).__name__}: {exc}",
                })
                return None
            self._runners[digest] = runner
        await send({"type": "bound", "fingerprint": ours,
                    "cached": digest in self._runners})
        return runner

    async def _serve_units(self, reader, send, runner) -> None:
        """Lease/revoke/ping loop plus the single compute consumer."""
        loop = asyncio.get_running_loop()
        queue: List[Tuple[int, object]] = []
        work = asyncio.Event()
        closing = False

        async def compute() -> None:
            while True:
                await work.wait()
                if closing:
                    return
                if not queue:
                    work.clear()
                    await send({"type": "idle"})
                    continue
                index, payload = queue.pop(0)
                started = time.perf_counter()
                future = loop.run_in_executor(None, runner, payload)
                try:
                    if self.shard_timeout is not None:
                        result = await asyncio.wait_for(
                            asyncio.shield(future), self.shard_timeout
                        )
                    else:
                        result = await future
                except asyncio.TimeoutError:
                    # Hung compute: the unit blew the worker-side
                    # watchdog deadline.  The thread cannot be killed,
                    # so the process dies loudly instead of zombieing.
                    os._exit(17)
                except Exception as exc:
                    await send({
                        "type": "error", "index": index,
                        "detail": f"{type(exc).__name__}: {exc}",
                    })
                    continue
                await send({
                    "type": "result", "index": index, "payload": result,
                    "seconds": time.perf_counter() - started,
                })

        consumer = asyncio.ensure_future(compute())
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                kind = frame.get("type")
                if kind == "ping":
                    await send({"type": "pong", "t": frame.get("t")})
                elif kind == "lease":
                    queue.extend(
                        (int(i), p) for i, p in frame.get("units", [])
                    )
                    work.set()
                elif kind == "revoke":
                    drop = {int(i) for i in frame.get("indices", [])}
                    queue[:] = [(i, p) for i, p in queue if i not in drop]
                    await send({"type": "revoked",
                                "indices": sorted(drop)})
                elif kind == "bye":
                    return
        finally:
            closing = True
            work.set()
            consumer.cancel()
            try:
                await consumer
            except (asyncio.CancelledError, Exception):
                pass


def serve(
    host: str,
    port: int,
    shard_timeout: Optional[float] = None,
    once: bool = False,
    on_ready=None,
) -> None:
    """Blocking entry point: serve until cancelled (the CLI verb)."""

    async def main() -> None:
        server = WorkerServer(
            host, port, shard_timeout=shard_timeout, once=once
        )
        bound_host, bound_port = await server.start()
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        await server.serve_forever()

    asyncio.run(main())
