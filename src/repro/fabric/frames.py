"""Length-prefixed JSON frames: the fabric's wire format.

One frame is a 4-byte big-endian length prefix followed by exactly that
many bytes of UTF-8 JSON (an object).  The format is deliberately dumb:

* **torn frames are loud** -- a connection that drops mid-prefix or
  mid-body raises :class:`FrameError` instead of yielding a half-parsed
  message, so the coordinator treats the peer as dead and requeues its
  work rather than merging garbage;
* **framing is self-describing** -- no sentinels inside the body, so
  payloads (campaign chunks, outcome lists) need no escaping;
* **bounded** -- a prefix larger than :data:`MAX_FRAME` raises
  immediately; a corrupt or hostile peer cannot make the reader
  allocate unbounded memory.

JSON serialisation is canonical (sorted keys, compact separators) so a
frame's bytes are a pure function of its message -- the same property
every report in this repo leans on.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Optional

__all__ = ["FrameError", "MAX_FRAME", "encode_frame", "read_frame"]

#: Upper bound on one frame's body; campaign chunks are a few KB, so
#: 64 MiB is generous headroom before "corrupt prefix" is the verdict.
MAX_FRAME = 64 << 20

_PREFIX = struct.Struct("!I")


class FrameError(RuntimeError):
    """The byte stream is not a well-formed frame sequence."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """``message`` as one wire frame (canonical JSON, length-prefixed)."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _PREFIX.pack(len(body)) + body


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, object]]:
    """The next frame, or ``None`` on a clean EOF at a frame boundary.

    Raises :class:`FrameError` when the stream ends mid-prefix or
    mid-body (a torn frame -- the peer died while writing), when the
    prefix exceeds :data:`MAX_FRAME`, or when the body is not a JSON
    object.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameError(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from None
    except (ConnectionError, OSError) as exc:
        raise FrameError(f"connection lost reading prefix: {exc}") from None
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(
            f"frame prefix claims {length} bytes (> MAX_FRAME {MAX_FRAME})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from None
    except (ConnectionError, OSError) as exc:
        raise FrameError(f"connection lost reading body: {exc}") from None
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message
