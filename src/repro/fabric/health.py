"""Worker health states: CONNECTING -> HEALTHY -> DEGRADED -> DEAD.

Daemon hygiene for the campaign fabric, in the style of long-running
network supervisors: every remote worker is tracked by a small state
machine driven by two inputs only -- *frames arriving* (any frame is a
heartbeat) and *the clock* (injected, so every deadline is testable on
a :class:`~repro.resilience.clock.FakeClock` with zero sleeps).

::

    CONNECTING --connected--> HEALTHY
    HEALTHY    --no frame for degraded_after--> DEGRADED
    DEGRADED   --frame--> HEALTHY
    DEGRADED   --no frame for dead_after--> DEAD
    any        --connection lost / rejected--> DEAD
    DEAD       --reconnect backoff elapsed--> CONNECTING

Semantics the coordinator builds on:

* only **HEALTHY** workers receive new leases;
* a **DEGRADED** worker keeps its outstanding work (it may just be
  slow) but gets nothing new and is first in line for stealing;
* a **DEAD** worker's outstanding units are requeued immediately, and
  reconnection follows the same capped exponential backoff schedule as
  shard requeues (:func:`~repro.resilience.supervisor.backoff_for`);
* a worker whose handshake is *rejected* (fingerprint mismatch) is
  terminally DEAD -- reconnecting a wrong-version worker forever would
  be noise, not resilience.

Every transition increments
``fabric_worker_transitions_total{from,to}`` and refreshes the
per-state ``fabric_workers{state}`` gauges plus a per-worker numeric
``fabric_worker_state{worker}`` gauge (0=CONNECTING 1=HEALTHY
2=DEGRADED 3=DEAD) in the shared
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable, Optional

from repro.resilience.clock import MONOTONIC, Clock
from repro.resilience.supervisor import backoff_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

__all__ = ["WorkerHealth", "WorkerState", "state_census"]


class WorkerState(enum.IntEnum):
    CONNECTING = 0
    HEALTHY = 1
    DEGRADED = 2
    DEAD = 3


class WorkerHealth:
    """The health machine of one remote worker.

    ``degraded_after``/``dead_after`` are seconds since the last
    received frame; ``dead_after`` must be the larger.  ``max_rounds``
    bounds how many CONNECTING attempts may *fail* before the worker is
    terminally dead (``None`` = reconnect forever).
    """

    def __init__(
        self,
        name: str,
        degraded_after: float = 2.0,
        dead_after: float = 6.0,
        backoff_base: float = 0.25,
        backoff_cap: float = 8.0,
        max_rounds: Optional[int] = None,
        clock: Clock = MONOTONIC,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if degraded_after <= 0 or dead_after <= degraded_after:
            raise ValueError(
                "need 0 < degraded_after < dead_after for a monotone ladder"
            )
        self.name = name
        self.degraded_after = degraded_after
        self.dead_after = dead_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_rounds = max_rounds
        self._clock = clock
        self._metrics = metrics
        self.state = WorkerState.CONNECTING
        self.last_frame = clock()
        #: failed connection rounds since the last successful connect.
        self.failed_rounds = 0
        self.terminal = False
        #: earliest clock time at which a reconnect may be attempted.
        self.reconnect_at = clock()
        self._gauge(None, self.state)

    # -- metrics --------------------------------------------------------
    def _gauge(
        self, old: Optional[WorkerState], new: WorkerState
    ) -> None:
        if self._metrics is None:
            return
        if old is not None:
            self._metrics.counter(
                "fabric_worker_transitions_total",
                **{"from": old.name, "to": new.name},
            ).inc()
        self._metrics.gauge(
            "fabric_worker_state", worker=self.name
        ).set(int(new))

    def _transition(self, new: WorkerState) -> None:
        if new == self.state:
            return
        old = self.state
        self.state = new
        self._gauge(old, new)

    # -- inputs ---------------------------------------------------------
    def on_connected(self) -> None:
        """The transport connected and the handshake succeeded."""
        self.failed_rounds = 0
        self.last_frame = self._clock()
        self._transition(WorkerState.HEALTHY)

    def on_frame(self) -> None:
        """Any frame arrived; every frame is a heartbeat."""
        self.last_frame = self._clock()
        if self.state == WorkerState.DEGRADED:
            self._transition(WorkerState.HEALTHY)

    def on_disconnect(self, terminal: bool = False) -> None:
        """The connection dropped (or the handshake was rejected).

        Schedules the next reconnect with capped exponential backoff;
        ``terminal`` (a fingerprint rejection, or the reconnect budget
        exhausted) pins the worker DEAD for good.
        """
        self.failed_rounds += 1
        if terminal or (
            self.max_rounds is not None
            and self.failed_rounds > self.max_rounds
        ):
            self.terminal = True
        backoff = backoff_for(
            self.failed_rounds, self.backoff_base, self.backoff_cap
        )
        self.reconnect_at = self._clock() + backoff
        self._transition(WorkerState.DEAD)

    def on_reconnecting(self) -> None:
        """A reconnect attempt is starting."""
        self._transition(WorkerState.CONNECTING)

    # -- clock-driven checks --------------------------------------------
    def check(self) -> WorkerState:
        """Apply heartbeat deadlines; returns the (possibly new) state.

        Only meaningful while connected: CONNECTING and DEAD have no
        heartbeat to miss.  The HEALTHY -> DEGRADED -> DEAD ladder is
        monotone in silence: one long-enough gap walks both steps.
        """
        if self.state in (WorkerState.CONNECTING, WorkerState.DEAD):
            return self.state
        silent = self._clock() - self.last_frame
        if silent >= self.dead_after:
            self.on_disconnect()
        elif silent >= self.degraded_after:
            self._transition(WorkerState.DEGRADED)
        return self.state

    def may_reconnect(self) -> bool:
        """Whether a DEAD worker's backoff window has elapsed."""
        return (
            self.state == WorkerState.DEAD
            and not self.terminal
            and self._clock() >= self.reconnect_at
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerHealth({self.name!r}, {self.state.name})"


def state_census(
    workers: Iterable[WorkerHealth], metrics: "MetricsRegistry"
) -> None:
    """Refresh the per-state ``fabric_workers{state}`` gauges."""
    counts = {state: 0 for state in WorkerState}
    for worker in workers:
        counts[worker.state] += 1
    for state, count in counts.items():
        metrics.gauge("fabric_workers", state=state.name).set(count)
