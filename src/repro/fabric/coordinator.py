"""The fabric coordinator: drive a job across socket workers.

One :class:`FabricCoordinator` owns a set of worker addresses and a
:class:`~repro.fabric.scheduler.WorkStealingScheduler` over indexed
work units, and runs the whole campaign loop on one asyncio event
loop:

* per address, a **reconnect loop** governed by that worker's
  :class:`~repro.fabric.health.WorkerHealth` machine -- connect,
  handshake (versioned hello + fingerprint comparison), serve, and on
  any loss back off with the shared capped-exponential schedule and
  try again.  A worker whose fingerprint is *rejected* is terminally
  dead; if every worker is rejected the run raises
  :class:`FabricMismatch` (the socket-transport sibling of
  :class:`~repro.resilience.checkpoint.CheckpointMismatch`), and if
  every worker is dead for any other reason, :class:`FabricError`.
* per connection, a **pinger** (heartbeats + deadline checks + lease
  top-up + stall detection) and a **frame loop** (results, errors,
  idle notifications -- every frame refreshing the health machine).
* losses requeue through the same accounting as the process
  supervisor: ``campaign_shard_retries_total{reason,attempt}``
  counters, and a unit requeued past ``max_retries`` raises
  :class:`~repro.resilience.supervisor.ShardFailure`.

Determinism: results are keyed by unit index and every unit is a pure
function of its payload, so the merged result dict is independent of
worker count, schedules, steals, crashes and retries -- the caller's
``sorted(results)`` merge yields byte-identical reports.  The
coordinator is also the only writer of any checkpoint store, so worker
crashes can never tear it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.frames import FrameError, encode_frame, read_frame
from repro.fabric.health import WorkerHealth, WorkerState, state_census
from repro.fabric.jobs import get_job
from repro.fabric.scheduler import WorkStealingScheduler
from repro.fabric.worker import PROTOCOL_VERSION
from repro.resilience.clock import MONOTONIC, Clock
from repro.resilience.supervisor import ShardFailure

__all__ = [
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricMismatch",
    "parse_workers",
]


class FabricError(RuntimeError):
    """The fabric cannot finish the job (every worker is gone)."""


class FabricMismatch(FabricError):
    """Every worker was rejected at the handshake (fingerprint skew)."""


def parse_workers(spec: str) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` -> ``[(host, port), ...]``."""
    out: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"bad worker address {part!r}; expected host:port"
            )
        out.append((host or "127.0.0.1", int(port)))
    if not out:
        raise ValueError("no worker addresses given")
    return out


@dataclass(frozen=True)
class FabricConfig:
    """Scheduling and fault-handling knobs of one fabric run."""

    #: adaptive lease sizing: target seconds of work per lease.
    lease_target_s: float = 1.0
    min_lease: int = 1
    max_lease: int = 64
    #: pin every lease to this many units instead (benchmark baseline).
    fixed_lease: Optional[int] = None
    #: let idle workers steal the back half of the biggest outstanding
    #: run.  Off, the fabric degrades to classic static partitioning --
    #: the tail-latency benchmark's baseline.
    allow_steal: bool = True
    #: seconds between pings (also the health/top-up check cadence).
    heartbeat_interval: float = 0.25
    #: silence thresholds of the worker health ladder.
    degraded_after: float = 2.0
    dead_after: float = 6.0
    #: per-unit progress deadline: a connected worker holding leases
    #: that produces no result for this long is hung (its pongs keep
    #: the health machine happy, so this is a separate check); None
    #: disables it.
    unit_timeout: Optional[float] = None
    #: how many times one unit may be requeued before the run fails.
    max_retries: int = 2
    #: reconnect backoff (shared schedule with shard requeues).
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    #: failed connection rounds per worker before it is terminally
    #: dead; None retries forever (then only unit retries bound the run).
    max_rounds: Optional[int] = 8
    connect_timeout: float = 5.0


class _Session:
    """Live connection state for one bound worker."""

    __slots__ = ("writer", "lock", "last_progress", "leased_at")

    def __init__(self, writer: asyncio.StreamWriter, now: float) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.last_progress = now
        self.leased_at = now

    async def send(self, message: Dict[str, object]) -> None:
        async with self.lock:
            self.writer.write(encode_frame(message))
            await self.writer.drain()


class FabricCoordinator:
    """Run indexed work units of one job over socket workers."""

    def __init__(
        self,
        job: str,
        params: Dict[str, object],
        units: Sequence[Tuple[int, object]],
        workers: Sequence[Tuple[str, int]],
        config: Optional[FabricConfig] = None,
        metrics=None,
        on_result: Optional[Callable[[int, object], None]] = None,
        injections_per_unit: int = 1,
        clock: Clock = MONOTONIC,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker address")
        self.job = job
        self.params = dict(params)
        self.config = config or FabricConfig()
        self.addresses = list(workers)
        self._metrics = metrics
        self._on_result = on_result
        self._clock = clock
        self.scheduler = WorkStealingScheduler(
            units,
            injections_per_unit=injections_per_unit,
            lease_target_s=self.config.lease_target_s,
            min_lease=self.config.min_lease,
            max_lease=self.config.max_lease,
            fixed_lease=self.config.fixed_lease,
        )
        self.results: Dict[int, object] = {}
        self.health: Dict[str, WorkerHealth] = {}
        self._sessions: Dict[str, _Session] = {}
        self._attempts: Dict[int, int] = {}
        self._failure: Optional[BaseException] = None
        self._rejections: Dict[str, str] = {}
        self._done: Optional[asyncio.Event] = None  # created inside run()

    # -- shared accounting ----------------------------------------------
    def _count_retry(self, reason: str, attempt: int) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "campaign_shard_retries_total",
                reason=reason, attempt=attempt,
            ).inc()

    def _requeue_units(
        self, worker: str, indices: Sequence[int], reason: str, detail: str
    ) -> None:
        """Return lost units to the queue, with retry accounting."""
        sched = self.scheduler
        for index in indices:
            if index in sched.completed:
                continue
            attempt = self._attempts.get(index, 0) + 1
            self._attempts[index] = attempt
            if attempt > self.config.max_retries:
                self._fail(ShardFailure(index, attempt, detail))
                return
            self._count_retry(reason, attempt)
        sched.revoke_from(worker, indices)
        live = [i for i in indices if i not in sched.completed]
        sched.pending = sorted(set(sched.pending) | set(live))

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        if self._done is not None:
            self._done.set()

    # -- leasing --------------------------------------------------------
    async def _top_up(self, name: str) -> None:
        """Grant (or steal) work for an idle, healthy worker."""
        sched = self.scheduler
        session = self._sessions.get(name)
        health = self.health.get(name)
        if session is None or health is None:
            return
        if health.state != WorkerState.HEALTHY:
            return
        if sched.outstanding.get(name):
            return
        units = sched.grant(name)
        victim = None
        if not units and self.config.allow_steal:
            victim, units = sched.steal(name)
        if not units:
            return
        if victim is not None:
            victim_session = self._sessions.get(victim)
            if victim_session is not None:
                # Best-effort: the victim drops the stolen units from
                # its queue.  If the revoke is lost (or the unit was
                # already running) both sides compute it and the
                # first result wins -- identical by determinism.
                try:
                    await victim_session.send({
                        "type": "revoke",
                        "indices": [i for i, _ in units],
                    })
                except (ConnectionError, OSError):
                    pass
        now = self._clock()
        session.last_progress = now
        session.leased_at = now
        await session.send({"type": "lease", "units": [[i, p] for i, p in units]})
        if self._metrics is not None:
            self._metrics.counter(
                "fabric_leases_total", worker=name,
                kind="steal" if victim is not None else "grant",
            ).inc()

    # -- one worker address ---------------------------------------------
    async def _worker_loop(self, host: str, port: int) -> None:
        name = f"{host}:{port}"
        health = WorkerHealth(
            name,
            degraded_after=self.config.degraded_after,
            dead_after=self.config.dead_after,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            max_rounds=self.config.max_rounds,
            clock=self._clock,
            metrics=self._metrics,
        )
        self.health[name] = health
        while not (self.scheduler.done or self._failure or health.terminal):
            if health.state == WorkerState.DEAD:
                if not health.may_reconnect():
                    await asyncio.sleep(
                        min(0.05, self.config.heartbeat_interval)
                    )
                    continue
            health.on_reconnecting()
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.config.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError):
                health.on_disconnect()
                continue
            try:
                await self._serve_connection(name, health, reader, writer)
            except (FrameError, ConnectionError, OSError):
                pass
            finally:
                self._sessions.pop(name, None)
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if self.scheduler.done or self._failure:
                break
            if health.state != WorkerState.DEAD:
                health.on_disconnect()
            self._requeue_units(
                name, list(self.scheduler.outstanding.get(name, [])),
                "crash", f"lost connection to worker {name} mid-lease",
            )

    async def _serve_connection(
        self, name: str, health: WorkerHealth, reader, writer
    ) -> None:
        session = _Session(writer, self._clock())
        await session.send({"type": "hello", "version": PROTOCOL_VERSION})
        welcome = await asyncio.wait_for(
            read_frame(reader), self.config.connect_timeout
        )
        if welcome is None:
            return
        if welcome.get("type") == "reject":
            health.on_disconnect()  # busy etc: retry with backoff
            return
        if welcome.get("type") != "welcome":
            return
        fingerprint = get_job(self.job).fingerprint(self.params)
        await session.send({
            "type": "init", "job": self.job, "params": self.params,
            "fingerprint": fingerprint,
        })
        bound = await asyncio.wait_for(read_frame(reader), None)
        if bound is None:
            return
        if bound.get("type") == "reject":
            reason = str(bound.get("reason", "rejected"))
            self._rejections[name] = reason
            terminal = "mismatch" in reason or "cannot bind" in reason
            health.on_disconnect(terminal=terminal)
            return
        if bound.get("type") != "bound":
            return
        health.on_connected()
        self._sessions[name] = session
        await self._top_up(name)
        pinger = asyncio.ensure_future(self._ping_loop(name, health, session))
        try:
            await self._frame_loop(name, health, session, reader)
        finally:
            pinger.cancel()
            try:
                await pinger
            except asyncio.CancelledError:
                pass

    async def _ping_loop(self, name: str, health: WorkerHealth, session) -> None:
        """Heartbeats out, deadline checks, lease top-up, stall detection."""
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            try:
                await session.send({"type": "ping", "t": self._clock()})
            except (ConnectionError, OSError):
                return
            if health.check() == WorkerState.DEAD:
                # Heartbeat deadline blown (e.g. a SIGSTOPped worker):
                # abandon the connection; the worker loop requeues.
                session.writer.close()
                return
            timeout = self.config.unit_timeout
            if timeout is not None and self.scheduler.outstanding.get(name):
                stalled = self._clock() - session.last_progress
                if stalled > timeout:
                    self._requeue_units(
                        name,
                        list(self.scheduler.outstanding.get(name, [])),
                        "timeout",
                        f"worker {name} made no progress for "
                        f"{stalled:.1f}s (unit_timeout={timeout})",
                    )
                    session.writer.close()
                    return
            await self._top_up(name)
            if self._metrics is not None:
                state_census(self.health.values(), self._metrics)
            if self.scheduler.done or self._failure:
                try:
                    await session.send({"type": "bye"})
                except (ConnectionError, OSError):
                    pass
                session.writer.close()
                return

    async def _frame_loop(self, name: str, health: WorkerHealth, session, reader) -> None:
        sched = self.scheduler
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            health.on_frame()
            kind = frame.get("type")
            if kind == "result":
                index = int(frame["index"])
                seconds = frame.get("seconds")
                if isinstance(seconds, (int, float)):
                    sched.observe(float(seconds))
                session.last_progress = self._clock()
                if sched.complete(index):
                    self.results[index] = frame.get("payload")
                    if self._on_result is not None:
                        self._on_result(index, frame.get("payload"))
                if sched.done:
                    if self._done is not None:
                        self._done.set()
                    try:
                        await session.send({"type": "bye"})
                    except (ConnectionError, OSError):
                        pass
                    return
            elif kind == "error":
                index = int(frame["index"])
                session.last_progress = self._clock()
                self._requeue_units(
                    name, [index], "error", str(frame.get("detail", "")),
                )
                if self._failure is not None:
                    return
            elif kind == "idle":
                await self._top_up(name)
            # pong / revoked are heartbeat-only

    # -- the run --------------------------------------------------------
    async def _run(self) -> Dict[int, object]:
        self._done = asyncio.Event()
        if self.scheduler.done:
            return dict(self.results)
        loops = [
            asyncio.ensure_future(self._worker_loop(host, port))
            for host, port in self.addresses
        ]
        try:
            while not (self.scheduler.done or self._failure):
                crashed = any(
                    loop.done() and not loop.cancelled()
                    and loop.exception() is not None
                    for loop in loops
                )
                if crashed or all(loop.done() for loop in loops):
                    break  # a loop crashed, or every worker loop gave up
                try:
                    await asyncio.wait_for(self._done.wait(), 0.05)
                except asyncio.TimeoutError:
                    pass
                self._done.clear()
        finally:
            for loop in loops:
                loop.cancel()
            gathered = await asyncio.gather(*loops, return_exceptions=True)
        for outcome in gathered:
            # A worker loop died of something other than fabric traffic
            # (e.g. an exception out of the caller's on_result hook):
            # that is the caller's error, not a worker loss -- re-raise.
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, asyncio.CancelledError
            ):
                raise outcome
        if self._failure is not None:
            raise self._failure
        if not self.scheduler.done:
            if self._rejections and len(self._rejections) == len(self.addresses):
                detail = "; ".join(
                    f"{name}: {reason}"
                    for name, reason in sorted(self._rejections.items())
                )
                raise FabricMismatch(
                    f"every worker rejected the handshake -- {detail}"
                )
            raise FabricError(
                f"fabric lost every worker with "
                f"{len(self.scheduler.payloads) - len(self.scheduler.completed)} "
                "unit(s) incomplete; check worker logs and addresses"
            )
        return dict(self.results)

    def run(self) -> Dict[int, object]:
        """Drive the job to completion; returns ``{index: result}``.

        Raises :class:`ShardFailure` when one unit exhausts its
        retries, :class:`FabricMismatch` when every worker is rejected
        at the handshake, :class:`FabricError` when every worker is
        terminally lost with work remaining.
        """
        return asyncio.run(self._run())

    def stats(self) -> Dict[str, object]:
        """Scheduler + health snapshot (benchmarks, the CLI summary)."""
        stats = self.scheduler.stats()
        stats["workers"] = {
            name: health.state.name for name, health in self.health.items()
        }
        stats["retried_units"] = len(self._attempts)
        return stats
