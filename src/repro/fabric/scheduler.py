"""Work-stealing scheduler with adaptive, determinism-preserving chunks.

The scheduler hands out *leases* -- runs of work units (chunk index +
payload), ordered by index -- to workers, and rebalances them without
ever being able to change the merged report:

* **results are keyed by unit index.**  A unit's result is a pure
  function of its payload, so *which* worker runs it, in *what* order,
  after *how many* retries is invisible to the merge (``sorted`` by
  index).  Scheduling is free to be greedy and adaptive.
* **adaptive lease sizing.**  Per-injection wall time is tracked as an
  EWMA (workers report each unit's compute seconds); a lease targets
  ``lease_target_s`` seconds of work, so chunks are large mid-campaign
  (amortising round trips) and naturally small near the tail (cutting
  last-chunk latency and the cost of losing a worker late).  A
  ``fixed_lease`` pins the size instead -- the benchmark's baseline.
* **deterministic stealing.**  When the queue drains and a worker
  idles, the victim is the worker with the most outstanding units
  (ties: lexicographically smallest name), and the steal takes the
  *back half* of the victim's outstanding run, split by unit index --
  ``remainder[ceil(n/2):]``.  The victim was handed its units in index
  order and works front-to-back, so the back half is the work it is
  least likely to have started.

The scheduler is synchronous and transport-free; the coordinator owns
sockets and time, and feeds completions/observations in.  Lease
history (size, seconds) is kept for the tail-latency benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.clock import MONOTONIC, Clock

__all__ = ["WorkStealingScheduler"]


class _Lease:
    """One granted run of units, timed for the tail-latency stats."""

    __slots__ = ("worker", "size", "granted_at", "finished_at")

    def __init__(self, worker: str, size: int, granted_at: float) -> None:
        self.worker = worker
        self.size = size
        self.granted_at = granted_at
        self.finished_at: Optional[float] = None


class WorkStealingScheduler:
    """Deterministic lease bookkeeping over indexed work units."""

    def __init__(
        self,
        units: Sequence[Tuple[int, object]],
        injections_per_unit: int = 1,
        lease_target_s: float = 1.0,
        ewma_alpha: float = 0.3,
        min_lease: int = 1,
        max_lease: int = 64,
        fixed_lease: Optional[int] = None,
        clock: Clock = MONOTONIC,
    ) -> None:
        if injections_per_unit < 1:
            raise ValueError("injections_per_unit must be >= 1")
        if fixed_lease is not None and fixed_lease < 1:
            raise ValueError("fixed_lease must be >= 1")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.payloads: Dict[int, object] = {i: p for i, p in units}
        if len(self.payloads) != len(units):
            raise ValueError("unit indices must be unique")
        #: not-yet-leased unit indices, always sorted ascending.
        self.pending: List[int] = sorted(self.payloads)
        #: per-worker outstanding unit indices, each list sorted.
        self.outstanding: Dict[str, List[int]] = {}
        self.completed: set = set()
        self.injections_per_unit = injections_per_unit
        self.lease_target_s = lease_target_s
        self.ewma_alpha = ewma_alpha
        self.min_lease = min_lease
        self.max_lease = max_lease
        self.fixed_lease = fixed_lease
        #: EWMA of observed seconds per injection (None until first obs).
        self.ewma_per_injection: Optional[float] = None
        #: (worker, size) per granted lease, in grant order.
        self.lease_log: List[Tuple[str, int]] = []
        self.steals = 0
        #: wall-clock lease records (stats only: the clock never
        #: influences a scheduling decision, so determinism holds).
        self._clock = clock
        self._leases: List[_Lease] = []
        self._lease_of: Dict[int, _Lease] = {}

    # -- observations ---------------------------------------------------
    def observe(self, seconds: float, injections: Optional[int] = None) -> None:
        """Fold one unit's measured compute time into the EWMA."""
        injections = injections or self.injections_per_unit
        if injections < 1 or seconds < 0:
            return
        per_injection = seconds / injections
        if self.ewma_per_injection is None:
            self.ewma_per_injection = per_injection
        else:
            a = self.ewma_alpha
            self.ewma_per_injection = (
                a * per_injection + (1 - a) * self.ewma_per_injection
            )

    def lease_size(self) -> int:
        """How many units the next lease should carry."""
        if self.fixed_lease is not None:
            return self.fixed_lease
        if not self.ewma_per_injection:
            return self.min_lease  # calibrate on a small first lease
        per_unit = self.ewma_per_injection * self.injections_per_unit
        if per_unit <= 0:
            return self.max_lease
        want = round(self.lease_target_s / per_unit)
        return max(self.min_lease, min(self.max_lease, want))

    # -- leasing --------------------------------------------------------
    def grant(self, worker: str) -> List[Tuple[int, object]]:
        """Lease the next run of pending units to ``worker``.

        Empty when nothing is pending -- the caller may then try
        :meth:`steal`.
        """
        size = self.lease_size()
        taken, self.pending = self.pending[:size], self.pending[size:]
        if taken:
            self.outstanding.setdefault(worker, []).extend(taken)
            self.lease_log.append((worker, len(taken)))
            self._time_lease(worker, taken)
        return [(i, self.payloads[i]) for i in taken]

    def _time_lease(self, worker: str, indices: Sequence[int]) -> None:
        lease = _Lease(worker, len(indices), self._clock())
        self._leases.append(lease)
        for index in indices:
            self._lease_of[index] = lease

    def steal(self, thief: str) -> Tuple[Optional[str], List[Tuple[int, object]]]:
        """Move the back half of the biggest victim's units to ``thief``.

        Returns ``(victim, stolen_units)``; ``(None, [])`` when no
        worker has at least two outstanding units (stealing a lone unit
        that is most likely already running would only duplicate work).
        """
        victim = None
        most = 1
        for name in sorted(self.outstanding):
            if name == thief:
                continue
            count = len(self.outstanding[name])
            if count > most:
                victim, most = name, count
        if victim is None:
            return None, []
        remainder = self.outstanding[victim]
        keep = (len(remainder) + 1) // 2  # victim keeps the front half
        stolen = remainder[keep:]
        self.outstanding[victim] = remainder[:keep]
        self.outstanding.setdefault(thief, []).extend(stolen)
        self.outstanding[thief].sort()
        self.lease_log.append((thief, len(stolen)))
        self._time_lease(thief, stolen)
        self.steals += 1
        return victim, [(i, self.payloads[i]) for i in stolen]

    # -- completions and losses -----------------------------------------
    def complete(self, index: int) -> bool:
        """Record one unit's result; True the first time, False on a dup.

        Duplicates are normal under stealing and requeues (two workers
        may legitimately both compute a unit); results are identical by
        determinism, so the first one wins and the rest are dropped.
        """
        if index in self.completed:
            return False
        self.completed.add(index)
        for units in self.outstanding.values():
            if index in units:
                units.remove(index)
        lease = self._lease_of.get(index)
        if lease is not None:
            lease.finished_at = self._clock()
        return True

    def requeue_worker(self, worker: str) -> List[int]:
        """Return a lost worker's outstanding units to the queue."""
        units = self.outstanding.pop(worker, [])
        units = [i for i in units if i not in self.completed]
        self.pending = sorted(set(self.pending) | set(units))
        return units

    def revoke_from(self, worker: str, indices: Sequence[int]) -> None:
        """Forget ``indices`` from ``worker``'s outstanding set."""
        units = self.outstanding.get(worker)
        if not units:
            return
        drop = set(indices)
        self.outstanding[worker] = [i for i in units if i not in drop]

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.payloads)

    def tail_latency(self) -> float:
        """Duration of the lease that finished last.

        The metric adaptive sizing exists to shrink: a big fixed chunk
        granted near the end keeps one worker busy while the rest
        idle, so its grant-to-last-result time bounds the campaign's
        drain.  0.0 until a lease has completed.
        """
        finished = [l for l in self._leases if l.finished_at is not None]
        if not finished:
            return 0.0
        last = max(finished, key=lambda l: l.finished_at)
        return last.finished_at - last.granted_at

    def stats(self) -> Dict[str, object]:
        sizes = [size for _, size in self.lease_log]
        return {
            "units": len(self.payloads),
            "leases": len(self.lease_log),
            "steals": self.steals,
            "min_lease": min(sizes) if sizes else 0,
            "max_lease": max(sizes) if sizes else 0,
            "last_lease": sizes[-1] if sizes else 0,
            "tail_latency_s": self.tail_latency(),
            "ewma_per_injection": self.ewma_per_injection,
        }
