"""repro.fabric: the fault-tolerant distributed campaign fabric.

Socket workers (``repro worker --listen HOST:PORT``) serve registered
job kinds -- fault-injection campaign chunks, Kripke verification
builds -- to a coordinator that leases work adaptively, steals from
stragglers, tracks every worker through a CONNECTING/HEALTHY/DEGRADED/
DEAD health machine, and merges results keyed by unit index so the
report bytes never depend on scheduling, crashes or retries.
"""

from repro.fabric.coordinator import (
    FabricConfig,
    FabricCoordinator,
    FabricError,
    FabricMismatch,
    parse_workers,
)
from repro.fabric.frames import FrameError, MAX_FRAME, encode_frame, read_frame
from repro.fabric.health import WorkerHealth, WorkerState, state_census
from repro.fabric.jobs import JobKind, get_job, register_job
from repro.fabric.scheduler import WorkStealingScheduler
from repro.fabric.worker import PROTOCOL_VERSION, WorkerServer, serve

__all__ = [
    "FabricConfig",
    "FabricCoordinator",
    "FabricError",
    "FabricMismatch",
    "FrameError",
    "JobKind",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "WorkStealingScheduler",
    "WorkerHealth",
    "WorkerServer",
    "WorkerState",
    "encode_frame",
    "get_job",
    "parse_workers",
    "read_frame",
    "register_job",
    "serve",
    "state_census",
]
