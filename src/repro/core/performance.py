"""Timed simulation of dual marked graphs for throughput estimation.

The paper's reference [8] (Julvez, Cortadella, Kishinevsky, ICCAD'06)
analyses the performance of systems with early evaluation on abstract
models; this module provides the equivalent facility for our DMGs: a
discrete-time, synchronous simulator where

* each node has an integer latency (possibly sampled per firing, which
  models the paper's variable-latency units),
* early-enabling nodes carry a *guard*: a function that samples, per
  firing, the subset of input arcs actually required (e.g. a multiplexer
  select with given probabilities),
* firing applies the DMG rule, so non-required inputs without a token go
  negative (anti-tokens) and N-enabled nodes drain them backwards.

Throughput is measured as firings per cycle of a reference node, which
by the repetitive-behaviour property is the same for every node over a
long run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.dmg import DualMarkedGraph
from repro.core.mg import Marking

# A guard samples the set of *required* input arc names for one firing.
Guard = Callable[[random.Random], Set[str]]
# A latency sampler returns the latency (in cycles) of one firing.
LatencySampler = Callable[[random.Random], int]


@dataclass
class ThroughputEstimate:
    """Result of a timed simulation run."""

    cycles: int
    firings: Dict[str, int]
    positive_firings: Dict[str, int]
    negative_firings: Dict[str, int]
    early_firings: Dict[str, int]
    aborted: Dict[str, int] = field(default_factory=dict)

    def throughput(self, node: Optional[str] = None) -> float:
        """Firings per cycle of ``node`` (or the max over nodes)."""
        if self.cycles == 0:
            return 0.0
        if node is not None:
            return self.firings.get(node, 0) / self.cycles
        return max(self.firings.values(), default=0) / self.cycles


def fixed_latency(value: int) -> LatencySampler:
    """A latency sampler that always returns ``value``."""
    if value < 1:
        raise ValueError("latencies must be >= 1 cycle")
    return lambda rng: value


def distribution_latency(choices: Mapping[int, float]) -> LatencySampler:
    """A latency sampler drawing from ``{latency: probability}``.

    Example: the paper's M1 unit uses ``{2: 0.8, 10: 0.2}``.
    """
    values = list(choices.keys())
    weights = list(choices.values())
    if any(v < 1 for v in values):
        raise ValueError("latencies must be >= 1 cycle")
    total = sum(weights)
    if total <= 0:
        raise ValueError("probabilities must sum to a positive value")
    return lambda rng: rng.choices(values, weights=weights, k=1)[0]


def select_guard(alternatives: Mapping[str, float]) -> Guard:
    """A guard choosing exactly one required input arc by probability.

    Models a multiplexer: each firing requires the select operand plus
    one data operand.  ``alternatives`` maps input-arc names to their
    selection probability; arcs not listed are never required.
    """
    arcs = list(alternatives.keys())
    weights = list(alternatives.values())
    return lambda rng: {rng.choices(arcs, weights=weights, k=1)[0]}


class TimedDMGSimulator:
    """Discrete-time synchronous simulator for a dual marked graph.

    Per cycle, in two phases:

    1. *Completion*: busy nodes whose latency elapsed deposit their
       results (apply the firing's output-side update).
    2. *Initiation*: every idle node checks enabling.  Early nodes
       sample their guard; if all required inputs hold tokens the node
       initiates an early (or positive) firing, consuming one token from
       every input arc -- arcs that held none go negative, generating
       anti-tokens.  N-enabled idle nodes propagate anti-tokens
       backwards instantaneously (anti-token moves are control-only and
       modelled as zero-latency).

    Nodes are single-server: at most one firing in flight per node.

    Nodes named in ``combinational`` are zero-latency forwarders (pure
    elastic control logic such as fork/join blocks): after the
    synchronous phase they fire against the live marking to a fixpoint,
    so a token deposited this cycle can traverse an entire combinational
    cascade within the same cycle.  Each such node still fires at most
    once per cycle and samples its guard once per cycle.
    """

    def __init__(
        self,
        graph: DualMarkedGraph,
        latencies: Optional[Mapping[str, LatencySampler]] = None,
        guards: Optional[Mapping[str, Guard]] = None,
        seed: int = 0,
        combinational: Optional[Set[str]] = None,
        eager_arcs: Optional[Set[str]] = None,
    ) -> None:
        self.graph = graph
        self._latencies: Dict[str, LatencySampler] = dict(latencies or {})
        self._guards: Dict[str, Guard] = dict(guards or {})
        for node in self._guards:
            if not graph.is_early(node):
                raise ValueError(f"guarded node {node!r} is not early-enabling")
        self._comb: Set[str] = set(combinational or ())
        unknown = self._comb - set(graph.nodes)
        if unknown:
            raise ValueError(f"combinational names unknown nodes {sorted(unknown)}")
        clash = self._comb & set(self._latencies)
        if clash:
            raise ValueError(
                f"combinational nodes cannot carry a latency sampler: {sorted(clash)}"
            )
        arc_names = {a.name for a in graph.arcs}
        self._eager: Set[str] = set(eager_arcs or ())
        unknown = self._eager - arc_names
        if unknown:
            raise ValueError(f"eager_arcs names unknown arcs {sorted(unknown)}")
        self.rng = random.Random(seed)
        self.reset()

    def reset(self) -> None:
        """Restore the initial marking and clear all statistics."""
        self.marking: Marking = self.graph.initial_marking
        self.cycle = 0
        # remaining-latency counter per busy node
        self._busy: Dict[str, int] = {}
        self.firings: Dict[str, int] = {n: 0 for n in self.graph.nodes}
        self.positive_firings: Dict[str, int] = {n: 0 for n in self.graph.nodes}
        self.negative_firings: Dict[str, int] = {n: 0 for n in self.graph.nodes}
        self.early_firings: Dict[str, int] = {n: 0 for n in self.graph.nodes}
        self.aborted: Dict[str, int] = {n: 0 for n in self.graph.nodes}

    # ------------------------------------------------------------------
    def _latency_of(self, node: str) -> int:
        sampler = self._latencies.get(node)
        return sampler(self.rng) if sampler is not None else 1

    def _required_inputs(self, node: str) -> Set[str]:
        """Inputs a firing of ``node`` must wait for this time."""
        pre = set(self.graph.preset(node))
        guard = self._guards.get(node)
        if guard is None or not self.graph.is_early(node):
            return pre
        required = set(guard(self.rng))
        unknown = required - pre
        if unknown:
            raise ValueError(f"guard of {node!r} required non-input arcs {unknown}")
        return required

    def _forward_outputs(self, post: Set[str]) -> Set[str]:
        """Output arcs that take part in negative enabling.

        Eager (capacity-return) arcs are excluded: a backward arc going
        low means the consumer is merely behind, not that an anti-token
        wants to cross this node.
        """
        return post - self._eager

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        # Phase 1: completions deposit outputs (eager arcs were already
        # deposited at initiation).
        finished = [n for n, left in self._busy.items() if left <= 1]
        for node in self._busy:
            self._busy[node] -= 1
        for node in finished:
            del self._busy[node]
            out = set(self.graph.postset(node)) - set(self.graph.preset(node))
            for a in out - self._eager:
                self.marking[a] += 1

        # Phase 2a: sequential initiations, evaluated against a snapshot
        # so that all registered nodes see the same marking (synchronous
        # semantics).
        snapshot = dict(self.marking)
        for node in self.graph.nodes:
            if node in self._comb:
                continue
            pre = set(self.graph.preset(node))
            post = set(self.graph.postset(node))
            fwd = self._forward_outputs(post)
            if node in self._busy:
                # Abort: an anti-token reached every forward output of a
                # busy node, annihilating the computation in flight.  The
                # firing "completes" instantly -- its deposit lands on the
                # negative arcs -- which is where early evaluation saves
                # the remaining latency.
                if fwd and all(snapshot[a] < 0 for a in fwd):
                    del self._busy[node]
                    for a in (post - pre) - self._eager:
                        self.marking[a] += 1
                    self.aborted[node] += 1
                continue
            required = self._required_inputs(node)
            if required and all(snapshot[a] > 0 for a in required):
                early = any(snapshot[a] <= 0 for a in pre)
                self._initiate(node, pre, post)
                self.firings[node] += 1
                if early:
                    self.early_firings[node] += 1
                else:
                    self.positive_firings[node] += 1
            elif fwd and all(snapshot[a] < 0 for a in fwd):
                # Negative firing: instantaneous anti-token counterflow.
                for a in post - pre:
                    self.marking[a] += 1
                for a in pre - post:
                    self.marking[a] -= 1
                self.firings[node] += 1
                self.negative_firings[node] += 1

        # Phase 2b: combinational cascade.  Zero-latency nodes forward
        # tokens within the cycle, so they fire against the *live*
        # marking (seeing same-cycle deposits from phase 2a and from
        # earlier cascade firings) to a fixpoint -- at most one firing
        # per node per cycle, guards sampled once per node per cycle.
        if self._comb:
            order = sorted(self._comb)
            fired: Set[str] = set()
            required_by: Dict[str, Set[str]] = {}
            changed = True
            while changed:
                changed = False
                for node in order:
                    if node in fired:
                        continue
                    pre = set(self.graph.preset(node))
                    post = set(self.graph.postset(node))
                    if node not in required_by:
                        required_by[node] = self._required_inputs(node)
                    required = required_by[node]
                    if required and all(self.marking[a] > 0 for a in required):
                        early = any(self.marking[a] <= 0 for a in pre)
                        for a in pre - post:
                            self.marking[a] -= 1
                        for a in post - pre:
                            self.marking[a] += 1
                        self.firings[node] += 1
                        if early:
                            self.early_firings[node] += 1
                        else:
                            self.positive_firings[node] += 1
                        fired.add(node)
                        changed = True
                    else:
                        fwd = self._forward_outputs(post)
                        if fwd and all(self.marking[a] < 0 for a in fwd):
                            for a in post - pre:
                                self.marking[a] += 1
                            for a in pre - post:
                                self.marking[a] -= 1
                            self.firings[node] += 1
                            self.negative_firings[node] += 1
                            fired.add(node)
                            changed = True
        self.cycle += 1

    def _initiate(self, node: str, pre: Set[str], post: Set[str]) -> None:
        """Consume inputs now; outputs appear after the node's latency.

        Eager output arcs (capacity returns) are deposited at initiation:
        an elastic buffer's slot frees when the consumer *initiates*, not
        when it finishes.
        """
        for a in pre - post:
            self.marking[a] -= 1
        out = post - pre
        for a in out & self._eager:
            self.marking[a] += 1
        latency = self._latency_of(node)
        if latency == 1:
            for a in out - self._eager:
                self.marking[a] += 1
        else:
            self._busy[node] = latency

    def run(self, cycles: int) -> ThroughputEstimate:
        """Run ``cycles`` steps and return the accumulated statistics."""
        for _ in range(cycles):
            self.step()
        return ThroughputEstimate(
            cycles=self.cycle,
            firings=dict(self.firings),
            positive_firings=dict(self.positive_firings),
            negative_firings=dict(self.negative_firings),
            early_firings=dict(self.early_firings),
            aborted=dict(self.aborted),
        )
