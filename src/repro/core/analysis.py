"""Structural and behavioural analysis of (dual) marked graphs.

Implements the properties reviewed in Sect. 2 and 2.2 of the paper:

* **Token preservation** -- for every cycle ``phi`` and reachable
  marking ``M``, ``M(phi) == M0(phi)``; holds for MGs and DMGs alike
  because the firing rule is the same.
* **Liveness** -- an SCMG is live iff every cycle is positively marked.
* **Repetitive behaviour** -- a firing sequence in which every node
  fires the same number of times returns to the starting marking,
  regardless of the enabling rules used.
* **Throughput bound** -- for unit-latency nodes, the sustainable
  firing rate of a live SCMG is bounded by the minimum cycle ratio
  ``min_phi M0(phi) / |phi|``.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.dmg import DualMarkedGraph, FiringEvent
from repro.core.mg import MarkedGraph, Marking


def cycle_token_sums(
    graph: MarkedGraph, marking: Optional[Mapping[str, int]] = None
) -> Dict[Tuple[str, ...], int]:
    """Token sum of every simple cycle at ``marking`` (default M0).

    Returns a mapping from the cycle (as a tuple of arc names) to its
    token sum.  By token preservation, this mapping is invariant across
    all reachable markings.
    """
    m = marking if marking is not None else graph.initial_marking
    return {tuple(c): graph.marking_of(m, c) for c in graph.simple_cycles()}


def verify_token_preservation(
    graph: MarkedGraph,
    markings: Iterable[Mapping[str, int]],
) -> bool:
    """Check that every marking in ``markings`` preserves all cycle sums.

    Raises ``AssertionError`` naming the first violated cycle; returns
    ``True`` when every marking passes.
    """
    reference = cycle_token_sums(graph)
    for m in markings:
        for cycle, expected in reference.items():
            actual = graph.marking_of(m, cycle)
            if actual != expected:
                raise AssertionError(
                    f"cycle {cycle} sums to {actual}, expected {expected}"
                )
    return True


def is_live(graph: MarkedGraph) -> bool:
    """Liveness of a strongly connected (dual) marked graph.

    An SCMG is live iff every simple cycle carries at least one token at
    M0.  The same criterion applies to SCDMGs: the token-preservation
    property guarantees no cycle can ever be drained, hence no deadlock
    can be produced even in the presence of negative tokens.
    """
    if not graph.is_strongly_connected():
        raise ValueError("liveness criterion requires a strongly connected graph")
    m0 = graph.initial_marking
    return all(graph.marking_of(m0, c) > 0 for c in graph.simple_cycles())


def max_throughput(
    graph: MarkedGraph, latency: Optional[Mapping[str, int]] = None
) -> Fraction:
    """Minimum cycle ratio: the throughput bound of a live SCMG.

    For node latencies ``d(n)`` (default 1), the sustainable firing rate
    is ``min over cycles phi of M0(phi) / D(phi)`` where ``D(phi)`` sums
    the latencies of the nodes on the cycle.  This is the classical
    marked-graph performance bound; early evaluation can beat it, which
    is exactly what Table 1 of the paper demonstrates.

    Returns:
        The bound as an exact :class:`fractions.Fraction`.
    """
    lat = dict(latency) if latency is not None else {}
    m0 = graph.initial_marking
    best: Optional[Fraction] = None
    for cycle in graph.simple_cycles():
        nodes = {graph.arc(a).src for a in cycle}
        d = sum(lat.get(n, 1) for n in nodes)
        if d == 0:
            continue
        ratio = Fraction(graph.marking_of(m0, cycle), d)
        if best is None or ratio < best:
            best = ratio
    if best is None:
        raise ValueError("graph has no cycles; throughput bound undefined")
    return best


def max_throughput_arcs(
    graph: MarkedGraph, arc_delay: Mapping[str, int]
) -> Fraction:
    """Minimum cycle ratio with *per-arc* delays.

    ``min over cycles phi of M0(phi) / D(phi)`` where ``D(phi)`` sums
    the delays of the arcs on the cycle.  Arc delays model systems
    where forward data arcs carry the producer's latency while
    backward capacity arcs return instantly (an elastic buffer's slot
    frees when the consumer *initiates*, not when it finishes) --
    the appropriate model for bounds on elastic control networks.
    """
    m0 = graph.initial_marking
    best: Optional[Fraction] = None
    for cycle in graph.simple_cycles():
        d = sum(arc_delay.get(a, 0) for a in cycle)
        if d == 0:
            continue
        ratio = Fraction(graph.marking_of(m0, cycle), d)
        if best is None or ratio < best:
            best = ratio
    if best is None:
        raise ValueError("no cycle with positive delay; bound undefined")
    return best


def _canonical_rotation(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    """Lexicographically smallest rotation of a cyclic arc sequence."""
    if not cycle:
        return cycle
    rotations = [cycle[i:] + cycle[:i] for i in range(len(cycle))]
    return min(rotations)


def critical_cycle_arcs(
    graph: MarkedGraph, arc_delay: Mapping[str, int]
) -> Tuple[Fraction, Tuple[str, ...]]:
    """The throughput-bounding cycle under per-arc delays.

    Argmin companion to :func:`max_throughput_arcs`: returns both the
    minimum cycle ratio and the cycle achieving it, as a tuple of arc
    names in canonical (lexicographically smallest) rotation.  Ties are
    broken deterministically by (ratio, cycle length, canonical arcs),
    so repeated runs name the same cycle.
    """
    m0 = graph.initial_marking
    best: Optional[Tuple[Fraction, int, Tuple[str, ...]]] = None
    for cycle in graph.simple_cycles():
        d = sum(arc_delay.get(a, 0) for a in cycle)
        if d == 0:
            continue
        ratio = Fraction(graph.marking_of(m0, cycle), d)
        key = (ratio, len(cycle), _canonical_rotation(tuple(cycle)))
        if best is None or key < best:
            best = key
    if best is None:
        raise ValueError("no cycle with positive delay; bound undefined")
    return best[0], best[2]


def reachable_markings(
    graph: MarkedGraph,
    limit: int = 100_000,
    marking: Optional[Mapping[str, int]] = None,
) -> List[Marking]:
    """Breadth-first enumeration of reachable markings.

    For a DMG, successors follow all three enabling rules; for a plain
    MG only the positive rule.  Enumeration stops (with ``RuntimeError``)
    if more than ``limit`` markings are found -- DMG state spaces are
    infinite in general because N-firings can pump anti-tokens around a
    cycle, so callers should bound either the graph or the limit.
    """
    start: Marking = dict(marking) if marking is not None else graph.initial_marking
    key0 = _marking_key(start)
    seen: Set[Tuple[int, ...]] = {key0}
    order: List[Marking] = [start]
    queue: deque[Marking] = deque([start])
    arc_names = [a.name for a in graph.arcs]
    while queue:
        m = queue.popleft()
        for node in graph.nodes:
            if not graph.enabled(node, m):
                continue
            nxt = graph.apply_firing(node, m)
            key = tuple(nxt[a] for a in arc_names)
            if key in seen:
                continue
            if len(seen) >= limit:
                raise RuntimeError(f"more than {limit} reachable markings")
            seen.add(key)
            order.append(nxt)
            queue.append(nxt)
    return order


def _marking_key(marking: Mapping[str, int]) -> Tuple[int, ...]:
    return tuple(v for _, v in sorted(marking.items()))


def verify_repetitive_behavior(
    graph: DualMarkedGraph,
    steps: int = 200,
    trials: int = 20,
    seed: int = 0,
) -> bool:
    """Empirically verify the repetitive-behaviour property (Sect. 2.2).

    Runs random firing sequences and checks that whenever a prefix fires
    every node the same number of times, the marking equals M0 --
    regardless of whether firings were positive, negative or early.

    Returns ``True``; raises ``AssertionError`` on violation.
    """
    rng = random.Random(seed)
    node_count = len(graph.nodes)
    for _ in range(trials):
        m = graph.initial_marking
        counts: Counter[str] = Counter()
        for _ in range(steps):
            events = graph.enabled_events(m)
            if not events:
                raise AssertionError("live SCDMG deadlocked during random firing")
            ev = rng.choice(events)
            m = graph.apply_firing(ev.node, m)
            counts[ev.node] += 1
            distinct = set(counts.values())
            if len(counts) == node_count and len(distinct) == 1:
                if m != graph.initial_marking:
                    raise AssertionError(
                        "equal firing counts did not restore the initial marking"
                    )
    return True


def firing_count_vector(trace: Sequence[FiringEvent]) -> Counter:
    """Parikh vector of a trace: how many times each node fired."""
    return Counter(ev.node for ev in trace)
