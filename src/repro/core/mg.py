"""Marked graphs (MGs).

A marked graph is a triple ``G = (N, A, M0)`` where ``N`` is a set of
nodes, ``A`` a set of arcs and ``M0 : A -> N`` an initial marking.  A
node is *enabled* when every incoming arc carries at least one token;
firing an enabled node removes one token from each incoming arc and adds
one token to each outgoing arc.  Marked graphs are the classical model
for choice-free concurrent systems and, in this paper, for conventional
(lazy) synchronous elastic systems: nodes are functional units, tokens
are data items.

The class below is deliberately explicit rather than clever: arcs are
named, markings are plain ``dict`` objects mapping arc names to integers
and the firing rule is a direct transcription of equation (1) in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

Marking = Dict[str, int]


@dataclass(frozen=True)
class Arc:
    """A directed arc of a marked graph.

    Attributes:
        name: unique arc identifier (used as the key in markings).
        src: name of the source node.
        dst: name of the destination node.
    """

    name: str
    src: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}[{self.name}]"


class MarkedGraph:
    """A marked graph with named nodes and arcs.

    Nodes and arcs are added incrementally; the initial marking is kept
    on the graph, while :meth:`fire` and :meth:`enabled` operate on
    caller-supplied markings so that analyses can explore many markings
    without mutating the graph.

    Example:
        >>> g = MarkedGraph()
        >>> g.add_node("a"); g.add_node("b")
        >>> _ = g.add_arc("a", "b", tokens=1)
        >>> _ = g.add_arc("b", "a", tokens=0)
        >>> g.enabled("b", g.initial_marking)
        True
    """

    def __init__(self) -> None:
        self._nodes: List[str] = []
        self._node_set: set[str] = set()
        self._arcs: Dict[str, Arc] = {}
        self._preset: Dict[str, List[str]] = {}
        self._postset: Dict[str, List[str]] = {}
        self._initial: Marking = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> str:
        """Add a node.  Adding an existing node is a no-op."""
        if name not in self._node_set:
            self._nodes.append(name)
            self._node_set.add(name)
            self._preset[name] = []
            self._postset[name] = []
        return name

    def add_arc(
        self,
        src: str,
        dst: str,
        tokens: int = 0,
        name: Optional[str] = None,
    ) -> Arc:
        """Add an arc from ``src`` to ``dst`` with ``tokens`` initial tokens.

        Both endpoints are created if they do not exist yet.  The arc name
        defaults to ``"src->dst"`` (with a numeric suffix on collision).
        """
        self.add_node(src)
        self.add_node(dst)
        if name is None:
            base = f"{src}->{dst}"
            name = base
            suffix = 1
            while name in self._arcs:
                suffix += 1
                name = f"{base}#{suffix}"
        if name in self._arcs:
            raise ValueError(f"duplicate arc name: {name!r}")
        arc = Arc(name, src, dst)
        self._arcs[name] = arc
        self._postset[src].append(name)
        self._preset[dst].append(name)
        self._initial[name] = tokens
        return arc

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[str]:
        """All node names, in insertion order."""
        return tuple(self._nodes)

    @property
    def arcs(self) -> Sequence[Arc]:
        """All arcs, in insertion order."""
        return tuple(self._arcs.values())

    @property
    def initial_marking(self) -> Marking:
        """A copy of the initial marking."""
        return dict(self._initial)

    def arc(self, name: str) -> Arc:
        """Look up an arc by name."""
        return self._arcs[name]

    def preset(self, node: str) -> Sequence[str]:
        """Names of the incoming arcs of ``node`` (the paper's ``•n``)."""
        return tuple(self._preset[node])

    def postset(self, node: str) -> Sequence[str]:
        """Names of the outgoing arcs of ``node`` (the paper's ``n•``)."""
        return tuple(self._postset[node])

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the structure as a :class:`networkx.MultiDiGraph`.

        Arc names are stored as edge keys so that cycles found on the
        networkx graph can be mapped back to arcs.
        """
        g = nx.MultiDiGraph()
        g.add_nodes_from(self._nodes)
        for arc in self._arcs.values():
            g.add_edge(arc.src, arc.dst, key=arc.name)
        return g

    def is_strongly_connected(self) -> bool:
        """True if the underlying digraph is strongly connected.

        The paper models elastic systems with strongly connected MGs
        (SCMG); open systems close the environment with a feedback node.
        """
        if not self._nodes:
            return True
        return nx.is_strongly_connected(nx.DiGraph(self.to_networkx()))

    def simple_cycles(self) -> List[List[str]]:
        """All simple cycles, each returned as a list of *arc names*.

        Cycles are the carriers of the token-preservation invariant: for
        every cycle ``phi`` and reachable marking ``M``,
        ``M(phi) == M0(phi)``.
        """
        g = self.to_networkx()
        cycles: List[List[str]] = []
        for node_cycle in nx.simple_cycles(nx.DiGraph(g)):
            # Expand a node cycle into every combination of parallel arcs.
            expanded = self._expand_node_cycle(node_cycle)
            cycles.extend(expanded)
        return cycles

    def _expand_node_cycle(self, node_cycle: List[str]) -> List[List[str]]:
        """Expand a cycle over nodes into cycles over arcs.

        Parallel arcs between consecutive nodes yield one cycle per
        combination; this is exponential in the number of parallel arc
        groups, which is tiny for controller graphs.
        """
        hops: List[List[str]] = []
        n = len(node_cycle)
        for i in range(n):
            src = node_cycle[i]
            dst = node_cycle[(i + 1) % n]
            parallel = [a for a in self._postset[src] if self._arcs[a].dst == dst]
            if not parallel:
                return []
            hops.append(parallel)
        results: List[List[str]] = [[]]
        for group in hops:
            results = [prefix + [a] for prefix in results for a in group]
        return results

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def marking_of(self, marking: Mapping[str, int], arcs: Iterable[str]) -> int:
        """Total number of tokens over ``arcs`` -- the paper's ``M(phi)``."""
        return sum(marking[a] for a in arcs)

    def enabled(self, node: str, marking: Mapping[str, int]) -> bool:
        """Conventional (positive) enabling: every input arc has a token."""
        return all(marking[a] > 0 for a in self._preset[node])

    def enabled_nodes(self, marking: Mapping[str, int]) -> List[str]:
        """All nodes enabled at ``marking``."""
        return [n for n in self._nodes if self.enabled(n, marking)]

    def fire(self, node: str, marking: Mapping[str, int]) -> Marking:
        """Fire ``node`` and return the successor marking (equation (1)).

        Self-loop arcs (present in both the preset and the postset) keep
        their token count.  The firing rule itself never checks
        enabledness -- DMGs reuse it for negative and early firings --
        but this MG-level method refuses to fire a disabled node.
        """
        if not self.enabled(node, marking):
            raise ValueError(f"node {node!r} is not enabled")
        return self.apply_firing(node, marking)

    def apply_firing(self, node: str, marking: Mapping[str, int]) -> Marking:
        """Apply the token-count update of equation (1) unconditionally."""
        new = dict(marking)
        pre = set(self._preset[node])
        post = set(self._postset[node])
        for a in pre - post:
            new[a] -= 1
        for a in post - pre:
            new[a] += 1
        return new

    def fire_sequence(
        self, sequence: Iterable[str], marking: Optional[Mapping[str, int]] = None
    ) -> Marking:
        """Fire a sequence of nodes starting from ``marking`` (or M0)."""
        m: Marking = dict(marking) if marking is not None else self.initial_marking
        for node in sequence:
            m = self.fire(node, m)
        return m

    def __repr__(self) -> str:
        return (
            f"MarkedGraph(nodes={len(self._nodes)}, arcs={len(self._arcs)}, "
            f"tokens={sum(self._initial.values())})"
        )


def linear_pipeline(stages: int, tokens_at: Optional[Iterable[int]] = None) -> MarkedGraph:
    """Build a strongly connected ring modelling a linear elastic pipeline.

    Stages are nodes ``s0 .. s{stages-1}`` connected in a ring; the
    backward arcs of the ring model the bounded capacity of the elastic
    buffers (an EB of capacity 2 corresponds to one forward arc and one
    backward arc whose tokens sum to 2).

    Args:
        stages: number of pipeline stages (>= 1).
        tokens_at: indices of forward arcs that carry an initial token;
            defaults to a single token on the arc out of stage 0.

    Returns:
        A strongly connected marked graph with ``2 * stages`` arcs.
    """
    if stages < 1:
        raise ValueError("a pipeline needs at least one stage")
    g = MarkedGraph()
    token_set = set(tokens_at) if tokens_at is not None else {0}
    for i in range(stages):
        nxt = (i + 1) % stages
        fwd = 1 if i in token_set else 0
        g.add_arc(f"s{i}", f"s{nxt}", tokens=fwd, name=f"fwd{i}")
        # Capacity-2 buffer: forward + backward tokens sum to 2.
        g.add_arc(f"s{nxt}", f"s{i}", tokens=2 - fwd, name=f"bwd{i}")
    return g


def iter_markings(marking: Marking) -> Iterator[Tuple[str, int]]:
    """Deterministic iteration over a marking (sorted by arc name)."""
    return iter(sorted(marking.items()))
