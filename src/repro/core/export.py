"""Graphviz (DOT) export of marked graphs and dual marked graphs.

Renders the diagrams of the paper's Fig. 1: nodes as bars (thick for
early-enabling nodes), arcs annotated with their current marking --
``●`` per token, ``○`` per anti-token.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.dmg import DualMarkedGraph
from repro.core.mg import MarkedGraph


def _marking_label(value: int) -> str:
    if value > 0:
        return "●" * min(value, 4) + (f"({value})" if value > 4 else "")
    if value < 0:
        return "○" * min(-value, 4) + (f"({value})" if value < -4 else "")
    return ""


def to_dot(
    graph: MarkedGraph,
    marking: Optional[Mapping[str, int]] = None,
    name: str = "dmg",
) -> str:
    """Render ``graph`` (at ``marking``, default M0) as a DOT digraph."""
    m = dict(marking) if marking is not None else graph.initial_marking
    early = graph.early_nodes if isinstance(graph, DualMarkedGraph) else set()
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in graph.nodes:
        shape = "box" if node in early else "ellipse"
        width = "2" if node in early else "1"
        lines.append(
            f'  "{node}" [shape={shape}, penwidth={width}];'
        )
    for arc in graph.arcs:
        label = _marking_label(m[arc.name])
        color = "black"
        if m[arc.name] < 0:
            color = "red"
        elif m[arc.name] > 0:
            color = "blue"
        lines.append(
            f'  "{arc.src}" -> "{arc.dst}" '
            f'[label="{label}", color={color}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
