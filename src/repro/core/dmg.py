"""Dual marked graphs (DMGs), the paper's behavioural model (Sect. 2.1).

A DMG extends a marked graph in two ways:

* markings map arcs to **integers** (``Z``), negative values being
  *anti-tokens*;
* a subset of nodes is declared *early-enabling*.

Three enabling rules exist for a node ``n`` at marking ``M``:

* **Positive (P)**: ``M(a) > 0`` for every input arc ``a`` -- the
  conventional MG rule.
* **Negative (N)**: ``M(a) < 0`` for every *output* arc -- the node
  propagates anti-tokens backwards (token counterflow).
* **Early (E)** (only for early-enabling nodes): ``M(•n) > 0`` and some
  input arc has ``M(a) == 0`` -- the node fires with only part of its
  inputs, leaving anti-tokens behind on the inputs that had none.

Regardless of the rule, firing applies the ordinary MG token-count
update, which is why all cycle invariants of MGs carry over to DMGs.

The paper abstracts early enabling as a non-deterministic choice; the
:class:`DualMarkedGraph` here follows that abstraction, while guarded
(data-dependent) early evaluation lives in the circuit-level layers
(:mod:`repro.elastic`) and in the timed simulator
(:mod:`repro.core.performance`).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.mg import Arc, MarkedGraph, Marking


class Enabling(enum.Enum):
    """The three DMG enabling rules."""

    POSITIVE = "P"
    NEGATIVE = "N"
    EARLY = "E"


@dataclass(frozen=True)
class FiringEvent:
    """One firing: which node fired and under which enabling rule."""

    node: str
    kind: Enabling

    def __str__(self) -> str:
        return f"{self.node}({self.kind.value})"


class DualMarkedGraph(MarkedGraph):
    """A marked graph with anti-tokens and early-enabling nodes.

    Besides the structure inherited from :class:`MarkedGraph`, a DMG
    records the set of early-enabling nodes (drawn with thicker bars in
    the paper's figures).

    Example (the DMG of Fig. 1):
        >>> g = fig1_dmg()
        >>> m = g.initial_marking
        >>> for node in ("n2", "n1", "n7"):
        ...     m = g.fire_any(node, m)
        >>> m["n4->n7"]
        -1
    """

    def __init__(self) -> None:
        super().__init__()
        self._early: Set[str] = set()

    # ------------------------------------------------------------------
    # Early-enabling declarations
    # ------------------------------------------------------------------
    def mark_early(self, node: str) -> None:
        """Declare ``node`` as early-enabling.  The node must exist."""
        if node not in set(self.nodes):
            raise KeyError(f"unknown node {node!r}")
        self._early.add(node)

    @property
    def early_nodes(self) -> Set[str]:
        """The set of early-enabling nodes."""
        return set(self._early)

    def is_early(self, node: str) -> bool:
        """True if ``node`` may fire under the early rule."""
        return node in self._early

    # ------------------------------------------------------------------
    # Enabling rules
    # ------------------------------------------------------------------
    def p_enabled(self, node: str, marking: Mapping[str, int]) -> bool:
        """Positive enabling: all input arcs strictly positive."""
        return all(marking[a] > 0 for a in self.preset(node))

    def n_enabled(self, node: str, marking: Mapping[str, int]) -> bool:
        """Negative enabling: all *output* arcs strictly negative."""
        post = self.postset(node)
        return bool(post) and all(marking[a] < 0 for a in post)

    def e_enabled(self, node: str, marking: Mapping[str, int]) -> bool:
        """Early enabling: positive input sum but some input arc at zero.

        Only early-enabling nodes may fire under this rule.  The paper's
        definition requires ``M(•n) > 0`` (the *sum* over the preset is
        positive) and at least one input arc with no token.
        """
        if node not in self._early:
            return False
        pre = self.preset(node)
        total = sum(marking[a] for a in pre)
        return total > 0 and any(marking[a] == 0 for a in pre)

    def enabling_kinds(self, node: str, marking: Mapping[str, int]) -> List[Enabling]:
        """All rules under which ``node`` is enabled at ``marking``."""
        kinds: List[Enabling] = []
        if self.p_enabled(node, marking):
            kinds.append(Enabling.POSITIVE)
        if self.n_enabled(node, marking):
            kinds.append(Enabling.NEGATIVE)
        if self.e_enabled(node, marking):
            kinds.append(Enabling.EARLY)
        return kinds

    def enabled(self, node: str, marking: Mapping[str, int]) -> bool:
        """A DMG node is enabled if it is P-, N- or E-enabled."""
        return bool(self.enabling_kinds(node, marking))

    def enabled_events(self, marking: Mapping[str, int]) -> List[FiringEvent]:
        """Every (node, rule) pair enabled at ``marking``."""
        events: List[FiringEvent] = []
        for node in self.nodes:
            for kind in self.enabling_kinds(node, marking):
                events.append(FiringEvent(node, kind))
        return events

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire_event(self, event: FiringEvent, marking: Mapping[str, int]) -> Marking:
        """Fire ``event.node`` checking the specific rule ``event.kind``."""
        checks = {
            Enabling.POSITIVE: self.p_enabled,
            Enabling.NEGATIVE: self.n_enabled,
            Enabling.EARLY: self.e_enabled,
        }
        if not checks[event.kind](event.node, marking):
            raise ValueError(f"{event} is not enabled")
        return self.apply_firing(event.node, marking)

    def fire_any(self, node: str, marking: Mapping[str, int]) -> Marking:
        """Fire ``node`` under any rule that enables it."""
        kinds = self.enabling_kinds(node, marking)
        if not kinds:
            raise ValueError(f"node {node!r} is not enabled under any rule")
        return self.apply_firing(node, marking)

    def fire(self, node: str, marking: Mapping[str, int]) -> Marking:
        """Alias of :meth:`fire_any` (overrides the MG positive-only rule)."""
        return self.fire_any(node, marking)

    # ------------------------------------------------------------------
    # Random exploration
    # ------------------------------------------------------------------
    def random_firing_sequence(
        self,
        length: int,
        rng: Optional[random.Random] = None,
        marking: Optional[Mapping[str, int]] = None,
    ) -> Tuple[List[FiringEvent], Marking]:
        """Fire ``length`` random enabled events from ``marking`` (or M0).

        Used by property-based tests to exercise the invariants of
        Sect. 2.2 on arbitrary interleavings.  Returns the trace and the
        final marking.  Raises ``RuntimeError`` on deadlock, which for a
        live SCDMG never happens.
        """
        rng = rng or random.Random()
        m: Marking = dict(marking) if marking is not None else self.initial_marking
        trace: List[FiringEvent] = []
        for _ in range(length):
            events = self.enabled_events(m)
            if not events:
                raise RuntimeError("deadlock: no enabled events")
            event = rng.choice(events)
            m = self.apply_firing(event.node, m)
            trace.append(event)
        return trace, m

    def __repr__(self) -> str:
        return (
            f"DualMarkedGraph(nodes={len(self.nodes)}, arcs={len(self.arcs)}, "
            f"early={sorted(self._early)})"
        )


def fig1_dmg() -> DualMarkedGraph:
    """The example DMG of Fig. 1 of the paper.

    Eight nodes, one early-enabling node ``n1`` and three simple cycles::

        C1 = {n1, n2, n4, n7}
        C2 = {n1, n3, n5, n7}
        C3 = {n1, n3, n6, n8}

    Every cycle carries exactly one token in the initial marking.  The
    marking of Fig. 1(b) is reached by firing ``n2`` (P), ``n1`` (E) and
    ``n7`` (N).
    """
    g = DualMarkedGraph()
    # Cycle C1: n1 -> n2 -> n4 -> n7 -> n1, token on n1 -> n2 so that n2
    # is P-enabled in the initial marking, matching the paper's trace.
    g.add_arc("n1", "n2", tokens=1)
    g.add_arc("n2", "n4")
    g.add_arc("n4", "n7")
    g.add_arc("n7", "n1")
    # Cycle C2: n1 -> n3 -> n5 -> n7 (-> n1), token on n3 -> n5.
    g.add_arc("n1", "n3")
    g.add_arc("n3", "n5", tokens=1)
    g.add_arc("n5", "n7")
    # Cycle C3: n1 -> n3 -> n6 -> n8 -> n1 carries its token on n8 -> n1,
    # which makes n1 E-enabled (positive preset sum, n7 -> n1 empty)
    # after n2 fires.
    g.add_arc("n3", "n6")
    g.add_arc("n6", "n8")
    g.add_arc("n8", "n1", tokens=1)
    g.mark_early("n1")
    return g
