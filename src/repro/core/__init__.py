"""Core behavioural models: marked graphs and dual marked graphs.

This package implements Section 2 of the paper:

* :mod:`repro.core.mg` -- ordinary marked graphs (MGs), a subclass of
  Petri nets without choice, used to model conventional (lazy) elastic
  systems.
* :mod:`repro.core.dmg` -- dual marked graphs (DMGs), the paper's
  extension with negative markings (anti-tokens), early-enabling nodes
  and the three enabling rules (positive, negative, early).
* :mod:`repro.core.analysis` -- structural and behavioural analysis:
  cycle invariants, liveness, repetitive behaviour, reachability and
  throughput bounds.
* :mod:`repro.core.performance` -- timed simulation of (D)MGs for
  throughput estimation with early-evaluation guards.
"""

from repro.core.mg import Arc, MarkedGraph
from repro.core.dmg import DualMarkedGraph, Enabling, FiringEvent
from repro.core.analysis import (
    cycle_token_sums,
    is_live,
    max_throughput,
    max_throughput_arcs,
    reachable_markings,
    verify_repetitive_behavior,
    verify_token_preservation,
)
from repro.core.export import to_dot
from repro.core.performance import TimedDMGSimulator, ThroughputEstimate

__all__ = [
    "Arc",
    "MarkedGraph",
    "DualMarkedGraph",
    "Enabling",
    "FiringEvent",
    "cycle_token_sums",
    "is_live",
    "max_throughput",
    "max_throughput_arcs",
    "to_dot",
    "reachable_markings",
    "verify_repetitive_behavior",
    "verify_token_preservation",
    "TimedDMGSimulator",
    "ThroughputEstimate",
]
