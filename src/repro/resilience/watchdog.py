"""Deadlock/livelock watchdogs for the elastic simulators.

The paper's Theorem 1 guarantees liveness for *correct* controllers in
a *correct* network; a stuck-at fault, a mis-wired elasticization or a
combinational-loop topology can still wedge a simulation into a cycle
of mutually asserted Stop wires -- every producer is retrying, nobody
transfers, and a naive driver spins for the rest of its cycle budget.

A watchdog turns that spin into a diagnosis:

* **no-progress criterion** -- a sliding window of ``window`` cycles in
  which at least one channel is *offering* (a ``retry+``/``retry-``
  back-pressure event, or an asserted-but-stalled wire at RTL) but no
  channel *moves* (no ``transfer+``, ``transfer-`` or ``kill``).  A
  fully idle network is not a stall: with nothing offered there is
  nothing to block.
* **diagnosis** -- collect the blocked wires (``ch.sp`` asserted
  against a pending token, ``ch.sn`` asserted against a pending
  anti-token), build the wait-for graph "this blocked wire waits on
  that blocked wire" from the controller port topology (behavioural)
  or the structural fan-in cones (RTL), and extract one cycle with the
  shared :func:`~repro.rtl.toposort.order_or_cycle` walk -- the same
  routine that names combinational cycles.  An acyclic wait-for graph
  means the stall has a root cause instead of a deadlock ring; the
  diagnosis then reports the chain to that root.
* **report** -- a :class:`StallDiagnosis` carried by a ``stall``
  :class:`~repro.obs.events.TraceEvent` into any attached trace sink,
  and (by default) a :class:`StallError` that aborts the run instead of
  letting it spin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.elastic.protocol import DualChannelEvent
from repro.obs.events import TraceEvent
from repro.rtl.netlist import Netlist
from repro.rtl.toposort import canonical_cycle, order_or_cycle

__all__ = [
    "BatchStallWatchdog",
    "NetworkStallWatchdog",
    "RtlStallWatchdog",
    "StallDiagnosis",
    "StallError",
]

_PROGRESS = (
    DualChannelEvent.POSITIVE_TRANSFER,
    DualChannelEvent.NEGATIVE_TRANSFER,
    DualChannelEvent.KILL,
)
_PENDING = (
    DualChannelEvent.RETRY_POS,
    DualChannelEvent.RETRY_NEG,
)


@dataclass(frozen=True)
class StallDiagnosis:
    """Why a network stopped making progress.

    ``stop_cycle`` is the canonicalised ring of asserted Stop wires,
    each waiting on the next (empty when the wait-for graph is acyclic
    -- then ``blocked`` ends at the root-cause wire).
    """

    cycle: int
    window: int
    last_progress: int
    stop_cycle: Tuple[str, ...]
    blocked: Tuple[str, ...]
    detail: str
    lane: Optional[int] = None

    def to_event(self) -> TraceEvent:
        extra = {
            "window": self.window,
            "last_progress": self.last_progress,
            "stop_cycle": list(self.stop_cycle),
            "blocked": list(self.blocked),
            "detail": self.detail,
        }
        if self.lane is not None:
            extra["lane"] = self.lane
        return TraceEvent(
            cycle=self.cycle,
            kind="stall",
            subject="watchdog",
            extra=extra,
        )

    def __str__(self) -> str:
        if self.stop_cycle:
            ring = " -> ".join(self.stop_cycle + (self.stop_cycle[0],))
            shape = f"deadlock ring {ring}"
        elif self.blocked:
            shape = f"stalled behind {self.blocked[-1]}"
        else:
            shape = "no blocked wire identified"
        where = f"lane {self.lane}: " if self.lane is not None else ""
        return (
            f"{where}no progress for {self.cycle - self.last_progress} "
            f"cycles (window {self.window}, last progress at cycle "
            f"{self.last_progress}): {shape}"
        )


class StallError(RuntimeError):
    """A watchdog fired; :attr:`diagnosis` has the structured report."""

    def __init__(self, diagnosis: StallDiagnosis) -> None:
        super().__init__(str(diagnosis))
        self.diagnosis = diagnosis


def _diagnose(
    cycle: int,
    window: int,
    last_progress: int,
    blocked: Sequence[str],
    waits_on: Dict[str, Tuple[str, ...]],
    detail: str,
) -> StallDiagnosis:
    """Extract the deadlock ring (or root-cause chain) from a wait graph."""
    _, ring = order_or_cycle(waits_on)
    if ring is not None:
        ring = canonical_cycle(ring)
        return StallDiagnosis(
            cycle=cycle, window=window, last_progress=last_progress,
            stop_cycle=tuple(ring), blocked=tuple(sorted(blocked)),
            detail=detail,
        )
    # Acyclic: walk from the smallest blocked wire to the root cause
    # (a blocked wire none of whose waits are themselves blocked).
    chain: List[str] = []
    if blocked:
        node: Optional[str] = min(blocked)
        seen: Set[str] = set()
        while node is not None and node not in seen:
            seen.add(node)
            chain.append(node)
            nexts = waits_on.get(node, ())
            node = min(nexts) if nexts else None
    return StallDiagnosis(
        cycle=cycle, window=window, last_progress=last_progress,
        stop_cycle=(), blocked=tuple(chain), detail=detail,
    )


class NetworkStallWatchdog:
    """No-progress watchdog for the behavioural :class:`ElasticNetwork`.

    Attach with :meth:`attach` (or ``net.add_probe(watchdog)``); the
    watchdog then inspects every settled cycle.  When ``window`` cycles
    pass in which some channel retries but none transfers, it builds
    the wait-for graph over the asserted Stop wires from the attached
    network's controller port topology, emits a ``stall`` event into
    ``sink`` / ``on_stall`` and raises :class:`StallError` (unless
    ``raise_on_stall=False``, in which case the window restarts so the
    run keeps reporting every further stall).
    """

    def __init__(
        self,
        window: int = 32,
        sink: Optional[Callable[[TraceEvent], None]] = None,
        on_stall: Optional[Callable[[StallDiagnosis], None]] = None,
        raise_on_stall: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.sink = sink
        self.on_stall = on_stall
        self.raise_on_stall = raise_on_stall
        self.last_progress = -1
        self.diagnoses: List[StallDiagnosis] = []
        self._net = None

    def attach(self, net) -> "NetworkStallWatchdog":
        """Register on ``net`` (an ElasticNetwork); returns self."""
        self._net = net
        net.add_probe(self)
        return self

    def __call__(self, net) -> None:
        cycle = net.cycle
        progress = False
        pending = False
        for ch in net.channels.values():
            if ch.last_event in _PROGRESS:
                progress = True
                break
            if ch.last_event in _PENDING:
                pending = True
        if progress or not pending:
            self.last_progress = cycle
            return
        if cycle - self.last_progress < self.window:
            return
        diagnosis = self._diagnose(net, cycle)
        self.diagnoses.append(diagnosis)
        if self.sink is not None:
            self.sink(diagnosis.to_event())
        if self.on_stall is not None:
            self.on_stall(diagnosis)
        if self.raise_on_stall:
            raise StallError(diagnosis)
        self.last_progress = cycle  # restart the window

    # -- wait-for graph over controller ports --------------------------
    def _diagnose(self, net, cycle: int) -> StallDiagnosis:
        blocked: Set[str] = set()
        for name, ch in net.channels.items():
            # A pending token refused by back-pressure (retry+)...
            if ch.vp == 1 and ch.sp == 1 and ch.vn != 1:
                blocked.add(f"{name}.sp")
            # ...or a pending anti-token refused (retry-).
            if ch.vn == 1 and ch.sn == 1 and ch.vp != 1:
                blocked.add(f"{name}.sn")
        waits_on: Dict[str, Tuple[str, ...]] = {}
        for ctrl in net.controllers:
            ports = _controller_ports(ctrl)
            if ports is None:
                continue
            ins, outs = ports
            # A full controller asserts Stop+ on its inputs because its
            # outputs are stopped: in.sp waits on out.sp.  Symmetrically
            # anti-token back-pressure flows forward: out.sn on in.sn.
            for i in ins:
                src = f"{i.name}.sp"
                if src in blocked:
                    deps = tuple(
                        f"{o.name}.sp" for o in outs
                        if f"{o.name}.sp" in blocked
                    )
                    if deps:
                        waits_on[src] = deps
            for o in outs:
                src = f"{o.name}.sn"
                if src in blocked:
                    deps = tuple(
                        f"{i.name}.sn" for i in ins
                        if f"{i.name}.sn" in blocked
                    )
                    if deps:
                        waits_on[src] = deps
        return _diagnose(
            cycle, self.window, self.last_progress, sorted(blocked),
            waits_on,
            detail=f"behavioural network {net.name!r}",
        )


def _controller_ports(ctrl) -> Optional[Tuple[List, List]]:
    """(input channels, output channels) of a behavioural controller.

    Duck-typed over the port attribute conventions of
    :mod:`repro.elastic.behavioral`: joins expose ``inputs``/``output``,
    forks ``input``/``outputs``, buffers/pipes/VL ``left``/``right``,
    the passive interface ``up``/``down``, sources a bare ``output`` and
    sinks a bare ``input``.
    """
    if hasattr(ctrl, "inputs") and hasattr(ctrl, "output"):
        return list(ctrl.inputs), [ctrl.output]
    if hasattr(ctrl, "input") and hasattr(ctrl, "outputs"):
        return [ctrl.input], list(ctrl.outputs)
    if hasattr(ctrl, "left") and hasattr(ctrl, "right"):
        return [ctrl.left], [ctrl.right]
    if hasattr(ctrl, "up") and hasattr(ctrl, "down"):
        return [ctrl.up], [ctrl.down]
    if hasattr(ctrl, "output"):
        return [], [ctrl.output]
    if hasattr(ctrl, "input"):
        return [ctrl.input], []
    return None


class RtlStallWatchdog:
    """No-progress watchdog for the scalar :class:`TwoPhaseSimulator`.

    Watches the dual channels of a gate-level design through the
    simulator's end-of-cycle observer list.  The wait-for graph comes
    from structure instead of port objects: blocked wire ``A.sp`` waits
    on ``B.sp`` when ``B.sp`` lies in the transitive fan-in cone of
    ``A.sp`` (through gates, transparent latches and flop ``d`` pins)
    -- at gate level "my Stop is derived from your Stop" *is* the
    combinational/sequential dependency.
    """

    def __init__(
        self,
        sim,
        channels: Sequence,
        window: int = 32,
        sink: Optional[Callable[[TraceEvent], None]] = None,
        on_stall: Optional[Callable[[StallDiagnosis], None]] = None,
        raise_on_stall: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.sim = sim
        self.channels = list(channels)
        self.window = window
        self.sink = sink
        self.on_stall = on_stall
        self.raise_on_stall = raise_on_stall
        self.last_progress = -1
        self.diagnoses: List[StallDiagnosis] = []
        watched = (
            [ch.sp for ch in self.channels] + [ch.sn for ch in self.channels]
        )
        # Same-cycle wait edges first: a Stop derived combinationally
        # from another Stop.  Designs whose EBs cut every combinational
        # path (all channel outputs are state bits) have no such edges;
        # for those, fall back to cross-cycle cones through latch/flop
        # ``d`` pins -- a retry that persists because another retry
        # persisted last cycle.
        self._fanin_comb = _fanin_cones(sim.netlist, watched, sequential=False)
        self._fanin_seq = _fanin_cones(sim.netlist, watched, sequential=True)
        sim.observers.append(self._observe)

    @classmethod
    def for_target(cls, target, sim, **kwargs) -> "RtlStallWatchdog":
        """Attach to ``sim`` watching an :class:`RtlTarget`'s channels."""
        return cls(sim, target.channels, **kwargs)

    def _observe(self, time: int, values: Dict[str, object]) -> None:
        progress = False
        pending = False
        for ch in self.channels:
            vp, sp = values.get(ch.vp), values.get(ch.sp)
            vn, sn = values.get(ch.vn), values.get(ch.sn)
            if (vp == 1 and sp == 0 and vn != 1) or \
               (vn == 1 and sn == 0 and vp != 1) or \
               (vp == 1 and vn == 1):
                progress = True
                break
            if (vp == 1 and sp == 1) or (vn == 1 and sn == 1):
                pending = True
        if progress or not pending:
            self.last_progress = time
            return
        if time - self.last_progress < self.window:
            return
        diagnosis = self._diagnose(time, values)
        self.diagnoses.append(diagnosis)
        if self.sink is not None:
            self.sink(diagnosis.to_event())
        if self.on_stall is not None:
            self.on_stall(diagnosis)
        if self.raise_on_stall:
            raise StallError(diagnosis)
        self.last_progress = time

    def _diagnose(self, time: int, values: Dict[str, object]) -> StallDiagnosis:
        return _diagnose_rtl(
            self.channels, values, self._fanin_comb, self._fanin_seq,
            time, self.window, self.last_progress,
            detail=f"netlist {self.sim.netlist.name!r}",
        )


def blocked_wires(channels: Sequence, values: Dict[str, object]) -> Set[str]:
    """Stop wires asserted against a pending token/anti-token."""
    blocked: Set[str] = set()
    for ch in channels:
        vp, sp = values.get(ch.vp), values.get(ch.sp)
        vn, sn = values.get(ch.vn), values.get(ch.sn)
        if vp == 1 and sp == 1 and vn != 1:
            blocked.add(ch.sp)
        if vn == 1 and sn == 1 and vp != 1:
            blocked.add(ch.sn)
    return blocked


def _diagnose_rtl(
    channels: Sequence,
    values: Dict[str, object],
    fanin_comb: Dict[str, Set[str]],
    fanin_seq: Dict[str, Set[str]],
    time: int,
    window: int,
    last_progress: int,
    detail: str,
    lane: Optional[int] = None,
) -> StallDiagnosis:
    """Gate-level wait-for-graph diagnosis shared by all RTL watchdogs."""
    blocked = blocked_wires(channels, values)
    waits_on: Dict[str, Tuple[str, ...]] = {}
    for fanin in (fanin_comb, fanin_seq):
        for wire in blocked:
            # A wire's own fan-in (its retry state looping through
            # a flop) is "still stalled", not a wait-on edge.
            deps = tuple(
                sorted((fanin.get(wire, set()) & blocked) - {wire})
            )
            if deps:
                waits_on[wire] = deps
        if waits_on:
            break
    diagnosis = _diagnose(
        time, window, last_progress, sorted(blocked), waits_on, detail
    )
    if lane is None:
        return diagnosis
    return StallDiagnosis(
        cycle=diagnosis.cycle, window=diagnosis.window,
        last_progress=diagnosis.last_progress,
        stop_cycle=diagnosis.stop_cycle, blocked=diagnosis.blocked,
        detail=diagnosis.detail, lane=lane,
    )


class BatchStallWatchdog:
    """Per-lane no-progress watchdog for the word-parallel simulators.

    Works on both :class:`~repro.rtl.batchsim.BatchSimulator` and the
    compiled :class:`~repro.codegen.sim.CompiledSimulator` (the watched
    channel wires must be in the compiled module's observed set).  The
    progress/pending criterion of :class:`RtlStallWatchdog` is evaluated
    word-wide -- one strict-bit mask operation per channel covers every
    lane -- and each lane keeps its own last-progress cycle.  When a
    lane's window expires, that lane's view of the netlist is extracted
    (:meth:`lane_values`) and diagnosed through the same wait-for-graph
    walk as the scalar watchdog, yielding a :class:`StallDiagnosis`
    tagged with the lane index.
    """

    def __init__(
        self,
        sim,
        channels: Sequence,
        window: int = 32,
        sink: Optional[Callable[[TraceEvent], None]] = None,
        on_stall: Optional[Callable[[StallDiagnosis], None]] = None,
        raise_on_stall: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.sim = sim
        self.channels = list(channels)
        self.window = window
        self.sink = sink
        self.on_stall = on_stall
        self.raise_on_stall = raise_on_stall
        self.lanes: int = sim.lanes
        #: per-lane cycle of the most recent progress (or idle) cycle
        self.last_progress: List[int] = [-1] * self.lanes
        self.diagnoses: List[StallDiagnosis] = []
        self._mask = (1 << self.lanes) - 1
        watched = (
            [ch.sp for ch in self.channels] + [ch.sn for ch in self.channels]
        )
        self._fanin_comb = _fanin_cones(sim.netlist, watched, sequential=False)
        self._fanin_seq = _fanin_cones(sim.netlist, watched, sequential=True)
        sim.observers.append(self._observe)

    @classmethod
    def for_target(cls, target, sim, **kwargs) -> "BatchStallWatchdog":
        """Attach to ``sim`` watching an :class:`RtlTarget`'s channels."""
        return cls(sim, target.channels, **kwargs)

    def no_progress_mask(self, time: int) -> int:
        """Bitmask of lanes whose no-progress window has expired."""
        mask = 0
        for lane in range(self.lanes):
            if time - self.last_progress[lane] >= self.window:
                mask |= 1 << lane
        return mask

    def _observe(self, time: int, sim) -> None:
        from repro.rtl.batchsim import strict_planes

        progress = 0
        pending = 0
        for ch in self.channels:
            vp1, _ = strict_planes(sim, ch.vp)
            sp1, sp0 = strict_planes(sim, ch.sp)
            vn1, _ = strict_planes(sim, ch.vn)
            sn1, sn0 = strict_planes(sim, ch.sn)
            progress |= (vp1 & sp0 & ~vn1) | (vn1 & sn0 & ~vp1) | (vp1 & vn1)
            pending |= (vp1 & sp1) | (vn1 & sn1)
        # A lane refreshes its window on progress, or when nothing is
        # even pending (a fully idle lane is not stalled).
        refresh = (progress | ~pending) & self._mask
        lp = self.last_progress
        for lane in range(self.lanes):
            if (refresh >> lane) & 1:
                lp[lane] = time
            elif time - lp[lane] >= self.window:
                diagnosis = _diagnose_rtl(
                    self.channels, sim.lane_values(lane),
                    self._fanin_comb, self._fanin_seq,
                    time, self.window, lp[lane],
                    detail=f"netlist {sim.netlist.name!r}",
                    lane=lane,
                )
                self.diagnoses.append(diagnosis)
                if self.sink is not None:
                    self.sink(diagnosis.to_event())
                if self.on_stall is not None:
                    self.on_stall(diagnosis)
                if self.raise_on_stall:
                    raise StallError(diagnosis)
                lp[lane] = time  # restart this lane's window


def _fanin_cones(
    netlist: Netlist, wires: Sequence[str], sequential: bool = True
) -> Dict[str, Set[str]]:
    """Transitive fan-in of each wire.

    Always traverses gates; with ``sequential`` the walk also crosses
    latch and flop ``q <- d`` arcs (cross-cycle dependencies), otherwise
    state bits terminate the cone.
    """
    driver_ins: Dict[str, Tuple[str, ...]] = {}
    for out, gate in netlist.gates.items():
        driver_ins[out] = gate.ins
    if sequential:
        for q, latch in netlist.latches.items():
            driver_ins[q] = (latch.d,)
        for q, flop in netlist.flops.items():
            driver_ins[q] = (flop.d,)
    cones: Dict[str, Set[str]] = {}
    for wire in wires:
        cone: Set[str] = set()
        stack = [wire]
        while stack:
            sig = stack.pop()
            for dep in driver_ins.get(sig, ()):
                if dep not in cone:
                    cone.add(dep)
                    stack.append(dep)
        cones[wire] = cone
    return cones
