"""Atomic on-disk checkpoints for long-running workloads.

A checkpoint directory holds

* ``manifest.json`` -- a *fingerprint* of the workload (target, config,
  sharding geometry).  Resuming validates the fingerprint first: a
  checkpoint from a different campaign must fail loudly, never merge
  silently into a mismatched report.
* ``chunk-NNNNNN.json`` -- one file per completed work unit, written by
  the driver process only (workers never touch the directory, so a
  SIGKILL anywhere leaves the store consistent).
* ``snapshot.json`` -- a single whole-state snapshot for workloads that
  are one growing frontier rather than independent chunks (the Kripke
  builder).

Every write is atomic and durable: serialise to a temporary file in the
same directory, ``fsync``, then ``os.replace`` over the final name.  A
crash mid-write leaves either the old file or a stray ``*.tmp*`` that
readers ignore; a torn JSON file (pre-rename crash on a filesystem
without ordering guarantees) is treated as absent and its work unit is
simply redone.  Re-running a completed unit is always safe because every
workload checkpointed here is deterministic -- which is also why a
resumed run reproduces the uninterrupted report byte for byte.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Mapping, Optional, Union


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used."""


class CheckpointMismatch(CheckpointError):
    """The directory's manifest fingerprints a different workload."""


def atomic_write_json(path: Path, payload: object) -> None:
    """Write ``payload`` as JSON via tmp-file + fsync + rename."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` with the same tmp-file + fsync + rename hygiene.

    Used by the codegen build cache for generated module source: a
    crash mid-write leaves either the previous artifact or a stray
    ``*.tmp*`` that loaders ignore, never a torn module.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[object]:
    """The parsed file, or None when missing or torn."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


class CheckpointStore:
    """One checkpoint directory with a manifest, chunks and a snapshot."""

    MANIFEST = "manifest.json"
    SNAPSHOT = "snapshot.json"
    _CHUNK_RE = re.compile(r"^chunk-(\d{6,})\.json$")

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------
    def read_manifest(self) -> Optional[Dict[str, object]]:
        manifest = _read_json(self.directory / self.MANIFEST)
        return manifest if isinstance(manifest, dict) else None

    def ensure_manifest(self, fingerprint: Mapping[str, object]) -> bool:
        """Adopt the directory for ``fingerprint``.

        Returns True when a matching manifest already exists (a resume),
        False when the directory was fresh and the manifest was written.
        Raises :class:`CheckpointMismatch` when the directory belongs to
        a different workload.
        """
        fingerprint = dict(fingerprint)
        existing = self.read_manifest()
        if existing is not None:
            if existing != fingerprint:
                diff = sorted(
                    key for key in set(existing) | set(fingerprint)
                    if existing.get(key) != fingerprint.get(key)
                )
                raise CheckpointMismatch(
                    f"checkpoint {self.directory} belongs to a different "
                    f"workload (mismatched keys: {', '.join(diff)}); "
                    "pick an empty directory or rerun with the original "
                    "parameters"
                )
            return True
        atomic_write_json(self.directory / self.MANIFEST, fingerprint)
        return False

    # -- per-unit chunks -----------------------------------------------
    def chunk_path(self, index: int) -> Path:
        return self.directory / f"chunk-{index:06d}.json"

    def save_chunk(self, index: int, payload: object) -> None:
        atomic_write_json(self.chunk_path(index), payload)

    def chunks(self) -> Dict[int, object]:
        """All readable completed chunks, keyed by index (torn files skipped)."""
        out: Dict[int, object] = {}
        for entry in sorted(self.directory.iterdir()):
            match = self._CHUNK_RE.match(entry.name)
            if match is None:
                continue
            payload = _read_json(entry)
            if payload is not None:
                out[int(match.group(1))] = payload
        return out

    # -- whole-state snapshot ------------------------------------------
    def save_snapshot(self, payload: object) -> None:
        atomic_write_json(self.directory / self.SNAPSHOT, payload)

    def load_snapshot(self) -> Optional[object]:
        return _read_json(self.directory / self.SNAPSHOT)

    # -- lifecycle -----------------------------------------------------
    def clear(self) -> None:
        """Remove every checkpoint file (manifest, chunks, snapshot, temps)."""
        for entry in self.directory.iterdir():
            if (
                entry.name in (self.MANIFEST, self.SNAPSHOT)
                or self._CHUNK_RE.match(entry.name)
                or ".tmp." in entry.name
            ):
                entry.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointStore({str(self.directory)!r})"
