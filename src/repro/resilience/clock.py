"""Injectable monotonic time for backoff/deadline machinery.

Every component that schedules retries, heartbeat deadlines or backoff
windows (:class:`~repro.resilience.supervisor.ShardSupervisor`, the
fabric's :class:`~repro.fabric.health.WorkerHealth`) takes a ``clock``
callable instead of reading :func:`time.monotonic` inline.  Production
code passes nothing and gets the real clock; tests pass a
:class:`FakeClock` and drive time explicitly -- backoff and requeue
paths then run in microseconds with zero sleeps and zero timing flakes.

A clock is just ``Callable[[], float]`` returning monotonic seconds.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "MONOTONIC", "FakeClock"]

#: The clock signature: monotonic seconds, comparable only to itself.
Clock = Callable[[], float]

#: The production clock.
MONOTONIC: Clock = time.monotonic


class FakeClock:
    """A deterministic, manually advanced monotonic clock.

    Call the instance to read the current time; :meth:`advance` moves
    it forward.  Time never moves on its own, so a test asserts *exact*
    backoff arithmetic instead of sleeping through it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("monotonic clocks only move forward")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FakeClock({self.now!r})"
